//! Graph transformations: induced subgraphs, edge reversal, and id
//! renumbering — the "powerful operations to construct various types of
//! graphs" an exploratory workflow composes between algorithm runs.

use crate::{DirectedGraph, NodeId, UndirectedGraph};
use ringo_concurrent::IntHashTable;

impl DirectedGraph {
    /// The subgraph induced by `nodes`: those nodes and every edge whose
    /// endpoints are both in the set. Unknown ids are ignored.
    pub fn subgraph(&self, nodes: &[NodeId]) -> DirectedGraph {
        let mut keep: IntHashTable<()> = IntHashTable::with_capacity(nodes.len());
        for &n in nodes {
            if self.has_node(n) {
                keep.insert(n, ());
            }
        }
        let mut parts = Vec::with_capacity(keep.len());
        for id in self.node_ids() {
            if !keep.contains(id) {
                continue;
            }
            let in_nbrs: Vec<NodeId> = self
                .in_nbrs(id)
                .iter()
                .copied()
                .filter(|n| keep.contains(*n))
                .collect();
            let out_nbrs: Vec<NodeId> = self
                .out_nbrs(id)
                .iter()
                .copied()
                .filter(|n| keep.contains(*n))
                .collect();
            parts.push((id, in_nbrs, out_nbrs));
        }
        DirectedGraph::from_parts(parts)
    }

    /// The reverse graph: every edge `u -> v` becomes `v -> u`. Cheap —
    /// in/out adjacency vectors are swapped per node, no re-sorting.
    pub fn reversed(&self) -> DirectedGraph {
        let parts = self
            .node_ids()
            .map(|id| {
                (
                    id,
                    self.out_nbrs(id).to_vec(), // old out becomes new in
                    self.in_nbrs(id).to_vec(),  // old in becomes new out
                )
            })
            .collect();
        DirectedGraph::from_parts(parts)
    }

    /// Renumbers nodes to dense ids `0..n` (in ascending order of the old
    /// ids). Returns the new graph and the old→new mapping. Useful before
    /// exporting to array-indexed tools.
    pub fn renumbered(&self) -> (DirectedGraph, IntHashTable<NodeId>) {
        let mut old_ids: Vec<NodeId> = self.node_ids().collect();
        old_ids.sort_unstable();
        let mut mapping: IntHashTable<NodeId> = IntHashTable::with_capacity(old_ids.len());
        for (new, &old) in old_ids.iter().enumerate() {
            mapping.insert(old, new as NodeId);
        }
        let remap = |ids: &[NodeId]| -> Vec<NodeId> {
            // Old adjacency is sorted by old id, and the mapping is
            // monotone, so the remapped vector stays sorted.
            ids.iter()
                .map(|&n| *mapping.get(n).expect("node mapped"))
                .collect()
        };
        let parts = old_ids
            .iter()
            .map(|&old| {
                (
                    *mapping.get(old).expect("node mapped"),
                    remap(self.in_nbrs(old)),
                    remap(self.out_nbrs(old)),
                )
            })
            .collect();
        (DirectedGraph::from_parts(parts), mapping)
    }
}

impl UndirectedGraph {
    /// The subgraph induced by `nodes` (see
    /// [`DirectedGraph::subgraph`]).
    pub fn subgraph(&self, nodes: &[NodeId]) -> UndirectedGraph {
        let mut keep: IntHashTable<()> = IntHashTable::with_capacity(nodes.len());
        for &n in nodes {
            if self.has_node(n) {
                keep.insert(n, ());
            }
        }
        let mut parts = Vec::with_capacity(keep.len());
        for id in self.node_ids() {
            if !keep.contains(id) {
                continue;
            }
            let nbrs: Vec<NodeId> = self
                .nbrs(id)
                .iter()
                .copied()
                .filter(|n| keep.contains(*n))
                .collect();
            parts.push((id, nbrs));
        }
        UndirectedGraph::from_parts(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DirectedGraph {
        let mut g = DirectedGraph::new();
        for (s, d) in [(1, 2), (2, 3), (3, 1), (3, 4), (4, 4)] {
            g.add_edge(s, d);
        }
        g
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = sample();
        let s = g.subgraph(&[1, 2, 3, 99]);
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.edge_count(), 3, "triangle kept, edges to 4 dropped");
        assert!(s.has_edge(3, 1));
        assert!(!s.has_node(4));
        // Empty and full selections.
        assert_eq!(g.subgraph(&[]).node_count(), 0);
        let all: Vec<i64> = g.node_ids().collect();
        let full = g.subgraph(&all);
        assert_eq!(full.edge_count(), g.edge_count());
    }

    #[test]
    fn reversed_swaps_edge_direction() {
        let g = sample();
        let r = g.reversed();
        assert_eq!(r.node_count(), g.node_count());
        assert_eq!(r.edge_count(), g.edge_count());
        for (s, d) in g.edges() {
            assert!(r.has_edge(d, s));
        }
        assert!(r.has_edge(4, 4), "self-loop survives");
        // Double reversal is the identity.
        let rr = r.reversed();
        for id in g.node_ids() {
            assert_eq!(rr.out_nbrs(id), g.out_nbrs(id));
        }
    }

    #[test]
    fn renumbered_is_dense_and_isomorphic() {
        let mut g = DirectedGraph::new();
        g.add_edge(100, 7);
        g.add_edge(7, 55);
        g.add_edge(55, 100);
        let (r, mapping) = g.renumbered();
        let mut new_ids: Vec<i64> = r.node_ids().collect();
        new_ids.sort_unstable();
        assert_eq!(new_ids, vec![0, 1, 2]);
        for (s, d) in g.edges() {
            let (ns, nd) = (*mapping.get(s).unwrap(), *mapping.get(d).unwrap());
            assert!(r.has_edge(ns, nd));
        }
        assert_eq!(r.edge_count(), g.edge_count());
        // Ascending old ids map to ascending new ids.
        assert!(mapping.get(7).unwrap() < mapping.get(55).unwrap());
    }

    #[test]
    fn undirected_subgraph() {
        let mut g = UndirectedGraph::new();
        for (a, b) in [(1, 2), (2, 3), (3, 1), (3, 4)] {
            g.add_edge(a, b);
        }
        let s = g.subgraph(&[1, 2, 3]);
        assert_eq!(s.edge_count(), 3);
        assert!(!s.has_node(4));
        assert_eq!(s.nbrs(3), &[1, 2]);
    }
}
