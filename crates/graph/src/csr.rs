//! Static Compressed Sparse Row baseline.
//!
//! The paper (§2.2) rejects CSR because "graph updates cause prohibitive
//! maintenance costs of the single big edge vector (e.g., deleting a single
//! edge requires time linear in the total number of edges in the graph)".
//! This module implements exactly that representation so the ablation
//! benchmarks can measure both sides of the trade-off: CSR's contiguous
//! traversal vs its `O(E)` single-edge deletion.

use crate::traits::DirectedTopology;
use crate::NodeId;
use ringo_concurrent::{num_threads, radix_sort_by_u64_key, IntHashTable};

/// An immutable-topology directed graph in Compressed Sparse Row form,
/// with both out- and in-adjacency stored contiguously.
///
/// Node ids may be arbitrary; they are mapped to dense slots at build time.
/// The only mutation offered is [`CsrGraph::del_edge`], implemented the way
/// a CSR must: by shifting the tail of the big edge vector — deliberately
/// `O(E)`, to serve as the paper's counterexample.
#[derive(Clone, Debug, Default)]
pub struct CsrGraph {
    index: IntHashTable<u32>,
    ids: Vec<NodeId>,
    out_off: Vec<usize>,
    out_nbrs: Vec<NodeId>,
    in_off: Vec<usize>,
    in_nbrs: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list. Duplicate edges are
    /// deduplicated; adjacency is sorted.
    pub fn from_edges(edges: &[(NodeId, NodeId)]) -> Self {
        // Collect distinct node ids in first-seen order, then sort for
        // deterministic slot assignment.
        let mut ids: Vec<NodeId> = Vec::with_capacity(edges.len() / 4 + 4);
        let mut index: IntHashTable<u32> = IntHashTable::with_capacity(edges.len() / 4 + 4);
        for &(s, d) in edges {
            for v in [s, d] {
                if !index.contains(v) {
                    index.insert(v, 0);
                    ids.push(v);
                }
            }
        }
        ids.sort_unstable();
        for (slot, id) in ids.iter().enumerate() {
            index.insert(*id, slot as u32);
        }
        let n = ids.len();

        // Slot pairs pack into one u64 whose order equals the tuple order,
        // so construction rides the parallel radix sorter; small-id graphs
        // skip the constant high-byte passes entirely.
        let threads = num_threads();
        let pack = |&(s, d): &(u32, u32)| ((s as u64) << 32) | d as u64;
        let mut pairs: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(s, d)| (*index.get(s).unwrap(), *index.get(d).unwrap()))
            .collect();
        radix_sort_by_u64_key(&mut pairs, threads, pack);
        pairs.dedup();

        let mut out_off = vec![0usize; n + 1];
        for &(s, _) in &pairs {
            out_off[s as usize + 1] += 1;
        }
        for i in 0..n {
            out_off[i + 1] += out_off[i];
        }
        let mut out_nbrs = vec![0 as NodeId; pairs.len()];
        {
            let mut cursor = out_off.clone();
            for &(s, d) in &pairs {
                out_nbrs[cursor[s as usize]] = ids[d as usize];
                cursor[s as usize] += 1;
            }
        }

        let mut rev: Vec<(u32, u32)> = pairs.iter().map(|&(s, d)| (d, s)).collect();
        radix_sort_by_u64_key(&mut rev, threads, pack);
        let mut in_off = vec![0usize; n + 1];
        for &(d, _) in &rev {
            in_off[d as usize + 1] += 1;
        }
        for i in 0..n {
            in_off[i + 1] += in_off[i];
        }
        let mut in_nbrs = vec![0 as NodeId; rev.len()];
        {
            let mut cursor = in_off.clone();
            for &(d, s) in &rev {
                in_nbrs[cursor[d as usize]] = ids[s as usize];
                cursor[d as usize] += 1;
            }
        }

        Self {
            index,
            ids,
            out_off,
            out_nbrs,
            in_off,
            in_nbrs,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out_nbrs.len()
    }

    /// True when `id` is a node of the graph.
    pub fn has_node(&self, id: NodeId) -> bool {
        self.index.contains(id)
    }

    /// True when the edge `src -> dst` exists.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        match self.index.get(src) {
            Some(&s) => self
                .out_nbrs_of_slot(s as usize)
                .binary_search(&dst)
                .is_ok(),
            None => false,
        }
    }

    /// Sorted out-neighbors of `id` (empty slice if absent).
    pub fn out_nbrs(&self, id: NodeId) -> &[NodeId] {
        match self.index.get(id) {
            Some(&s) => self.out_nbrs_of_slot(s as usize),
            None => &[],
        }
    }

    /// Sorted in-neighbors of `id` (empty slice if absent).
    pub fn in_nbrs(&self, id: NodeId) -> &[NodeId] {
        match self.index.get(id) {
            Some(&s) => self.in_nbrs_of_slot(s as usize),
            None => &[],
        }
    }

    /// Deletes the edge `src -> dst` by shifting the tails of both big edge
    /// vectors: **O(E)** on purpose. Returns `false` if the edge is absent.
    pub fn del_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        let (s, d) = match (self.index.get(src), self.index.get(dst)) {
            (Some(&s), Some(&d)) => (s as usize, d as usize),
            _ => return false,
        };
        let rel = match self.out_nbrs[self.out_off[s]..self.out_off[s + 1]].binary_search(&dst) {
            Ok(p) => p,
            Err(_) => return false,
        };
        let pos = self.out_off[s] + rel;
        self.out_nbrs.remove(pos); // shifts the tail: O(E)
        for off in self.out_off[s + 1..].iter_mut() {
            *off -= 1;
        }
        let rel = self.in_nbrs[self.in_off[d]..self.in_off[d + 1]]
            .binary_search(&src)
            .expect("in/out out of sync");
        let pos = self.in_off[d] + rel;
        self.in_nbrs.remove(pos);
        for off in self.in_off[d + 1..].iter_mut() {
            *off -= 1;
        }
        true
    }

    /// Iterates over node ids in slot order (ascending id).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ids.iter().copied()
    }

    /// Approximate heap footprint in bytes.
    pub fn mem_size(&self) -> usize {
        self.index.mem_size()
            + self.ids.capacity() * 8
            + (self.out_off.capacity() + self.in_off.capacity()) * 8
            + (self.out_nbrs.capacity() + self.in_nbrs.capacity()) * 8
    }
}

impl DirectedTopology for CsrGraph {
    fn n_slots(&self) -> usize {
        self.ids.len()
    }

    fn slot_id(&self, slot: usize) -> Option<NodeId> {
        self.ids.get(slot).copied()
    }

    fn slot_of(&self, id: NodeId) -> Option<usize> {
        self.index.get(id).map(|s| *s as usize)
    }

    fn out_nbrs_of_slot(&self, slot: usize) -> &[NodeId] {
        &self.out_nbrs[self.out_off[slot]..self.out_off[slot + 1]]
    }

    fn in_nbrs_of_slot(&self, slot: usize) -> &[NodeId] {
        &self.in_nbrs[self.in_off[slot]..self.in_off[slot + 1]]
    }

    fn node_count(&self) -> usize {
        self.ids.len()
    }

    fn edge_count(&self) -> usize {
        self.out_nbrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DirectedGraph;

    fn sample_edges() -> Vec<(NodeId, NodeId)> {
        vec![(10, 20), (10, 30), (20, 30), (30, 10), (30, 30), (10, 20)]
    }

    #[test]
    fn from_edges_dedups_and_sorts() {
        let g = CsrGraph::from_edges(&sample_edges());
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.out_nbrs(10), &[20, 30]);
        assert_eq!(g.out_nbrs(30), &[10, 30]);
        assert_eq!(g.in_nbrs(30), &[10, 20, 30]);
        assert!(g.has_edge(30, 30));
        assert!(!g.has_edge(20, 10));
    }

    #[test]
    fn matches_dynamic_graph_on_same_edges() {
        let edges = sample_edges();
        let csr = CsrGraph::from_edges(&edges);
        let mut dynamic = DirectedGraph::new();
        for &(s, d) in &edges {
            dynamic.add_edge(s, d);
        }
        assert_eq!(csr.node_count(), dynamic.node_count());
        assert_eq!(csr.edge_count(), dynamic.edge_count());
        for id in dynamic.node_ids() {
            assert_eq!(csr.out_nbrs(id), dynamic.out_nbrs(id));
            assert_eq!(csr.in_nbrs(id), dynamic.in_nbrs(id));
        }
    }

    #[test]
    fn del_edge_shifts_correctly() {
        let mut g = CsrGraph::from_edges(&sample_edges());
        assert!(g.del_edge(10, 20));
        assert!(!g.del_edge(10, 20));
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_nbrs(10), &[30]);
        assert!(g.in_nbrs(20).is_empty());
        // Other adjacency untouched.
        assert_eq!(g.out_nbrs(30), &[10, 30]);
        assert_eq!(g.in_nbrs(30), &[10, 20, 30]);
    }

    #[test]
    fn empty_and_missing() {
        let g = CsrGraph::from_edges(&[]);
        assert_eq!(g.node_count(), 0);
        assert!(!g.has_node(1));
        assert!(g.out_nbrs(1).is_empty());
        let mut g = CsrGraph::from_edges(&[(1, 2)]);
        assert!(!g.del_edge(1, 99));
        assert!(!g.del_edge(99, 2));
    }

    #[test]
    fn slots_are_ascending_ids() {
        let g = CsrGraph::from_edges(&[(5, 1), (3, 5)]);
        let ids: Vec<_> = g.node_ids().collect();
        assert_eq!(ids, vec![1, 3, 5]);
        for (slot, id) in ids.iter().enumerate() {
            assert_eq!(g.slot_of(*id), Some(slot));
            assert_eq!(g.slot_id(slot), Some(*id));
        }
    }
}
