//! Directed graphs with `f64` edge weights.
//!
//! Graph-analytics workflows constantly produce weighted edges — "number
//! of answers accepted between two users", "transitions between pages" —
//! usually via a group-by on an edge table. [`WeightedDigraph`] stores
//! each node's out-weights in a vector parallel to its sorted adjacency
//! vector, so the unweighted traversal machinery carries over and weight
//! lookup is the same binary search as `has_edge`.

use crate::traits::DirectedTopology;
use crate::NodeId;
use ringo_concurrent::IntHashTable;

#[derive(Clone, Debug, Default)]
struct WNodeCell {
    id: NodeId,
    in_nbrs: Vec<NodeId>,
    out_nbrs: Vec<NodeId>,
    out_weights: Vec<f64>,
}

/// A dynamic directed graph with one `f64` weight per edge.
///
/// Mirrors [`crate::DirectedGraph`]; adding an existing edge *accumulates*
/// onto its weight (the natural semantics for count/strength weights)
/// rather than failing.
#[derive(Clone, Debug, Default)]
pub struct WeightedDigraph {
    index: IntHashTable<u32>,
    nodes: Vec<Option<WNodeCell>>,
    free: Vec<u32>,
    n_nodes: usize,
    n_edges: usize,
}

impl WeightedDigraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph pre-sized for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        Self {
            index: IntHashTable::with_capacity(nodes),
            nodes: Vec::with_capacity(nodes),
            ..Self::default()
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of distinct directed edges.
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// True when `id` is a node.
    pub fn has_node(&self, id: NodeId) -> bool {
        self.index.contains(id)
    }

    /// Weight of edge `src -> dst`, or `None` if absent.
    pub fn weight(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        let c = self.cell(src)?;
        let pos = c.out_nbrs.binary_search(&dst).ok()?;
        Some(c.out_weights[pos])
    }

    /// Adds node `id`. Returns `false` if it already existed.
    pub fn add_node(&mut self, id: NodeId) -> bool {
        if self.index.contains(id) {
            return false;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s as usize] = Some(WNodeCell {
                    id,
                    ..WNodeCell::default()
                });
                s
            }
            None => {
                self.nodes.push(Some(WNodeCell {
                    id,
                    ..WNodeCell::default()
                }));
                (self.nodes.len() - 1) as u32
            }
        };
        self.index.insert(id, slot);
        self.n_nodes += 1;
        true
    }

    /// Adds weight `w` on the edge `src -> dst`, creating nodes and the
    /// edge as needed. Returns the new accumulated weight.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, w: f64) -> f64 {
        self.add_node(src);
        self.add_node(dst);
        let mut fresh = false;
        let total = {
            let sc = self.cell_mut(src).expect("src ensured");
            match sc.out_nbrs.binary_search(&dst) {
                Ok(pos) => {
                    sc.out_weights[pos] += w;
                    sc.out_weights[pos]
                }
                Err(pos) => {
                    sc.out_nbrs.insert(pos, dst);
                    sc.out_weights.insert(pos, w);
                    fresh = true;
                    w
                }
            }
        };
        if fresh {
            let dc = self.cell_mut(dst).expect("dst ensured");
            let pos = dc
                .in_nbrs
                .binary_search(&src)
                .expect_err("in/out adjacency out of sync");
            dc.in_nbrs.insert(pos, src);
            self.n_edges += 1;
        }
        total
    }

    /// Removes the edge `src -> dst` entirely; returns its weight.
    pub fn del_edge(&mut self, src: NodeId, dst: NodeId) -> Option<f64> {
        let w = {
            let sc = self.cell_mut(src)?;
            let pos = sc.out_nbrs.binary_search(&dst).ok()?;
            sc.out_nbrs.remove(pos);
            sc.out_weights.remove(pos)
        };
        let dc = self.cell_mut(dst).expect("edge endpoints exist");
        let pos = dc.in_nbrs.binary_search(&src).expect("adjacency in sync");
        dc.in_nbrs.remove(pos);
        self.n_edges -= 1;
        Some(w)
    }

    /// Sorted out-neighbors and their weights.
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let c = self.cell(id);
        let (nbrs, ws): (&[NodeId], &[f64]) = match c {
            Some(c) => (&c.out_nbrs, &c.out_weights),
            None => (&[], &[]),
        };
        nbrs.iter().copied().zip(ws.iter().copied())
    }

    /// Total outgoing weight of `id` (0 if absent).
    pub fn out_strength(&self, id: NodeId) -> f64 {
        self.cell(id).map_or(0.0, |c| c.out_weights.iter().sum())
    }

    /// Iterates over node ids in slot order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().flatten().map(|c| c.id)
    }

    /// Iterates over `(src, dst, weight)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes.iter().flatten().flat_map(|c| {
            c.out_nbrs
                .iter()
                .zip(&c.out_weights)
                .map(move |(d, w)| (c.id, *d, *w))
        })
    }

    /// Drops weights, producing the plain directed graph.
    pub fn to_unweighted(&self) -> crate::DirectedGraph {
        let parts = self
            .nodes
            .iter()
            .flatten()
            .map(|c| (c.id, c.in_nbrs.clone(), c.out_nbrs.clone()))
            .collect();
        crate::DirectedGraph::from_parts(parts)
    }

    /// Approximate heap footprint in bytes.
    pub fn mem_size(&self) -> usize {
        let mut bytes = self.index.mem_size();
        bytes += self.nodes.capacity() * std::mem::size_of::<Option<WNodeCell>>();
        for c in self.nodes.iter().flatten() {
            bytes +=
                (c.in_nbrs.capacity() + c.out_nbrs.capacity()) * 8 + c.out_weights.capacity() * 8;
        }
        bytes
    }

    #[inline]
    fn cell(&self, id: NodeId) -> Option<&WNodeCell> {
        let slot = *self.index.get(id)?;
        self.nodes[slot as usize].as_ref()
    }

    #[inline]
    fn cell_mut(&mut self, id: NodeId) -> Option<&mut WNodeCell> {
        let slot = *self.index.get(id)?;
        self.nodes[slot as usize].as_mut()
    }
}

impl DirectedTopology for WeightedDigraph {
    fn n_slots(&self) -> usize {
        self.nodes.len()
    }

    fn slot_id(&self, slot: usize) -> Option<NodeId> {
        self.nodes[slot].as_ref().map(|c| c.id)
    }

    fn slot_of(&self, id: NodeId) -> Option<usize> {
        self.index.get(id).map(|s| *s as usize)
    }

    fn out_nbrs_of_slot(&self, slot: usize) -> &[NodeId] {
        self.nodes[slot].as_ref().map_or(&[], |c| &c.out_nbrs)
    }

    fn in_nbrs_of_slot(&self, slot: usize) -> &[NodeId] {
        self.nodes[slot].as_ref().map_or(&[], |c| &c.in_nbrs)
    }

    fn node_count(&self) -> usize {
        self.n_nodes
    }

    fn edge_count(&self) -> usize {
        self.n_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_accumulates_weight() {
        let mut g = WeightedDigraph::new();
        assert_eq!(g.add_edge(1, 2, 1.5), 1.5);
        assert_eq!(g.add_edge(1, 2, 2.0), 3.5);
        assert_eq!(g.edge_count(), 1, "same edge, accumulated");
        assert_eq!(g.weight(1, 2), Some(3.5));
        assert_eq!(g.weight(2, 1), None);
    }

    #[test]
    fn out_edges_and_strength() {
        let mut g = WeightedDigraph::new();
        g.add_edge(1, 3, 2.0);
        g.add_edge(1, 2, 1.0);
        let e: Vec<_> = g.out_edges(1).collect();
        assert_eq!(e, vec![(2, 1.0), (3, 2.0)], "sorted by neighbor id");
        assert_eq!(g.out_strength(1), 3.0);
        assert_eq!(g.out_strength(99), 0.0);
    }

    #[test]
    fn del_edge_returns_weight() {
        let mut g = WeightedDigraph::new();
        g.add_edge(1, 2, 4.0);
        assert_eq!(g.del_edge(1, 2), Some(4.0));
        assert_eq!(g.del_edge(1, 2), None);
        assert_eq!(g.edge_count(), 0);
        assert!(g.has_node(2));
    }

    #[test]
    fn topology_trait_and_unweighted_view() {
        let mut g = WeightedDigraph::new();
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 1, 1.0);
        let plain = g.to_unweighted();
        assert_eq!(plain.edge_count(), 3);
        assert!(plain.has_edge(3, 1));
        // The trait view serves the shared algorithms.
        use crate::traits::DirectedTopology;
        assert_eq!(DirectedTopology::node_count(&g), 3);
        let slot = g.slot_of(1).unwrap();
        assert_eq!(g.out_nbrs_of_slot(slot), &[2]);
    }

    #[test]
    fn edges_iterator_carries_weights() {
        let mut g = WeightedDigraph::new();
        g.add_edge(5, 6, 0.5);
        g.add_edge(6, 5, 1.5);
        let mut e: Vec<_> = g.edges().collect();
        e.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(e, vec![(5, 6, 0.5), (6, 5, 1.5)]);
    }
}
