//! Dynamic undirected graph: node hash table with one sorted neighbor
//! vector per node.

use crate::nbrs::{AdjacencyStats, CompactStats, NbrList};
use crate::NodeId;
use ringo_concurrent::IntHashTable;
use std::sync::Arc;

#[derive(Clone, Debug, Default)]
struct UNodeCell {
    id: NodeId,
    nbrs: NbrList,
}

/// A dynamic undirected graph (no multi-edges; self-loops allowed and
/// stored once).
///
/// Mirrors [`crate::DirectedGraph`] with a single sorted adjacency vector
/// per node. Each undirected edge `{a, b}` appears in both endpoints'
/// vectors (a self-loop appears once, in its own node's vector).
#[derive(Clone, Debug, Default)]
pub struct UndirectedGraph {
    index: IntHashTable<u32>,
    nodes: Vec<Option<UNodeCell>>,
    free: Vec<u32>,
    n_nodes: usize,
    n_edges: usize,
}

impl UndirectedGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph pre-sized for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        Self {
            index: IntHashTable::with_capacity(nodes),
            nodes: Vec::with_capacity(nodes),
            ..Self::default()
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of undirected edges (each counted once).
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n_nodes == 0
    }

    /// True when `id` is a node of the graph.
    pub fn has_node(&self, id: NodeId) -> bool {
        self.index.contains(id)
    }

    /// True when the undirected edge `{a, b}` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        match self.cell(a) {
            Some(c) => c.nbrs.binary_search(&b).is_ok(),
            None => false,
        }
    }

    /// Adds node `id`. Returns `false` if it already existed.
    pub fn add_node(&mut self, id: NodeId) -> bool {
        if self.index.contains(id) {
            return false;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s as usize] = Some(UNodeCell {
                    id,
                    nbrs: NbrList::default(),
                });
                s
            }
            None => {
                self.nodes.push(Some(UNodeCell {
                    id,
                    nbrs: NbrList::default(),
                }));
                (self.nodes.len() - 1) as u32
            }
        };
        self.index.insert(id, slot);
        self.n_nodes += 1;
        true
    }

    /// Adds the undirected edge `{a, b}`, creating missing endpoints.
    /// Returns `false` if the edge already existed.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        self.add_node(a);
        self.add_node(b);
        {
            let ca = self.cell_mut(a).expect("endpoint ensured");
            match ca.nbrs.binary_search(&b) {
                Ok(_) => return false,
                Err(pos) => ca.nbrs.to_mut().insert(pos, b),
            }
        }
        if a != b {
            let cb = self.cell_mut(b).expect("endpoint ensured");
            let pos = cb
                .nbrs
                .binary_search(&a)
                .expect_err("adjacency out of sync");
            cb.nbrs.to_mut().insert(pos, a);
        }
        self.n_edges += 1;
        true
    }

    /// Deletes the undirected edge `{a, b}`. Returns `false` if absent.
    pub fn del_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let removed = match self.cell_mut(a) {
            Some(ca) => match ca.nbrs.binary_search(&b) {
                Ok(pos) => {
                    ca.nbrs.to_mut().remove(pos);
                    true
                }
                Err(_) => false,
            },
            None => false,
        };
        if !removed {
            return false;
        }
        if a != b {
            let cb = self.cell_mut(b).expect("edge endpoints exist");
            let pos = cb.nbrs.binary_search(&a).expect("adjacency in sync");
            cb.nbrs.to_mut().remove(pos);
        }
        self.n_edges -= 1;
        true
    }

    /// Deletes node `id` and all incident edges. Returns `false` if absent.
    pub fn del_node(&mut self, id: NodeId) -> bool {
        let slot = match self.index.get(id) {
            Some(s) => *s,
            None => return false,
        };
        let cell = self.nodes[slot as usize]
            .take()
            .expect("indexed slot occupied");
        for &nbr in cell.nbrs.iter() {
            if nbr == id {
                continue;
            }
            let nc = self.cell_mut(nbr).expect("neighbor exists");
            let pos = nc.nbrs.binary_search(&id).expect("adjacency in sync");
            nc.nbrs.to_mut().remove(pos);
        }
        self.n_edges -= cell.nbrs.len();
        self.index.remove(id);
        self.free.push(slot);
        self.n_nodes -= 1;
        true
    }

    /// Degree of `id` (self-loop counts once), or `None` if absent.
    pub fn degree(&self, id: NodeId) -> Option<usize> {
        self.cell(id).map(|c| c.nbrs.len())
    }

    /// Sorted neighbors of `id` (empty slice if absent).
    pub fn nbrs(&self, id: NodeId) -> &[NodeId] {
        self.cell(id).map_or(&[], |c| &c.nbrs)
    }

    /// Iterates over node ids in slot order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().flatten().map(|c| c.id)
    }

    /// Iterates over undirected edges once each, as `(a, b)` with `a <= b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.iter().flatten().flat_map(|c| {
            c.nbrs
                .iter()
                .filter(move |n| **n >= c.id)
                .map(move |n| (c.id, *n))
        })
    }

    /// Upper bound (exclusive) on slot handles; see [`Self::slot_id`].
    pub fn n_slots(&self) -> usize {
        self.nodes.len()
    }

    /// External id in `slot`, or `None` for vacant slots.
    pub fn slot_id(&self, slot: usize) -> Option<NodeId> {
        self.nodes[slot].as_ref().map(|c| c.id)
    }

    /// Slot holding node `id`.
    pub fn slot_of(&self, id: NodeId) -> Option<usize> {
        self.index.get(id).map(|s| *s as usize)
    }

    /// Sorted neighbors of the node in `slot` (empty for vacant slots).
    pub fn nbrs_of_slot(&self, slot: usize) -> &[NodeId] {
        self.nodes[slot].as_ref().map_or(&[], |c| &c.nbrs)
    }

    /// Approximate heap footprint in bytes (see
    /// [`crate::DirectedGraph::mem_size`]).
    pub fn mem_size(&self) -> usize {
        let mut bytes = self.index.mem_size();
        bytes += self.nodes.capacity() * std::mem::size_of::<Option<UNodeCell>>();
        bytes += self.free.capacity() * std::mem::size_of::<u32>();
        for c in self.nodes.iter().flatten() {
            bytes += c.nbrs.heap_bytes();
        }
        bytes
    }

    /// Adjacency-storage accounting (see
    /// [`crate::DirectedGraph::adjacency_stats`]).
    pub fn adjacency_stats(&self) -> AdjacencyStats {
        let mut stats = AdjacencyStats::default();
        let mut slabs = std::collections::HashMap::new();
        for c in self.nodes.iter().flatten() {
            c.nbrs.accumulate(&mut stats, &mut slabs);
        }
        stats.finish(&slabs)
    }

    /// Rewrites every adjacency list into one fresh, exactly-sized
    /// shared slab (see [`crate::DirectedGraph::compact`]).
    pub fn compact(&mut self) -> CompactStats {
        let before = self.adjacency_stats();
        let mut lists: Vec<&mut NbrList> = self
            .nodes
            .iter_mut()
            .flatten()
            .map(|c| &mut c.nbrs)
            .collect();
        NbrList::compact(&mut lists);
        CompactStats {
            before,
            after: self.adjacency_stats(),
        }
    }

    /// Builds a graph from `(id, sorted deduplicated neighbors)` parts that
    /// are mutually consistent. Bulk-loading counterpart of
    /// [`crate::DirectedGraph::from_parts`].
    pub fn from_parts(parts: Vec<(NodeId, Vec<NodeId>)>) -> Self {
        let mut g = Self::with_capacity(parts.len());
        let mut edge_ends = 0usize;
        let mut self_loops = 0usize;
        for (id, nbrs) in parts {
            debug_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            edge_ends += nbrs.len();
            self_loops += usize::from(nbrs.binary_search(&id).is_ok());
            let slot = g.nodes.len() as u32;
            g.nodes.push(Some(UNodeCell {
                id,
                nbrs: nbrs.into(),
            }));
            let prev = g.index.insert(id, slot);
            assert!(prev.is_none(), "duplicate node id {id} in parts");
        }
        g.n_nodes = g.nodes.len();
        g.n_edges = (edge_ends - self_loops) / 2 + self_loops;
        g
    }

    /// Bulk-builds a graph from slab-form adjacency: node `k` (id
    /// `ids[k]`, strictly ascending) owns `slab[off[k]..off[k+1]]`,
    /// sorted and deduplicated, with each edge `{a, b}` present in both
    /// endpoints' runs (self-loops once). Undirected counterpart of
    /// [`crate::DirectedGraph::from_sorted_parts`]: one hash-table
    /// reservation, and each adjacency list installed as a
    /// copy-on-write view into the shared slab (no per-node copy).
    ///
    /// # Panics
    /// Panics on duplicate ids; debug builds also check sortedness.
    pub fn from_sorted_parts(ids: Vec<NodeId>, off: &[usize], slab: &[NodeId]) -> Self {
        let n = ids.len();
        assert_eq!(
            off.len(),
            n + 1,
            "off must have one bound per node plus one"
        );
        debug_assert_eq!(*off.last().unwrap_or(&0), slab.len());
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must ascend");
        let mut g = Self::with_capacity(n);
        let mut edge_ends = 0usize;
        let mut self_loops = 0usize;
        let buf: Arc<[NodeId]> = Arc::from(slab);
        for (k, id) in ids.into_iter().enumerate() {
            let nbrs = &slab[off[k]..off[k + 1]];
            debug_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            edge_ends += nbrs.len();
            self_loops += usize::from(nbrs.binary_search(&id).is_ok());
            g.nodes.push(Some(UNodeCell {
                id,
                nbrs: NbrList::slab(&buf, off[k], off[k + 1]),
            }));
            let prev = g.index.insert(id, k as u32);
            assert!(prev.is_none(), "duplicate node id {id} in sorted parts");
        }
        g.n_nodes = n;
        g.n_edges = (edge_ends - self_loops) / 2 + self_loops;
        g
    }

    #[inline]
    fn cell(&self, id: NodeId) -> Option<&UNodeCell> {
        let slot = *self.index.get(id)?;
        self.nodes[slot as usize].as_ref()
    }

    #[inline]
    fn cell_mut(&mut self, id: NodeId) -> Option<&mut UNodeCell> {
        let slot = *self.index.get(id)?;
        self.nodes[slot as usize].as_mut()
    }
}

/// Undirected adjacency viewed as a symmetric directed topology: out- and
/// in-neighbors are the same sorted list, so every `DirectedTopology`
/// algorithm (BFS, the frontier engine, reachability) runs unchanged with
/// `Direction::Out`. `edge_count` reports directed arcs — `2m` minus one
/// per self-loop — keeping degree sums and edge counts consistent.
impl crate::DirectedTopology for UndirectedGraph {
    fn n_slots(&self) -> usize {
        self.nodes.len()
    }

    fn slot_id(&self, slot: usize) -> Option<NodeId> {
        UndirectedGraph::slot_id(self, slot)
    }

    fn slot_of(&self, id: NodeId) -> Option<usize> {
        UndirectedGraph::slot_of(self, id)
    }

    fn out_nbrs_of_slot(&self, slot: usize) -> &[NodeId] {
        self.nbrs_of_slot(slot)
    }

    fn in_nbrs_of_slot(&self, slot: usize) -> &[NodeId] {
        self.nbrs_of_slot(slot)
    }

    fn node_count(&self) -> usize {
        self.n_nodes
    }

    fn edge_count(&self) -> usize {
        let self_loops: usize = self
            .nodes
            .iter()
            .flatten()
            .filter(|c| c.nbrs.binary_search(&c.id).is_ok())
            .count();
        2 * self.n_edges - self_loops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_is_symmetric() {
        let mut g = UndirectedGraph::new();
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(2, 1), "same undirected edge");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert_eq!(g.nbrs(1), &[2]);
        assert_eq!(g.nbrs(2), &[1]);
    }

    #[test]
    fn self_loop_stored_once() {
        let mut g = UndirectedGraph::new();
        assert!(g.add_edge(3, 3));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(3), Some(1));
        assert!(g.del_edge(3, 3));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn del_edge_both_directions() {
        let mut g = UndirectedGraph::new();
        g.add_edge(1, 2);
        assert!(g.del_edge(2, 1), "delete by reversed endpoints");
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn del_node_updates_neighbors_and_count() {
        let mut g = UndirectedGraph::new();
        g.add_edge(1, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(1, 1);
        assert!(g.del_node(1));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.nbrs(2), &[3]);
    }

    #[test]
    fn edges_iterated_once_each() {
        let mut g = UndirectedGraph::new();
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 3);
        let mut e: Vec<_> = g.edges().collect();
        e.sort_unstable();
        assert_eq!(e, vec![(1, 2), (2, 3), (3, 3)]);
    }

    #[test]
    fn from_parts_counts_edges_with_self_loops() {
        let parts = vec![(1, vec![1, 2]), (2, vec![1])];
        let g = UndirectedGraph::from_parts(parts);
        assert_eq!(g.edge_count(), 2, "loop 1-1 plus edge 1-2");
        assert!(g.has_edge(1, 1));
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn from_sorted_parts_matches_from_parts() {
        // Same topology as `from_parts_counts_edges_with_self_loops`,
        // in slab form: node 1 -> [1, 2], node 2 -> [1].
        let g = UndirectedGraph::from_sorted_parts(vec![1, 2], &[0, 2, 3], &[1, 2, 1]);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2, "loop 1-1 plus edge 1-2");
        assert!(g.has_edge(1, 1));
        assert!(g.has_edge(2, 1));
        assert_eq!(g.nbrs(1), &[1, 2]);
        let empty = UndirectedGraph::from_sorted_parts(Vec::new(), &[0], &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn degree_and_missing_nodes() {
        let mut g = UndirectedGraph::new();
        g.add_edge(1, 2);
        assert_eq!(g.degree(1), Some(1));
        assert_eq!(g.degree(99), None);
        assert!(g.nbrs(99).is_empty());
        assert!(!g.del_edge(5, 6));
        assert!(!g.del_node(99));
    }

    #[test]
    fn compact_preserves_adjacency_and_reclaims() {
        // Path 0-1-2-...-19 in slab form: node k neighbors {k-1, k+1}.
        let n = 20i64;
        let ids: Vec<NodeId> = (0..n).collect();
        let mut off = vec![0usize];
        let mut slab = Vec::new();
        for k in 0..n {
            if k > 0 {
                slab.push(k - 1);
            }
            if k + 1 < n {
                slab.push(k + 1);
            }
            off.push(slab.len());
        }
        let mut g = UndirectedGraph::from_sorted_parts(ids, &off, &slab);
        for k in 0..8 {
            g.del_edge(k, k + 1);
        }
        assert!(g.adjacency_stats().dead_slab_bytes() > 0);
        let want: Vec<(NodeId, Vec<NodeId>)> =
            g.node_ids().map(|id| (id, g.nbrs(id).to_vec())).collect();
        let stats = g.compact();
        assert_eq!(stats.after.owned_lists, 0);
        assert_eq!(stats.after.dead_slab_bytes(), 0);
        assert!(stats.reclaimed_bytes() > 0);
        for (id, nbrs) in want {
            assert_eq!(g.nbrs(id), &nbrs[..]);
        }
        assert!(g.add_edge(0, 19));
    }
}
