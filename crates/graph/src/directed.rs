//! The paper's dynamic directed graph: a node hash table with sorted
//! in/out adjacency vectors per node.

use crate::nbrs::{AdjacencyStats, CompactStats, NbrList};
use crate::traits::DirectedTopology;
use crate::NodeId;
use ringo_concurrent::IntHashTable;
use std::sync::Arc;

/// Per-node storage: the external id plus sorted neighbor lists
/// (copy-on-write [`NbrList`]s, so bulk-loaded nodes can share one
/// adjacency slab until first mutated).
#[derive(Clone, Debug, Default)]
pub(crate) struct NodeCell {
    pub(crate) id: NodeId,
    pub(crate) in_nbrs: NbrList,
    pub(crate) out_nbrs: NbrList,
}

/// A dynamic directed graph (multi-edges disallowed, self-loops allowed).
///
/// Nodes live in a slot vector addressed through an open-addressing hash
/// index (id → slot). Each node keeps its in-neighbors and out-neighbors in
/// sorted vectors, so:
///
/// * `has_edge` is `O(log deg)`,
/// * `add_edge` / `del_edge` are `O(deg)` (vector insert/remove at a binary-
///   searched position) — the paper's headline contrast with CSR's `O(E)`,
/// * neighbor iteration is a contiguous scan.
///
/// ```
/// use ringo_graph::DirectedGraph;
///
/// let mut g = DirectedGraph::new();
/// g.add_edge(10, 20);
/// g.add_edge(10, 30);
/// g.add_edge(30, 10);
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.out_nbrs(10), &[20, 30]); // always sorted
/// assert_eq!(g.in_nbrs(10), &[30]);
///
/// g.del_edge(10, 20); // O(degree), not O(E)
/// assert!(!g.has_edge(10, 20));
/// assert!(g.in_nbrs(20).is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct DirectedGraph {
    index: IntHashTable<u32>,
    nodes: Vec<Option<NodeCell>>,
    free: Vec<u32>,
    n_nodes: usize,
    n_edges: usize,
}

impl DirectedGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph pre-sized for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        Self {
            index: IntHashTable::with_capacity(nodes),
            nodes: Vec::with_capacity(nodes),
            free: Vec::new(),
            n_nodes: 0,
            n_edges: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n_nodes == 0
    }

    /// True when `id` is a node of the graph.
    pub fn has_node(&self, id: NodeId) -> bool {
        self.index.contains(id)
    }

    /// True when the edge `src -> dst` exists.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        match self.cell(src) {
            Some(c) => c.out_nbrs.binary_search(&dst).is_ok(),
            None => false,
        }
    }

    /// Adds node `id`. Returns `false` if it already existed.
    pub fn add_node(&mut self, id: NodeId) -> bool {
        if self.index.contains(id) {
            return false;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s as usize] = Some(NodeCell {
                    id,
                    ..NodeCell::default()
                });
                s
            }
            None => {
                self.nodes.push(Some(NodeCell {
                    id,
                    ..NodeCell::default()
                }));
                (self.nodes.len() - 1) as u32
            }
        };
        self.index.insert(id, slot);
        self.n_nodes += 1;
        true
    }

    /// Adds the edge `src -> dst`, creating missing endpoints. Returns
    /// `false` if the edge already existed.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        self.add_node(src);
        self.add_node(dst);
        {
            let sc = self.cell_mut(src).expect("src just ensured");
            match sc.out_nbrs.binary_search(&dst) {
                Ok(_) => return false,
                Err(pos) => sc.out_nbrs.to_mut().insert(pos, dst),
            }
        }
        {
            let dc = self.cell_mut(dst).expect("dst just ensured");
            let pos = dc
                .in_nbrs
                .binary_search(&src)
                .expect_err("in/out adjacency out of sync");
            dc.in_nbrs.to_mut().insert(pos, src);
        }
        self.n_edges += 1;
        true
    }

    /// Deletes the edge `src -> dst`. Returns `false` if it did not exist.
    /// Cost is `O(out_deg(src) + in_deg(dst))`, not `O(E)`.
    pub fn del_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        let removed = match self.cell_mut(src) {
            Some(sc) => match sc.out_nbrs.binary_search(&dst) {
                Ok(pos) => {
                    sc.out_nbrs.to_mut().remove(pos);
                    true
                }
                Err(_) => false,
            },
            None => false,
        };
        if !removed {
            return false;
        }
        let dc = self.cell_mut(dst).expect("edge endpoints must exist");
        let pos = dc
            .in_nbrs
            .binary_search(&src)
            .expect("in/out adjacency out of sync");
        dc.in_nbrs.to_mut().remove(pos);
        self.n_edges -= 1;
        true
    }

    /// Deletes node `id` and all incident edges. Returns `false` if absent.
    pub fn del_node(&mut self, id: NodeId) -> bool {
        let slot = match self.index.get(id) {
            Some(s) => *s,
            None => return false,
        };
        let cell = self.nodes[slot as usize]
            .take()
            .expect("indexed slot occupied");
        // Remove `id` from the in-lists of its out-neighbors and from the
        // out-lists of its in-neighbors.
        for &nbr in cell.out_nbrs.iter() {
            if nbr == id {
                continue; // self-loop, cell already removed
            }
            let nc = self.cell_mut(nbr).expect("neighbor must exist");
            let pos = nc.in_nbrs.binary_search(&id).expect("adjacency in sync");
            nc.in_nbrs.to_mut().remove(pos);
        }
        for &nbr in cell.in_nbrs.iter() {
            if nbr == id {
                continue;
            }
            let nc = self.cell_mut(nbr).expect("neighbor must exist");
            let pos = nc.out_nbrs.binary_search(&id).expect("adjacency in sync");
            nc.out_nbrs.to_mut().remove(pos);
        }
        let self_loop = cell.out_nbrs.binary_search(&id).is_ok();
        self.n_edges -= cell.out_nbrs.len() + cell.in_nbrs.len() - usize::from(self_loop);
        self.index.remove(id);
        self.free.push(slot);
        self.n_nodes -= 1;
        true
    }

    /// Out-degree of `id`, or `None` if the node is absent.
    pub fn out_degree(&self, id: NodeId) -> Option<usize> {
        self.cell(id).map(|c| c.out_nbrs.len())
    }

    /// In-degree of `id`, or `None` if the node is absent.
    pub fn in_degree(&self, id: NodeId) -> Option<usize> {
        self.cell(id).map(|c| c.in_nbrs.len())
    }

    /// Sorted out-neighbors of `id` (empty slice if absent).
    pub fn out_nbrs(&self, id: NodeId) -> &[NodeId] {
        self.cell(id).map_or(&[], |c| &c.out_nbrs)
    }

    /// Sorted in-neighbors of `id` (empty slice if absent).
    pub fn in_nbrs(&self, id: NodeId) -> &[NodeId] {
        self.cell(id).map_or(&[], |c| &c.in_nbrs)
    }

    /// Iterates over node ids in slot order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().flatten().map(|c| c.id)
    }

    /// Iterates over all directed edges as `(src, dst)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes
            .iter()
            .flatten()
            .flat_map(|c| c.out_nbrs.iter().map(move |d| (c.id, *d)))
    }

    /// Approximate heap footprint in bytes: hash index + slot vector +
    /// adjacency vector capacities. This is what the paper's Table 2
    /// reports as "In-memory Graph Size".
    pub fn mem_size(&self) -> usize {
        let mut bytes = self.index.mem_size();
        bytes += self.nodes.capacity() * std::mem::size_of::<Option<NodeCell>>();
        bytes += self.free.capacity() * std::mem::size_of::<u32>();
        for c in self.nodes.iter().flatten() {
            bytes += c.in_nbrs.heap_bytes() + c.out_nbrs.heap_bytes();
        }
        bytes
    }

    /// Builds a graph from per-node parts `(id, in_nbrs, out_nbrs)` whose
    /// adjacency vectors are **already sorted and deduplicated** and
    /// mutually consistent. Used by the bulk "sort-first" converter, which
    /// produces the parts in parallel.
    ///
    /// # Panics
    /// In debug builds, panics if a vector is unsorted.
    pub fn from_parts(parts: Vec<(NodeId, Vec<NodeId>, Vec<NodeId>)>) -> Self {
        let mut g = Self::with_capacity(parts.len());
        let mut n_edges = 0usize;
        for (id, in_nbrs, out_nbrs) in parts {
            debug_assert!(in_nbrs.windows(2).all(|w| w[0] < w[1]));
            debug_assert!(out_nbrs.windows(2).all(|w| w[0] < w[1]));
            n_edges += out_nbrs.len();
            let slot = g.nodes.len() as u32;
            g.nodes.push(Some(NodeCell {
                id,
                in_nbrs: in_nbrs.into(),
                out_nbrs: out_nbrs.into(),
            }));
            let prev = g.index.insert(id, slot);
            assert!(prev.is_none(), "duplicate node id {id} in parts");
        }
        g.n_nodes = g.nodes.len();
        g.n_edges = n_edges;
        g
    }

    /// Bulk-builds a graph from slab-form adjacency produced by the
    /// conversion fill phase: node `k` (with id `ids[k]`, strictly
    /// ascending) owns `in_slab[in_off[k]..in_off[k+1]]` and
    /// `out_slab[out_off[k]..out_off[k+1]]`, each **sorted and
    /// deduplicated**, and the two orientations must be mutually
    /// consistent.
    ///
    /// Unlike row-at-a-time construction this reserves the node hash
    /// table once (no grow/rehash cycles: `with_capacity` sizes it below
    /// the load-factor limit) and installs each adjacency list as a
    /// copy-on-write **view into the shared slab** — no per-node
    /// allocation or copy at all; a node's list is only materialized as
    /// a private `Vec` if that node is later mutated.
    ///
    /// # Panics
    /// Panics on duplicate ids; debug builds also check that offsets are
    /// monotone, slabs are fully covered, and runs are sorted.
    pub fn from_sorted_parts(
        ids: Vec<NodeId>,
        in_off: &[usize],
        in_slab: &[NodeId],
        out_off: &[usize],
        out_slab: &[NodeId],
    ) -> Self {
        let n = ids.len();
        assert_eq!(
            in_off.len(),
            n + 1,
            "in_off must have one bound per node plus one"
        );
        assert_eq!(
            out_off.len(),
            n + 1,
            "out_off must have one bound per node plus one"
        );
        debug_assert_eq!(*in_off.last().unwrap_or(&0), in_slab.len());
        debug_assert_eq!(*out_off.last().unwrap_or(&0), out_slab.len());
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must ascend");
        let mut g = Self::with_capacity(n);
        let n_edges = out_slab.len();
        let in_buf: Arc<[NodeId]> = Arc::from(in_slab);
        let out_buf: Arc<[NodeId]> = Arc::from(out_slab);
        for (k, id) in ids.into_iter().enumerate() {
            debug_assert!(in_slab[in_off[k]..in_off[k + 1]]
                .windows(2)
                .all(|w| w[0] < w[1]));
            debug_assert!(out_slab[out_off[k]..out_off[k + 1]]
                .windows(2)
                .all(|w| w[0] < w[1]));
            g.nodes.push(Some(NodeCell {
                id,
                in_nbrs: NbrList::slab(&in_buf, in_off[k], in_off[k + 1]),
                out_nbrs: NbrList::slab(&out_buf, out_off[k], out_off[k + 1]),
            }));
            let prev = g.index.insert(id, k as u32);
            assert!(prev.is_none(), "duplicate node id {id} in sorted parts");
        }
        g.n_nodes = n;
        g.n_edges = n_edges;
        g
    }

    /// Adjacency-storage accounting: slab vs owned lists, live vs dead
    /// slab bytes. [`AdjacencyStats::dead_slab_bytes`] is the retention
    /// that mutations leak and [`DirectedGraph::compact`] reclaims.
    pub fn adjacency_stats(&self) -> AdjacencyStats {
        let mut stats = AdjacencyStats::default();
        let mut slabs = std::collections::HashMap::new();
        for c in self.nodes.iter().flatten() {
            c.in_nbrs.accumulate(&mut stats, &mut slabs);
            c.out_nbrs.accumulate(&mut stats, &mut slabs);
        }
        stats.finish(&slabs)
    }

    /// Rewrites every adjacency list into two fresh, exactly-sized
    /// shared slabs (one per direction), releasing dead slab ranges left
    /// behind by mutations and collapsing per-node owned vectors back
    /// into bulk storage. Topology is unchanged; the graph stays fully
    /// dynamic afterwards.
    ///
    /// Rewriting the adjacency into a new immutable slab is exactly what
    /// a copy-on-write version publish does, so the core crate's
    /// `Catalog` runs this as one: clone (cheap — slab views share),
    /// compact the clone, publish it as the next version, and let the
    /// epoch machinery retire the old slabs once unpinned.
    pub fn compact(&mut self) -> CompactStats {
        let before = self.adjacency_stats();
        let mut ins: Vec<&mut NbrList> = self
            .nodes
            .iter_mut()
            .flatten()
            .map(|c| &mut c.in_nbrs)
            .collect();
        NbrList::compact(&mut ins);
        let mut outs: Vec<&mut NbrList> = self
            .nodes
            .iter_mut()
            .flatten()
            .map(|c| &mut c.out_nbrs)
            .collect();
        NbrList::compact(&mut outs);
        CompactStats {
            before,
            after: self.adjacency_stats(),
        }
    }

    /// Collapses edge direction, returning the undirected version of this
    /// graph (self-loops preserved, reciprocal edges merged).
    pub fn to_undirected(&self) -> crate::UndirectedGraph {
        let mut parts = Vec::with_capacity(self.nodes.len());
        for c in self.nodes.iter().flatten() {
            let mut nbrs = Vec::with_capacity(c.in_nbrs.len() + c.out_nbrs.len());
            // Merge two sorted vectors, deduplicating.
            let (a, b) = (&c.in_nbrs, &c.out_nbrs);
            let (mut i, mut j) = (0, 0);
            while i < a.len() || j < b.len() {
                let v = match (a.get(i), b.get(j)) {
                    (Some(x), Some(y)) if x == y => {
                        i += 1;
                        j += 1;
                        *x
                    }
                    (Some(x), Some(y)) if x < y => {
                        i += 1;
                        *x
                    }
                    (Some(_), Some(y)) => {
                        j += 1;
                        *y
                    }
                    (Some(x), None) => {
                        i += 1;
                        *x
                    }
                    (None, Some(y)) => {
                        j += 1;
                        *y
                    }
                    (None, None) => unreachable!(),
                };
                nbrs.push(v);
            }
            parts.push((c.id, nbrs));
        }
        crate::UndirectedGraph::from_parts(parts)
    }

    #[inline]
    fn cell(&self, id: NodeId) -> Option<&NodeCell> {
        let slot = *self.index.get(id)?;
        self.nodes[slot as usize].as_ref()
    }

    #[inline]
    fn cell_mut(&mut self, id: NodeId) -> Option<&mut NodeCell> {
        let slot = *self.index.get(id)?;
        self.nodes[slot as usize].as_mut()
    }
}

impl DirectedTopology for DirectedGraph {
    fn n_slots(&self) -> usize {
        self.nodes.len()
    }

    fn slot_id(&self, slot: usize) -> Option<NodeId> {
        self.nodes[slot].as_ref().map(|c| c.id)
    }

    fn slot_of(&self, id: NodeId) -> Option<usize> {
        let slot = *self.index.get(id)?;
        Some(slot as usize)
    }

    fn out_nbrs_of_slot(&self, slot: usize) -> &[NodeId] {
        self.nodes[slot].as_ref().map_or(&[], |c| &c.out_nbrs)
    }

    fn in_nbrs_of_slot(&self, slot: usize) -> &[NodeId] {
        self.nodes[slot].as_ref().map_or(&[], |c| &c.in_nbrs)
    }

    fn node_count(&self) -> usize {
        self.n_nodes
    }

    fn edge_count(&self) -> usize {
        self.n_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = DirectedGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert!(!g.has_node(1));
        assert!(!g.has_edge(1, 2));
        assert!(g.out_nbrs(1).is_empty());
    }

    #[test]
    fn add_edge_creates_endpoints() {
        let mut g = DirectedGraph::new();
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(1, 2), "duplicate edge rejected");
        assert!(g.add_edge(2, 1), "reverse edge is distinct");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert_eq!(g.out_nbrs(1), &[2]);
        assert_eq!(g.in_nbrs(1), &[2]);
    }

    #[test]
    fn adjacency_stays_sorted() {
        let mut g = DirectedGraph::new();
        for dst in [5, 1, 9, 3, 7] {
            g.add_edge(0, dst);
        }
        assert_eq!(g.out_nbrs(0), &[1, 3, 5, 7, 9]);
        assert_eq!(g.out_degree(0), Some(5));
        assert_eq!(g.in_degree(0), Some(0));
    }

    #[test]
    fn del_edge_maintains_both_sides() {
        let mut g = DirectedGraph::new();
        g.add_edge(1, 2);
        g.add_edge(1, 3);
        assert!(g.del_edge(1, 2));
        assert!(!g.del_edge(1, 2));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(1, 2));
        assert!(g.in_nbrs(2).is_empty());
        assert_eq!(g.out_nbrs(1), &[3]);
    }

    #[test]
    fn self_loop_roundtrip() {
        let mut g = DirectedGraph::new();
        assert!(g.add_edge(4, 4));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_nbrs(4), &[4]);
        assert_eq!(g.in_nbrs(4), &[4]);
        assert!(g.del_edge(4, 4));
        assert_eq!(g.edge_count(), 0);
        assert!(g.has_node(4));
    }

    #[test]
    fn del_node_removes_incident_edges() {
        let mut g = DirectedGraph::new();
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 1);
        g.add_edge(2, 2);
        assert!(g.del_node(2));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(3, 1));
        assert!(g.out_nbrs(1).is_empty());
        assert!(g.in_nbrs(3).is_empty());
        assert!(!g.del_node(2));
    }

    #[test]
    fn slot_reuse_after_del_node() {
        let mut g = DirectedGraph::new();
        g.add_node(1);
        g.add_node(2);
        g.del_node(1);
        g.add_node(3);
        assert_eq!(g.n_slots(), 2, "freed slot is recycled");
        let ids: Vec<_> = g.node_ids().collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&2) && ids.contains(&3));
    }

    #[test]
    fn edges_iterator_covers_all() {
        let mut g = DirectedGraph::new();
        let edges = [(1, 2), (1, 3), (2, 3), (3, 1)];
        for (s, d) in edges {
            g.add_edge(s, d);
        }
        let mut got: Vec<_> = g.edges().collect();
        got.sort_unstable();
        assert_eq!(got, edges.to_vec());
    }

    #[test]
    fn from_parts_matches_incremental() {
        let parts = vec![
            (1, vec![3], vec![2, 3]),
            (2, vec![1], vec![3]),
            (3, vec![1, 2], vec![1]),
        ];
        let g = DirectedGraph::from_parts(parts);
        let mut inc = DirectedGraph::new();
        for (s, d) in [(1, 2), (1, 3), (2, 3), (3, 1)] {
            inc.add_edge(s, d);
        }
        assert_eq!(g.node_count(), inc.node_count());
        assert_eq!(g.edge_count(), inc.edge_count());
        for id in [1i64, 2, 3] {
            assert_eq!(g.out_nbrs(id), inc.out_nbrs(id));
            assert_eq!(g.in_nbrs(id), inc.in_nbrs(id));
        }
    }

    #[test]
    fn from_sorted_parts_matches_incremental() {
        // Edges (1,2) (1,3) (2,3) (3,1) in slab form.
        let ids = vec![1i64, 2, 3];
        let out_off = [0usize, 2, 3, 4];
        let out_slab = [2i64, 3, 3, 1];
        let in_off = [0usize, 1, 2, 4];
        let in_slab = [3i64, 1, 1, 2];
        let g = DirectedGraph::from_sorted_parts(ids, &in_off, &in_slab, &out_off, &out_slab);
        let mut inc = DirectedGraph::new();
        for (s, d) in [(1, 2), (1, 3), (2, 3), (3, 1)] {
            inc.add_edge(s, d);
        }
        assert_eq!(g.node_count(), inc.node_count());
        assert_eq!(g.edge_count(), inc.edge_count());
        for id in [1i64, 2, 3] {
            assert_eq!(g.out_nbrs(id), inc.out_nbrs(id));
            assert_eq!(g.in_nbrs(id), inc.in_nbrs(id));
        }
        // The bulk graph stays fully dynamic afterwards.
        let mut g = g;
        assert!(g.add_edge(2, 1));
        assert!(g.del_edge(1, 3));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn from_sorted_parts_empty() {
        let g = DirectedGraph::from_sorted_parts(Vec::new(), &[0], &[], &[0], &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn to_undirected_merges_reciprocal_edges() {
        let mut g = DirectedGraph::new();
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(2, 3);
        g.add_edge(5, 5);
        let u = g.to_undirected();
        assert_eq!(u.node_count(), 4);
        assert_eq!(u.edge_count(), 3, "1-2 merged, 2-3, 5-5");
        assert_eq!(u.nbrs(2), &[1, 3]);
        assert_eq!(u.nbrs(5), &[5]);
    }

    #[test]
    fn mem_size_grows_with_edges() {
        let mut g = DirectedGraph::new();
        let empty = g.mem_size();
        for i in 0..1000 {
            g.add_edge(i, i + 1);
        }
        assert!(g.mem_size() > empty + 1000 * 16 / 2);
    }

    #[test]
    fn negative_and_large_ids() {
        let mut g = DirectedGraph::new();
        g.add_edge(-10, i64::MAX);
        assert!(g.has_edge(-10, i64::MAX));
        assert_eq!(g.out_nbrs(-10), &[i64::MAX]);
    }

    /// A bulk-loaded chain graph with ids 0..n (so every endpoint is a
    /// distinct node and the slab layout is easy to reason about).
    fn chain_graph(n: usize) -> DirectedGraph {
        let ids: Vec<NodeId> = (0..n as NodeId).collect();
        let mut out_off = vec![0usize];
        let mut out_slab = Vec::new();
        let mut in_off = vec![0usize];
        let mut in_slab = Vec::new();
        for k in 0..n {
            if k + 1 < n {
                out_slab.push((k + 1) as NodeId);
            }
            out_off.push(out_slab.len());
            if k > 0 {
                in_slab.push((k - 1) as NodeId);
            }
            in_off.push(in_slab.len());
        }
        DirectedGraph::from_sorted_parts(ids, &in_off, &in_slab, &out_off, &out_slab)
    }

    #[test]
    fn compact_reclaims_dead_slab_ranges() {
        let mut g = chain_graph(100);
        let fresh = g.adjacency_stats();
        assert_eq!(fresh.owned_lists, 0, "bulk load is all views");
        assert_eq!(fresh.dead_slab_bytes(), 0);
        // Mutations materialize some lists; their old ranges go dead but
        // the slab stays fully retained.
        for id in 0..40 {
            g.del_edge(id, id + 1);
        }
        let dirty = g.adjacency_stats();
        assert!(dirty.owned_lists > 0);
        assert!(dirty.dead_slab_bytes() > 0, "mutations leak dead ranges");
        let want: Vec<(NodeId, Vec<NodeId>, Vec<NodeId>)> = g
            .node_ids()
            .map(|id| (id, g.in_nbrs(id).to_vec(), g.out_nbrs(id).to_vec()))
            .collect();
        let stats = g.compact();
        assert_eq!(stats.after.owned_lists, 0, "everything rebound as views");
        assert_eq!(stats.after.dead_slab_bytes(), 0);
        assert!(stats.reclaimed_bytes() > 0);
        assert!(stats.after.footprint_bytes() < stats.before.footprint_bytes());
        for (id, ins, outs) in want {
            assert_eq!(g.in_nbrs(id), &ins[..], "in-adjacency preserved");
            assert_eq!(g.out_nbrs(id), &outs[..], "out-adjacency preserved");
        }
        // Still fully dynamic afterwards.
        assert!(g.add_edge(0, 99));
        assert!(g.del_edge(50, 51));
    }

    #[test]
    fn compact_is_idempotent_and_handles_empty() {
        let mut empty = DirectedGraph::new();
        let stats = empty.compact();
        assert_eq!(stats.reclaimed_bytes(), 0);
        let mut g = chain_graph(10);
        g.del_edge(3, 4);
        g.compact();
        let again = g.compact();
        assert_eq!(
            again.reclaimed_bytes(),
            0,
            "second compact finds nothing to reclaim"
        );
        assert_eq!(g.edge_count(), 8);
    }
}
