//! Graph persistence: SNAP-style text edge lists and a compact binary
//! format.
//!
//! The paper's workflow starts from edge lists on disk (LiveJournal and
//! Twitter2010 ship as text files; Table 2 reports their sizes). The text
//! format here is exactly SNAP's: optional `#` comment lines, then one
//! `src<TAB>dst` pair per line. The binary format trades portability for
//! load speed: little-endian, out-adjacency only (in-adjacency is
//! reconstructed on load).

use crate::{DirectedGraph, NodeId};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes the graph as a SNAP-style text edge list with a comment header.
pub fn save_edge_list(g: &DirectedGraph, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# Nodes: {} Edges: {}", g.node_count(), g.edge_count())?;
    writeln!(w, "# SrcNId\tDstNId")?;
    for (s, d) in g.edges() {
        writeln!(w, "{s}\t{d}")?;
    }
    w.flush()
}

/// Loads a SNAP-style text edge list (whitespace-separated pairs, `#`
/// comments ignored). Isolated nodes are not representable in this format.
pub fn load_edge_list(path: &Path) -> io::Result<DirectedGraph> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut fields = t.split_whitespace();
        let parse = |f: Option<&str>| -> io::Result<NodeId> {
            f.and_then(|x| x.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: expected `src dst` integers, got {t:?}"),
                )
            })
        };
        let s = parse(fields.next())?;
        let d = parse(fields.next())?;
        edges.push((s, d));
    }
    Ok(graph_from_edges(&edges))
}

const MAGIC: &[u8; 8] = b"RINGOGR1";

/// Writes the graph in the compact binary format (little-endian; magic,
/// node count, then per node its id and out-neighbor list).
pub fn save_binary(g: &DirectedGraph, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(g.node_count() as u64).to_le_bytes())?;
    for id in g.node_ids() {
        w.write_all(&id.to_le_bytes())?;
        let out = g.out_nbrs(id);
        w.write_all(&(out.len() as u32).to_le_bytes())?;
        for &n in out {
            w.write_all(&n.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Loads a graph written by [`save_binary`] (isolated nodes round-trip
/// through this format, unlike the text edge list).
pub fn load_binary(path: &Path) -> io::Result<DirectedGraph> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a Ringo binary graph file",
        ));
    }
    let n_nodes = read_u64(&mut r)? as usize;
    let mut ids = Vec::with_capacity(n_nodes);
    let mut outs: Vec<Vec<NodeId>> = Vec::with_capacity(n_nodes);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for _ in 0..n_nodes {
        let id = read_i64(&mut r)?;
        let deg = read_u32(&mut r)? as usize;
        let mut out = Vec::with_capacity(deg);
        for _ in 0..deg {
            let n = read_i64(&mut r)?;
            out.push(n);
            edges.push((id, n));
        }
        ids.push(id);
        outs.push(out);
    }
    // Rebuild in-adjacency from the edge list.
    let mut rev: Vec<(NodeId, NodeId)> = edges.iter().map(|&(s, d)| (d, s)).collect();
    rev.sort_unstable();
    let mut parts: Vec<(NodeId, Vec<NodeId>, Vec<NodeId>)> = Vec::with_capacity(n_nodes);
    // Map id -> in-list via a single sorted sweep.
    let mut in_lists: std::collections::HashMap<NodeId, Vec<NodeId>> =
        std::collections::HashMap::with_capacity(n_nodes);
    for &(d, s) in &rev {
        in_lists.entry(d).or_default().push(s);
    }
    for (id, out) in ids.into_iter().zip(outs) {
        let mut in_nbrs = in_lists.remove(&id).unwrap_or_default();
        in_nbrs.dedup();
        parts.push((id, in_nbrs, out));
    }
    Ok(DirectedGraph::from_parts(parts))
}

/// Builds a graph from raw edges (sequential sort-first; the parallel
/// variant lives in `ringo-convert` to keep this crate dependency-light).
pub fn graph_from_edges(edges: &[(NodeId, NodeId)]) -> DirectedGraph {
    let mut fwd = edges.to_vec();
    let mut rev: Vec<(NodeId, NodeId)> = edges.iter().map(|&(s, d)| (d, s)).collect();
    fwd.sort_unstable();
    fwd.dedup();
    rev.sort_unstable();
    rev.dedup();
    let mut parts: Vec<(NodeId, Vec<NodeId>, Vec<NodeId>)> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < fwd.len() || j < rev.len() {
        let next_out = fwd.get(i).map(|p| p.0);
        let next_in = rev.get(j).map(|p| p.0);
        let id = match (next_out, next_in) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => unreachable!(),
        };
        let mut out = Vec::new();
        while i < fwd.len() && fwd[i].0 == id {
            out.push(fwd[i].1);
            i += 1;
        }
        let mut inn = Vec::new();
        while j < rev.len() && rev[j].0 == id {
            inn.push(rev[j].1);
            j += 1;
        }
        parts.push((id, inn, out));
    }
    DirectedGraph::from_parts(parts)
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_i64(r: &mut impl Read) -> io::Result<i64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DirectedGraph {
        let mut g = DirectedGraph::new();
        for (s, d) in [(1, 2), (2, 3), (3, 1), (3, 3), (-5, 2)] {
            g.add_edge(s, d);
        }
        g
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ringo_gio_{}_{name}", std::process::id()))
    }

    fn assert_same(a: &DirectedGraph, b: &DirectedGraph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for id in a.node_ids() {
            assert_eq!(a.out_nbrs(id), b.out_nbrs(id), "out of {id}");
            assert_eq!(a.in_nbrs(id), b.in_nbrs(id), "in of {id}");
        }
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let p = tmp("text.txt");
        save_edge_list(&g, &p).unwrap();
        let back = load_edge_list(&p).unwrap();
        assert_same(&g, &back);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_roundtrip_keeps_isolated_nodes() {
        let mut g = sample();
        g.add_node(99);
        let p = tmp("bin.rg");
        save_binary(&g, &p).unwrap();
        let back = load_binary(&p).unwrap();
        assert_same(&g, &back);
        assert!(back.has_node(99));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn text_load_rejects_garbage() {
        let p = tmp("garbage.txt");
        std::fs::write(&p, "# ok\n1\t2\nnot numbers\n").unwrap();
        assert!(load_edge_list(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_load_rejects_wrong_magic() {
        let p = tmp("badmagic.rg");
        // 8 bytes of deliberately-wrong magic plus 8 bytes of padding so
        // the header read succeeds and rejection is on content, not size.
        // (Audited for the env-knob registry: the `RINGO________` tail is
        // not a `RINGO_*` knob — all-underscore tails are excluded, and
        // `NOT` glues onto the word anyway.)
        std::fs::write(&p, b"NOTRINGO________").unwrap();
        assert!(load_binary(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_load_rejects_truncation() {
        let g = sample();
        let p = tmp("trunc.rg");
        save_binary(&g, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 3]).unwrap();
        assert!(load_binary(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn graph_from_edges_matches_incremental() {
        let edges = [(4i64, 1i64), (1, 2), (2, 4), (4, 1), (2, 2)];
        let fast = graph_from_edges(&edges);
        let mut inc = DirectedGraph::new();
        for &(s, d) in &edges {
            inc.add_edge(s, d);
        }
        assert_same(&fast, &inc);
    }
}
