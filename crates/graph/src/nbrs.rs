//! Copy-on-write adjacency storage shared by the dynamic graph types.
//!
//! Bulk loading (the sort-first table→graph conversion) produces every
//! node's neighbors concatenated in one big slab. Copying each node's
//! slice into its own `Vec` at install time would re-touch the whole
//! adjacency just to change its ownership — for a million-edge graph
//! that copy costs more than the fill itself. Instead a [`NbrList`] can
//! *borrow* its range of the shared slab (an `Arc<[NodeId]>` kept alive
//! by every node that references it) and only materializes a private
//! `Vec` the first time that node's adjacency is mutated. Read paths see
//! a `&[NodeId]` either way via `Deref`, so lookups and iteration are
//! identical for both representations.

use crate::NodeId;
use std::ops::Deref;
use std::sync::Arc;

/// One node's sorted neighbor list: either privately owned or a range of
/// a bulk-load slab shared with the other nodes built in the same batch.
#[derive(Clone, Debug)]
pub(crate) enum NbrList {
    /// Node-private storage; every mutation path lands here.
    Owned(Vec<NodeId>),
    /// `buf[lo..hi]`, copy-on-write. Bounds are `u32` to keep the enum at
    /// `Vec` size; [`NbrList::slab`] falls back to owning when a slab is
    /// too large to index with 32 bits.
    Slab {
        buf: Arc<[NodeId]>,
        lo: u32,
        hi: u32,
    },
}

impl Default for NbrList {
    fn default() -> Self {
        NbrList::Owned(Vec::new())
    }
}

impl Deref for NbrList {
    type Target = [NodeId];

    #[inline]
    fn deref(&self) -> &[NodeId] {
        match self {
            NbrList::Owned(v) => v,
            NbrList::Slab { buf, lo, hi } => &buf[*lo as usize..*hi as usize],
        }
    }
}

impl From<Vec<NodeId>> for NbrList {
    fn from(v: Vec<NodeId>) -> Self {
        NbrList::Owned(v)
    }
}

impl NbrList {
    /// A view of `buf[lo..hi]`. Falls back to an owned copy in the
    /// (pathological) case of a slab beyond `u32` indexing.
    pub(crate) fn slab(buf: &Arc<[NodeId]>, lo: usize, hi: usize) -> Self {
        if hi <= u32::MAX as usize {
            NbrList::Slab {
                buf: Arc::clone(buf),
                lo: lo as u32,
                hi: hi as u32,
            }
        } else {
            NbrList::Owned(buf[lo..hi].to_vec())
        }
    }

    /// Mutable access, converting a slab view into owned storage first
    /// (one exact-capacity copy of this node's neighbors only).
    pub(crate) fn to_mut(&mut self) -> &mut Vec<NodeId> {
        if let NbrList::Slab { .. } = self {
            *self = NbrList::Owned(self.deref().to_vec());
        }
        match self {
            NbrList::Owned(v) => v,
            NbrList::Slab { .. } => unreachable!("just converted"),
        }
    }

    /// Heap bytes attributable to this list. Slab ranges partition their
    /// slab, so charging each node its own range sums to the slab's true
    /// footprint (the `Arc` header is ignored as per-batch constant).
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            NbrList::Owned(v) => v.capacity() * std::mem::size_of::<NodeId>(),
            NbrList::Slab { lo, hi, .. } => (hi - lo) as usize * std::mem::size_of::<NodeId>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_view_reads_like_owned() {
        let buf: Arc<[NodeId]> = Arc::from(vec![1i64, 2, 3, 4, 5]);
        let view = NbrList::slab(&buf, 1, 4);
        assert_eq!(&*view, &[2, 3, 4]);
        assert_eq!(view.len(), 3);
        assert!(view.binary_search(&3).is_ok());
        let owned = NbrList::from(vec![2i64, 3, 4]);
        assert_eq!(&*view, &*owned);
    }

    #[test]
    fn to_mut_copies_on_write_without_touching_slab() {
        let buf: Arc<[NodeId]> = Arc::from(vec![10i64, 20, 30]);
        let mut a = NbrList::slab(&buf, 0, 2);
        let b = NbrList::slab(&buf, 2, 3);
        a.to_mut().push(25);
        assert_eq!(&*a, &[10, 20, 25]);
        assert_eq!(&*b, &[30], "sibling view untouched");
        assert_eq!(buf[0], 10, "slab itself untouched");
    }

    #[test]
    fn heap_bytes_charges_slab_ranges() {
        let buf: Arc<[NodeId]> = Arc::from(vec![0i64; 8]);
        let view = NbrList::slab(&buf, 2, 6);
        assert_eq!(view.heap_bytes(), 4 * std::mem::size_of::<NodeId>());
    }
}
