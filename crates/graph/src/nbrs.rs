//! Copy-on-write adjacency storage shared by the dynamic graph types.
//!
//! Bulk loading (the sort-first table→graph conversion) produces every
//! node's neighbors concatenated in one big slab. Copying each node's
//! slice into its own `Vec` at install time would re-touch the whole
//! adjacency just to change its ownership — for a million-edge graph
//! that copy costs more than the fill itself. Instead a [`NbrList`] can
//! *borrow* its range of the shared slab (an `Arc<[NodeId]>` kept alive
//! by every node that references it) and only materializes a private
//! `Vec` the first time that node's adjacency is mutated. Read paths see
//! a `&[NodeId]` either way via `Deref`, so lookups and iteration are
//! identical for both representations.

use crate::NodeId;
use std::ops::Deref;
use std::sync::Arc;

/// One node's sorted neighbor list: either privately owned or a range of
/// a bulk-load slab shared with the other nodes built in the same batch.
#[derive(Clone, Debug)]
pub(crate) enum NbrList {
    /// Node-private storage; every mutation path lands here.
    Owned(Vec<NodeId>),
    /// `buf[lo..hi]`, copy-on-write. Bounds are `u32` to keep the enum at
    /// `Vec` size; [`NbrList::slab`] falls back to owning when a slab is
    /// too large to index with 32 bits.
    Slab {
        buf: Arc<[NodeId]>,
        lo: u32,
        hi: u32,
    },
}

impl Default for NbrList {
    fn default() -> Self {
        NbrList::Owned(Vec::new())
    }
}

impl Deref for NbrList {
    type Target = [NodeId];

    #[inline]
    fn deref(&self) -> &[NodeId] {
        match self {
            NbrList::Owned(v) => v,
            NbrList::Slab { buf, lo, hi } => &buf[*lo as usize..*hi as usize],
        }
    }
}

impl From<Vec<NodeId>> for NbrList {
    fn from(v: Vec<NodeId>) -> Self {
        NbrList::Owned(v)
    }
}

impl NbrList {
    /// A view of `buf[lo..hi]`. Falls back to an owned copy in the
    /// (pathological) case of a slab beyond `u32` indexing.
    pub(crate) fn slab(buf: &Arc<[NodeId]>, lo: usize, hi: usize) -> Self {
        if hi <= u32::MAX as usize {
            NbrList::Slab {
                buf: Arc::clone(buf),
                lo: lo as u32,
                hi: hi as u32,
            }
        } else {
            NbrList::Owned(buf[lo..hi].to_vec())
        }
    }

    /// Mutable access, converting a slab view into owned storage first
    /// (one exact-capacity copy of this node's neighbors only).
    pub(crate) fn to_mut(&mut self) -> &mut Vec<NodeId> {
        if let NbrList::Slab { .. } = self {
            *self = NbrList::Owned(self.deref().to_vec());
        }
        match self {
            NbrList::Owned(v) => v,
            NbrList::Slab { .. } => unreachable!("just converted"),
        }
    }

    /// Heap bytes attributable to this list. Slab ranges partition their
    /// slab, so charging each node its own range sums to the slab's true
    /// footprint (the `Arc` header is ignored as per-batch constant).
    ///
    /// After mutations this *understates* retention: a view's dead
    /// sibling ranges keep the whole slab alive but are charged to
    /// nobody. [`AdjacencyStats`] reports the honest number;
    /// [`NbrList::compact`] reclaims the difference.
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            NbrList::Owned(v) => v.capacity() * std::mem::size_of::<NodeId>(),
            NbrList::Slab { lo, hi, .. } => (hi - lo) as usize * std::mem::size_of::<NodeId>(),
        }
    }

    /// Identity and full length of the backing slab, if any:
    /// `(address, slab_len)` — the key [`AdjacencyStats`] groups by.
    pub(crate) fn slab_id(&self) -> Option<(usize, usize)> {
        match self {
            NbrList::Owned(_) => None,
            NbrList::Slab { buf, .. } => Some((buf.as_ptr() as usize, buf.len())),
        }
    }

    /// Accumulates this list into `stats`, tracking distinct slabs in
    /// `slabs` (address → full slab length).
    pub(crate) fn accumulate(
        &self,
        stats: &mut AdjacencyStats,
        slabs: &mut std::collections::HashMap<usize, usize>,
    ) {
        match self.slab_id() {
            Some((addr, slab_len)) => {
                stats.slab_lists += 1;
                stats.live_slab_bytes += self.len() * std::mem::size_of::<NodeId>();
                slabs.insert(addr, slab_len);
            }
            None => {
                stats.owned_lists += 1;
                stats.owned_bytes += self.heap_bytes();
            }
        }
    }

    /// The long-pending compaction: rewrites every list in `lists` —
    /// surviving slab views *and* privately-owned vectors — into one
    /// fresh, exactly-sized shared slab and rebinds each list as a view
    /// into it.
    ///
    /// Batch granularity is the whole point: a slab is only freed when
    /// its last view drops, so compacting lists one at a time could
    /// never release a dead range. Rewriting the full surviving set is
    /// what lets the old slabs (dead ranges included) go, and the result
    /// is a brand-new immutable slab — which is exactly the shape a
    /// copy-on-write version publish wants, so graph compaction rides
    /// the epoch machinery (see the core crate's `Catalog`).
    pub(crate) fn compact(lists: &mut [&mut NbrList]) {
        let total: usize = lists.iter().map(|l| l.len()).sum();
        let mut slab = Vec::with_capacity(total);
        let mut bounds = Vec::with_capacity(lists.len());
        for list in lists.iter() {
            let lo = slab.len();
            slab.extend_from_slice(list);
            bounds.push(lo);
        }
        let buf: Arc<[NodeId]> = Arc::from(slab);
        for (list, lo) in lists.iter_mut().zip(bounds) {
            let hi = lo + list.len();
            **list = NbrList::slab(&buf, lo, hi);
        }
    }
}

/// Adjacency-storage accounting for one graph: how many lists are slab
/// views vs privately owned, and how much slab memory is still
/// referenced vs retained. Produced by the graphs' `adjacency_stats`;
/// `dead_slab_bytes` is what their `compact` reclaims.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdjacencyStats {
    /// Lists that are copy-on-write views into a shared slab.
    pub slab_lists: usize,
    /// Lists that own their storage (materialized by mutation).
    pub owned_lists: usize,
    /// Bytes of slab ranges still referenced by a live view.
    pub live_slab_bytes: usize,
    /// Full allocated bytes of every distinct slab kept alive.
    pub total_slab_bytes: usize,
    /// Bytes held by privately-owned lists (capacity, not length).
    pub owned_bytes: usize,
}

impl AdjacencyStats {
    /// Slab bytes kept alive but referenced by no live view — the leak
    /// compaction exists to reclaim.
    pub fn dead_slab_bytes(&self) -> usize {
        self.total_slab_bytes - self.live_slab_bytes
    }

    /// Total adjacency heap retention: every live slab in full, plus
    /// owned-vector capacity.
    pub fn footprint_bytes(&self) -> usize {
        self.total_slab_bytes + self.owned_bytes
    }

    /// Folds the distinct-slab map built via [`NbrList::accumulate`]
    /// into `total_slab_bytes`.
    pub(crate) fn finish(mut self, slabs: &std::collections::HashMap<usize, usize>) -> Self {
        self.total_slab_bytes = slabs
            .values()
            .map(|len| len * std::mem::size_of::<NodeId>())
            .sum();
        self
    }
}

/// What one `compact()` call did: adjacency accounting immediately
/// before and after the rewrite.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactStats {
    /// Accounting before the rewrite.
    pub before: AdjacencyStats,
    /// Accounting after (one exact slab, no owned lists, no dead bytes).
    pub after: AdjacencyStats,
}

impl CompactStats {
    /// Net adjacency bytes released by the rewrite (zero when the graph
    /// was already compact).
    pub fn reclaimed_bytes(&self) -> usize {
        self.before
            .footprint_bytes()
            .saturating_sub(self.after.footprint_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_view_reads_like_owned() {
        let buf: Arc<[NodeId]> = Arc::from(vec![1i64, 2, 3, 4, 5]);
        let view = NbrList::slab(&buf, 1, 4);
        assert_eq!(&*view, &[2, 3, 4]);
        assert_eq!(view.len(), 3);
        assert!(view.binary_search(&3).is_ok());
        let owned = NbrList::from(vec![2i64, 3, 4]);
        assert_eq!(&*view, &*owned);
    }

    #[test]
    fn to_mut_copies_on_write_without_touching_slab() {
        let buf: Arc<[NodeId]> = Arc::from(vec![10i64, 20, 30]);
        let mut a = NbrList::slab(&buf, 0, 2);
        let b = NbrList::slab(&buf, 2, 3);
        a.to_mut().push(25);
        assert_eq!(&*a, &[10, 20, 25]);
        assert_eq!(&*b, &[30], "sibling view untouched");
        assert_eq!(buf[0], 10, "slab itself untouched");
    }

    #[test]
    fn heap_bytes_charges_slab_ranges() {
        let buf: Arc<[NodeId]> = Arc::from(vec![0i64; 8]);
        let view = NbrList::slab(&buf, 2, 6);
        assert_eq!(view.heap_bytes(), 4 * std::mem::size_of::<NodeId>());
    }

    #[test]
    fn compact_rewrites_views_and_owned_into_one_slab() {
        let buf: Arc<[NodeId]> = Arc::from(vec![1i64, 2, 3, 4, 5, 6]);
        let mut a = NbrList::slab(&buf, 0, 2); // survives
        let mut b = NbrList::Owned(vec![7, 8, 9]); // materialized earlier
        let mut c = NbrList::slab(&buf, 4, 6); // survives; [2..4] is dead
        let old_weak = Arc::downgrade(&buf);
        drop(buf);
        NbrList::compact(&mut [&mut a, &mut b, &mut c]);
        assert_eq!(&*a, &[1, 2]);
        assert_eq!(&*b, &[7, 8, 9]);
        assert_eq!(&*c, &[5, 6]);
        assert_eq!(
            old_weak.upgrade(),
            None,
            "old slab freed once its last view is rebound"
        );
        let (a_id, a_len) = a.slab_id().expect("rebound as view");
        assert_eq!(a.slab_id().map(|(p, _)| p), c.slab_id().map(|(p, _)| p));
        assert_eq!(b.slab_id().map(|(p, _)| p), Some(a_id));
        assert_eq!(a_len, 7, "fresh slab is exactly sized");
    }

    #[test]
    fn compact_handles_empty_input_and_empty_lists() {
        NbrList::compact(&mut []);
        let mut a = NbrList::Owned(Vec::new());
        let mut b = NbrList::Owned(vec![1]);
        NbrList::compact(&mut [&mut a, &mut b]);
        assert!(a.is_empty());
        assert_eq!(&*b, &[1]);
    }

    #[test]
    fn adjacency_stats_see_dead_ranges() {
        let buf: Arc<[NodeId]> = Arc::from(vec![0i64; 8]);
        let live = NbrList::slab(&buf, 0, 2);
        drop(buf);
        let mut stats = AdjacencyStats::default();
        let mut slabs = std::collections::HashMap::new();
        live.accumulate(&mut stats, &mut slabs);
        let stats = stats.finish(&slabs);
        let elt = std::mem::size_of::<NodeId>();
        assert_eq!(stats.live_slab_bytes, 2 * elt);
        assert_eq!(stats.total_slab_bytes, 8 * elt);
        assert_eq!(stats.dead_slab_bytes(), 6 * elt);
    }
}
