//! Slot-addressed read access shared by the directed representations.

use crate::NodeId;

/// Which edges a directed traversal follows.
///
/// Lives in the graph layer (rather than with any one algorithm) because
/// both the traversal kernels in `ringo-algo` and the bulk
/// [`DirectedTopology::degrees`] accessor are parameterized by it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges (successors).
    Out,
    /// Follow in-edges (predecessors).
    In,
    /// Treat edges as undirected.
    Both,
}

/// Read-only, slot-addressed view of a directed graph.
///
/// Slots are dense handles in `0..n_slots()`; a slot may be vacant (after a
/// node deletion in [`crate::DirectedGraph`]) in which case
/// [`DirectedTopology::slot_id`] returns `None`. Algorithms allocate their
/// per-node state as flat arrays indexed by slot and translate neighbor
/// *ids* back to slots with [`DirectedTopology::slot_of`] — the same
/// id-to-position hash lookup SNAP performs per edge traversal. Running the
/// identical algorithm over [`crate::DirectedGraph`] and [`crate::CsrGraph`]
/// therefore isolates the cost of the representation itself, which is the
/// ablation the paper's §2.2 design discussion calls for.
pub trait DirectedTopology: Sync {
    /// Upper bound (exclusive) on slot handles.
    fn n_slots(&self) -> usize;
    /// External id stored in `slot`, or `None` for vacant slots.
    fn slot_id(&self, slot: usize) -> Option<NodeId>;
    /// Slot holding node `id`.
    fn slot_of(&self, id: NodeId) -> Option<usize>;
    /// Sorted out-neighbor ids of the node in `slot`.
    fn out_nbrs_of_slot(&self, slot: usize) -> &[NodeId];
    /// Sorted in-neighbor ids of the node in `slot`.
    fn in_nbrs_of_slot(&self, slot: usize) -> &[NodeId];
    /// Number of (live) nodes.
    fn node_count(&self) -> usize;
    /// Number of directed edges.
    fn edge_count(&self) -> usize;

    /// Per-slot degree in the traversal sense of `dir` (vacant slots get
    /// 0). Bulk accessor for frontier-style engines: the
    /// direction-optimizing crossover heuristic needs the edge mass of a
    /// frontier, and summing precomputed degrees is much cheaper than
    /// re-touching adjacency lists every level.
    fn degrees(&self, dir: Direction) -> Vec<u32> {
        let mut deg = vec![0u32; self.n_slots()];
        for (s, d) in deg.iter_mut().enumerate() {
            if self.slot_id(s).is_some() {
                *d = match dir {
                    Direction::Out => self.out_nbrs_of_slot(s).len(),
                    Direction::In => self.in_nbrs_of_slot(s).len(),
                    Direction::Both => {
                        self.out_nbrs_of_slot(s).len() + self.in_nbrs_of_slot(s).len()
                    }
                } as u32;
            }
        }
        deg
    }
}
