//! In-memory graph structures for Ringo.
//!
//! The paper (§2.2) represents a graph as "a hash table of nodes", each node
//! holding *sorted* adjacency vectors of neighboring nodes. The design
//! deliberately trades a little traversal speed against Compressed Sparse
//! Row (CSR) for cheap dynamic updates: deleting an edge costs time linear
//! in the node degree instead of linear in the total edge count.
//!
//! * [`DirectedGraph`] — the paper's representation for directed graphs:
//!   node hash index over slots, each slot holding sorted in- and
//!   out-neighbor vectors. Space is ~16 bytes per edge plus node overhead,
//!   "similar to those of the Compressed Sparse Row format".
//! * [`UndirectedGraph`] — same idea with a single neighbor vector per node.
//! * [`CsrGraph`] — a static CSR baseline used by the ablation benchmarks
//!   to quantify exactly the trade-off the paper describes.
//! * [`DirectedTopology`] — slot-addressed read access implemented by both
//!   directed representations so algorithms can run on either.

#![warn(missing_docs)]

pub mod csr;
pub mod directed;
pub mod io;
mod nbrs;
pub mod traits;
pub mod transform;
pub mod undirected;
pub mod weighted;

pub use csr::CsrGraph;
pub use directed::DirectedGraph;
pub use nbrs::{AdjacencyStats, CompactStats};
pub use traits::{DirectedTopology, Direction};
pub use undirected::UndirectedGraph;
pub use weighted::WeightedDigraph;

/// External node identifier. Following SNAP, ids are arbitrary 64-bit
/// integers supplied by the user (e.g. raw user ids from a table), not
/// required to be dense. `i64::MIN` is reserved.
pub type NodeId = i64;
