//! Table 6's sequential kernels: 3-core, SSSP, SCC — plus the other
//! traversal-style algorithms the library offers.

use ringo_bench::{criterion_group, criterion_main, Criterion};
use ringo_core::algo::{
    bfs_distances, core_numbers, k_core, label_propagation, sssp_unweighted,
    strongly_connected_components, weakly_connected_components, Direction,
};
use ringo_core::Ringo;

fn bench(c: &mut Criterion) {
    let ringo = Ringo::with_threads(1); // sequential, per the paper
    let table = ringo.generate_lj_like(0.05, 42);
    let graph = ringo.to_graph(&table, "src", "dst").unwrap();
    let undirected = ringo.to_undirected_graph(&table, "src", "dst").unwrap();
    let src = graph.node_ids().next().unwrap();

    let mut g = c.benchmark_group("seq_algos");
    g.sample_size(15);
    g.bench_function("three_core", |b| {
        b.iter(|| std::hint::black_box(k_core(&undirected, 3)))
    });
    g.bench_function("core_numbers", |b| {
        b.iter(|| std::hint::black_box(core_numbers(&undirected)))
    });
    g.bench_function("sssp_bfs", |b| {
        b.iter(|| std::hint::black_box(sssp_unweighted(&graph, src, Direction::Out)))
    });
    g.bench_function("scc_tarjan", |b| {
        b.iter(|| std::hint::black_box(strongly_connected_components(&graph)))
    });
    g.bench_function("wcc", |b| {
        b.iter(|| std::hint::black_box(weakly_connected_components(&graph)))
    });
    g.bench_function("bfs_both_directions", |b| {
        b.iter(|| std::hint::black_box(bfs_distances(&graph, src, Direction::Both)))
    });
    g.bench_function("label_propagation_5_rounds", |b| {
        b.iter(|| std::hint::black_box(label_propagation(&undirected, 5, 42)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
