//! Cost of the flight recorder on a realistic query, on and off.
//!
//! The profiling subsystem's contract has two halves. A *disabled*
//! recorder must stay invisible in a hot micro-loop: one relaxed atomic
//! load per span, nothing else (measured on the same 64-word FNV
//! workload as `bench_trace_overhead`, asserted under 1%). An *enabled*
//! recorder must stay cheap at query granularity: per-morsel begin/end
//! events into the per-thread rings may cost at most 3% of a 1M-row
//! select/project query end to end.
//!
//! Results are printed and recorded in `BENCH_profile_overhead.json` at
//! the workspace root.

use ringo_core::trace;
use ringo_core::{Cmp, Predicate, Ringo, Table};
use std::io::Write;
use std::time::Instant;

/// A fixed unit of work comparable to a cheap operator inner step: an
/// FNV-1a hash over 64 mixed words (tens of nanoseconds).
fn work(seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for i in 0..64u64 {
        h ^= i.wrapping_mul(0x9e3779b97f4a7c15) ^ seed.rotate_left(i as u32);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Minimum ns/iter across `reps` timed runs of `iters` calls (minimum
/// filters scheduler noise better than the mean on a shared machine).
fn time_min(reps: usize, iters: u64, mut call: impl FnMut(u64) -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..=reps {
        let start = Instant::now();
        let mut acc = 0u64;
        for i in 0..iters {
            acc = acc.wrapping_add(call(i));
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        std::hint::black_box(acc);
        if rep > 0 {
            // rep 0 is warmup
            best = best.min(ns);
        }
    }
    best
}

/// Minimum wall time of one full query collect across `reps` runs.
fn query_min_ns(reps: usize, ringo: &Ringo, t: &Table, pred: &Predicate) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..=reps {
        let start = Instant::now();
        let out = ringo
            .query(t)
            .select(pred)
            .project(&["id", "w"])
            .collect()
            .expect("bench query");
        let ns = start.elapsed().as_nanos() as f64;
        std::hint::black_box(out.n_rows());
        if rep > 0 {
            best = best.min(ns);
        }
    }
    best
}

fn main() {
    // Half 1: disabled recorder on the 55ns micro-workload.
    let iters = 2_000_000u64;
    let reps = 5;
    trace::set_enabled(false);
    let micro_baseline_ns = time_min(reps, iters, |i| std::hint::black_box(work(i)));
    let micro_disabled_ns = time_min(reps, iters, |i| {
        let _sp = trace::span!("bench.profile.micro");
        std::hint::black_box(work(i))
    });
    let disabled_overhead_pct = (micro_disabled_ns - micro_baseline_ns) / micro_baseline_ns * 100.0;

    // Half 2: enabled recorder on a 1M-row select/project query.
    const N: i64 = 1_000_000;
    let ringo = Ringo::new();
    let mut t = Table::from_int_column("id", (0..N).collect());
    t.add_float_column("w", (0..N).map(|v| v as f64 * 0.5).collect())
        .expect("bench column");
    t.set_threads(ringo.threads());
    let pred = Predicate::int("id", Cmp::Lt, N / 2);

    let query_reps = 7;
    trace::set_enabled(false);
    let query_off_ns = query_min_ns(query_reps, &ringo, &t, &pred);
    trace::set_enabled(true);
    trace::reset();
    let query_on_ns = query_min_ns(query_reps, &ringo, &t, &pred);
    let events = trace::events::total_recorded();
    trace::set_enabled(false);
    let enabled_overhead_pct = (query_on_ns - query_off_ns) / query_off_ns * 100.0;

    println!("=== flight recorder overhead ===");
    println!("micro baseline     {micro_baseline_ns:>10.2} ns/iter");
    println!(
        "micro disabled     {micro_disabled_ns:>10.2} ns/iter  ({disabled_overhead_pct:+.2}%)"
    );
    println!("query off          {:>10.2} ms", query_off_ns / 1e6);
    println!(
        "query on           {:>10.2} ms  ({enabled_overhead_pct:+.2}%, {events} events)",
        query_on_ns / 1e6
    );

    assert!(
        disabled_overhead_pct < 1.0,
        "disabled recorder must cost <1% of a small workload, \
         measured {disabled_overhead_pct:.2}%"
    );
    assert!(
        enabled_overhead_pct < 3.0,
        "enabled recorder must cost <3% of a 1M-row query, \
         measured {enabled_overhead_pct:.2}%"
    );

    // Hand-rolled JSON (no serde in the hermetic workspace).
    let json = format!(
        "{{\n  \"bench\": \"profile_overhead\",\n  \"micro_iters\": {iters},\n  \
         \"micro_baseline_ns_per_iter\": {micro_baseline_ns:.3},\n  \
         \"micro_disabled_ns_per_iter\": {micro_disabled_ns:.3},\n  \
         \"disabled_overhead_pct\": {disabled_overhead_pct:.3},\n  \
         \"query_rows\": {N},\n  \
         \"query_off_ns\": {query_off_ns:.0},\n  \
         \"query_on_ns\": {query_on_ns:.0},\n  \
         \"enabled_overhead_pct\": {enabled_overhead_pct:.3},\n  \
         \"enabled_events_recorded\": {events}\n}}\n"
    );

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_profile_overhead.json");
    let mut f = std::fs::File::create(&out).expect("create BENCH_profile_overhead.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_profile_overhead.json");
    println!("wrote {}", out.display());
}
