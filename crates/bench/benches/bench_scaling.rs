//! DESIGN.md ablation 4: thread scaling of the parallel kernels.
//!
//! On the paper's 80-hyperthread box these curves justify the whole
//! design; on a small host the sweep still verifies that extra workers
//! never corrupt results and that overhead stays bounded.

use ringo_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ringo_core::algo::{count_triangles, pagerank, PageRankConfig};
use ringo_core::concurrent::parallel_sort;
use ringo_core::convert::table_to_graph;
use ringo_core::Ringo;

fn bench(c: &mut Criterion) {
    let ringo = Ringo::new();
    let table = ringo.generate_lj_like(0.05, 42);
    let graph = ringo.to_graph(&table, "src", "dst").unwrap();
    let undirected = ringo.to_undirected_graph(&table, "src", "dst").unwrap();
    let raw: Vec<i64> = table.int_col("src").unwrap().to_vec();

    let mut g = c.benchmark_group("scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("pagerank", threads), &threads, |b, &t| {
            let cfg = PageRankConfig {
                threads: t,
                ..PageRankConfig::default()
            };
            b.iter(|| std::hint::black_box(pagerank(&graph, &cfg)))
        });
        g.bench_with_input(BenchmarkId::new("triangles", threads), &threads, |b, &t| {
            b.iter(|| std::hint::black_box(count_triangles(&undirected, t)))
        });
        g.bench_with_input(
            BenchmarkId::new("table_to_graph", threads),
            &threads,
            |b, &t| {
                let mut tab = table.clone();
                tab.set_threads(t);
                b.iter(|| std::hint::black_box(table_to_graph(&tab, "src", "dst").unwrap()))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("parallel_sort", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let mut data = raw.clone();
                    parallel_sort(&mut data, t);
                    data
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
