//! Cost of the `ringo-check` sync facade in ordinary (non-`model`) builds.
//!
//! The lock-free crates route their atomics through `crate::sync`
//! (`VAtomicUsize` & co.) so the deterministic checker can intercept them
//! under `--features model`. In a normal build those names are plain
//! `pub use std::sync::atomic::*` re-exports — type aliases, zero wrapper
//! code — so the compiled object must be byte-for-byte what the direct
//! `std` atomics produce. This bench asserts that claim empirically on the
//! two hottest retrofitted paths:
//!
//! * contended `ConcurrentVec::push` (facade) vs an in-bench clone of the
//!   same claim/rollback protocol written directly against
//!   `std::sync::atomic`, and
//! * registry `Counter::add` (facade) vs a direct `std` `fetch_add`.
//!
//! Measured overhead must stay under 1%. Both sides take the minimum over
//! several repetitions, which filters scheduler noise: with identical
//! codegen the minima converge, while a real facade cost would shift the
//! facade minimum up persistently. Construction happens outside the timed
//! region so only the push protocol itself is compared.
//!
//! Results are printed and recorded in `BENCH_check_overhead.json` at the
//! workspace root.

use ringo_concurrent::ConcurrentVec;
use std::cell::UnsafeCell;
use std::io::Write;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// `ConcurrentVec`'s claim/rollback push, re-written directly against
/// `std::sync::atomic` — the baseline the facade version must match.
struct BaselineVec<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    len: AtomicUsize,
}

unsafe impl<T: Send> Sync for BaselineVec<T> {}

impl<T: Copy> BaselineVec<T> {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            len: AtomicUsize::new(0),
        }
    }

    fn push(&self, value: T) -> Result<usize, ()> {
        let idx = self.len.fetch_add(1, Ordering::AcqRel);
        if idx >= self.buf.len() {
            self.len.fetch_sub(1, Ordering::AcqRel);
            return Err(());
        }
        unsafe {
            (*self.buf[idx].get()).write(value);
        }
        Ok(idx)
    }
}

const PUSH_THREADS: usize = 4;
const PUSH_CAPACITY: usize = 1 << 16;
const REPS: usize = 9;

/// `PUSH_THREADS` threads filling a fresh vector to capacity together:
/// every push contends on the shared `len` counter.
fn contended_fill<V: Sync>(v: &V, push: &(impl Fn(&V, u64) -> bool + Sync)) {
    std::thread::scope(|s| {
        for t in 0..PUSH_THREADS {
            s.spawn(move || {
                let per = (PUSH_CAPACITY / PUSH_THREADS) as u64;
                for i in 0..per {
                    std::hint::black_box(push(v, t as u64 * per + i));
                }
            });
        }
    });
}

/// Minimum ns/push over `REPS` timed fills (rep 0 is warmup). The vector
/// is rebuilt outside the timed window each rep.
fn time_fill_min<V: Sync>(make: impl Fn() -> V, push: impl Fn(&V, u64) -> bool + Sync) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..=REPS {
        let v = make();
        let start = Instant::now();
        contended_fill(&v, &push);
        let ns = start.elapsed().as_nanos() as f64 / PUSH_CAPACITY as f64;
        std::hint::black_box(&v);
        if rep > 0 {
            best = best.min(ns);
        }
    }
    best
}

/// Minimum ns/op over `REPS` timed runs of `iters` ops (rep 0 is warmup).
fn time_min(iters: u64, mut run: impl FnMut(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..=REPS {
        let start = Instant::now();
        run(iters);
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        if rep > 0 {
            best = best.min(ns);
        }
    }
    best
}

fn main() {
    // --- contended push: facade ConcurrentVec vs direct-std baseline ---
    let push_facade_ns = time_fill_min(
        || ConcurrentVec::<u64>::with_capacity(PUSH_CAPACITY),
        |v, x| v.push(x).is_ok(),
    );
    let push_baseline_ns = time_fill_min(
        || BaselineVec::<u64>::with_capacity(PUSH_CAPACITY),
        |v, x| v.push(x).is_ok(),
    );
    let push_overhead_pct = (push_facade_ns - push_baseline_ns) / push_baseline_ns * 100.0;

    // --- counter add: facade registry Counter vs direct std fetch_add ---
    let iters = 4_000_000u64;
    let counter = ringo_trace::counter("bench.check_overhead");
    let counter_facade_ns = time_min(iters, |n| {
        for i in 0..n {
            counter.add(std::hint::black_box(i & 1));
        }
    });

    let direct = AtomicU64::new(0);
    let counter_baseline_ns = time_min(iters, |n| {
        for i in 0..n {
            direct.fetch_add(std::hint::black_box(i & 1), Ordering::Relaxed);
        }
    });
    std::hint::black_box(direct.load(Ordering::Relaxed));

    let counter_overhead_pct =
        (counter_facade_ns - counter_baseline_ns) / counter_baseline_ns * 100.0;

    println!("=== ringo-check facade overhead (non-model build) ===");
    println!(
        "contended push   facade {push_facade_ns:>7.3} ns/op   direct {push_baseline_ns:>7.3} ns/op   ({push_overhead_pct:+.3}%)"
    );
    println!(
        "counter add      facade {counter_facade_ns:>7.3} ns/op   direct {counter_baseline_ns:>7.3} ns/op   ({counter_overhead_pct:+.3}%)"
    );

    assert!(
        push_overhead_pct < 1.0,
        "facade ConcurrentVec::push must be free in non-model builds, measured {push_overhead_pct:.3}%"
    );
    assert!(
        counter_overhead_pct < 1.0,
        "facade Counter::add must be free in non-model builds, measured {counter_overhead_pct:.3}%"
    );

    // Hand-rolled JSON (no serde in the hermetic workspace).
    let json = format!(
        "{{\n  \"bench\": \"check_facade_overhead\",\n  \
         \"push_threads\": {PUSH_THREADS},\n  \"push_capacity\": {PUSH_CAPACITY},\n  \
         \"push_facade_ns_per_op\": {push_facade_ns:.3},\n  \
         \"push_direct_ns_per_op\": {push_baseline_ns:.3},\n  \
         \"push_overhead_pct\": {push_overhead_pct:.3},\n  \
         \"counter_facade_ns_per_op\": {counter_facade_ns:.3},\n  \
         \"counter_direct_ns_per_op\": {counter_baseline_ns:.3},\n  \
         \"counter_overhead_pct\": {counter_overhead_pct:.3}\n}}\n"
    );

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_check_overhead.json");
    let mut f = std::fs::File::create(&out).expect("create BENCH_check_overhead.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_check_overhead.json");
    println!("wrote {}", out.display());
}
