//! Criterion micro-benchmarks for Table 4's operators: select (copying
//! and in-place) and hash join, on a LiveJournal-like edge table.

use ringo_bench::{criterion_group, criterion_main, BatchSize, Criterion};
use ringo_core::{Cmp, Predicate, Ringo, Table};

fn workload() -> (Table, Table) {
    let ringo = Ringo::new();
    let table = ringo.generate_lj_like(0.05, 42); // ~50k rows
    let src = table.int_col("src").unwrap();
    let mut distinct: Vec<i64> = src.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct.truncate(2_000);
    (table.clone(), Table::from_int_column("key", distinct))
}

fn bench(c: &mut Criterion) {
    let (table, partner) = workload();
    let mid = {
        let mut s = table.int_col("src").unwrap().to_vec();
        s.sort_unstable();
        s[s.len() / 2]
    };
    let pred = Predicate::int("src", Cmp::Lt, mid);

    let mut g = c.benchmark_group("table_ops");
    g.sample_size(20);
    g.bench_function("select_copying_half", |b| {
        b.iter(|| std::hint::black_box(table.select(&pred).unwrap()))
    });
    g.bench_function("select_in_place_half", |b| {
        b.iter_batched(
            || table.clone(),
            |mut t| {
                t.select_in_place(&pred).unwrap();
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("count_where_half", |b| {
        b.iter(|| std::hint::black_box(table.count_where(&pred).unwrap()))
    });
    g.bench_function("join_2k_keys", |b| {
        b.iter(|| std::hint::black_box(table.join(&partner, "src", "key").unwrap()))
    });
    g.bench_function("group_by_src_count", |b| {
        b.iter(|| {
            std::hint::black_box(
                table
                    .group_by(&["src"], None, ringo_core::AggOp::Count, "n")
                    .unwrap(),
            )
        })
    });
    g.bench_function("order_by_dst", |b| {
        b.iter_batched(
            || table.clone(),
            |mut t| {
                t.order_by(&["dst"], true).unwrap();
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
