//! Pooled vs spawn-per-call fork-join dispatch on small inputs.
//!
//! This is the measurement behind the persistent worker pool: a parallel
//! region over a small or medium index range is dominated by dispatch
//! overhead, so paying OS thread creation per call (what the deprecated
//! `crossbeam::scope` implementation did) erases the parallel win exactly
//! where interactive table operators live. Each case times `parallel_for`
//! (pool dispatch) against an equivalent region built on
//! `std::thread::scope`, which spawns one OS thread per chunk per call.
//!
//! Results are printed and recorded in `BENCH_pool.json` at the workspace
//! root.

use ringo_core::concurrent::{num_threads, parallel_for, pool_stats};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The measured region body: sum a chunk of `data` into an atomic.
fn region_body(data: &[u64], sink: &AtomicU64, range: std::ops::Range<usize>) {
    let local: u64 = range.map(|i| data[i]).sum();
    sink.fetch_add(local, Ordering::Relaxed);
}

/// One fork-join region through the persistent pool.
fn pooled_call(data: &[u64], threads: usize, sink: &AtomicU64) {
    parallel_for(data.len(), threads, |_, range| {
        region_body(data, sink, range);
    });
}

/// One fork-join region that spawns fresh OS threads, reproducing the
/// retired per-call `crossbeam::scope` dispatch.
fn spawn_call(data: &[u64], threads: usize, sink: &AtomicU64) {
    let bounds = ringo_core::concurrent::parallel::chunk_bounds(data.len(), threads);
    let chunks = bounds.len() - 1;
    if chunks <= 1 {
        region_body(data, sink, 0..data.len());
        return;
    }
    std::thread::scope(|s| {
        for t in 0..chunks {
            let range = bounds[t]..bounds[t + 1];
            s.spawn(move || region_body(data, sink, range));
        }
    });
}

struct Case {
    len: usize,
    iters: usize,
    pooled_ns: f64,
    spawn_ns: f64,
}

fn time_calls(iters: usize, mut call: impl FnMut()) -> f64 {
    call(); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        call();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    // Sweep a few region widths even on small machines: the comparison is
    // about dispatch overhead (wakeup vs thread creation), which exists
    // regardless of how many cores execute the chunks.
    let threads = num_threads().clamp(2, 8);
    let sink = AtomicU64::new(0);
    let mut cases = Vec::new();

    println!("=== pool vs spawn-per-call dispatch ({threads} chunks/region) ===");
    for (len, iters) in [(1_000usize, 2_000usize), (10_000, 1_000), (100_000, 300)] {
        let data: Vec<u64> = (0..len as u64).collect();
        let pooled_ns = time_calls(iters, || pooled_call(&data, threads, &sink));
        let spawn_ns = time_calls(iters, || spawn_call(&data, threads, &sink));
        println!(
            "len {len:>7}: pooled {pooled_ns:>10.0} ns/call   spawn {spawn_ns:>10.0} ns/call   \
             speedup {:.2}x",
            spawn_ns / pooled_ns
        );
        cases.push(Case {
            len,
            iters,
            pooled_ns,
            spawn_ns,
        });
    }
    std::hint::black_box(sink.into_inner());

    let stats = pool_stats();
    assert!(
        stats.jobs_dispatched > 0,
        "pooled path must actually dispatch to the pool"
    );
    println!(
        "pool after run: {} workers, {} jobs, {} chunks, busy {:?}",
        stats.workers, stats.jobs_dispatched, stats.chunks_executed, stats.busy
    );

    // Hand-rolled JSON (no serde in the hermetic workspace).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"pool_vs_spawn_dispatch\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"pool_workers\": {},\n  \"cases\": [\n",
        stats.workers
    ));
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"len\": {}, \"iters\": {}, \"pooled_ns_per_call\": {:.0}, \
             \"spawn_ns_per_call\": {:.0}, \"speedup\": {:.2}}}{}\n",
            c.len,
            c.iters,
            c.pooled_ns,
            c.spawn_ns,
            c.spawn_ns / c.pooled_ns,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_pool.json");
    let mut f = std::fs::File::create(&out).expect("create BENCH_pool.json");
    f.write_all(json.as_bytes()).expect("write BENCH_pool.json");
    println!("wrote {}", out.display());
}
