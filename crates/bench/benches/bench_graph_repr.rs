//! DESIGN.md ablation 2: the paper's node-hash-table graph vs the CSR
//! baseline it rejects (§2.2) — traversal speed (PageRank over the shared
//! `DirectedTopology` trait) against single-edge-deletion cost.

use ringo_bench::{criterion_group, criterion_main, BatchSize, Criterion};
use ringo_core::algo::{pagerank, PageRankConfig};
use ringo_core::{CsrGraph, Ringo};

fn bench(c: &mut Criterion) {
    let ringo = Ringo::new();
    let table = ringo.generate_lj_like(0.05, 42);
    let dynamic = ringo.to_graph(&table, "src", "dst").unwrap();
    let src = table.int_col("src").unwrap();
    let dst = table.int_col("dst").unwrap();
    let edges: Vec<(i64, i64)> = src.iter().copied().zip(dst.iter().copied()).collect();
    let csr = CsrGraph::from_edges(&edges);
    let cfg = PageRankConfig {
        iterations: 5,
        threads: 1,
        ..PageRankConfig::default()
    };
    let victims: Vec<(i64, i64)> = dynamic.edges().step_by(101).take(64).collect();

    let mut g = c.benchmark_group("graph_repr");
    g.sample_size(12);
    g.bench_function("pagerank_hash_graph", |b| {
        b.iter(|| std::hint::black_box(pagerank(&dynamic, &cfg)))
    });
    g.bench_function("pagerank_csr", |b| {
        b.iter(|| std::hint::black_box(pagerank(&csr, &cfg)))
    });
    g.bench_function("del_64_edges_hash_graph", |b| {
        b.iter_batched(
            || dynamic.clone(),
            |mut g| {
                for &(s, d) in &victims {
                    g.del_edge(s, d);
                }
                g
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("del_64_edges_csr", |b| {
        b.iter_batched(
            || csr.clone(),
            |mut g| {
                for &(s, d) in &victims {
                    g.del_edge(s, d);
                }
                g
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("build_hash_graph", |b| {
        b.iter(|| std::hint::black_box(ringo.to_graph(&table, "src", "dst").unwrap()))
    });
    g.bench_function("build_csr", |b| {
        b.iter(|| std::hint::black_box(CsrGraph::from_edges(&edges)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
