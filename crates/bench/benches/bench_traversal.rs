//! Frontier-engine BFS vs the seed sequential BFS, plus the sampled
//! betweenness pipeline that rides on it.
//!
//! The seed baseline reproduces the pre-engine kernel exactly: hop
//! distances in an `IntHashTable` keyed by node id, a `VecDeque` work
//! queue, a boxed neighbor iterator allocated per dequeued node, and a
//! distance hash lookup per pop. The engine rows run the shared frontier
//! engine in top-down-only mode (`alpha = 0`) and with the default
//! direction-optimizing crossover, at the pool's thread count and pinned
//! to one thread (the morsel/engine overhead floor).
//!
//! Results are printed and recorded in `BENCH_traversal.json` at the
//! workspace root.

use ringo_core::algo::{betweenness_centrality_sampled, Direction, FrontierEngine, FrontierState};
use ringo_core::concurrent::{num_threads, IntHashTable};
use ringo_core::gen::{edges_to_table, rmat, RmatConfig};
use ringo_core::graph::DirectedTopology;
use ringo_core::{DirectedGraph, NodeId};
use std::collections::VecDeque;
use std::io::Write;
use std::time::Instant;

/// The pre-engine BFS, byte for byte in spirit: hash-map distances, FIFO
/// queue of ids, boxed per-node neighbor iterator, hash lookup per pop.
fn seed_bfs(g: &DirectedGraph, src: NodeId, dir: Direction) -> IntHashTable<u32> {
    fn neighbors<'a>(
        g: &'a DirectedGraph,
        slot: usize,
        dir: Direction,
    ) -> Box<dyn Iterator<Item = NodeId> + 'a> {
        match dir {
            Direction::Out => Box::new(g.out_nbrs_of_slot(slot).iter().copied()),
            Direction::In => Box::new(g.in_nbrs_of_slot(slot).iter().copied()),
            Direction::Both => Box::new(
                g.out_nbrs_of_slot(slot)
                    .iter()
                    .chain(g.in_nbrs_of_slot(slot))
                    .copied(),
            ),
        }
    }
    let mut dist: IntHashTable<u32> = IntHashTable::new();
    if DirectedTopology::slot_of(g, src).is_none() {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist.insert(src, 0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let d = *dist.get(u).expect("queued node has distance");
        let slot = DirectedTopology::slot_of(g, u).expect("queued node live");
        for v in neighbors(g, slot, dir) {
            if dist.get(v).is_none() {
                dist.insert(v, d + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The pre-engine Brandes inner loop: queue-based BFS with materialized
/// predecessor lists and a stack-order dependency pass.
fn seed_brandes_sampled(g: &DirectedGraph, samples: usize) -> Vec<(NodeId, f64)> {
    let live: Vec<usize> = (0..g.n_slots())
        .filter(|&s| g.slot_id(s).is_some())
        .collect();
    if live.is_empty() || samples == 0 {
        return Vec::new();
    }
    let stride = live.len().div_ceil(samples).max(1);
    let sources: Vec<usize> = live.iter().copied().step_by(stride).collect();
    let n_slots = g.n_slots();
    let n_live = live.len();
    let scale = n_live as f64 / sources.len() as f64;
    let mut centrality = vec![0.0f64; n_slots];
    let mut sigma = vec![0.0f64; n_slots];
    let mut dist = vec![-1i64; n_slots];
    let mut delta = vec![0.0f64; n_slots];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n_slots];
    for &s in &sources {
        let mut stack: Vec<usize> = Vec::new();
        let mut queue = VecDeque::new();
        sigma[s] = 1.0;
        dist[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w_id in g.out_nbrs_of_slot(v) {
                let w = DirectedTopology::slot_of(g, w_id).expect("neighbor exists");
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                centrality[w] += delta[w] * scale;
            }
            sigma[w] = 0.0;
            dist[w] = -1;
            delta[w] = 0.0;
            preds[w].clear();
        }
    }
    (0..n_slots)
        .filter_map(|s| g.slot_id(s).map(|id| (id, centrality[s])))
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Median seconds over `iters` runs of `f` (odd `iters` → true middle).
fn time_it<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed().as_secs_f64());
    }
    median(samples)
}

fn main() {
    let threads = num_threads();
    let scale = 17u32;
    let edges = 1_200_000usize;
    let e = rmat(&RmatConfig {
        scale,
        edges,
        seed: 42,
        ..Default::default()
    });
    let g: DirectedGraph =
        ringo_core::convert::table_to_graph(&edges_to_table(&e), "src", "dst").unwrap();
    let n = g.node_count();
    println!("=== BFS on R-MAT scale {scale}: {n} nodes, {edges} edges ({threads} threads) ===");

    // Sources: a handful of live ids spread across the slot range, fixed
    // for every contender.
    let sources: Vec<NodeId> = (0..g.n_slots())
        .step_by((g.n_slots() / 7).max(1))
        .filter_map(|s| g.slot_id(s))
        .take(5)
        .collect();

    let iters = 5;
    let seed_s = time_it(iters, || {
        sources
            .iter()
            .map(|&s| seed_bfs(&g, s, Direction::Out).len())
            .sum::<usize>()
    });

    // Engine contenders reuse one state across sources, like the routed
    // kernels do.
    let run_engine = |alpha: u64, beta: u64, t: usize| {
        let eng = FrontierEngine::with_params(&g, Direction::Out, t, alpha, beta);
        let mut state = FrontierState::new(g.n_slots());
        time_it(iters, || {
            sources
                .iter()
                .map(|&s| {
                    let slot = DirectedTopology::slot_of(&g, s).expect("source live");
                    eng.run_into(slot, &mut state);
                    let reached = state.visited.len();
                    state.reset();
                    reached
                })
                .sum::<usize>()
        })
    };
    let td_s = run_engine(0, 0, threads);
    let do_s = run_engine(15, 18, threads);
    let t1_s = run_engine(15, 18, 1);

    println!(
        "seed sequential {:>8.2}ms   engine top-down {:>8.2}ms ({:.2}x)   \
         engine dir-opt {:>8.2}ms ({:.2}x)   engine t=1 {:>8.2}ms ({:.2}x)",
        seed_s * 1e3,
        td_s * 1e3,
        seed_s / td_s,
        do_s * 1e3,
        seed_s / do_s,
        t1_s * 1e3,
        seed_s / t1_s,
    );

    // End-to-end consumer: sampled betweenness, whose per-source BFS is
    // the routed kernel. Smaller source budget — Brandes touches the
    // whole graph per source.
    let samples = 8usize;
    let bc_seed_s = time_it(3, || seed_brandes_sampled(&g, samples).len());
    let bc_new_s = time_it(3, || {
        betweenness_centrality_sampled(&g, samples, false).len()
    });
    println!(
        "sampled betweenness ({samples} sources): seed {:>8.1}ms   engine {:>8.1}ms   \
         speedup {:.2}x",
        bc_seed_s * 1e3,
        bc_new_s * 1e3,
        bc_seed_s / bc_new_s,
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"traversal\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"graph\": {{\"scale\": {scale}, \"edges\": {edges}, \"nodes\": {n}}},\n"
    ));
    json.push_str(&format!(
        "  \"bfs\": {{\"sources\": {}, \"seed_ms\": {:.2}, \"topdown_ms\": {:.2}, \
         \"diropt_ms\": {:.2}, \"engine_t1_ms\": {:.2}, \"speedup_topdown\": {:.2}, \
         \"speedup_diropt\": {:.2}, \"speedup_t1\": {:.2}}},\n",
        sources.len(),
        seed_s * 1e3,
        td_s * 1e3,
        do_s * 1e3,
        t1_s * 1e3,
        seed_s / td_s,
        seed_s / do_s,
        seed_s / t1_s,
    ));
    json.push_str(&format!(
        "  \"betweenness_sampled\": {{\"samples\": {samples}, \"seed_ms\": {:.1}, \
         \"engine_ms\": {:.1}, \"speedup\": {:.2}}}\n",
        bc_seed_s * 1e3,
        bc_new_s * 1e3,
        bc_seed_s / bc_new_s,
    ));
    json.push_str("}\n");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_traversal.json");
    let mut f = std::fs::File::create(&out).expect("create BENCH_traversal.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_traversal.json");
    println!("wrote {}", out.display());
}
