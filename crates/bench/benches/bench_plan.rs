//! Lazy query plans vs the eager verb chain.
//!
//! The eager chain pays one full materialization per verb: a 3-step
//! select→select→project over N rows gathers column data three times.
//! The lazy planner fuses the selects, prunes columns, and threads a
//! selection vector through the operators so the gather runs once, at
//! collect. This bench measures both paths on the same pipelines at
//! 1M rows and records the medians in `BENCH_plan.json` at the
//! workspace root.

use ringo_core::concurrent::num_threads;
use ringo_core::{Cmp, Predicate, Ringo, Table};
use std::io::Write;
use std::time::Instant;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn base_table(n: i64, threads: usize) -> Table {
    let mut t = Table::from_int_column("id", (0..n).collect());
    t.add_int_column("bucket", (0..n).map(|v| v % 97).collect())
        .unwrap();
    t.add_float_column("w", (0..n).map(|v| v as f64 * 0.5).collect())
        .unwrap();
    t.add_int_column("extra", (0..n).map(|v| v * 3).collect())
        .unwrap();
    t.set_threads(threads);
    t
}

struct Case {
    name: &'static str,
    rows: usize,
    eager_s: f64,
    lazy_s: f64,
    out_rows: usize,
}

fn run_case(
    name: &'static str,
    rows: usize,
    iters: usize,
    eager: impl Fn() -> Table,
    lazy: impl Fn() -> Table,
) -> Case {
    // Warm both paths, and check they agree before timing anything.
    let e = eager();
    let l = lazy();
    assert_eq!(e.n_rows(), l.n_rows(), "{name}: paths disagree");
    assert_eq!(e.row_ids(), l.row_ids(), "{name}: paths disagree on rows");
    let out_rows = e.n_rows();
    drop((e, l));
    // Interleave samples so machine drift hits both paths equally.
    let mut eager_samples = Vec::with_capacity(iters);
    let mut lazy_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(eager());
        eager_samples.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(lazy());
        lazy_samples.push(start.elapsed().as_secs_f64());
    }
    Case {
        name,
        rows,
        eager_s: median(eager_samples),
        lazy_s: median(lazy_samples),
        out_rows,
    }
}

fn main() {
    let threads = num_threads();
    let ringo = Ringo::new();
    const N: i64 = 1_000_000;
    let t = base_table(N, threads);
    let dim = {
        let mut d = Table::from_int_column("k", (0..97).collect());
        d.add_float_column("boost", (0..97).map(|v| v as f64).collect())
            .unwrap();
        d.set_threads(threads);
        d
    };
    let p1 = Predicate::int("id", Cmp::Lt, N / 2);
    let p2 = Predicate::int("bucket", Cmp::Lt, 20);
    let iters = 7;

    println!("=== eager verb chain vs lazy plan, {N} rows ({threads} threads) ===");
    let mut cases = Vec::new();

    cases.push(run_case(
        "select_select_project",
        N as usize,
        iters,
        || {
            t.select(&p1)
                .unwrap()
                .select(&p2)
                .unwrap()
                .project(&["id", "w"])
                .unwrap()
        },
        || {
            ringo
                .query(&t)
                .select(&p1)
                .select(&p2)
                .project(&["id", "w"])
                .collect()
                .unwrap()
        },
    ));

    cases.push(run_case(
        "select_select_project_join",
        N as usize,
        iters,
        || {
            t.select(&p1)
                .unwrap()
                .select(&p2)
                .unwrap()
                .project(&["id", "bucket", "w"])
                .unwrap()
                .join(&dim, "bucket", "k")
                .unwrap()
        },
        || {
            ringo
                .query(&t)
                .select(&p1)
                .select(&p2)
                .project(&["id", "bucket", "w"])
                .join(&dim, "bucket", "k")
                .collect()
                .unwrap()
        },
    ));

    for c in &cases {
        println!(
            "{:<28} eager {:>8.2}ms   lazy {:>8.2}ms   speedup {:.2}x   ({} -> {} rows)",
            c.name,
            c.eager_s * 1e3,
            c.lazy_s * 1e3,
            c.eager_s / c.lazy_s,
            c.rows,
            c.out_rows
        );
    }

    // Thread-scaling sweep over the lazy pipelines: same tables, same
    // plans, table-level thread setting swept 1→8. The pool itself is
    // sized by RINGO_THREADS, so run with RINGO_THREADS=8 (or more) for
    // the sweep to expose real parallelism; morsel partitioning keeps the
    // outputs bit-identical at every point of the sweep.
    println!("=== lazy plan thread scaling, {N} rows ===");
    let mut scaling: Vec<(usize, f64, f64)> = Vec::new();
    let mut st = base_table(N, 1);
    let mut sdim = dim.clone();
    for &th in &[1usize, 2, 4, 8] {
        st.set_threads(th);
        sdim.set_threads(th);
        let mut ssp = Vec::with_capacity(iters);
        let mut sspj = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = Instant::now();
            std::hint::black_box(
                ringo
                    .query(&st)
                    .select(&p1)
                    .select(&p2)
                    .project(&["id", "w"])
                    .collect()
                    .unwrap(),
            );
            ssp.push(start.elapsed().as_secs_f64());
            let start = Instant::now();
            std::hint::black_box(
                ringo
                    .query(&st)
                    .select(&p1)
                    .select(&p2)
                    .project(&["id", "bucket", "w"])
                    .join(&sdim, "bucket", "k")
                    .collect()
                    .unwrap(),
            );
            sspj.push(start.elapsed().as_secs_f64());
        }
        scaling.push((th, median(ssp), median(sspj)));
    }
    let base_ssp = scaling[0].1;
    let base_sspj = scaling[0].2;
    for &(th, ssp, sspj) in &scaling {
        println!(
            "threads={th}: select_select_project {:>8.2}ms ({:.2}x)   \
             select_select_project_join {:>8.2}ms ({:.2}x)",
            ssp * 1e3,
            base_ssp / ssp,
            sspj * 1e3,
            base_sspj / sspj
        );
    }

    // Hand-rolled JSON (no serde in the hermetic workspace).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"plan\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"rows\": {N},\n"));
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"out_rows\": {}, \"eager_ms\": {:.3}, \
             \"lazy_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            c.name,
            c.rows,
            c.out_rows,
            c.eager_s * 1e3,
            c.lazy_s * 1e3,
            c.eager_s / c.lazy_s,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"scaling\": [\n");
    for (i, &(th, ssp, sspj)) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {th}, \"select_select_project_ms\": {:.3}, \
             \"select_select_project_speedup\": {:.2}, \
             \"select_select_project_join_ms\": {:.3}, \
             \"select_select_project_join_speedup\": {:.2}}}{}\n",
            ssp * 1e3,
            base_ssp / ssp,
            sspj * 1e3,
            base_sspj / sspj,
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_plan.json");
    let mut f = std::fs::File::create(&out).expect("create BENCH_plan.json");
    f.write_all(json.as_bytes()).expect("write BENCH_plan.json");
    println!("wrote {}", out.display());
}
