//! Table 3's parallel kernels: PageRank (10 iterations) and triangle
//! counting, at the session's thread count.

use ringo_bench::{criterion_group, criterion_main, Criterion};
use ringo_core::algo::{count_triangles, hits, pagerank, PageRankConfig};
use ringo_core::Ringo;

fn bench(c: &mut Criterion) {
    let ringo = Ringo::new();
    let table = ringo.generate_lj_like(0.05, 42);
    let graph = ringo.to_graph(&table, "src", "dst").unwrap();
    let undirected = ringo.to_undirected_graph(&table, "src", "dst").unwrap();
    let cfg = PageRankConfig {
        threads: ringo.threads(),
        ..PageRankConfig::default()
    };

    let mut g = c.benchmark_group("parallel_algos");
    g.sample_size(15);
    g.bench_function("pagerank_10_iters", |b| {
        b.iter(|| std::hint::black_box(pagerank(&graph, &cfg)))
    });
    g.bench_function("triangle_counting", |b| {
        b.iter(|| std::hint::black_box(count_triangles(&undirected, ringo.threads())))
    });
    g.bench_function("hits_10_iters", |b| {
        b.iter(|| std::hint::black_box(hits(&graph, 10, ringo.threads())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
