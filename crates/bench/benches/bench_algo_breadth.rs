//! Breadth benchmarks over the wider algorithm library: the "over 200
//! graph functions" story needs every family to stay interactive.

use ringo_bench::{criterion_group, criterion_main, Criterion};
use ringo_core::algo::{
    anf_effective_diameter, approx_neighborhood_function, betweenness_centrality_sampled,
    core_numbers, eigenvector_centrality, greedy_coloring, k_truss, label_propagation,
    maximal_independent_set, triad_census,
};
use ringo_core::Ringo;

fn bench(c: &mut Criterion) {
    let ringo = Ringo::new();
    let table = ringo.generate_lj_like(0.02, 42); // ~20k rows
    let graph = ringo.to_graph(&table, "src", "dst").unwrap();
    let undirected = ringo.to_undirected_graph(&table, "src", "dst").unwrap();

    let mut g = c.benchmark_group("algo_breadth");
    g.sample_size(10);
    g.bench_function("triad_census", |b| {
        b.iter(|| std::hint::black_box(triad_census(&graph)))
    });
    g.bench_function("betweenness_32_samples", |b| {
        b.iter(|| std::hint::black_box(betweenness_centrality_sampled(&graph, 32, true)))
    });
    g.bench_function("eigenvector_20_iters", |b| {
        b.iter(|| std::hint::black_box(eigenvector_centrality(&graph, 20, 0.0, 1)))
    });
    g.bench_function("label_propagation_10", |b| {
        b.iter(|| std::hint::black_box(label_propagation(&undirected, 10, 42)))
    });
    g.bench_function("core_numbers", |b| {
        b.iter(|| std::hint::black_box(core_numbers(&undirected)))
    });
    g.bench_function("k_truss_4", |b| {
        b.iter(|| std::hint::black_box(k_truss(&undirected, 4)))
    });
    g.bench_function("anf_8_hops_32_sketches", |b| {
        b.iter(|| {
            let curve = approx_neighborhood_function(&graph, 8, 32, 7);
            std::hint::black_box(anf_effective_diameter(&curve, 0.9))
        })
    });
    g.bench_function("maximal_independent_set", |b| {
        b.iter(|| std::hint::black_box(maximal_independent_set(&undirected)))
    });
    g.bench_function("greedy_coloring", |b| {
        b.iter(|| std::hint::black_box(greedy_coloring(&undirected)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
