//! Radix vs comparison sort on edge pairs, plus the end-to-end
//! table→graph conversion it accelerates.
//!
//! Four distributions at three sizes compare the parallel LSD radix
//! sorter against the parallel merge sort it replaced and against the
//! standard library's sequential `sort_unstable`. R-MAT-skewed ids are
//! the paper's workload; presorted and reversed inputs probe the
//! comparison sorts' best cases. The end-to-end section measures
//! `table_to_graph` (radix + slab fill) against the retained
//! `table_to_graph_mergesort` pipeline in edges per second.
//!
//! Results are printed and recorded in `BENCH_radix.json` at the
//! workspace root.

use ringo_core::concurrent::{num_threads, parallel_sort, radix_sort_pairs};
use ringo_core::convert::{table_to_graph, table_to_graph_mergesort};
use ringo_core::gen::{edges_to_table, rmat, RmatConfig};
use std::io::Write;
use std::time::Instant;

/// Small xorshift so pair generation needs no crate beyond ringo-core.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn pairs_for(dist: &str, len: usize) -> Vec<(i64, i64)> {
    match dist {
        "uniform" => {
            let mut rng = XorShift(0x5DEE_CE66_D1CE_1CEB ^ len as u64);
            let span = len as u64;
            (0..len)
                .map(|_| ((rng.next() % span) as i64, (rng.next() % span) as i64))
                .collect()
        }
        "rmat" => rmat(&RmatConfig {
            scale: (len as f64).log2().ceil() as u32,
            edges: len,
            ..Default::default()
        }),
        "presorted" => {
            let mut v = pairs_for("uniform", len);
            v.sort_unstable();
            v
        }
        "reverse" => {
            let mut v = pairs_for("uniform", len);
            v.sort_unstable();
            v.reverse();
            v
        }
        _ => unreachable!(),
    }
}

/// Median of a sample vector (robust against the interference spikes of
/// a shared machine).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Median seconds per sort; the clone happens outside the timed section.
fn time_sort(iters: usize, data: &[(i64, i64)], f: impl Fn(&mut Vec<(i64, i64)>)) -> f64 {
    let mut warm = data.to_vec();
    f(&mut warm);
    std::hint::black_box(&warm);
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let mut v = data.to_vec();
        let start = Instant::now();
        f(&mut v);
        samples.push(start.elapsed().as_secs_f64());
        std::hint::black_box(&v);
    }
    median(samples)
}

struct Case {
    len: usize,
    dist: &'static str,
    radix_s: f64,
    merge_s: f64,
    std_s: f64,
}

fn main() {
    let threads = num_threads();
    let mut cases = Vec::new();

    println!("=== radix vs merge vs std sort on (i64, i64) pairs ({threads} threads) ===");
    // Odd iteration counts so the median is a real middle sample; an even
    // count would make `median` return the worse of the two center values.
    for (len, iters) in [(100_000usize, 7usize), (1_000_000, 5), (4_000_000, 3)] {
        for dist in ["uniform", "rmat", "presorted", "reverse"] {
            let data = pairs_for(dist, len);
            let radix_s = time_sort(iters, &data, |v| radix_sort_pairs(v, threads));
            let merge_s = time_sort(iters, &data, |v| parallel_sort(v, threads));
            let std_s = time_sort(iters, &data, |v| v.sort_unstable());
            println!(
                "len {len:>9} {dist:>9}: radix {:>8.2}ms   merge {:>8.2}ms   std {:>8.2}ms   \
                 radix/merge {:.2}x",
                radix_s * 1e3,
                merge_s * 1e3,
                std_s * 1e3,
                merge_s / radix_s
            );
            cases.push(Case {
                len,
                dist,
                radix_s,
                merge_s,
                std_s,
            });
        }
    }

    // End-to-end: full table→graph conversion, radix + slab fill vs the
    // pre-radix merge-sort pipeline, on the paper's R-MAT workload.
    let e2e_edges = 1_000_000usize;
    let table = edges_to_table(&pairs_for("rmat", e2e_edges));
    // Interleave the two pipelines and take medians: on a shared box,
    // timing one pipeline's whole block and then the other's folds
    // minute-scale interference drift into the comparison.
    let e2e_iters = 5;
    std::hint::black_box(table_to_graph(&table, "src", "dst").unwrap());
    std::hint::black_box(table_to_graph_mergesort(&table, "src", "dst").unwrap());
    let mut radix_samples = Vec::with_capacity(e2e_iters);
    let mut merge_samples = Vec::with_capacity(e2e_iters);
    for _ in 0..e2e_iters {
        let start = Instant::now();
        std::hint::black_box(table_to_graph(&table, "src", "dst").unwrap());
        radix_samples.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(table_to_graph_mergesort(&table, "src", "dst").unwrap());
        merge_samples.push(start.elapsed().as_secs_f64());
    }
    let radix_s = median(radix_samples);
    let merge_s = median(merge_samples);
    println!(
        "table_to_graph {e2e_edges} rmat edges: radix+slab {:.1}ms ({:.2}M edges/s)   \
         mergesort {:.1}ms ({:.2}M edges/s)   speedup {:.2}x",
        radix_s * 1e3,
        e2e_edges as f64 / radix_s / 1e6,
        merge_s * 1e3,
        e2e_edges as f64 / merge_s / 1e6,
        merge_s / radix_s
    );

    // Hand-rolled JSON (no serde in the hermetic workspace).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"radix_sort\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"len\": {}, \"dist\": \"{}\", \"radix_ms\": {:.3}, \"merge_ms\": {:.3}, \
             \"std_ms\": {:.3}, \"speedup_vs_merge\": {:.2}}}{}\n",
            c.len,
            c.dist,
            c.radix_s * 1e3,
            c.merge_s * 1e3,
            c.std_s * 1e3,
            c.merge_s / c.radix_s,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"end_to_end\": {{\"edges\": {e2e_edges}, \"radix_ms\": {:.1}, \
         \"mergesort_ms\": {:.1}, \"radix_edges_per_s\": {:.0}, \
         \"mergesort_edges_per_s\": {:.0}, \"speedup\": {:.2}}}\n",
        radix_s * 1e3,
        merge_s * 1e3,
        e2e_edges as f64 / radix_s,
        e2e_edges as f64 / merge_s,
        merge_s / radix_s
    ));
    json.push_str("}\n");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_radix.json");
    let mut f = std::fs::File::create(&out).expect("create BENCH_radix.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_radix.json");
    println!("wrote {}", out.display());
}
