//! DESIGN.md ablation 3: the open-addressing linear-probing hash table
//! (paper §2.5) vs `std::collections::HashMap` for the integer-key
//! workloads the graph engine performs (node-id lookups).

use ringo_bench::{criterion_group, criterion_main, Criterion};
use ringo_core::concurrent::{ConcurrentIntTable, IntHashTable};
use std::collections::HashMap;

fn keys(n: usize) -> Vec<i64> {
    // Pseudo-random 48-bit ids, like external node ids.
    let mut state = 0xdead_beef_cafe_f00du64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 16) as i64
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let n = 100_000;
    let ks = keys(n);

    let mut ours: IntHashTable<u32> = IntHashTable::with_capacity(n);
    let mut std_map: HashMap<i64, u32> = HashMap::with_capacity(n);
    for (i, &k) in ks.iter().enumerate() {
        ours.insert(k, i as u32);
        std_map.insert(k, i as u32);
    }

    let mut g = c.benchmark_group("hash");
    g.sample_size(20);
    g.bench_function("insert_100k_open_addressing", |b| {
        b.iter(|| {
            let mut t: IntHashTable<u32> = IntHashTable::with_capacity(n);
            for (i, &k) in ks.iter().enumerate() {
                t.insert(k, i as u32);
            }
            t
        })
    });
    g.bench_function("insert_100k_std_hashmap", |b| {
        b.iter(|| {
            let mut t: HashMap<i64, u32> = HashMap::with_capacity(n);
            for (i, &k) in ks.iter().enumerate() {
                t.insert(k, i as u32);
            }
            t
        })
    });
    g.bench_function("get_100k_open_addressing", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &ks {
                acc += u64::from(*ours.get(k).unwrap());
            }
            acc
        })
    });
    g.bench_function("get_100k_std_hashmap", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &ks {
                acc += u64::from(*std_map.get(&k).unwrap());
            }
            acc
        })
    });
    g.bench_function("insert_100k_concurrent_cas", |b| {
        b.iter(|| {
            let t = ConcurrentIntTable::with_capacity(n);
            for &k in &ks {
                t.insert(k);
            }
            t
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
