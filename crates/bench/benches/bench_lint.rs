//! Wall-time budget for the `ringo-lint` static gate.
//!
//! The lint runs everywhere — tier-1 tests, CI, contributors' inner
//! loops — so it has a latency budget: a **full workspace pass**
//! (load + lex + tree-build + all nine lints) must finish in under two
//! seconds, or the gate starts getting skipped. Takes the minimum over
//! several repetitions (rep 0 is warmup: page cache, allocator); the
//! minimum is the honest measure of the analyzer itself rather than of
//! cold I/O.
//!
//! Results are printed and recorded in `BENCH_lint.json` at the
//! workspace root, alongside the other `BENCH_*.json` series.

use std::io::Write;
use std::time::Instant;

use ringo_lint::{run_all, Config, Workspace};

const REPS: usize = 5;
const BUDGET_MS: f64 = 2000.0;

fn main() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = Config::project();

    let mut load_best = f64::INFINITY;
    let mut lint_best = f64::INFINITY;
    let mut full_best = f64::INFINITY;
    let mut files = 0usize;
    let mut bytes = 0usize;

    for rep in 0..=REPS {
        let t0 = Instant::now();
        let ws = Workspace::load(&root).expect("workspace must load");
        let load_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let findings = run_all(&ws, &cfg);
        let lint_ms = t1.elapsed().as_secs_f64() * 1e3;

        assert!(
            findings.is_empty(),
            "bench requires a clean tree; ringo-lint reported {} finding(s)",
            findings.len()
        );

        files = ws.lib_files.len() + ws.example_files.len();
        bytes = ws
            .lib_files
            .iter()
            .chain(ws.example_files.iter())
            .map(|f| f.text.len())
            .sum();

        if rep > 0 {
            load_best = load_best.min(load_ms);
            lint_best = lint_best.min(lint_ms);
            full_best = full_best.min(load_ms + lint_ms);
        }
    }

    println!("=== ringo-lint full-workspace wall time ===");
    println!("sources      {files} files, {} KiB", bytes / 1024);
    println!("load+lex     {load_best:>8.2} ms");
    println!("lints        {lint_best:>8.2} ms");
    println!("full pass    {full_best:>8.2} ms   (budget {BUDGET_MS:.0} ms)");

    assert!(
        full_best < BUDGET_MS,
        "ringo-lint full pass took {full_best:.1} ms; the gate's budget is {BUDGET_MS:.0} ms"
    );

    // Hand-rolled JSON (no serde in the hermetic workspace).
    let json = format!(
        "{{\n  \"bench\": \"lint_workspace\",\n  \
         \"files\": {files},\n  \"source_bytes\": {bytes},\n  \
         \"load_ms\": {load_best:.2},\n  \
         \"lint_ms\": {lint_best:.2},\n  \
         \"full_pass_ms\": {full_best:.2},\n  \
         \"budget_ms\": {BUDGET_MS:.0}\n}}\n"
    );
    let out = root.join("BENCH_lint.json");
    let mut f = std::fs::File::create(&out).expect("create BENCH_lint.json");
    f.write_all(json.as_bytes()).expect("write BENCH_lint.json");
    println!("wrote {}", out.display());
}
