//! Cost of the epoch-snapshot read path (paper §3: shared big-memory
//! analytics must not serialize readers behind writers).
//!
//! Two claims from the catalog design are measured here:
//!
//! * **Pin/unpin is as cheap as an uncontended `RwLock` read.** A pin is
//!   one TLS slot lookup, one `SeqCst` slot store, and one validating
//!   load; unpin is a plain release store. An uncontended
//!   `RwLock::read` pays two lock-prefixed RMWs, so the epoch guard must
//!   come in at or below it — that is the whole argument for putting an
//!   epoch pin (rather than a lock) on every query's fast path.
//!
//! * **Readers do not stall under a publish loop.** A writer
//!   republishing the catalog as fast as it can must not move reader
//!   latency by more than scheduler noise: the reader never takes the
//!   writer's lock, it pins and reads whatever root was current. The
//!   workload is the paper-scale interactive setup — a 1M-row table
//!   scanned by a selection and a scale-17 R-MAT graph swept by BFS.
//!
//! Results are printed and recorded in `BENCH_epoch.json` at the
//! workspace root. Latency ratios are asserted with generous headroom so
//! the bench stays stable on throttled single-core CI machines while
//! still catching a real cliff (a reader blocking on a publish would
//! show up as orders of magnitude, not a factor of two).

use ringo_concurrent::epoch::EpochDomain;
use ringo_core::algo::bfs_distances;
use ringo_core::catalog::Catalog;
use ringo_core::gen::{edges_to_table, rmat, RmatConfig};
use ringo_core::{Cmp, Direction, Predicate, Table};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

const REPS: usize = 7;

/// Minimum ns/op over `REPS` timed runs of `iters` ops (rep 0 is warmup).
fn time_min(iters: u64, mut run: impl FnMut(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..=REPS {
        let start = Instant::now();
        run(iters);
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        if rep > 0 {
            best = best.min(ns);
        }
    }
    best
}

/// `p`-th percentile (0..100) of a latency sample, in microseconds.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let idx = ((samples.len() - 1) as f64 * p / 100.0).round() as usize;
    samples[idx]
}

/// Runs `op` `n` times, returning per-op latencies in microseconds.
fn sample_latencies(n: usize, mut op: impl FnMut()) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now();
        op();
        out.push(start.elapsed().as_nanos() as f64 / 1_000.0);
    }
    out
}

fn main() {
    // ---- pin/unpin vs uncontended RwLock read ----
    let domain = Arc::new(EpochDomain::new());
    let iters = 2_000_000u64;
    let pin_ns = time_min(iters, |n| {
        for _ in 0..n {
            std::hint::black_box(domain.pin());
        }
    });
    let rwlock = RwLock::new(0u64);
    let rwlock_ns = time_min(iters, |n| {
        for _ in 0..n {
            std::hint::black_box(*rwlock.read().unwrap_or_else(|e| e.into_inner()));
        }
    });
    let pin_ratio = pin_ns / rwlock_ns;

    // ---- reader latency under a publish loop ----
    // Paper-scale interactive working set: a 1M-row table and a
    // scale-17 R-MAT graph (2^17 id space, 1M edges).
    let catalog = Catalog::new();
    let table_a = Arc::new(Table::from_int_column("v", (0..1_000_000).collect()));
    let table_b = Arc::new(Table::from_int_column("v", (0..1_000_000).rev().collect()));
    let edges = edges_to_table(&rmat(&RmatConfig {
        scale: 17,
        edges: 1 << 20,
        seed: 7,
        ..RmatConfig::default()
    }));
    let graph = Arc::new(ringo_core::convert::table_to_graph(&edges, "src", "dst").unwrap());
    let bfs_src = graph.node_ids().next().unwrap();
    catalog.publish_table("t", Arc::clone(&table_a));
    catalog.publish_graph("g", Arc::clone(&graph));

    let pred = Predicate::int("v", Cmp::Ge, 500_000);
    let read_once = |catalog: &Catalog| {
        let snap = catalog.snapshot();
        let t = snap.table("t").expect("t bound");
        let hits = t.select(&pred).unwrap().n_rows();
        assert_eq!(hits, 500_000);
        let g = snap.graph("g").expect("g bound");
        let dist = bfs_distances(&**g, bfs_src, Direction::Out);
        std::hint::black_box(dist.len());
    };

    const SAMPLES: usize = 60;
    // Warm caches, then quiescent baseline.
    read_once(&catalog);
    let mut quiet = sample_latencies(SAMPLES, || read_once(&catalog));

    // The storm: alternate-republish both names as fast as the core
    // budget allows, with a yield per round so single-core machines
    // still interleave the reader fairly.
    let stop = Arc::new(AtomicBool::new(false));
    let publishes = Arc::new(AtomicU64::new(0));
    let writer = {
        let catalog = catalog.clone();
        let (stop, publishes) = (Arc::clone(&stop), Arc::clone(&publishes));
        let (ta, tb, g) = (
            Arc::clone(&table_a),
            Arc::clone(&table_b),
            Arc::clone(&graph),
        );
        std::thread::spawn(move || {
            let mut flip = false;
            while !stop.load(Ordering::Relaxed) {
                catalog.publish_table("t", Arc::clone(if flip { &ta } else { &tb }));
                catalog.publish_graph("g", Arc::clone(&g));
                publishes.fetch_add(2, Ordering::Relaxed);
                flip = !flip;
                std::thread::yield_now();
            }
        })
    };
    // Both published tables select to the same cardinality, so
    // `read_once` is version-agnostic and the sample stays comparable.
    let mut under_publish = sample_latencies(SAMPLES, || read_once(&catalog));
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    let published = publishes.load(Ordering::Relaxed);

    let quiet_p50 = percentile(&mut quiet, 50.0);
    let quiet_p99 = percentile(&mut quiet, 99.0);
    let storm_p50 = percentile(&mut under_publish, 50.0);
    let storm_p99 = percentile(&mut under_publish, 99.0);
    let p50_ratio = storm_p50 / quiet_p50;

    println!("=== epoch snapshot read path ===");
    println!("pin/unpin        {pin_ns:>8.2} ns/op");
    println!("rwlock read      {rwlock_ns:>8.2} ns/op   (pin = {pin_ratio:.2}x)");
    println!("reader quiet     p50 {quiet_p50:>9.1} us   p99 {quiet_p99:>9.1} us");
    println!("reader + publish p50 {storm_p50:>9.1} us   p99 {storm_p99:>9.1} us   ({p50_ratio:.2}x p50)");
    println!("publishes landed during sample window: {published}");

    assert!(
        pin_ns <= rwlock_ns * 1.25,
        "epoch pin ({pin_ns:.2} ns) must not cost more than an uncontended RwLock read ({rwlock_ns:.2} ns)"
    );
    assert!(published > 0, "publish loop must overlap the reader sample");
    // A reader actually blocking behind publishes would multiply tail
    // latency by the publish queue depth — far beyond timeslicing noise.
    assert!(
        storm_p50 <= quiet_p50 * 10.0 && storm_p99 <= quiet_p50 * 50.0,
        "reader latency cliff under publish loop: quiet p50 {quiet_p50:.1} us -> storm p50 {storm_p50:.1} us / p99 {storm_p99:.1} us"
    );

    // Hand-rolled JSON (no serde in the hermetic workspace).
    let json = format!(
        "{{\n  \"bench\": \"epoch_snapshots\",\n  \
         \"pin_unpin_ns\": {pin_ns:.2},\n  \
         \"rwlock_uncontended_read_ns\": {rwlock_ns:.2},\n  \
         \"pin_vs_rwlock_ratio\": {pin_ratio:.3},\n  \
         \"table_rows\": 1000000,\n  \"rmat_scale\": 17,\n  \"rmat_edges\": {},\n  \
         \"reader_samples\": {SAMPLES},\n  \
         \"quiet_p50_us\": {quiet_p50:.1},\n  \"quiet_p99_us\": {quiet_p99:.1},\n  \
         \"under_publish_p50_us\": {storm_p50:.1},\n  \"under_publish_p99_us\": {storm_p99:.1},\n  \
         \"under_publish_p50_ratio\": {p50_ratio:.3},\n  \
         \"publishes_during_window\": {published}\n}}\n",
        1usize << 20
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_epoch.json");
    let mut f = std::fs::File::create(&out).expect("create BENCH_epoch.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_epoch.json");
    println!("wrote {}", out.display());
}
