//! Cost of the `ringo-trace` span instrumentation, on and off.
//!
//! The observability layer's contract is that a *disabled* span is free
//! enough to leave in every hot operator: one relaxed atomic load and a
//! `None`. This bench measures a small fixed workload three ways —
//! uninstrumented, wrapped in a span with tracing off, and wrapped in a
//! span with tracing on — and asserts the disabled overhead stays under
//! 5% of the workload.
//!
//! Results are printed and recorded in `BENCH_trace_overhead.json` at the
//! workspace root.

use ringo_core::trace;
use std::io::Write;
use std::time::Instant;

/// A fixed unit of work comparable to a cheap operator inner step: an
/// FNV-1a hash over 64 mixed words. Roughly tens of nanoseconds, so a
/// few-ns span entry would show up clearly if it regressed.
fn work(seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for i in 0..64u64 {
        h ^= i.wrapping_mul(0x9e3779b97f4a7c15) ^ seed.rotate_left(i as u32);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Minimum ns/iter across `reps` timed runs of `iters` calls (minimum
/// filters scheduler noise better than the mean on a shared machine).
fn time_min(reps: usize, iters: u64, mut call: impl FnMut(u64) -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..=reps {
        let start = Instant::now();
        let mut acc = 0u64;
        for i in 0..iters {
            acc = acc.wrapping_add(call(i));
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        std::hint::black_box(acc);
        if rep > 0 {
            // rep 0 is warmup
            best = best.min(ns);
        }
    }
    best
}

fn main() {
    let iters = 2_000_000u64;
    let reps = 5;

    trace::set_enabled(false);
    let baseline_ns = time_min(reps, iters, |i| std::hint::black_box(work(i)));
    let disabled_ns = time_min(reps, iters, |i| {
        let mut sp = trace::span!("bench.overhead");
        let out = std::hint::black_box(work(i));
        sp.rows_out(1);
        out
    });

    trace::set_enabled(true);
    let enabled_ns = time_min(reps, iters, |i| {
        let mut sp = trace::span!("bench.overhead");
        let out = std::hint::black_box(work(i));
        sp.rows_out(1);
        out
    });
    trace::set_enabled(false);

    let disabled_overhead_pct = (disabled_ns - baseline_ns) / baseline_ns * 100.0;
    let enabled_overhead_ns = enabled_ns - baseline_ns;

    println!("=== span overhead (workload: 64-word fnv hash) ===");
    println!("baseline       {baseline_ns:>8.2} ns/iter");
    println!("disabled span  {disabled_ns:>8.2} ns/iter  ({disabled_overhead_pct:+.2}%)");
    println!("enabled span   {enabled_ns:>8.2} ns/iter  ({enabled_overhead_ns:+.1} ns)");

    assert!(
        disabled_overhead_pct < 5.0,
        "disabled span must cost <5% of a small workload, measured {disabled_overhead_pct:.2}%"
    );

    // Hand-rolled JSON (no serde in the hermetic workspace).
    let json = format!(
        "{{\n  \"bench\": \"trace_span_overhead\",\n  \"iters\": {iters},\n  \
         \"baseline_ns_per_iter\": {baseline_ns:.3},\n  \
         \"disabled_span_ns_per_iter\": {disabled_ns:.3},\n  \
         \"enabled_span_ns_per_iter\": {enabled_ns:.3},\n  \
         \"disabled_overhead_pct\": {disabled_overhead_pct:.3},\n  \
         \"enabled_overhead_ns\": {enabled_overhead_ns:.3}\n}}\n"
    );

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_trace_overhead.json");
    let mut f = std::fs::File::create(&out).expect("create BENCH_trace_overhead.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_trace_overhead.json");
    println!("wrote {}", out.display());
}
