//! Conversion benchmarks (Table 5) plus the DESIGN.md ablation 1:
//! sort-first table→graph vs the naive row-at-a-time baseline.

use ringo_bench::{criterion_group, criterion_main, Criterion};
use ringo_core::convert::{
    graph_to_edge_table, graph_to_node_table, table_to_graph, table_to_graph_naive,
    table_to_undirected,
};
use ringo_core::Ringo;

fn bench(c: &mut Criterion) {
    let ringo = Ringo::new();
    let table = ringo.generate_lj_like(0.03, 42); // ~30k rows
    let graph = table_to_graph(&table, "src", "dst").unwrap();

    let mut g = c.benchmark_group("convert");
    g.sample_size(15);
    g.bench_function("table_to_graph_sort_first", |b| {
        b.iter(|| std::hint::black_box(table_to_graph(&table, "src", "dst").unwrap()))
    });
    g.bench_function("table_to_graph_naive", |b| {
        b.iter(|| std::hint::black_box(table_to_graph_naive(&table, "src", "dst").unwrap()))
    });
    g.bench_function("table_to_undirected", |b| {
        b.iter(|| std::hint::black_box(table_to_undirected(&table, "src", "dst").unwrap()))
    });
    g.bench_function("graph_to_edge_table", |b| {
        b.iter(|| std::hint::black_box(graph_to_edge_table(&graph, ringo.threads())))
    });
    g.bench_function("graph_to_node_table", |b| {
        b.iter(|| std::hint::black_box(graph_to_node_table(&graph, ringo.threads())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
