//! Benchmarks for Ringo's graph-construction operators (paper §2.3):
//! SimJoin and NextK, plus the join variants.

use ringo_bench::{criterion_group, criterion_main, Criterion};
use ringo_core::{ColumnType, Ringo, Schema, Table, Value};

fn event_log(users: i64, per_user: i64) -> Table {
    let schema = Schema::new([
        ("user", ColumnType::Int),
        ("ts", ColumnType::Int),
        ("value", ColumnType::Float),
    ]);
    let mut t = Table::new(schema);
    let mut x = 77u64;
    for u in 0..users {
        for c in 0..per_user {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = (x >> 33) % 100;
            t.push_row(&[
                Value::Int(u),
                Value::Int(u * 1000 + c * 10),
                Value::Float(noise as f64),
            ])
            .unwrap();
        }
    }
    t
}

fn bench(c: &mut Criterion) {
    let _ringo = Ringo::new();
    let log = event_log(1_000, 20); // 20k events
    let keys = Table::from_int_column("user", (0..500).collect());

    let mut g = c.benchmark_group("special_joins");
    g.sample_size(10);
    g.bench_function("next_k_1_grouped", |b| {
        b.iter(|| std::hint::black_box(log.next_k(Some("user"), "ts", 1).unwrap()))
    });
    g.bench_function("next_k_3_grouped", |b| {
        b.iter(|| std::hint::black_box(log.next_k(Some("user"), "ts", 3).unwrap()))
    });
    g.bench_function("sim_join_band_1d", |b| {
        b.iter(|| std::hint::black_box(log.sim_join(&log, &["value"], &["value"], 0.5).unwrap()))
    });
    g.bench_function("semi_join", |b| {
        b.iter(|| std::hint::black_box(log.semi_join(&keys, "user", "user").unwrap()))
    });
    g.bench_function("anti_join", |b| {
        b.iter(|| std::hint::black_box(log.anti_join(&keys, "user", "user").unwrap()))
    });
    g.bench_function("top_k_100_by_ts", |b| {
        b.iter(|| std::hint::black_box(log.top_k(&["ts"], 100, false).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
