//! Shared workload builders and timing helpers for the paper-table
//! benchmark binaries (`table1` ... `table6`, `footprint`, `all_tables`)
//! and the [`harness`]-based micro-benches.
//!
//! Scales default to laptop-class sizes and grow via environment
//! variables, mirroring how the paper's 80-core numbers relate to its
//! laptop demo:
//!
//! * `RINGO_LJ_SCALE` — LiveJournal-like edge multiplier (default 0.25 ≈
//!   260k edges; the real snapshot is 69M ≈ scale 66),
//! * `RINGO_TW_SCALE` — Twitter-like multiplier (default 0.125 ≈ 1M
//!   edges; the real graph is 1.5B ≈ scale 180),
//! * `RINGO_THREADS` — worker threads (default: all cores).

#![warn(missing_docs)]

pub mod harness;

pub use harness::{BatchSize, Bencher, BenchmarkGroup, BenchmarkId, Criterion};

use ringo_core::{DirectedGraph, Ringo, Table, UndirectedGraph};
use std::time::{Duration, Instant};

/// One benchmark dataset: the edge table plus both graph views.
pub struct BenchData {
    /// Display name ("LiveJournal-like", "Twitter2010-like").
    pub name: &'static str,
    /// The two-column edge table.
    pub table: Table,
    /// Directed graph built from the table.
    pub graph: DirectedGraph,
    /// Undirected view (for triangle counting and cores).
    pub undirected: UndirectedGraph,
}

fn env_scale(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// LiveJournal-like workload at the configured scale.
pub fn lj_data(ringo: &Ringo) -> BenchData {
    let table = ringo.generate_lj_like(env_scale("RINGO_LJ_SCALE", 0.25), 42);
    let graph = ringo.to_graph(&table, "src", "dst").expect("int columns");
    let undirected = ringo
        .to_undirected_graph(&table, "src", "dst")
        .expect("int columns");
    BenchData {
        name: "LiveJournal-like",
        table,
        graph,
        undirected,
    }
}

/// Twitter2010-like workload at the configured scale.
pub fn tw_data(ringo: &Ringo) -> BenchData {
    let table = ringo.generate_tw_like(env_scale("RINGO_TW_SCALE", 0.125), 43);
    let graph = ringo.to_graph(&table, "src", "dst").expect("int columns");
    let undirected = ringo
        .to_undirected_graph(&table, "src", "dst")
        .expect("int columns");
    BenchData {
        name: "Twitter2010-like",
        table,
        graph,
        undirected,
    }
}

/// Times `f` over `runs` executions and returns the mean duration (the
/// paper: "We ran each experiment 5 times, and report the average").
pub fn time_avg<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    let start = Instant::now();
    for _ in 0..runs {
        f();
    }
    start.elapsed() / runs as u32
}

/// Formats a throughput as the paper's "Rows/s" / "Edges/s" lines
/// (millions of items per second).
pub fn fmt_rate(items: usize, dur: Duration) -> String {
    let per_sec = items as f64 / dur.as_secs_f64();
    format!("{:.1}M", per_sec / 1.0e6)
}

/// Formats a duration the way the paper prints cell values (seconds).
pub fn fmt_secs(dur: Duration) -> String {
    format!("{:.2}s", dur.as_secs_f64())
}

/// Number of bytes the table would occupy as a TSV text file, computed
/// through a counting writer (Table 2's "Text File Size" without touching
/// disk).
pub fn tsv_byte_size(table: &Table) -> usize {
    struct Counter(usize);
    impl std::io::Write for Counter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0 += buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    // Render rows exactly like save_tsv (sans header) into the counter.
    use std::io::Write;
    let mut c = Counter(0);
    for row in 0..table.n_rows() {
        for i in 0..table.n_cols() {
            if i > 0 {
                c.write_all(b"\t").unwrap();
            }
            match table.column(i) {
                ringo_core::table::ColumnData::Int(v) => write!(c, "{}", v[row]).unwrap(),
                ringo_core::table::ColumnData::Float(v) => write!(c, "{}", v[row]).unwrap(),
                ringo_core::table::ColumnData::Str(v) => {
                    c.write_all(table.str_value(v[row]).as_bytes()).unwrap()
                }
            }
        }
        c.write_all(b"\n").unwrap();
    }
    c.0
}

/// Prints the standard benchmark header (hardware + scale context).
pub fn print_header(what: &str) {
    let threads = ringo_core::concurrent::num_threads();
    println!("=== {what} ===");
    println!(
        "host: {} hardware threads available, using {} workers \
         (paper: 80 hyperthreads, 1TB RAM)",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        threads
    );
    println!(
        "scales: RINGO_LJ_SCALE={} RINGO_TW_SCALE={} (1.0 ~ 1M / 8M edges)\n",
        env_scale("RINGO_LJ_SCALE", 0.25),
        env_scale("RINGO_TW_SCALE", 0.125)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_byte_size_matches_save_tsv_body() {
        let ringo = Ringo::with_threads(1);
        let t = ringo.generate_lj_like(0.001, 1);
        let counted = tsv_byte_size(&t);
        let path = std::env::temp_dir().join(format!("ringo_bench_{}.tsv", std::process::id()));
        ringo.save_table_tsv(&t, &path).unwrap();
        let on_disk = std::fs::metadata(&path).unwrap().len() as usize;
        std::fs::remove_file(&path).ok();
        // save_tsv adds one header line.
        assert!(on_disk > counted);
        assert!(on_disk - counted < 64, "only the header differs");
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(10_000_000, Duration::from_secs(1)), "10.0M");
        assert_eq!(fmt_secs(Duration::from_millis(2760)), "2.76s");
    }

    #[test]
    fn workloads_build() {
        std::env::set_var("RINGO_LJ_SCALE", "0.002");
        let ringo = Ringo::with_threads(2);
        let d = lj_data(&ringo);
        assert!(d.graph.edge_count() > 500);
        assert!(d.undirected.node_count() == d.graph.node_count());
        std::env::remove_var("RINGO_LJ_SCALE");
    }
}
