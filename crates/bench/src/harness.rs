//! Minimal criterion-compatible benchmark harness.
//!
//! The paper-table benches only use a thin slice of criterion's API —
//! groups, `bench_function`, `bench_with_input`, `iter`, `iter_batched` —
//! so this module provides exactly that slice in-tree, keeping the
//! workspace buildable without registry access. Timing is deliberately
//! simple (one warmup run, then the mean over `sample_size` timed runs),
//! which matches how the paper reports numbers ("We ran each experiment 5
//! times, and report the average").
//!
//! Set `RINGO_BENCH_SAMPLES` to override every group's sample size, e.g.
//! `RINGO_BENCH_SAMPLES=3` for a quick smoke run.

use std::time::{Duration, Instant};

/// Batching strategy for [`Bencher::iter_batched`]. Only a naming shim:
/// this harness always re-runs setup per timed invocation.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Setup cost is small relative to the routine.
    SmallInput,
    /// Setup cost is large relative to the routine.
    LargeInput,
}

/// A benchmark identifier `function/parameter`, for parameter sweeps.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `"{name}/{param}"`.
    pub fn new(name: &str, param: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Collects per-run timings inside `bench_function`.
pub struct Bencher {
    samples: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `f`, called `samples` times after one warmup call.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }

    /// Times `routine` on fresh input from `setup`; setup runs outside the
    /// measured window.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = Some(total / self.samples as u32);
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed runs each benchmark in the group performs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = self.criterion.sample_override.unwrap_or(n.max(1));
        self
    }

    /// Runs one benchmark and records its mean runtime.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            mean: None,
        };
        f(&mut b);
        let mean = b.mean.expect("benchmark body must call iter/iter_batched");
        let label = format!("{}/{}", self.name, id);
        println!("{label}: {mean:?} (mean of {} runs)", self.samples);
        self.criterion.results.push((label, mean));
    }

    /// Runs one parameterized benchmark (criterion's sweep entry point).
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (printing happens eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver; one per bench binary.
pub struct Criterion {
    results: Vec<(String, Duration)>,
    sample_override: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            results: Vec::new(),
            sample_override: std::env::var("RINGO_BENCH_SAMPLES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n: &usize| n > 0),
        }
    }
}

impl Criterion {
    /// Opens a named group with the default sample size (10).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let samples = self.sample_override.unwrap_or(10);
        BenchmarkGroup {
            name: name.to_string(),
            samples,
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark with the default sample size.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(name, f);
    }

    /// All `(label, mean)` results recorded so far, in run order.
    pub fn results(&self) -> &[(String, Duration)] {
        &self.results
    }

    /// Prints the closing summary; called by `criterion_main!`.
    pub fn final_summary(&self) {
        println!("\n{} benchmarks completed", self.results.len());
    }
}

/// Bundles benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Expands to `fn main` running every group, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_results_for_both_iter_styles() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].0, "t/plain");
        assert_eq!(c.results()[1].0, "t/param/4");
    }
}
