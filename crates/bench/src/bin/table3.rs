//! Regenerates **Table 3**: parallel PageRank (10 iterations) and
//! parallel triangle counting on the two benchmark graphs.
//!
//! Paper (80 hyperthreads): LJ 2.76s / 6.13s; TW 60.5s / 263.6s. The
//! reproduction targets the shape: triangle counting costs a small
//! multiple of 10 PageRank iterations, and both scale roughly linearly
//! in edges between the two graphs.

use ringo_bench::{fmt_secs, lj_data, print_header, time_avg, tw_data};
use ringo_core::algo::{count_triangles, pagerank, PageRankConfig};
use ringo_core::Ringo;

fn main() {
    print_header("Table 3: parallel graph algorithms");
    let ringo = Ringo::new();
    let runs = 3;

    println!(
        "{:<18} {:>18} {:>18}",
        "Operation", "LiveJournal-like", "Twitter-like"
    );
    let datasets = [lj_data(&ringo), tw_data(&ringo)];

    let cfg = PageRankConfig {
        threads: ringo.threads(),
        ..PageRankConfig::default()
    };
    let pr_times: Vec<_> = datasets
        .iter()
        .map(|d| {
            time_avg(runs, || {
                std::hint::black_box(pagerank(&d.graph, &cfg)).clear()
            })
        })
        .collect();
    println!(
        "{:<18} {:>18} {:>18}",
        "PageRank (10 it)",
        fmt_secs(pr_times[0]),
        fmt_secs(pr_times[1])
    );

    let tri_times: Vec<_> = datasets
        .iter()
        .map(|d| {
            time_avg(runs, || {
                std::hint::black_box(count_triangles(&d.undirected, ringo.threads()));
            })
        })
        .collect();
    println!(
        "{:<18} {:>18} {:>18}",
        "Triangle Counting",
        fmt_secs(tri_times[0]),
        fmt_secs(tri_times[1])
    );

    println!(
        "\nshape check: triangles/PageRank ratio LJ {:.1}x (paper 2.2x), TW {:.1}x (paper 4.4x)",
        tri_times[0].as_secs_f64() / pr_times[0].as_secs_f64(),
        tri_times[1].as_secs_f64() / pr_times[1].as_secs_f64()
    );
    println!(
        "edge ratio TW/LJ: {:.1}x; PageRank time ratio {:.1}x (paper 21.9x at 21.7x edges)",
        datasets[1].graph.edge_count() as f64 / datasets[0].graph.edge_count() as f64,
        pr_times[1].as_secs_f64() / pr_times[0].as_secs_f64()
    );
}
