//! Regenerates **Table 1**: graph size statistics of the 71 graphs in the
//! Stanford Large Network Collection.

use ringo_core::gen::{snap_catalog, table1_histogram};

fn main() {
    ringo_bench::print_header("Table 1: SNAP collection graph sizes");
    println!("{:<14} {:>18}", "Number of Edges", "Number of Graphs");
    for (bucket, count) in table1_histogram() {
        println!("{:<14} {:>18}", bucket.label(), count);
    }
    let total = snap_catalog().len();
    let below: usize = snap_catalog()
        .iter()
        .filter(|e| e.edges < 100_000_000)
        .count();
    println!(
        "\n{} graphs total; {:.0}% have fewer than 100M edges (paper: 90%).",
        total,
        100.0 * below as f64 / total as f64
    );
}
