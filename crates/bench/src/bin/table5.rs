//! Regenerates **Table 5**: conversions between tables and graphs.
//!
//! Paper: table→graph at 13.0M (LJ) / 18.0M (TW) edges/s; graph→table at
//! 46.0M / 50.4M edges/s — export ~3-4x faster than construction, with
//! rates that do not degrade at the larger scale.

use ringo_bench::{fmt_rate, fmt_secs, lj_data, print_header, time_avg, tw_data};
use ringo_core::convert::{graph_to_edge_table, table_to_graph};
use ringo_core::Ringo;

fn main() {
    print_header("Table 5: table \u{2194} graph conversions");
    let ringo = Ringo::new();
    let runs = 3;
    let datasets = [lj_data(&ringo), tw_data(&ringo)];

    println!(
        "{:<18} {:>20} {:>20}",
        "Conversion", datasets[0].name, datasets[1].name
    );

    let to_graph: Vec<_> = datasets
        .iter()
        .map(|d| {
            time_avg(runs, || {
                std::hint::black_box(table_to_graph(&d.table, "src", "dst").expect("edge table"));
            })
        })
        .collect();
    println!(
        "{:<18} {:>20} {:>20}",
        "Table to graph",
        fmt_secs(to_graph[0]),
        fmt_secs(to_graph[1])
    );
    println!(
        "{:<18} {:>20} {:>20}",
        "  Edges/s",
        fmt_rate(datasets[0].table.n_rows(), to_graph[0]),
        fmt_rate(datasets[1].table.n_rows(), to_graph[1])
    );

    let to_table: Vec<_> = datasets
        .iter()
        .map(|d| {
            time_avg(runs, || {
                std::hint::black_box(graph_to_edge_table(&d.graph, ringo.threads()));
            })
        })
        .collect();
    println!(
        "{:<18} {:>20} {:>20}",
        "Graph to table",
        fmt_secs(to_table[0]),
        fmt_secs(to_table[1])
    );
    println!(
        "{:<18} {:>20} {:>20}",
        "  Edges/s",
        fmt_rate(datasets[0].graph.edge_count(), to_table[0]),
        fmt_rate(datasets[1].graph.edge_count(), to_table[1])
    );

    let slowdown = |i: usize| {
        let build = datasets[i].table.n_rows() as f64 / to_graph[i].as_secs_f64();
        let export = datasets[i].graph.edge_count() as f64 / to_table[i].as_secs_f64();
        export / build
    };
    println!(
        "\nshape check: export/build rate ratio LJ {:.1}x, TW {:.1}x (paper 3.5x / 2.8x); \
         rates should hold or improve at the larger scale.",
        slowdown(0),
        slowdown(1)
    );
}
