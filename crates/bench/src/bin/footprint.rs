//! Regenerates the paper's §3 memory-footprint measurement: the peak heap
//! use of 10 PageRank iterations and of triangle counting, compared to the
//! size of the graph object itself.
//!
//! Paper (Twitter2010, 13.2GB graph): PageRank peaked at 18.3GB and
//! triangle counting at 22.6GB — "in both cases the memory footprint was
//! less than twice the size of the graph object itself".

use ringo_bench::{print_header, tw_data};
use ringo_core::algo::{count_triangles, pagerank, PageRankConfig};
use ringo_core::mem::{format_bytes, peak_bytes, reset_peak, TrackingAllocator};
use ringo_core::Ringo;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

fn main() {
    print_header("Memory footprint of parallel kernels (Twitter-like)");
    let ringo = Ringo::new();
    let d = tw_data(&ringo);
    let graph_size = d.graph.mem_size() + d.undirected.mem_size();
    let directed_size = d.graph.mem_size();
    println!(
        "graph objects: directed {} + undirected {} (edge table {})",
        format_bytes(directed_size),
        format_bytes(d.undirected.mem_size()),
        format_bytes(d.table.mem_size())
    );

    reset_peak();
    let before = ringo_core::mem::current_bytes();
    let pr = pagerank(
        &d.graph,
        &PageRankConfig {
            threads: ringo.threads(),
            ..PageRankConfig::default()
        },
    );
    let pr_peak = peak_bytes().saturating_sub(before);
    drop(pr);
    println!(
        "PageRank (10 it): peak extra heap {} = {:.2}x directed graph size (paper 1.39x)",
        format_bytes(pr_peak + directed_size),
        (pr_peak + directed_size) as f64 / directed_size as f64
    );

    reset_peak();
    let before = ringo_core::mem::current_bytes();
    let tri = count_triangles(&d.undirected, ringo.threads());
    let tri_peak = peak_bytes().saturating_sub(before);
    println!(
        "Triangles ({tri} found): peak extra heap {} = {:.2}x undirected graph size (paper 1.71x)",
        format_bytes(tri_peak + d.undirected.mem_size()),
        (tri_peak + d.undirected.mem_size()) as f64 / d.undirected.mem_size() as f64
    );
    let _ = graph_size;
    println!("\nshape target: both kernels stay under 2x their graph object's size.");
}
