//! Regenerates **Table 4**: Select and Join performance on the benchmark
//! edge tables.
//!
//! Following the paper: selects compare a column with a constant chosen so
//! the output has ~10,000 rows ("Select 10K") or all but ~10,000 rows
//! ("Select all-10K"), measured in place. Joins pair the edge table with a
//! single-column table whose values are chosen so the output has ~10,000
//! rows or all rows except ~10,000; the join rate counts both input
//! tables.

use ringo_bench::{fmt_rate, fmt_secs, lj_data, print_header, tw_data, BenchData};
use ringo_core::{Cmp, Predicate, Ringo, Table};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Constant c such that `src >= c` keeps roughly `tail` rows (and its
/// complement `src < c` keeps the rest). The cut sits in the high end of
/// the id space, where R-MAT assigns the low-degree nodes, so ties are
/// small and the split is accurate even on heavily skewed columns.
fn tail_threshold(src: &[i64], tail: usize) -> i64 {
    let mut sorted = src.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len().saturating_sub(tail).min(sorted.len() - 1)]
}

/// Builds the single-column join partner choosing distinct `src` values
/// whose occurrence counts sum to ~`target` output rows.
fn join_partner(src: &[i64], target: usize, from_rare: bool) -> Table {
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for &v in src {
        *counts.entry(v).or_insert(0) += 1;
    }
    let mut by_count: Vec<(i64, usize)> = counts.into_iter().collect();
    by_count.sort_unstable_by_key(|&(v, c)| (c, v));
    if !from_rare {
        by_count.reverse();
    }
    let mut chosen = Vec::new();
    let mut total = 0usize;
    for (v, c) in by_count {
        if total >= target {
            break;
        }
        chosen.push(v);
        total += c;
    }
    Table::from_int_column("key", chosen)
}

fn bench_selects(d: &BenchData, runs: usize) -> [(usize, Duration); 2] {
    let src = d.table.int_col("src").expect("src col");
    let n = src.len();
    let cut = tail_threshold(src, 10_000.min(n / 2));
    let preds = [
        Predicate::int("src", Cmp::Ge, cut), // ~10K rows
        Predicate::int("src", Cmp::Lt, cut), // all but ~10K rows
    ];
    let mut out = [(0usize, Duration::ZERO); 2];
    for (i, pred) in preds.iter().enumerate() {
        let mut total = Duration::ZERO;
        let mut kept = 0;
        for _ in 0..runs {
            let mut t = d.table.clone();
            let start = Instant::now();
            kept = t.select_in_place(pred).expect("valid predicate");
            total += start.elapsed();
        }
        out[i] = (kept, total / runs as u32);
    }
    out
}

fn bench_joins(d: &BenchData, runs: usize) -> [(usize, usize, Duration); 2] {
    let src = d.table.int_col("src").expect("src col");
    let n = src.len();
    let partners = [
        join_partner(src, 10_000.min(n / 2), true),
        join_partner(src, n.saturating_sub(10_000).max(n / 2), false),
    ];
    let mut out = [(0usize, 0usize, Duration::ZERO); 2];
    for (i, partner) in partners.iter().enumerate() {
        let mut total = Duration::ZERO;
        let mut rows = 0usize;
        for _ in 0..runs {
            let start = Instant::now();
            let j = d.table.join(partner, "src", "key").expect("int join");
            total += start.elapsed();
            rows = j.n_rows();
        }
        out[i] = (
            rows,
            d.table.n_rows() + partner.n_rows(),
            total / runs as u32,
        );
    }
    out
}

fn main() {
    print_header("Table 4: Select and Join on tables");
    let ringo = Ringo::new();
    let runs = 3;
    let datasets = [lj_data(&ringo), tw_data(&ringo)];

    println!(
        "{:<26} {:>22} {:>22}",
        "Dataset", datasets[0].name, datasets[1].name
    );
    let sel: Vec<_> = datasets.iter().map(|d| bench_selects(d, runs)).collect();
    for (row, label) in [
        (0usize, "Select 10K, in place"),
        (1, "Select all-10K, in place"),
    ] {
        println!(
            "{:<26} {:>22} {:>22}",
            label,
            fmt_secs(sel[0][row].1),
            fmt_secs(sel[1][row].1)
        );
        println!(
            "{:<26} {:>22} {:>22}",
            "  Rows/s",
            fmt_rate(datasets[0].table.n_rows(), sel[0][row].1),
            fmt_rate(datasets[1].table.n_rows(), sel[1][row].1)
        );
    }
    let joins: Vec<_> = datasets.iter().map(|d| bench_joins(d, runs)).collect();
    for (row, label) in [(0usize, "Join 10K"), (1, "Join all-10K")] {
        println!(
            "{:<26} {:>22} {:>22}",
            label,
            fmt_secs(joins[0][row].2),
            fmt_secs(joins[1][row].2)
        );
        println!(
            "{:<26} {:>22} {:>22}",
            "  Rows/s (both inputs)",
            fmt_rate(joins[0][row].1, joins[0][row].2),
            fmt_rate(joins[1][row].1, joins[1][row].2)
        );
    }
    println!(
        "\noutput sizes: selects kept {} / {} (LJ), {} / {} (TW); joins produced {} / {} (LJ), {} / {} (TW)",
        sel[0][0].0, sel[0][1].0, sel[1][0].0, sel[1][1].0,
        joins[0][0].0, joins[0][1].0, joins[1][0].0, joins[1][1].0
    );
    println!("shape target (paper): select >> join throughput; join all-10K slowest.");
}
