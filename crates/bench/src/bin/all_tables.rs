//! Runs every paper-table binary in sequence — the one-shot regenerator
//! behind EXPERIMENTS.md. Each table also exists as its own binary
//! (`cargo run --release -p ringo-bench --bin tableN`).

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "footprint",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("binary directory");
    for bin in bins {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{bin} exited with {status}");
        println!();
    }
}
