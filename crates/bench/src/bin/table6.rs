//! Regenerates **Table 6**: sequential implementations of commonly used
//! graph algorithms on the LiveJournal-like graph — 3-core, single-source
//! shortest paths (averaged over 10 random sources), and strongly
//! connected components.
//!
//! Paper: 3-core 31.0s, SSSP 7.4s, SCC 18.0s — all interactive-scale.

use ringo_bench::{fmt_secs, lj_data, print_header};
use ringo_core::algo::{k_core, sssp_unweighted, strongly_connected_components, Direction};
use ringo_core::Ringo;
use std::time::Instant;

fn main() {
    print_header("Table 6: sequential graph algorithms (LiveJournal-like)");
    // Sequential per the paper: all kernels single-threaded.
    let ringo = Ringo::with_threads(1);
    let d = lj_data(&ringo);
    println!(
        "graph: {} nodes, {} edges\n",
        d.graph.node_count(),
        d.graph.edge_count()
    );
    println!("{:<10} {:>10}", "Algorithm", "Runtime");

    let start = Instant::now();
    let core = k_core(&d.undirected, 3);
    let t_core = start.elapsed();
    println!("{:<10} {:>10}", "3-core", fmt_secs(t_core));

    // SSSP averaged over 10 deterministic pseudo-random sources.
    let ids: Vec<i64> = d.graph.node_ids().collect();
    let mut state = 0x1234_5678_9abc_def0u64;
    let sources: Vec<i64> = (0..10)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ids[(state % ids.len() as u64) as usize]
        })
        .collect();
    let start = Instant::now();
    for &s in &sources {
        std::hint::black_box(sssp_unweighted(&d.graph, s, Direction::Out));
    }
    let t_sssp = start.elapsed() / sources.len() as u32;
    println!("{:<10} {:>10}", "SSSP", fmt_secs(t_sssp));

    let start = Instant::now();
    let scc = strongly_connected_components(&d.graph);
    let t_scc = start.elapsed();
    println!("{:<10} {:>10}", "SCC", fmt_secs(t_scc));

    println!(
        "\n3-core kept {} nodes / {} edges; SCC found {} components (largest {}).",
        core.node_count(),
        core.edge_count(),
        scc.n_components(),
        scc.largest()
    );
    println!(
        "shape check (paper): 3-core > SCC > SSSP; here {:.2}s > {:.2}s > {:.2}s",
        t_core.as_secs_f64(),
        t_scc.as_secs_f64(),
        t_sssp.as_secs_f64()
    );
}
