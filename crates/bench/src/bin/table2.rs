//! Regenerates **Table 2**: experiment graphs — node/edge counts, text
//! file size, in-memory graph size, in-memory table size.
//!
//! Paper values (absolute, at full scale): LiveJournal 4.8M nodes / 69M
//! edges / 1.1GB text / 0.7GB graph / 1.1GB table; Twitter2010 42M / 1.5B
//! / 26.2GB / 13.2GB / 23.5GB. The reproduction targets the *ratios*:
//! graph object smaller than text file, table object about the text size.

use ringo_bench::{lj_data, print_header, tsv_byte_size, tw_data};
use ringo_core::mem::format_bytes;
use ringo_core::Ringo;

fn main() {
    print_header("Table 2: experiment graphs");
    let ringo = Ringo::new();
    let datasets = [lj_data(&ringo), tw_data(&ringo)];

    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Graph", "Nodes", "Edges", "TextFile", "GraphSize", "TableSize"
    );
    for d in &datasets {
        let text = tsv_byte_size(&d.table);
        let gsize = d.graph.mem_size();
        let tsize = d.table.mem_size();
        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>12} {:>12}",
            d.name,
            d.graph.node_count(),
            d.graph.edge_count(),
            format_bytes(text),
            format_bytes(gsize),
            format_bytes(tsize),
        );
        println!(
            "{:<22} {:>12} {:>12} graph/text = {:.2} (paper LJ 0.64, TW 0.50); bytes/edge = {:.1}",
            "",
            "",
            "",
            gsize as f64 / text as f64,
            gsize as f64 / d.graph.edge_count() as f64
        );
    }
}
