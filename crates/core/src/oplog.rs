//! The per-facade op-log: a bounded record of every verb issued through a
//! [`crate::Ringo`] context.
//!
//! This is the reproduction of the paper's §4.1 interactive-demo
//! experience, where every Python verb printed its runtime: each facade
//! call appends one [`OpRecord`] with its parameters, input/output
//! cardinality, latency, and allocator deltas. Unlike `ringo-trace` spans
//! (process-global, off by default), the op-log is always on and scoped to
//! the facade instance — clones of a `Ringo` share one log, so a shell and
//! its helpers see a single operation history. Recording costs one mutex
//! lock and a few string bytes per *facade verb* (not per row), which is
//! noise next to any real operator.

use ringo_trace::mem;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Maximum records retained; older operations are dropped first.
pub const OP_LOG_CAPACITY: usize = 1024;

/// One completed facade operation.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Position in this facade's history (monotonic, survives trimming).
    pub seq: u64,
    /// Verb name, e.g. `"join"` or `"to_graph"`.
    pub name: &'static str,
    /// Human-readable parameter summary, e.g. `"on AcceptedAnswerId = PostId"`.
    pub params: String,
    /// Input cardinality (rows, or edges for graph inputs).
    pub rows_in: u64,
    /// Output cardinality (rows, edges, or result length).
    pub rows_out: u64,
    /// Wall time of the operation.
    pub wall: Duration,
    /// Net allocator delta (bytes; 0 unless the tracking allocator is
    /// installed as the global allocator).
    pub mem_delta: i64,
    /// How much the operation raised the process-wide peak-heap
    /// high-water mark (bytes).
    pub mem_peak_delta: u64,
}

/// Shared, bounded operation history. Cheap to clone (an `Arc`).
#[derive(Clone, Debug, Default)]
pub struct OpLog {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    next_seq: u64,
    records: std::collections::VecDeque<OpRecord>,
}

impl OpLog {
    /// Appends a record, trimming to [`OP_LOG_CAPACITY`]. The record's
    /// `seq` is assigned by the log (whatever the caller set is ignored).
    pub fn push(&self, mut record: OpRecord) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        record.seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.records.len() == OP_LOG_CAPACITY {
            inner.records.pop_front();
        }
        inner.records.push_back(record);
    }

    /// A copy of the retained records, oldest first.
    pub fn records(&self) -> Vec<OpRecord> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records
            .iter()
            .cloned()
            .collect()
    }

    /// Drops all retained records (sequence numbers keep counting).
    pub fn clear(&self) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records
            .clear();
    }

    /// Times `f`, appends a record with cardinalities extracted from the
    /// result by `card`, and returns the result. Used by every facade
    /// verb; errors propagate without logging (a failed verb produced no
    /// table to describe).
    pub(crate) fn run<T>(
        &self,
        name: &'static str,
        params: String,
        rows_in: usize,
        card: impl FnOnce(&T) -> usize,
        f: impl FnOnce() -> T,
    ) -> T {
        let mem_start = mem::current_bytes();
        let peak_start = mem::peak_bytes();
        let start = std::time::Instant::now();
        let out = f();
        let wall = start.elapsed();
        self.push(OpRecord {
            seq: 0,
            name,
            params,
            rows_in: rows_in as u64,
            rows_out: card(&out) as u64,
            wall,
            mem_delta: mem::current_bytes() as i64 - mem_start as i64,
            mem_peak_delta: mem::peak_bytes().saturating_sub(peak_start) as u64,
        });
        out
    }

    /// [`OpLog::run`] for fallible verbs: logs only `Ok` results.
    pub(crate) fn run_result<T, E>(
        &self,
        name: &'static str,
        params: String,
        rows_in: usize,
        card: impl FnOnce(&T) -> usize,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, E> {
        let mem_start = mem::current_bytes();
        let peak_start = mem::peak_bytes();
        let start = std::time::Instant::now();
        let out = f()?;
        let wall = start.elapsed();
        self.push(OpRecord {
            seq: 0,
            name,
            params,
            rows_in: rows_in as u64,
            rows_out: card(&out) as u64,
            wall,
            mem_delta: mem::current_bytes() as i64 - mem_start as i64,
            mem_peak_delta: mem::peak_bytes().saturating_sub(peak_start) as u64,
        });
        Ok(out)
    }
}

/// Per-verb aggregate over an op-log, as shown by the shell's `timings`.
#[derive(Clone, Debug)]
pub struct OpTiming {
    /// Verb name.
    pub name: &'static str,
    /// Number of calls.
    pub calls: u64,
    /// Total wall time across calls.
    pub total: Duration,
    /// Largest single-call wall time.
    pub max: Duration,
    /// Sum of net allocator deltas (bytes).
    pub mem_delta: i64,
    /// Largest single-call peak-heap raise (bytes).
    pub max_peak_delta: u64,
}

/// Aggregates records per verb, sorted by descending total time.
pub fn aggregate(records: &[OpRecord]) -> Vec<OpTiming> {
    let mut by_name: Vec<OpTiming> = Vec::new();
    for r in records {
        match by_name.iter_mut().find(|t| t.name == r.name) {
            Some(t) => {
                t.calls += 1;
                t.total += r.wall;
                t.max = t.max.max(r.wall);
                t.mem_delta += r.mem_delta;
                t.max_peak_delta = t.max_peak_delta.max(r.mem_peak_delta);
            }
            None => by_name.push(OpTiming {
                name: r.name,
                calls: 1,
                total: r.wall,
                max: r.wall,
                mem_delta: r.mem_delta,
                max_peak_delta: r.mem_peak_delta,
            }),
        }
    }
    by_name.sort_by_key(|t| std::cmp::Reverse(t.total));
    by_name
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &'static str, params: &str, rows_in: u64, rows_out: u64) -> OpRecord {
        OpRecord {
            seq: 0,
            name,
            params: params.to_string(),
            rows_in,
            rows_out,
            wall: Duration::from_nanos(1),
            mem_delta: 0,
            mem_peak_delta: 0,
        }
    }

    #[test]
    fn log_is_bounded_and_ordered() {
        let log = OpLog::default();
        for i in 0..OP_LOG_CAPACITY + 5 {
            log.push(rec("op", &format!("call {i}"), i as u64, 0));
        }
        let records = log.records();
        assert_eq!(records.len(), OP_LOG_CAPACITY);
        assert_eq!(records.first().unwrap().seq, 5, "oldest trimmed");
        assert_eq!(records.last().unwrap().seq, (OP_LOG_CAPACITY + 4) as u64);
        log.clear();
        assert!(log.records().is_empty());
        log.push(rec("op", "", 0, 0));
        assert_eq!(
            log.records()[0].seq,
            (OP_LOG_CAPACITY + 5) as u64,
            "sequence survives clear"
        );
    }

    #[test]
    fn clones_share_one_log() {
        let a = OpLog::default();
        let b = a.clone();
        a.push(rec("x", "", 1, 2));
        assert_eq!(b.records().len(), 1);
    }

    #[test]
    fn aggregate_sums_per_verb() {
        let log = OpLog::default();
        log.push(OpRecord {
            wall: Duration::from_millis(2),
            mem_delta: 100,
            mem_peak_delta: 50,
            ..rec("join", "a", 10, 5)
        });
        log.push(OpRecord {
            wall: Duration::from_millis(3),
            mem_delta: -40,
            mem_peak_delta: 80,
            ..rec("join", "b", 20, 9)
        });
        log.push(OpRecord {
            wall: Duration::from_millis(1),
            ..rec("select", "c", 9, 1)
        });
        let agg = aggregate(&log.records());
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].name, "join", "sorted by total time desc");
        assert_eq!(agg[0].calls, 2);
        assert_eq!(agg[0].total, Duration::from_millis(5));
        assert_eq!(agg[0].mem_delta, 60);
        assert_eq!(agg[0].max_peak_delta, 80);
    }
}
