//! Ringo — interactive graph analytics on big-memory machines.
//!
//! This crate is the user-facing facade of the Ringo reproduction: one
//! [`Ringo`] context whose methods mirror the Python verbs of the paper's
//! §4.1 demo —
//!
//! ```
//! use ringo_core::{Ringo, Predicate};
//!
//! let ringo = Ringo::new();
//! // P = ringo.LoadTableTSV(schema, 'posts.tsv')   (here: generated)
//! let posts = ringo.generate_stackoverflow(&Default::default());
//! // JP = ringo.Select(P, 'Tag=Java')
//! let java = ringo.select(&posts, &Predicate::str_eq("Tag", "java")).unwrap();
//! // Q = ringo.Select(JP, 'Type=question'); A = ...
//! let questions = ringo.select(&java, &Predicate::str_eq("Type", "question")).unwrap();
//! let answers = ringo.select(&java, &Predicate::str_eq("Type", "answer")).unwrap();
//! // QA = ringo.Join(Q, A, 'AnswerId', 'PostId')
//! let qa = ringo.join(&questions, &answers, "AcceptedAnswerId", "PostId").unwrap();
//! // G = ringo.ToGraph(QA, 'UserId-1', 'UserId-2')
//! let g = ringo.to_graph(&qa, "UserId", "UserId-1").unwrap();
//! // PR = ringo.GetPageRank(G); S = ringo.TableFromHashMap(PR, 'User', 'Scr')
//! let pr = ringo.pagerank(&g);
//! let scores = ringo.table_from_scores(&pr, "User", "Scr");
//! assert_eq!(scores.n_cols(), 2);
//! ```
//!
//! The submodule crates remain directly accessible for power users:
//! [`table`], [`graph`], [`algo`], [`gen`], [`convert`], [`concurrent`].

#![warn(missing_docs)]

pub mod catalog;
pub mod mem;
pub mod oplog;
pub mod query;

pub use ringo_algo as algo;
pub use ringo_concurrent as concurrent;
pub use ringo_convert as convert;
pub use ringo_gen as gen;
pub use ringo_graph as graph;
pub use ringo_table as table;
pub use ringo_trace as trace;

pub use catalog::{Catalog, Dataset, DatasetKind, GcPolicy, Snapshot, VersionMeta};
pub use oplog::{OpLog, OpRecord, OpTiming};
pub use query::{OpProfile, QueryBuilder, QueryProfile};

pub use ringo_algo::{Direction, PageRankConfig};
pub use ringo_graph::{CsrGraph, DirectedGraph, NodeId, UndirectedGraph, WeightedDigraph};
pub use ringo_table::{AggOp, Cmp, ColumnType, Predicate, Schema, Table, TableError, Value};

use std::path::Path;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TableError>;

/// The Ringo analytics context.
///
/// Holds the worker-thread count applied to every table and parallel
/// kernel it creates, plus the **op-log** — a bounded history of every
/// verb issued through this context (name, parameters, cardinalities,
/// latency, allocator deltas; see [`oplog`]). Clones share the same log,
/// so a context can still be passed around freely.
#[derive(Clone, Debug)]
pub struct Ringo {
    threads: usize,
    ops: OpLog,
    catalog: Catalog,
}

impl Default for Ringo {
    fn default() -> Self {
        Self::new()
    }
}

impl Ringo {
    /// Context using the machine's available parallelism (respects the
    /// `RINGO_THREADS` environment variable).
    pub fn new() -> Self {
        Self {
            threads: ringo_concurrent::num_threads(),
            ops: OpLog::default(),
            catalog: Catalog::new(),
        }
    }

    /// Context with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ops: OpLog::default(),
            catalog: Catalog::new(),
        }
    }

    /// Worker threads used by operations issued through this context.
    pub fn threads(&self) -> usize {
        self.threads
    }

    // ---- observability ----

    /// The operations recorded by this context (and its clones), oldest
    /// first. See [`oplog::OpRecord`].
    pub fn op_log(&self) -> Vec<OpRecord> {
        self.ops.records()
    }

    /// Per-verb aggregates of the op-log, sorted by total time — the data
    /// behind the shell's `timings` command.
    pub fn op_timings(&self) -> Vec<OpTiming> {
        oplog::aggregate(&self.ops.records())
    }

    /// Clears the op-log history.
    pub fn clear_op_log(&self) {
        self.ops.clear()
    }

    // ---- versioned catalog (epoch snapshots; see [`catalog`]) ----

    /// The versioned catalog shared by this context and its clones.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Publishes `table` as the new current version of `name`, returning
    /// its per-name version number. Snapshots taken earlier keep reading
    /// the version they pinned.
    pub fn publish_table(&self, name: &str, mut table: Table) -> u64 {
        table.set_threads(self.threads);
        let rows = table.n_rows();
        self.ops.run(
            "publish",
            format!("{name} (table)"),
            rows,
            |_| rows,
            || self.catalog.publish_table(name, table),
        )
    }

    /// Publishes `graph` as the new current version of `name`.
    pub fn publish_graph(&self, name: &str, graph: DirectedGraph) -> u64 {
        let edges = graph.edge_count();
        self.ops.run(
            "publish",
            format!("{name} (graph)"),
            edges,
            |_| edges,
            || self.catalog.publish_graph(name, graph),
        )
    }

    /// The current version of `name`, if bound. A point read; take a
    /// [`Ringo::snapshot`] for multi-step consistency.
    pub fn get(&self, name: &str) -> Option<Dataset> {
        self.catalog.get(name)
    }

    /// Every version published under `name`, oldest first (metadata
    /// only).
    pub fn versions(&self, name: &str) -> Vec<VersionMeta> {
        self.catalog.versions(name)
    }

    /// Pins the current epoch: every name resolved through the returned
    /// [`Snapshot`] — by [`Ringo::query_at`], by algorithm verbs fed
    /// [`Snapshot::graph`] borrows — reads one consistent version of the
    /// catalog for the snapshot's whole lifetime.
    pub fn snapshot(&self) -> Snapshot {
        self.ops
            .run("snapshot", String::new(), 0, Snapshot::len, || {
                self.catalog.snapshot()
            })
    }

    /// Reclaims every catalog version no pinned snapshot can reach,
    /// returning how many were freed.
    pub fn catalog_gc(&self) -> usize {
        self.ops.run(
            "catalog_gc",
            String::new(),
            0,
            |freed| *freed,
            || self.catalog.gc(),
        )
    }

    /// Compacts the adjacency storage of graph `name` and publishes the
    /// rewrite as a new version (see [`Catalog::compact_graph`]).
    pub fn compact_graph(&self, name: &str) -> Option<(u64, ringo_graph::CompactStats)> {
        self.ops.run(
            "compact",
            name.to_string(),
            0,
            |r: &Option<(u64, ringo_graph::CompactStats)>| {
                r.as_ref().map_or(0, |(_, s)| s.reclaimed_bytes())
            },
            || self.catalog.compact_graph(name),
        )
    }

    // ---- table I/O ----

    /// Loads a TSV file under `schema` (the paper's `LoadTableTSV`).
    pub fn load_table_tsv(&self, schema: &Schema, path: &Path) -> Result<Table> {
        self.ops.run_result(
            "load_table_tsv",
            format!("{}", path.display()),
            0,
            Table::n_rows,
            || {
                let mut t = ringo_table::load_tsv(path, schema)?;
                t.set_threads(self.threads);
                Ok(t)
            },
        )
    }

    /// Saves a table as TSV.
    pub fn save_table_tsv(&self, table: &Table, path: &Path) -> Result<()> {
        ringo_table::save_tsv(table, path)
    }

    /// Loads a delimiter-separated file (e.g. CSV with `,`).
    pub fn load_table_dsv(&self, schema: &Schema, path: &Path, delimiter: char) -> Result<Table> {
        self.ops.run_result(
            "load_table_dsv",
            format!("{} ({delimiter:?})", path.display()),
            0,
            Table::n_rows,
            || {
                let mut t = ringo_table::load_dsv(path, schema, delimiter)?;
                t.set_threads(self.threads);
                Ok(t)
            },
        )
    }

    /// Saves a graph as a SNAP-style text edge list.
    pub fn save_graph(&self, g: &DirectedGraph, path: &Path) -> std::io::Result<()> {
        ringo_graph::io::save_edge_list(g, path)
    }

    /// Loads a graph from a SNAP-style text edge list.
    pub fn load_graph(&self, path: &Path) -> std::io::Result<DirectedGraph> {
        ringo_graph::io::load_edge_list(path)
    }

    /// Saves a graph in the compact binary format (faster to reload;
    /// keeps isolated nodes).
    pub fn save_graph_binary(&self, g: &DirectedGraph, path: &Path) -> std::io::Result<()> {
        ringo_graph::io::save_binary(g, path)
    }

    /// Loads a graph written by [`Ringo::save_graph_binary`].
    pub fn load_graph_binary(&self, path: &Path) -> std::io::Result<DirectedGraph> {
        ringo_graph::io::load_binary(path)
    }

    // ---- relational operators ----

    /// Copying select (the paper's `Select`).
    pub fn select(&self, table: &Table, predicate: &Predicate) -> Result<Table> {
        self.ops.run_result(
            "select",
            format!("{predicate:?}"),
            table.n_rows(),
            Table::n_rows,
            || table.select(predicate),
        )
    }

    /// In-place select, modifying `table` (the Table 4 variant).
    pub fn select_in_place(&self, table: &mut Table, predicate: &Predicate) -> Result<usize> {
        let rows_in = table.n_rows();
        self.ops.run_result(
            "select_in_place",
            format!("{predicate:?}"),
            rows_in,
            |kept| *kept,
            || table.select_in_place(predicate),
        )
    }

    /// Hash join (the paper's `Join`).
    pub fn join(
        &self,
        left: &Table,
        right: &Table,
        left_col: &str,
        right_col: &str,
    ) -> Result<Table> {
        self.ops.run_result(
            "join",
            format!("on {left_col} = {right_col}"),
            left.n_rows() + right.n_rows(),
            Table::n_rows,
            || left.join(right, left_col, right_col),
        )
    }

    /// Group & aggregate.
    pub fn group_by(
        &self,
        table: &Table,
        group_cols: &[&str],
        agg_col: Option<&str>,
        op: AggOp,
        out_name: &str,
    ) -> Result<Table> {
        self.ops.run_result(
            "group_by",
            format!(
                "by {group_cols:?} {op:?}({}) as {out_name}",
                agg_col.unwrap_or("*")
            ),
            table.n_rows(),
            Table::n_rows,
            || table.group_by(group_cols, agg_col, op, out_name),
        )
    }

    /// Sorts `table` in place by `cols` (paper `Order`).
    pub fn order_by(&self, table: &mut Table, cols: &[&str], ascending: bool) -> Result<()> {
        let rows = table.n_rows();
        self.ops.run_result(
            "order_by",
            format!("by {cols:?} {}", if ascending { "asc" } else { "desc" }),
            rows,
            |_| rows,
            || table.order_by(cols, ascending),
        )
    }

    /// Similarity join (Ringo's `SimJoin`).
    pub fn sim_join(
        &self,
        left: &Table,
        right: &Table,
        left_cols: &[&str],
        right_cols: &[&str],
        threshold: f64,
    ) -> Result<Table> {
        self.ops.run_result(
            "sim_join",
            format!("{left_cols:?} ~ {right_cols:?} <= {threshold}"),
            left.n_rows() + right.n_rows(),
            Table::n_rows,
            || left.sim_join(right, left_cols, right_cols, threshold),
        )
    }

    /// Temporal predecessor–successor join (Ringo's `NextK`).
    pub fn next_k(
        &self,
        table: &Table,
        group_col: Option<&str>,
        order_col: &str,
        k: usize,
    ) -> Result<Table> {
        self.ops.run_result(
            "next_k",
            format!("group {} order {order_col} k={k}", group_col.unwrap_or("*")),
            table.n_rows(),
            Table::n_rows,
            || table.next_k(group_col, order_col, k),
        )
    }

    // ---- conversions ----

    /// Table → directed graph via the sort-first algorithm (the paper's
    /// `ToGraph`).
    pub fn to_graph(&self, table: &Table, src_col: &str, dst_col: &str) -> Result<DirectedGraph> {
        self.ops.run_result(
            "to_graph",
            format!("{src_col} -> {dst_col}"),
            table.n_rows(),
            DirectedGraph::edge_count,
            || {
                let mut t = table.clone();
                t.set_threads(self.threads);
                ringo_convert::table_to_graph(&t, src_col, dst_col)
            },
        )
    }

    /// Table → undirected graph.
    pub fn to_undirected_graph(
        &self,
        table: &Table,
        src_col: &str,
        dst_col: &str,
    ) -> Result<UndirectedGraph> {
        self.ops.run_result(
            "to_undirected_graph",
            format!("{src_col} -- {dst_col}"),
            table.n_rows(),
            UndirectedGraph::edge_count,
            || {
                let mut t = table.clone();
                t.set_threads(self.threads);
                ringo_convert::table_to_undirected(&t, src_col, dst_col)
            },
        )
    }

    /// Graph → edge table.
    pub fn to_edge_table(&self, g: &DirectedGraph) -> Table {
        self.ops.run(
            "to_edge_table",
            String::new(),
            g.edge_count(),
            Table::n_rows,
            || ringo_convert::graph_to_edge_table(g, self.threads),
        )
    }

    /// Graph → node table with degrees.
    pub fn to_node_table(&self, g: &DirectedGraph) -> Table {
        self.ops.run(
            "to_node_table",
            String::new(),
            g.node_count(),
            Table::n_rows,
            || ringo_convert::graph_to_node_table(g, self.threads),
        )
    }

    /// Algorithm scores → table (the paper's `TableFromHashMap`).
    pub fn table_from_scores(
        &self,
        scores: &[(NodeId, f64)],
        id_col: &str,
        score_col: &str,
    ) -> Table {
        self.ops.run(
            "table_from_scores",
            format!("{id_col}, {score_col}"),
            scores.len(),
            Table::n_rows,
            || ringo_convert::scores_to_table(scores, id_col, score_col),
        )
    }

    // ---- graph analytics (the paper's `GetPageRank` & friends) ----

    /// PageRank with the paper's defaults (0.85 damping, 10 iterations),
    /// parallelized over this context's threads.
    pub fn pagerank(&self, g: &DirectedGraph) -> Vec<(NodeId, f64)> {
        self.ops
            .run("pagerank", String::new(), g.edge_count(), Vec::len, || {
                ringo_algo::pagerank(
                    g,
                    &PageRankConfig {
                        threads: self.threads,
                        ..PageRankConfig::default()
                    },
                )
            })
    }

    /// PageRank with full parameter control.
    pub fn pagerank_with(&self, g: &DirectedGraph, config: &PageRankConfig) -> Vec<(NodeId, f64)> {
        self.ops.run(
            "pagerank",
            format!("d={} iters={}", config.damping, config.iterations),
            g.edge_count(),
            Vec::len,
            || ringo_algo::pagerank(g, config),
        )
    }

    /// HITS hub/authority scores.
    pub fn hits(
        &self,
        g: &DirectedGraph,
        iterations: usize,
    ) -> Vec<(NodeId, ringo_algo::HitsScores)> {
        self.ops.run(
            "hits",
            format!("iters={iterations}"),
            g.edge_count(),
            Vec::len,
            || ringo_algo::hits(g, iterations, self.threads),
        )
    }

    /// Parallel triangle count of an undirected graph.
    pub fn count_triangles(&self, g: &UndirectedGraph) -> u64 {
        self.ops.run(
            "count_triangles",
            String::new(),
            g.edge_count(),
            |n| usize::try_from(*n).unwrap_or(usize::MAX),
            || ringo_algo::count_triangles(g, self.threads),
        )
    }

    /// BFS hop distances.
    pub fn bfs(
        &self,
        g: &DirectedGraph,
        src: NodeId,
        dir: Direction,
    ) -> ringo_concurrent::IntHashTable<u32> {
        self.ops.run(
            "bfs",
            format!("from {src} ({dir:?})"),
            g.node_count(),
            ringo_concurrent::IntHashTable::len,
            || ringo_algo::bfs_distances(g, src, dir),
        )
    }

    /// BFS tree: id → parent id, deterministic minimum-slot tie-break
    /// (the source maps to itself).
    pub fn bfs_tree(
        &self,
        g: &DirectedGraph,
        src: NodeId,
        dir: Direction,
    ) -> ringo_concurrent::IntHashTable<NodeId> {
        self.ops.run(
            "bfs_tree",
            format!("from {src} ({dir:?})"),
            g.node_count(),
            ringo_concurrent::IntHashTable::len,
            || ringo_algo::bfs_tree(g, src, dir),
        )
    }

    /// Weakly connected components.
    pub fn wcc(&self, g: &DirectedGraph) -> ringo_algo::Components {
        self.ops.run(
            "wcc",
            String::new(),
            g.node_count(),
            ringo_algo::Components::n_components,
            || ringo_algo::weakly_connected_components(g),
        )
    }

    /// Strongly connected components.
    pub fn scc(&self, g: &DirectedGraph) -> ringo_algo::Components {
        self.ops.run(
            "scc",
            String::new(),
            g.node_count(),
            ringo_algo::Components::n_components,
            || ringo_algo::strongly_connected_components(g),
        )
    }

    /// Parallel weakly connected components (concurrent union-find).
    pub fn wcc_parallel(&self, g: &DirectedGraph) -> ringo_algo::Components {
        self.ops.run(
            "wcc_parallel",
            String::new(),
            g.node_count(),
            ringo_algo::Components::n_components,
            || ringo_algo::weakly_connected_components_parallel(g, self.threads),
        )
    }

    /// k-core subgraph of an undirected graph.
    pub fn k_core(&self, g: &UndirectedGraph, k: u32) -> UndirectedGraph {
        self.ops.run(
            "k_core",
            format!("k={k}"),
            g.node_count(),
            UndirectedGraph::node_count,
            || ringo_algo::k_core(g, k),
        )
    }

    /// Table → weighted digraph, with weights from a column or (when
    /// `weight_col` is `None`) from row multiplicity.
    pub fn to_weighted_graph(
        &self,
        table: &Table,
        src_col: &str,
        dst_col: &str,
        weight_col: Option<&str>,
    ) -> Result<WeightedDigraph> {
        self.ops.run_result(
            "to_weighted_graph",
            format!("{src_col} -> {dst_col} w={}", weight_col.unwrap_or("count")),
            table.n_rows(),
            WeightedDigraph::edge_count,
            || ringo_convert::table_to_weighted_graph(table, src_col, dst_col, weight_col),
        )
    }

    /// Weighted PageRank over stored edge weights.
    pub fn pagerank_weighted(&self, g: &WeightedDigraph) -> Vec<(NodeId, f64)> {
        self.ops.run(
            "pagerank_weighted",
            String::new(),
            g.edge_count(),
            Vec::len,
            || {
                ringo_algo::pagerank_weighted(
                    g,
                    &PageRankConfig {
                        threads: self.threads,
                        ..PageRankConfig::default()
                    },
                )
            },
        )
    }

    /// Personalized PageRank from a seed set.
    pub fn personalized_pagerank(&self, g: &DirectedGraph, seeds: &[NodeId]) -> Vec<(NodeId, f64)> {
        self.ops.run(
            "personalized_pagerank",
            format!("{} seeds", seeds.len()),
            g.edge_count(),
            Vec::len,
            || {
                ringo_algo::personalized_pagerank(
                    g,
                    seeds,
                    &PageRankConfig {
                        threads: self.threads,
                        ..PageRankConfig::default()
                    },
                )
            },
        )
    }

    /// Eigenvector centrality.
    pub fn eigenvector_centrality(&self, g: &DirectedGraph) -> Vec<(NodeId, f64)> {
        self.ops.run(
            "eigenvector_centrality",
            String::new(),
            g.edge_count(),
            Vec::len,
            || ringo_algo::eigenvector_centrality(g, 100, 1e-10, self.threads),
        )
    }

    /// The 16-class directed triad census.
    pub fn triad_census(&self, g: &DirectedGraph) -> ringo_algo::TriadCensus {
        self.ops.run(
            "triad_census",
            String::new(),
            g.node_count(),
            |_| 16,
            || ringo_algo::triad_census(g),
        )
    }

    // ---- data generation (stand-ins for the paper's datasets) ----

    /// Synthetic StackOverflow-like posts table (§4.1 demo data).
    pub fn generate_stackoverflow(&self, config: &ringo_gen::StackOverflowConfig) -> Table {
        self.ops.run(
            "generate_stackoverflow",
            format!(
                "q={} a={} users={}",
                config.questions, config.answers, config.users
            ),
            0,
            Table::n_rows,
            || {
                let mut t = ringo_gen::generate_posts(config);
                t.set_threads(self.threads);
                t
            },
        )
    }

    /// LiveJournal-like benchmark edge table (Table 2 stand-in).
    pub fn generate_lj_like(&self, scale_factor: f64, seed: u64) -> Table {
        self.ops.run(
            "generate_lj_like",
            format!("scale={scale_factor} seed={seed}"),
            0,
            Table::n_rows,
            || {
                let mut t = ringo_gen::edges_to_table(&ringo_gen::lj_like(scale_factor, seed));
                t.set_threads(self.threads);
                t
            },
        )
    }

    /// Twitter2010-like benchmark edge table (Table 2 stand-in).
    pub fn generate_tw_like(&self, scale_factor: f64, seed: u64) -> Table {
        self.ops.run(
            "generate_tw_like",
            format!("scale={scale_factor} seed={seed}"),
            0,
            Table::n_rows,
            || {
                let mut t = ringo_gen::edges_to_table(&ringo_gen::tw_like(scale_factor, seed));
                t.set_threads(self.threads);
                t
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_thread_settings_propagate() {
        let r = Ringo::with_threads(3);
        assert_eq!(r.threads(), 3);
        let t = r.generate_lj_like(0.001, 1);
        assert_eq!(t.threads(), 3);
        let zero = Ringo::with_threads(0);
        assert_eq!(zero.threads(), 1, "clamped");
    }

    #[test]
    fn order_by_verb_logs_cardinalities() {
        let r = Ringo::with_threads(2);
        let mut t = Table::from_int_column("x", vec![3, 1, 2, 1]);
        r.order_by(&mut t, &["x"], true).unwrap();
        assert_eq!(t.int_col("x").unwrap(), &[1, 1, 2, 3]);
        let log = r.op_log();
        let rec = log
            .iter()
            .rev()
            .find(|rec| rec.name == "order_by")
            .expect("order_by recorded");
        assert_eq!(rec.rows_in, 4);
        assert_eq!(rec.rows_out, 4);
        assert!(rec.params.contains("asc"));
    }

    #[test]
    fn demo_pipeline_end_to_end() {
        let ringo = Ringo::with_threads(2);
        let posts = ringo.generate_stackoverflow(&ringo_gen::StackOverflowConfig {
            questions: 400,
            answers: 800,
            users: 150,
            ..Default::default()
        });
        let java = ringo
            .select(&posts, &Predicate::str_eq("Tag", "java"))
            .unwrap();
        assert!(java.n_rows() > 0);
        let q = ringo
            .select(&java, &Predicate::str_eq("Type", "question"))
            .unwrap();
        let a = ringo
            .select(&java, &Predicate::str_eq("Type", "answer"))
            .unwrap();
        let qa = ringo.join(&q, &a, "AcceptedAnswerId", "PostId").unwrap();
        assert!(qa.n_rows() > 0, "some java questions have accepted answers");
        // Asker (UserId) -> answerer (UserId-1).
        let g = ringo.to_graph(&qa, "UserId", "UserId-1").unwrap();
        assert!(g.node_count() > 0);
        let pr = ringo.pagerank(&g);
        let total: f64 = pr.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-6);
        let scores = ringo.table_from_scores(&pr, "User", "Scr");
        assert_eq!(scores.n_rows(), pr.len());
        // The top expert by PageRank is an answerer with many accepted
        // answers: their in-degree in g must be positive.
        let mut ranked = pr.clone();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top = ranked[0].0;
        assert!(g.in_degree(top).unwrap() > 0);
    }

    #[test]
    fn graph_table_roundtrip_through_context() {
        let ringo = Ringo::with_threads(2);
        let edges = ringo.generate_lj_like(0.002, 7);
        let g = ringo.to_graph(&edges, "src", "dst").unwrap();
        let back = ringo.to_edge_table(&g);
        assert_eq!(back.n_rows(), g.edge_count());
        let nodes = ringo.to_node_table(&g);
        assert_eq!(nodes.n_rows(), g.node_count());
        let out_sum: i64 = nodes.int_col("out_deg").unwrap().iter().sum();
        assert_eq!(out_sum as usize, g.edge_count());
    }

    #[test]
    fn weighted_pipeline_through_context() {
        let ringo = Ringo::with_threads(2);
        let posts = ringo.generate_stackoverflow(&ringo_gen::StackOverflowConfig {
            questions: 400,
            answers: 900,
            users: 120,
            ..Default::default()
        });
        let q = ringo
            .select(&posts, &Predicate::str_eq("Type", "question"))
            .unwrap();
        let a = ringo
            .select(&posts, &Predicate::str_eq("Type", "answer"))
            .unwrap();
        let qa = ringo.join(&q, &a, "AcceptedAnswerId", "PostId").unwrap();
        // Multiplicity-weighted influence graph.
        let wg = ringo
            .to_weighted_graph(&qa, "UserId", "UserId-1", None)
            .unwrap();
        assert!(wg.edge_count() <= qa.n_rows());
        let pr = ringo.pagerank_weighted(&wg);
        let total: f64 = pr.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Seeded exploration around the top expert.
        let g = ringo.to_graph(&qa, "UserId", "UserId-1").unwrap();
        let top = pr
            .iter()
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .map(|(id, _)| *id)
            .unwrap();
        let ppr = ringo.personalized_pagerank(&g, &[top]);
        assert!(!ppr.is_empty());
        let census = ringo.triad_census(&g);
        let n = g.node_count() as u64;
        assert_eq!(census.total(), n * (n - 1) * (n - 2) / 6);
        let ev = ringo.eigenvector_centrality(&g);
        assert_eq!(ev.len(), g.node_count());
    }

    #[test]
    fn analytics_helpers_run() {
        let ringo = Ringo::with_threads(2);
        let edges = ringo.generate_lj_like(0.002, 9);
        let g = ringo.to_graph(&edges, "src", "dst").unwrap();
        let u = ringo.to_undirected_graph(&edges, "src", "dst").unwrap();
        assert!(ringo.count_triangles(&u) > 0);
        let w = ringo.wcc(&g);
        assert!(w.largest() > g.node_count() / 2, "R-MAT has a giant WCC");
        let s = ringo.scc(&g);
        assert!(s.n_components() >= w.n_components());
        let core = ringo.k_core(&u, 3);
        assert!(core.node_count() < u.node_count());
        let h = ringo.hits(&g, 10);
        assert_eq!(h.len(), g.node_count());
        let src = g.node_ids().next().unwrap();
        let _ = ringo.bfs(&g, src, Direction::Out);
    }
}
