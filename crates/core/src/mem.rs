//! Heap-footprint tracking for the paper's §3 memory claims.
//!
//! The implementation moved to [`ringo_trace::mem`] so that every engine
//! crate (tables, conversions, algorithms) can attribute allocator deltas
//! to its spans; this module re-exports it unchanged for existing users
//! such as the `footprint` benchmark binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ringo_core::mem::TrackingAllocator = ringo_core::mem::TrackingAllocator;
//! ```

pub use ringo_trace::mem::*;
