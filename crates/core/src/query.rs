//! Lazy query building over the facade: [`crate::Ringo::query`].
//!
//! Where the eager facade verbs ([`crate::Ringo::select`],
//! [`crate::Ringo::join`], ...) each materialize a full intermediate
//! table, a [`QueryBuilder`] accumulates the verbs into a logical
//! [`Plan`], optimizes it (select fusion, select pushdown, column
//! pruning) and executes it with late materialization: column data is
//! gathered exactly once, at [`QueryBuilder::collect`]. The op-log
//! records one `"query"` entry whose params line is the optimized plan
//! shape with per-operator output cardinalities — morsel-driven nodes
//! add their dispatch stats inside the brackets — e.g.
//! `scan[1000000] select[37 m16 w4] project[37] collect[37] gathers=1`
//! (16 morsels executed by 4 distinct pool workers).

use crate::catalog::Snapshot;
use crate::{Result, Ringo};
use ringo_table::exec;
use ringo_table::plan::Plan;
use ringo_table::{AggOp, Predicate, Schema, Table, TableError};

/// A lazy query under construction. Created by [`Ringo::query`]; verbs
/// chain by value and nothing executes until [`QueryBuilder::collect`]
/// (or [`QueryBuilder::explain`], which only plans).
#[derive(Clone, Debug)]
pub struct QueryBuilder<'a> {
    ringo: &'a Ringo,
    tables: Vec<&'a Table>,
    plan: Plan,
}

impl Ringo {
    /// Starts a lazy query over `table`. Chain relational verbs on the
    /// returned builder, then [`QueryBuilder::collect`] to run the
    /// optimized plan with a single materialization pass:
    ///
    /// ```
    /// use ringo_core::{Predicate, Ringo, Table};
    ///
    /// let ringo = Ringo::with_threads(2);
    /// let mut t = Table::from_int_column("x", (0..100).collect());
    /// t.add_int_column("y", (0..100).map(|v| v * 2).collect()).unwrap();
    /// let out = ringo
    ///     .query(&t)
    ///     .select(&Predicate::int("x", ringo_core::Cmp::Lt, 50))
    ///     .select(&Predicate::int("x", ringo_core::Cmp::Ge, 10))
    ///     .project(&["y"])
    ///     .collect()
    ///     .unwrap();
    /// assert_eq!(out.n_rows(), 40);
    /// assert_eq!(out.n_cols(), 1);
    /// ```
    pub fn query<'a>(&'a self, table: &'a Table) -> QueryBuilder<'a> {
        QueryBuilder {
            ringo: self,
            tables: vec![table],
            plan: Plan::scan(0),
        }
    }

    /// Starts a lazy query over the table bound to `name` in `snapshot`.
    ///
    /// Because the snapshot pins one epoch, every query resolved through
    /// it — including tables pulled in later by
    /// [`QueryBuilder::join_named`] — reads the same version of the
    /// catalog, no matter how many publishes land in between collects.
    ///
    /// ```
    /// use ringo_core::{Ringo, Table};
    ///
    /// let ringo = Ringo::with_threads(2);
    /// ringo.publish_table("t", Table::from_int_column("x", vec![1, 2, 3]));
    /// let snap = ringo.snapshot();
    /// ringo.publish_table("t", Table::from_int_column("x", vec![9]));
    /// let out = ringo.query_at(&snap, "t").unwrap().collect().unwrap();
    /// assert_eq!(out.n_rows(), 3, "reads the pinned version");
    /// ```
    pub fn query_at<'a>(&'a self, snapshot: &'a Snapshot, name: &str) -> Result<QueryBuilder<'a>> {
        Ok(self.query(resolve_table(snapshot, name)?))
    }
}

/// Resolves `name` to a table borrow in `snapshot`, mapping a missing or
/// non-table binding to [`TableError::InvalidArgument`].
fn resolve_table<'a>(snapshot: &'a Snapshot, name: &str) -> Result<&'a Table> {
    snapshot
        .table(name)
        .map(|t| &**t)
        .ok_or_else(|| TableError::InvalidArgument(format!("no table {name:?} in snapshot")))
}

impl<'a> QueryBuilder<'a> {
    /// Filters rows by `predicate` (lazy [`Table::select`]).
    pub fn select(mut self, predicate: &Predicate) -> Self {
        self.plan = Plan::select(self.plan, predicate.clone());
        self
    }

    /// Keeps only `cols`, in order (lazy [`Table::project`]).
    pub fn project(mut self, cols: &[&str]) -> Self {
        self.plan = Plan::project(self.plan, cols.iter().map(|c| (*c).to_string()).collect());
        self
    }

    /// Hash-joins the query so far with `other` on
    /// `left_col == right_col` (lazy [`Table::join`]; same clash-suffix
    /// output layout).
    pub fn join(mut self, other: &'a Table, left_col: &str, right_col: &str) -> Self {
        let idx = self.tables.len();
        self.tables.push(other);
        self.plan = Plan::join(self.plan, Plan::scan(idx), left_col, right_col);
        self
    }

    /// Like [`QueryBuilder::join`], but the right side is resolved by
    /// name from a pinned [`Snapshot`] — the same consistent version of
    /// the catalog the rest of the query reads.
    pub fn join_named(
        self,
        snapshot: &'a Snapshot,
        name: &str,
        left_col: &str,
        right_col: &str,
    ) -> Result<Self> {
        Ok(self.join(resolve_table(snapshot, name)?, left_col, right_col))
    }

    /// Groups and aggregates (lazy [`Table::group_by`]).
    pub fn group_by(
        mut self,
        group_cols: &[&str],
        agg_col: Option<&str>,
        op: AggOp,
        out_name: &str,
    ) -> Self {
        self.plan = Plan::group_by(
            self.plan,
            group_cols.iter().map(|c| (*c).to_string()).collect(),
            agg_col.map(str::to_string),
            op,
            out_name,
        );
        self
    }

    /// Sorts by `cols` (lazy [`Table::order_by`]; the sort becomes a
    /// permutation of the selection vector, not a data shuffle).
    pub fn order_by(mut self, cols: &[&str], ascending: bool) -> Self {
        self.plan = Plan::order_by(
            self.plan,
            cols.iter().map(|c| (*c).to_string()).collect(),
            ascending,
        );
        self
    }

    /// Predecessor–successor join (lazy [`Table::next_k`]).
    pub fn next_k(mut self, group_col: Option<&str>, order_col: &str, k: usize) -> Self {
        self.plan = Plan::next_k(self.plan, group_col.map(str::to_string), order_col, k);
        self
    }

    /// The output schema this query will produce, validating every
    /// column reference without executing anything.
    pub fn schema(&self) -> Result<Schema> {
        self.plan.schema(&self.tables)
    }

    /// The logical plan as built so far (before optimization).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Validates the query, optimizes it, and pretty-prints the
    /// *optimized* plan — what [`QueryBuilder::collect`] would actually
    /// run — annotated with `(fused n)` / `(pushed)` / `(pruned)`
    /// markers. Nothing is executed.
    pub fn explain(&self) -> Result<String> {
        self.plan.schema(&self.tables)?;
        let optimized = self.plan.clone().optimize(&self.tables)?;
        Ok(optimized.display(&self.tables))
    }

    /// Like [`QueryBuilder::explain`], but actually executes the
    /// optimized plan and annotates every node with its observed output
    /// cardinality plus, for morsel-driven operators, how many morsels
    /// were dispatched and how many pool workers ran them. The
    /// materialized output table is discarded; no `"query"` op-log
    /// record is written.
    pub fn explain_analyze(&self) -> Result<String> {
        self.plan.schema(&self.tables)?;
        let optimized = self.plan.clone().optimize(&self.tables)?;
        let executed = exec::execute(&optimized, &self.tables)?;
        Ok(optimized.display_executed(&self.tables, &executed.stats, executed.gathers))
    }

    /// Executes the optimized plan and returns a structured per-operator
    /// profile: wall time, output cardinality, morsel dispatch, and the
    /// per-worker busy split of every node, plus query totals. The
    /// materialized output table is discarded and no `"query"` op-log
    /// record is written — like [`QueryBuilder::explain_analyze`], but
    /// returning data instead of a rendered tree (call
    /// [`QueryProfile::render`] for the human-readable table).
    pub fn profile(&self) -> Result<QueryProfile> {
        self.plan.schema(&self.tables)?;
        let optimized = self.plan.clone().optimize(&self.tables)?;
        let start = std::time::Instant::now();
        let executed = exec::execute(&optimized, &self.tables)?;
        let total_wall_ns = start.elapsed().as_nanos() as u64;
        let rows_out = executed.table.n_rows() as u64;
        let ops = executed
            .stats
            .into_iter()
            .map(|s| OpProfile {
                op: s.op,
                rows_out: s.rows_out,
                morsels: s.morsels,
                workers: s.workers,
                wall_ns: s.wall_ns,
                busy_ns: s.busy_ns,
            })
            .collect();
        Ok(QueryProfile {
            ops,
            rows_out,
            gathers: executed.gathers,
            total_wall_ns,
        })
    }

    /// Validates and optimizes the plan, executes it with one gather
    /// pass, logs a `"query"` op-log record with the executed plan
    /// shape, and returns the materialized table.
    pub fn collect(self) -> Result<Table> {
        use std::fmt::Write;
        // Validate the *raw* plan so optimization can never legalize an
        // invalid query.
        self.plan.schema(&self.tables)?;
        let optimized = self.plan.optimize(&self.tables)?;

        let rows_in: usize = self.tables.iter().map(|t| t.n_rows()).sum();
        let mem_start = ringo_trace::mem::current_bytes();
        let peak_start = ringo_trace::mem::peak_bytes();
        let start = std::time::Instant::now();
        let executed = exec::execute(&optimized, &self.tables)?;
        let wall = start.elapsed();

        let mut params = String::new();
        for stat in &executed.stats {
            // Morsel-driven nodes record their dispatch inside the
            // brackets: `select[5155 m16 w4]` = 5155 rows out, 16 morsels
            // executed by 4 distinct pool workers.
            if stat.morsels > 0 {
                let _ = write!(
                    params,
                    "{}[{} m{} w{}] ",
                    stat.op, stat.rows_out, stat.morsels, stat.workers
                );
            } else {
                let _ = write!(params, "{}[{}] ", stat.op, stat.rows_out);
            }
        }
        let _ = write!(params, "gathers={}", executed.gathers);
        let mut table = executed.table;
        table.set_threads(self.ringo.threads);
        self.ringo.ops.push(crate::OpRecord {
            seq: 0,
            name: "query",
            params,
            rows_in: rows_in as u64,
            rows_out: table.n_rows() as u64,
            wall,
            mem_delta: ringo_trace::mem::current_bytes() as i64 - mem_start as i64,
            mem_peak_delta: ringo_trace::mem::peak_bytes().saturating_sub(peak_start) as u64,
        });
        Ok(table)
    }
}

/// One executed plan node in a [`QueryProfile`], post-order (ending with
/// the final `collect`).
#[derive(Clone, Debug)]
pub struct OpProfile {
    /// Short operator name (`scan`, `select`, `join`, ..., `collect`).
    pub op: &'static str,
    /// Rows flowing out of the node.
    pub rows_out: u64,
    /// Morsels dispatched (0 for non-morsel-driven nodes).
    pub morsels: u32,
    /// Distinct pool workers that executed at least one morsel.
    pub workers: u32,
    /// Wall time of the node in nanoseconds (always recorded).
    pub wall_ns: u64,
    /// Busy nanoseconds per executing worker, sorted descending; the
    /// spread exposes skew (empty for non-morsel-driven nodes).
    pub busy_ns: Vec<u64>,
}

impl OpProfile {
    /// Each worker's share of the node's total busy time, in percent,
    /// matching `busy_ns` order (descending). Empty when the node was not
    /// morsel-driven or recorded no busy time.
    pub fn busy_share(&self) -> Vec<f64> {
        let total: u64 = self.busy_ns.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        self.busy_ns
            .iter()
            .map(|&ns| ns as f64 * 100.0 / total as f64)
            .collect()
    }
}

/// Structured result of [`QueryBuilder::profile`]: per-operator timings
/// and parallelism plus query totals.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// Per-node profile entries, post-order, ending with `collect`.
    pub ops: Vec<OpProfile>,
    /// Rows in the (discarded) output table.
    pub rows_out: u64,
    /// Gather passes executed (0 or 1 per collect).
    pub gathers: u32,
    /// End-to-end wall time of the optimized plan, nanoseconds.
    pub total_wall_ns: u64,
}

impl QueryProfile {
    /// Renders the profile as an aligned table: one row per operator with
    /// wall time, its share of the total, output rows, morsel dispatch,
    /// and the per-worker busy split.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "query profile  total={}  rows={}  gathers={}",
            ringo_trace::fmt_ns(self.total_wall_ns),
            self.rows_out,
            self.gathers
        );
        let _ = writeln!(
            out,
            "  {:<8} {:>10} {:>10} {:>5} {:>8} {:>8}  busy share",
            "op", "rows", "time", "%", "morsels", "workers"
        );
        for op in &self.ops {
            let pct = if self.total_wall_ns > 0 {
                op.wall_ns as f64 * 100.0 / self.total_wall_ns as f64
            } else {
                0.0
            };
            let _ = write!(
                out,
                "  {:<8} {:>10} {:>10} {:>4.0}%",
                op.op,
                op.rows_out,
                ringo_trace::fmt_ns(op.wall_ns),
                pct
            );
            if op.morsels > 0 {
                let _ = write!(out, " {:>8} {:>8}  ", op.morsels, op.workers);
                let shares = op.busy_share();
                for (i, s) in shares.iter().enumerate() {
                    if i > 0 {
                        out.push('/');
                    }
                    let _ = write!(out, "{s:.0}%");
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, Predicate, Ringo};
    use ringo_table::{AggOp, ColumnType, Table};

    fn sample() -> Table {
        let mut t = Table::from_int_column("id", (0..200).collect());
        t.add_int_column("val", (0..200).map(|v| v % 7).collect())
            .unwrap();
        t.add_float_column("score", (0..200).map(|v| v as f64 * 0.5).collect())
            .unwrap();
        t
    }

    #[test]
    fn lazy_chain_matches_eager_chain() {
        let ringo = Ringo::with_threads(2);
        let t = sample();
        let p1 = Predicate::int("id", Cmp::Lt, 150);
        let p2 = Predicate::int("val", Cmp::Eq, 3);
        let lazy = ringo
            .query(&t)
            .select(&p1)
            .select(&p2)
            .project(&["id", "score"])
            .collect()
            .unwrap();
        let eager = t
            .select(&p1)
            .unwrap()
            .select(&p2)
            .unwrap()
            .project(&["id", "score"])
            .unwrap();
        assert_eq!(lazy.n_rows(), eager.n_rows());
        assert_eq!(lazy.int_col("id").unwrap(), eager.int_col("id").unwrap());
        assert_eq!(lazy.row_ids(), eager.row_ids());
        assert_eq!(lazy.threads(), 2, "output adopts context threads");
    }

    #[test]
    fn query_logs_plan_shape_with_single_gather() {
        let ringo = Ringo::with_threads(2);
        let t = sample();
        ringo
            .query(&t)
            .select(&Predicate::int("val", Cmp::Lt, 3))
            .select(&Predicate::int("id", Cmp::Ge, 10))
            .project(&["id"])
            .collect()
            .unwrap();
        let log = ringo.op_log();
        let rec = log
            .iter()
            .rev()
            .find(|r| r.name == "query")
            .expect("query recorded");
        assert!(rec.params.contains("scan[200]"), "params: {}", rec.params);
        assert!(rec.params.contains("gathers=1"), "params: {}", rec.params);
        assert_eq!(rec.rows_in, 200);
        // Fused: exactly one select node executed.
        assert_eq!(rec.params.matches("select[").count(), 1);
    }

    #[test]
    fn explain_shows_optimizer_markers() {
        let ringo = Ringo::with_threads(2);
        let t = sample();
        let q = ringo
            .query(&t)
            .project(&["id", "val"])
            .select(&Predicate::int("val", Cmp::Lt, 3))
            .select(&Predicate::int("id", Cmp::Ge, 10));
        let plan = q.explain().unwrap();
        assert!(plan.contains("(fused 2)"), "plan:\n{plan}");
        assert!(plan.contains("(pushed)"), "plan:\n{plan}");
        assert!(plan.contains("Scan #0"), "plan:\n{plan}");
    }

    #[test]
    fn join_and_group_through_builder() {
        let ringo = Ringo::with_threads(2);
        let left = sample();
        let right = Table::from_int_column("val", vec![0, 1, 2]);
        let lazy = ringo
            .query(&left)
            .join(&right, "val", "val")
            .group_by(&["val"], None, AggOp::Count, "n")
            .collect()
            .unwrap();
        let eager = left
            .join(&right, "val", "val")
            .unwrap()
            .group_by(&["val"], None, AggOp::Count, "n")
            .unwrap();
        assert_eq!(lazy.n_rows(), eager.n_rows());
        assert_eq!(lazy.int_col("n").unwrap(), eager.int_col("n").unwrap());
    }

    #[test]
    fn profile_reports_per_operator_times_and_workers() {
        let ringo = Ringo::with_threads(2);
        let t = sample();
        let q = ringo
            .query(&t)
            .select(&Predicate::int("val", Cmp::Lt, 3))
            .project(&["id"]);
        let p = q.profile().unwrap();
        let ops: Vec<&str> = p.ops.iter().map(|o| o.op).collect();
        // The optimizer may insert a pruning projection before the select, so
        // assert on the load-bearing shape rather than the exact node list.
        assert_eq!(ops.first(), Some(&"scan"));
        assert_eq!(ops.last(), Some(&"collect"));
        assert!(
            ops.contains(&"select") && ops.contains(&"project"),
            "{ops:?}"
        );
        let select = p.ops.iter().find(|o| o.op == "select").unwrap();
        assert!(select.morsels >= 1, "select is morsel-driven");
        assert!(select.workers >= 1);
        assert_eq!(select.busy_ns.len(), select.workers as usize);
        let shares = select.busy_share();
        if !shares.is_empty() {
            assert!((shares.iter().sum::<f64>() - 100.0).abs() < 1e-6);
        }
        assert!(p.gathers <= 1);
        let rendered = p.render();
        assert!(rendered.contains("query profile"), "{rendered}");
        assert!(rendered.contains("select"), "{rendered}");
        assert!(rendered.contains("busy share"), "{rendered}");
        // No op-log record: profile is observe-only, like explain_analyze.
        assert!(ringo.op_log().iter().all(|r| r.name != "query"));
    }

    #[test]
    fn snapshot_resolved_query_reads_one_version() {
        let ringo = Ringo::with_threads(2);
        ringo.publish_table("posts", sample());
        ringo.publish_table("vals", Table::from_int_column("val", vec![0, 1, 2]));
        let snap = ringo.snapshot();
        // Publishes landing mid-session must not leak into the pinned
        // snapshot — not even for tables joined in by name later.
        ringo.publish_table("posts", Table::from_int_column("id", vec![1]));
        ringo.publish_table("vals", Table::from_int_column("val", vec![7]));
        let out = ringo
            .query_at(&snap, "posts")
            .unwrap()
            .select(&Predicate::int("id", Cmp::Lt, 50))
            .join_named(&snap, "vals", "val", "val")
            .unwrap()
            .group_by(&["val"], None, AggOp::Count, "n")
            .collect()
            .unwrap();
        assert_eq!(out.n_rows(), 3, "joined the pinned 3-row vals table");
        let n: i64 = out.int_col("n").unwrap().iter().sum();
        // ids 0..50 with id%7 == 0 (8 of them), 1 (7), or 2 (7).
        assert_eq!(n, 22);
        // Unknown names and non-tables error cleanly.
        assert!(ringo.query_at(&snap, "nope").is_err());
    }

    #[test]
    fn schema_validates_without_executing() {
        let ringo = Ringo::with_threads(2);
        let t = sample();
        let q = ringo.query(&t).project(&["id"]);
        let s = q.clone().schema().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.column_type(0), ColumnType::Int);
        // A column projected away errors at plan time, like the eager path.
        assert!(q
            .select(&Predicate::int("val", Cmp::Eq, 1))
            .collect()
            .is_err());
        assert!(ringo.op_log().iter().all(|r| r.name != "query"));
    }
}
