//! Versioned catalog of named tables and graphs: [`Catalog`].
//!
//! The paper's interactive workflow keeps many intermediate tables and
//! graphs alive at once ("secondary data structures are cheap to
//! recompute but expensive to lose"). A long-running session therefore
//! wants *snapshots*: a reader in the middle of a multi-collect analysis
//! must keep seeing the versions it started with, even while another
//! verb publishes replacements or compacts a graph's adjacency slabs.
//!
//! The catalog delivers that with the epoch machinery from
//! `ringo_concurrent::epoch`:
//!
//! * the whole namespace is one copy-on-write **root map**
//!   (`Arc<RootMap>`) held in a [`Versioned`] cell — a publish clones the
//!   map, inserts the new [`CatalogEntry`], and swings the root pointer;
//!   readers never block on it;
//! * [`Catalog::snapshot`] pins the current epoch ([`OwnedEpochGuard`])
//!   and clones the root `Arc` under the pin, so every name a
//!   [`Snapshot`] resolves — across any number of queries and algorithm
//!   runs — comes from one consistent version of the world;
//! * displaced root maps sit on the cell's retired list until
//!   [`Catalog::gc`] proves no pin predates them; because each root map
//!   holds strong `Arc`s to its datasets, a table or graph version stays
//!   alive exactly as long as some live or pinned root still names it;
//! * [`Catalog::compact_graph`] is **compaction-as-publish**: rewriting a
//!   mutated graph's adjacency into a fresh exact slab
//!   (`DirectedGraph::compact`) produces a new immutable version, which
//!   is published like any other — pinned readers keep traversing the
//!   old slabs untouched.
//!
//! Reclamation policy is governed by `RINGO_CATALOG_GC`: `auto` (the
//! default) runs a collection after every publish, `manual` defers
//! entirely to explicit [`Catalog::gc`] calls.

use ringo_concurrent::epoch::{EpochDomain, OwnedEpochGuard, Versioned};
use ringo_graph::{CompactStats, DirectedGraph};
use ringo_table::Table;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A named, versioned object in the catalog: a table or a directed
/// graph, shared immutably once published.
#[derive(Clone, Debug)]
pub enum Dataset {
    /// A published table version.
    Table(Arc<Table>),
    /// A published graph version.
    Graph(Arc<DirectedGraph>),
}

impl Dataset {
    /// The dataset's kind tag.
    pub fn kind(&self) -> DatasetKind {
        match self {
            Dataset::Table(_) => DatasetKind::Table,
            Dataset::Graph(_) => DatasetKind::Graph,
        }
    }

    /// Rows for a table, edges for a graph — the `ls` cardinality.
    pub fn cardinality(&self) -> u64 {
        match self {
            Dataset::Table(t) => t.n_rows() as u64,
            Dataset::Graph(g) => g.edge_count() as u64,
        }
    }

    /// The table, if this is one.
    pub fn as_table(&self) -> Option<&Arc<Table>> {
        match self {
            Dataset::Table(t) => Some(t),
            Dataset::Graph(_) => None,
        }
    }

    /// The graph, if this is one.
    pub fn as_graph(&self) -> Option<&Arc<DirectedGraph>> {
        match self {
            Dataset::Graph(g) => Some(g),
            Dataset::Table(_) => None,
        }
    }
}

/// Kind tag for [`Dataset`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// Relational table.
    Table,
    /// Directed graph.
    Graph,
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetKind::Table => write!(f, "table"),
            DatasetKind::Graph => write!(f, "graph"),
        }
    }
}

/// Metadata of one published version of a name.
#[derive(Clone, Debug)]
pub struct VersionMeta {
    /// Per-name version number, starting at 1.
    pub version: u64,
    /// Domain epoch at which this version became current.
    pub epoch: u64,
    /// Table or graph.
    pub kind: DatasetKind,
    /// Rows (table) or edges (graph).
    pub cardinality: u64,
}

/// One name's current binding inside a root map.
#[derive(Clone, Debug)]
struct CatalogEntry {
    meta: VersionMeta,
    data: Dataset,
}

/// The copy-on-write namespace: every publish installs a fresh map.
type RootMap = HashMap<String, CatalogEntry>;

/// Reclamation policy for displaced root maps (`RINGO_CATALOG_GC`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcPolicy {
    /// Collect after every publish (default).
    Auto,
    /// Only collect on explicit [`Catalog::gc`] calls.
    Manual,
}

/// The process-wide gc policy: `RINGO_CATALOG_GC=manual` defers all
/// reclamation to explicit [`Catalog::gc`] calls; anything else (or
/// unset) means [`GcPolicy::Auto`], with a warning for invalid values
/// (same ignore-invalid policy as `RINGO_THREADS`).
pub fn gc_policy() -> GcPolicy {
    static CACHED: OnceLock<GcPolicy> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("RINGO_CATALOG_GC") {
            match v.as_str() {
                "auto" => return GcPolicy::Auto,
                "manual" => return GcPolicy::Manual,
                _ => eprintln!(
                    "ringo: ignoring invalid RINGO_CATALOG_GC={v:?} \
                     (expected \"auto\" or \"manual\"); using auto"
                ),
            }
        }
        GcPolicy::Auto
    })
}

/// Writer-side state, serialized under one lock so publishes are
/// read-modify-write atomic over the root map.
#[derive(Debug, Default)]
struct WriterState {
    /// Full publish history per name — metadata only (no strong `Arc`s),
    /// so lineage never extends a version's lifetime.
    lineage: HashMap<String, Vec<VersionMeta>>,
}

struct CatalogInner {
    domain: Arc<EpochDomain>,
    root: Versioned<Arc<RootMap>>,
    writer: Mutex<WriterState>,
    policy: GcPolicy,
}

/// A catalog of named versioned datasets with lock-free snapshot
/// readers. Cloning is cheap and clones share the same namespace (like
/// [`crate::Ringo`] clones sharing one op-log).
///
/// ```
/// use ringo_core::catalog::Catalog;
/// use ringo_core::Table;
///
/// let cat = Catalog::new();
/// cat.publish_table("posts", Table::from_int_column("id", vec![1, 2, 3]));
/// let snap = cat.snapshot();
/// // A later publish does not disturb the pinned snapshot.
/// cat.publish_table("posts", Table::from_int_column("id", vec![4]));
/// assert_eq!(snap.table("posts").unwrap().n_rows(), 3);
/// assert_eq!(cat.snapshot().table("posts").unwrap().n_rows(), 1);
/// ```
#[derive(Clone)]
pub struct Catalog {
    inner: Arc<CatalogInner>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog with its own epoch domain and the process-wide
    /// [`gc_policy`].
    pub fn new() -> Self {
        Self::with_policy(gc_policy())
    }

    /// An empty catalog with an explicit reclamation policy (tests force
    /// [`GcPolicy::Manual`] to observe retired versions).
    pub fn with_policy(policy: GcPolicy) -> Self {
        let domain = Arc::new(EpochDomain::new());
        Self {
            inner: Arc::new(CatalogInner {
                root: Versioned::new(Arc::clone(&domain), Arc::new(RootMap::new())),
                domain,
                writer: Mutex::new(WriterState::default()),
                policy,
            }),
        }
    }

    /// Publishes `table` as the new current version of `name`, returning
    /// its per-name version number. Readers holding a [`Snapshot`] keep
    /// seeing the version they pinned.
    pub fn publish_table(&self, name: &str, table: impl Into<Arc<Table>>) -> u64 {
        self.publish(name, Dataset::Table(table.into()))
    }

    /// Publishes `graph` as the new current version of `name`.
    pub fn publish_graph(&self, name: &str, graph: impl Into<Arc<DirectedGraph>>) -> u64 {
        self.publish(name, Dataset::Graph(graph.into()))
    }

    /// Publishes `data` under `name`: copy-on-write insert into a fresh
    /// root map, then a single `Release` pointer swing. Never blocks
    /// readers.
    pub fn publish(&self, name: &str, data: Dataset) -> u64 {
        let mut writer = lock(&self.inner.writer);
        let version = self.publish_locked(&mut writer, name, data);
        drop(writer);
        if self.inner.policy == GcPolicy::Auto {
            self.gc();
        }
        version
    }

    /// The publish body, with the writer lock already held — shared by
    /// [`publish`](Self::publish) and [`compact_graph`](Self::compact_graph),
    /// whose resolve→compact→publish sequence must hold the lock across
    /// all three steps to stay atomic against racing publishers.
    fn publish_locked(&self, writer: &mut WriterState, name: &str, data: Dataset) -> u64 {
        let mut sp = ringo_trace::span!("catalog.publish");
        let mut map = {
            let guard = self.inner.domain.pin();
            RootMap::clone(self.inner.root.load(&guard))
        };
        let history = writer.lineage.entry(name.to_string()).or_default();
        let version = history.len() as u64 + 1;
        let meta = VersionMeta {
            version,
            // The writer lock serializes every publish on this domain, so
            // the post-advance epoch of the swing below is exactly one
            // past the current reading.
            epoch: self.inner.domain.epoch() + 1,
            kind: data.kind(),
            cardinality: data.cardinality(),
        };
        history.push(meta.clone());
        map.insert(name.to_string(), CatalogEntry { meta, data });
        sp.rows_out(map.len());
        self.inner.root.publish(Arc::new(map));
        version
    }

    /// Removes `name` from the current namespace (a publish of a root
    /// map without it). Returns whether the name was bound. Lineage is
    /// kept, and pinned snapshots still resolve the name.
    pub fn remove(&self, name: &str) -> bool {
        let writer = lock(&self.inner.writer);
        let mut map = {
            let guard = self.inner.domain.pin();
            RootMap::clone(self.inner.root.load(&guard))
        };
        let existed = map.remove(name).is_some();
        if existed {
            self.inner.root.publish(Arc::new(map));
        }
        drop(writer);
        if existed && self.inner.policy == GcPolicy::Auto {
            self.gc();
        }
        existed
    }

    /// Pins the current epoch and returns a consistent view of every
    /// name. All resolution through the returned [`Snapshot`] — across a
    /// whole multi-collect session — reads the same version of the world,
    /// and [`Catalog::gc`] will not reclaim anything the pin protects.
    pub fn snapshot(&self) -> Snapshot {
        let guard = self.inner.domain.pin_owned();
        let root = Arc::clone(self.inner.root.load_owned(&guard));
        ringo_trace::counter("catalog.snapshot").add(1);
        Snapshot {
            epoch: guard.epoch(),
            _guard: guard,
            root,
        }
    }

    /// The current version of `name`, if bound (an unpinned point read;
    /// for multi-step consistency take a [`Catalog::snapshot`]).
    pub fn get(&self, name: &str) -> Option<Dataset> {
        let guard = self.inner.domain.pin();
        self.inner
            .root
            .load(&guard)
            .get(name)
            .map(|e| e.data.clone())
    }

    /// Every version ever published under `name`, oldest first
    /// (metadata only — history does not keep old data alive).
    pub fn versions(&self, name: &str) -> Vec<VersionMeta> {
        lock(&self.inner.writer)
            .lineage
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Current bindings, sorted by name — the shell's `ls`.
    pub fn list(&self) -> Vec<(String, VersionMeta)> {
        let guard = self.inner.domain.pin();
        let mut out: Vec<(String, VersionMeta)> = self
            .inner
            .root
            .load(&guard)
            .iter()
            .map(|(name, e)| (name.clone(), e.meta.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Compaction-as-publish: rewrites the current version of graph
    /// `name` into a fresh exactly-sized adjacency slab and publishes the
    /// result as a new version. Returns the new version number and the
    /// compaction accounting, or `None` when `name` is not a graph.
    ///
    /// Pinned snapshots keep traversing the old version's slabs; the
    /// dead ranges they hold go back to the allocator once the last such
    /// pin drops and [`Catalog::gc`] runs.
    pub fn compact_graph(&self, name: &str) -> Option<(u64, CompactStats)> {
        let mut sp = ringo_trace::span!("catalog.compact");
        // The writer lock is held across resolve→compact→publish: a
        // publish racing in between would otherwise be silently
        // overwritten by a compacted copy of the older topology (lost
        // update). Readers are unaffected — they never take this lock.
        let mut writer = lock(&self.inner.writer);
        let current = {
            let guard = self.inner.domain.pin();
            match self
                .inner
                .root
                .load(&guard)
                .get(name)
                .map(|e| e.data.clone())
            {
                Some(Dataset::Graph(g)) => g,
                _ => return None,
            }
        };
        // Clone-then-compact: surviving slab views clone as cheap `Arc`
        // bumps, and the rewrite binds the clone to a brand-new slab, so
        // the published version shares no mutable state with the old one.
        let mut rewritten = DirectedGraph::clone(&current);
        let stats = rewritten.compact();
        sp.rows_in(stats.before.footprint_bytes());
        sp.rows_out(stats.after.footprint_bytes());
        let version = self.publish_locked(&mut writer, name, Dataset::Graph(Arc::new(rewritten)));
        drop(writer);
        if self.inner.policy == GcPolicy::Auto {
            self.gc();
        }
        Some((version, stats))
    }

    /// Frees every displaced root map no pinned snapshot can still
    /// reach, returning how many were reclaimed. Dropping a root map
    /// drops its `Arc` references, so table and graph versions named by
    /// no newer root are freed here too.
    pub fn gc(&self) -> usize {
        let mut sp = ringo_trace::span!("catalog.gc");
        let freed = self.inner.root.gc();
        sp.rows_out(freed);
        freed
    }

    /// Root-map versions displaced but not yet reclaimed.
    pub fn retired_count(&self) -> usize {
        self.inner.root.retired_count()
    }

    /// Snapshots (pin slots) currently holding an epoch — the shell's
    /// "pinned readers" figure.
    pub fn pinned_readers(&self) -> usize {
        self.inner.domain.pinned_count()
    }

    /// The domain's current epoch (advances once per publish).
    pub fn epoch(&self) -> u64 {
        self.inner.domain.epoch()
    }

    /// The reclamation policy this catalog was built with.
    pub fn policy(&self) -> GcPolicy {
        self.inner.policy
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("epoch", &self.epoch())
            .field("entries", &self.list().len())
            .field("retired", &self.retired_count())
            .field("pinned_readers", &self.pinned_readers())
            .field("policy", &self.inner.policy)
            .finish()
    }
}

/// A pinned, consistent view of the catalog at one epoch.
///
/// Holds an [`OwnedEpochGuard`], so the epoch machinery keeps every
/// version this snapshot can reach alive until the snapshot drops —
/// [`Catalog::gc`] skips anything the pin protects. Resolve names with
/// [`Snapshot::table`] / [`Snapshot::graph`] and feed the borrows to
/// queries and algorithm verbs; every resolution sees the same world.
pub struct Snapshot {
    _guard: OwnedEpochGuard,
    root: Arc<RootMap>,
    epoch: u64,
}

impl Snapshot {
    /// The epoch this snapshot pinned.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of names bound in this snapshot.
    pub fn len(&self) -> usize {
        self.root.len()
    }

    /// Whether the snapshot holds no names.
    pub fn is_empty(&self) -> bool {
        self.root.is_empty()
    }

    /// Bound names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.root.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// The dataset bound to `name` in this snapshot.
    pub fn get(&self, name: &str) -> Option<&Dataset> {
        self.root.get(name).map(|e| &e.data)
    }

    /// Version metadata of `name` in this snapshot.
    pub fn meta(&self, name: &str) -> Option<&VersionMeta> {
        self.root.get(name).map(|e| &e.meta)
    }

    /// The table bound to `name`, if it is one.
    pub fn table(&self, name: &str) -> Option<&Arc<Table>> {
        self.get(name).and_then(Dataset::as_table)
    }

    /// The graph bound to `name`, if it is one.
    pub fn graph(&self, name: &str) -> Option<&Arc<DirectedGraph>> {
        self.get(name).and_then(Dataset::as_graph)
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("entries", &self.root.len())
            .finish()
    }
}

/// Poison-swallowing lock helper: catalog state stays usable even if a
/// panicking thread held the writer lock (the map it was cloning never
/// got published).
fn lock(m: &Mutex<WriterState>) -> std::sync::MutexGuard<'_, WriterState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: i64) -> Table {
        Table::from_int_column("id", (0..n).collect())
    }

    #[test]
    fn publish_get_versions_roundtrip() {
        let cat = Catalog::with_policy(GcPolicy::Manual);
        assert_eq!(cat.publish_table("t", table(3)), 1);
        assert_eq!(cat.publish_table("t", table(5)), 2);
        let got = cat.get("t").expect("bound");
        assert_eq!(got.cardinality(), 5);
        assert_eq!(got.kind(), DatasetKind::Table);
        let vs = cat.versions("t");
        assert_eq!(vs.len(), 2);
        assert_eq!((vs[0].version, vs[0].cardinality), (1, 3));
        assert_eq!((vs[1].version, vs[1].cardinality), (2, 5));
        assert!(vs[1].epoch > vs[0].epoch, "epochs advance per publish");
        assert!(cat.get("missing").is_none());
        assert!(cat.versions("missing").is_empty());
    }

    #[test]
    fn snapshot_isolation_across_publishes() {
        let cat = Catalog::with_policy(GcPolicy::Manual);
        cat.publish_table("t", table(3));
        let snap = cat.snapshot();
        cat.publish_table("t", table(7));
        cat.publish_table("u", table(1));
        // The pinned snapshot still resolves the old world.
        assert_eq!(snap.table("t").expect("pinned version").n_rows(), 3);
        assert!(snap.get("u").is_none(), "name published after the pin");
        assert_eq!(snap.names(), vec!["t"]);
        // A fresh snapshot sees the new world.
        let now = cat.snapshot();
        assert_eq!(now.table("t").expect("current").n_rows(), 7);
        assert_eq!(now.names(), vec!["t", "u"]);
        assert!(now.epoch() > snap.epoch());
    }

    #[test]
    fn gc_never_reclaims_under_a_pin() {
        let cat = Catalog::with_policy(GcPolicy::Manual);
        cat.publish_table("t", table(2));
        let snap = cat.snapshot();
        cat.publish_table("t", table(4));
        cat.publish_table("t", table(6));
        assert_eq!(cat.retired_count(), 3, "three displaced roots");
        // The initial empty root was displaced *before* the pin, so it is
        // collectable; the two roots displaced after it are not.
        assert_eq!(cat.gc(), 1, "only the pre-pin root goes");
        assert_eq!(snap.table("t").expect("still alive").n_rows(), 2);
        assert_eq!(cat.gc(), 0, "pinned roots never reclaimed");
        drop(snap);
        assert_eq!(cat.gc(), 2);
        assert_eq!(cat.retired_count(), 0);
    }

    #[test]
    fn auto_policy_collects_behind_readers() {
        let cat = Catalog::with_policy(GcPolicy::Auto);
        cat.publish_table("t", table(1));
        cat.publish_table("t", table(2));
        assert_eq!(cat.retired_count(), 0, "auto gc keeps up with no pins");
        let snap = cat.snapshot();
        cat.publish_table("t", table(3));
        assert!(cat.retired_count() > 0, "pin blocks auto gc");
        drop(snap);
        cat.publish_table("t", table(4));
        assert_eq!(cat.retired_count(), 0, "drained once unpinned");
    }

    #[test]
    fn remove_unbinds_but_pins_survive() {
        let cat = Catalog::with_policy(GcPolicy::Manual);
        cat.publish_table("t", table(2));
        let snap = cat.snapshot();
        assert!(cat.remove("t"));
        assert!(!cat.remove("t"), "second remove is a no-op");
        assert!(cat.get("t").is_none());
        assert_eq!(snap.table("t").expect("pinned binding").n_rows(), 2);
        assert_eq!(cat.versions("t").len(), 1, "lineage survives remove");
    }

    #[test]
    fn list_reports_sorted_bindings() {
        let cat = Catalog::with_policy(GcPolicy::Manual);
        cat.publish_table("zeta", table(1));
        cat.publish_table("alpha", table(9));
        let ls = cat.list();
        let names: Vec<&str> = ls.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(ls[0].1.cardinality, 9);
    }

    #[test]
    fn compact_graph_publishes_new_version() {
        let cat = Catalog::with_policy(GcPolicy::Manual);
        // Bulk-load a slab-backed graph, then delete edges to strand
        // dead slab ranges.
        let mut g = DirectedGraph::new();
        for i in 0..50i64 {
            g.add_edge(i, i + 1);
        }
        cat.publish_graph("g", g.clone());
        let snap = cat.snapshot();
        let (version, stats) = cat.compact_graph("g").expect("graph bound");
        assert_eq!(version, 2);
        assert_eq!(stats.after.dead_slab_bytes(), 0);
        // The snapshot still reads version 1; the new version is live.
        assert_eq!(snap.meta("g").expect("pinned").version, 1);
        assert_eq!(cat.snapshot().meta("g").expect("current").version, 2);
        let old = snap.graph("g").expect("pinned graph");
        let new = cat.get("g").and_then(|d| d.as_graph().cloned()).expect("g");
        assert_eq!(old.edge_count(), new.edge_count());
        assert!(cat.compact_graph("missing").is_none());
        cat.publish_table("t", table(1));
        assert!(cat.compact_graph("t").is_none(), "tables do not compact");
    }

    #[test]
    fn compact_never_loses_a_racing_publish() {
        // compact_graph holds the writer lock across resolve+compact+
        // publish. A publisher of strictly growing graphs racing a
        // compact loop must therefore leave a lineage whose cardinality
        // never decreases — a stale compact (the pre-fix race) would
        // re-publish a smaller, older topology after a bigger one.
        let cat = Catalog::with_policy(GcPolicy::Auto);
        let mut g = DirectedGraph::new();
        g.add_edge(0, 1);
        cat.publish_graph("g", g.clone());
        let publisher = {
            let cat = cat.clone();
            std::thread::spawn(move || {
                for i in 1..40i64 {
                    g.add_edge(i, i + 1);
                    cat.publish_graph("g", g.clone());
                }
            })
        };
        for _ in 0..40 {
            cat.compact_graph("g").expect("graph stays bound");
        }
        publisher.join().unwrap();
        let vs = cat.versions("g");
        for w in vs.windows(2) {
            assert!(
                w[1].cardinality >= w[0].cardinality,
                "version {} shrank from {} to {} edges: \
                 a compact published a stale topology",
                w[1].version,
                w[0].cardinality,
                w[1].cardinality
            );
        }
        assert_eq!(
            cat.get("g").expect("bound").cardinality(),
            40,
            "the newest topology wins"
        );
    }

    #[test]
    fn clones_share_one_namespace() {
        let cat = Catalog::with_policy(GcPolicy::Manual);
        let other = cat.clone();
        cat.publish_table("t", table(4));
        assert_eq!(other.get("t").expect("shared").cardinality(), 4);
        assert_eq!(other.epoch(), cat.epoch());
    }
}
