//! Epoch-based version reclamation: wait-free reader pins, single-writer
//! copy-on-write publish, deferred reclamation.
//!
//! This is the substrate under the core crate's `Catalog` (GraphX-style
//! versioned snapshots of tables and graphs) and under graph compaction,
//! which publishes a rewritten adjacency slab as a new version. The
//! protocol is the classic epoch scheme specialized to one writer:
//!
//! * a [`EpochDomain`] holds a monotonically increasing **global epoch**
//!   and a fixed array of **pin slots** (`RINGO_EPOCH_SLOTS`, padded to
//!   a cache line each) — one per pinning thread, plus one per live
//!   [`OwnedEpochGuard`], which owns its slot so it can migrate threads;
//! * a reader [`EpochDomain::pin`]s by writing the epoch it observed
//!   into its thread's slot and re-validating the global epoch —
//!   steady-state this is a handful of loads and stores, no CAS, no
//!   lock, and never blocks on a writer. Nested pins on a thread bump a
//!   slot-local depth count and share the outer pin's (older) epoch, so
//!   guards may drop in any order — the slot unpins when the count
//!   returns to zero;
//! * the single writer publishes a new [`Versioned`] value by swinging
//!   the current pointer (`Release`) and *then* advancing the global
//!   epoch, recording the displaced version with the post-advance epoch;
//! * a retired version is freed only once [`EpochDomain::min_pinned`]
//!   reaches its retire epoch, so any reader that could still hold a
//!   reference keeps it alive.
//!
//! Why the re-validation loop in `pin` is load-bearing: the reader's
//! slot store and the writer's reclamation scan race in both directions
//! (Dekker's pattern — reader stores slot then loads global, writer
//! stores global then loads slots). With plain acquire/release either
//! side may miss the other and a version could be freed under a reader
//! that just pinned. Both rungs are therefore `SeqCst`: the single total
//! order guarantees that if the reader's re-load still sees the *old*
//! epoch, its slot store precedes the writer's scan, and if it sees the
//! *new* epoch, the acquire edge from the epoch advance makes the new
//! current pointer (and nothing older) the only value the reader can
//! load. The deliberately weakened variant of this protocol is killed by
//! the checker in `crates/check/tests/model_epoch.rs`.
//!
//! Everything routes through [`crate::sync`], so the same source runs on
//! real atomics in production and on `ringo-check`'s virtual atomics
//! under `--features model`.

use crate::sync::{yield_now, VAtomicPtr, VAtomicU64, VAtomicUsize, VMutex};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock, Weak};

/// Slot value meaning "no epoch pinned".
const UNPINNED: u64 = u64::MAX;

/// Slot owner flag: free for any thread (or owned guard) to claim.
const FREE: usize = 0;
/// Slot owner flag: claimed — by a thread's claim cache (borrowed pins)
/// or by one [`OwnedEpochGuard`] (which owns its slot outright).
const CLAIMED: usize = 1;
/// High bit of `Slot::depth`: the owning thread's claim cache was
/// destroyed while a borrowed guard on this thread was still live (TLS
/// destructor order is unspecified), so releasing the slot's claim
/// falls to that last guard's drop. Lives in the depth word so the
/// common unpin path needs no extra load to rule it out.
const DEPTH_ORPHANED: usize = usize::MAX / 2 + 1;

/// Default pin-slot count when `RINGO_EPOCH_SLOTS` is unset: generous
/// enough that slot claiming never becomes the bottleneck for any pool
/// size this repo targets.
pub const DEFAULT_EPOCH_SLOTS: usize = 64;

/// Pin-slot count for new domains: `RINGO_EPOCH_SLOTS` if set and
/// positive, otherwise [`DEFAULT_EPOCH_SLOTS`] (same ignore-invalid
/// policy as `RINGO_THREADS`).
pub fn epoch_slots() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("RINGO_EPOCH_SLOTS") {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => return n,
                _ => eprintln!(
                    "ringo: ignoring invalid RINGO_EPOCH_SLOTS={v:?} \
                     (expected a positive integer); using {DEFAULT_EPOCH_SLOTS}"
                ),
            }
        }
        DEFAULT_EPOCH_SLOTS
    })
}

/// One reader's pin slot, padded to its own cache line so pin/unpin
/// traffic from different threads never false-shares.
#[repr(align(128))]
#[derive(Debug, Default)]
struct Slot {
    /// The epoch this slot's owner has pinned, or [`UNPINNED`]. Written
    /// by the pinning side; read by the writer's reclamation scan.
    epoch: VAtomicU64,
    /// [`FREE`], [`CLAIMED`] or [`ORPHANED`].
    owner: VAtomicUsize,
    /// Count of live borrowed guards on this slot *beyond the first*
    /// (so the outermost pin/unpin never touches it), plus the
    /// [`DEPTH_ORPHANED`] flag bit. Borrowed guards are `!Send`, so for
    /// a TLS-claimed slot every access happens on the claiming thread —
    /// a drop defers to the remaining guards while the count is
    /// nonzero and unpins the slot otherwise, which keeps any drop
    /// order of nested guards (LIFO or not) sound. Unused (zero) for
    /// slots dedicated to an [`OwnedEpochGuard`].
    depth: VAtomicUsize,
}

/// The slot array, `Arc`-shared so thread-local claim caches can release
/// their claims on thread exit even if that races a domain drop.
#[derive(Debug)]
struct SlotArray {
    slots: Box<[Slot]>,
}

thread_local! {
    /// This thread's cached slot claims: `(domain id, slot index, array)`.
    /// Dropping the vec at thread exit releases every claim whose domain
    /// is still alive.
    static CLAIMS: RefCell<Vec<Claim>> = const { RefCell::new(Vec::new()) };
}

/// One cached slot claim (see [`CLAIMS`]).
struct Claim {
    domain_id: u64,
    idx: usize,
    array: Weak<SlotArray>,
}

impl Drop for Claim {
    fn drop(&mut self) {
        if let Some(array) = self.array.upgrade() {
            let slot = &array.slots[self.idx];
            // Borrowed guards are `!Send`, so any still-live guard on
            // this slot belongs to this thread — this TLS destructor
            // merely ran before the guard's drop (TLS destructor order
            // is unspecified, e.g. a guard parked in another TLS cell).
            // Hand the release to that last guard instead of freeing a
            // still-pinned slot out from under it, which would let a new
            // thread claim it and take an unprotected pin.
            // ORDERING: Relaxed — a TLS slot's epoch and depth are
            // written only by the owning thread, and this destructor
            // runs on it; the orphan flag is only read back by the same
            // thread's last guard drop.
            if slot.epoch.load(Ordering::Relaxed) != UNPINNED {
                let depth = slot.depth.load(Ordering::Relaxed);
                slot.depth.store(depth | DEPTH_ORPHANED, Ordering::Relaxed);
            } else {
                slot.owner.store(FREE, Ordering::Release);
            }
        }
    }
}

/// A reclamation domain: one global epoch plus the pin slots of every
/// reader thread that participates in it.
///
/// Readers call [`pin`](EpochDomain::pin) (or
/// [`pin_owned`](EpochDomain::pin_owned) from an `Arc`) and hold the
/// guard across every access to values protected by this domain. The
/// writer side lives in [`Versioned`].
#[derive(Debug)]
pub struct EpochDomain {
    /// Process-unique id, so thread-local claim caches never confuse two
    /// domains even if one is dropped and another reuses its allocation.
    id: u64,
    /// The current epoch. Starts at 1 and only grows.
    global: VAtomicU64,
    array: Arc<SlotArray>,
}

impl Default for EpochDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochDomain {
    /// A domain with [`epoch_slots`] pin slots.
    pub fn new() -> Self {
        Self::with_slots(epoch_slots())
    }

    /// A domain with an explicit slot count (the model tests shrink it to
    /// force claim contention).
    pub fn with_slots(n: usize) -> Self {
        static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let mut slots = Vec::with_capacity(n.max(1));
        slots.resize_with(n.max(1), || Slot {
            epoch: VAtomicU64::new(UNPINNED),
            owner: VAtomicUsize::new(FREE),
            depth: VAtomicUsize::new(0),
        });
        Self {
            // ORDERING: Relaxed — the id is only a uniqueness token; no
            // data is published through it. Deliberately a plain std
            // atomic (not the facade) so id generation adds no
            // preemption points to model schedules.
            id: NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            global: VAtomicU64::new(1),
            array: Arc::new(SlotArray {
                slots: slots.into_boxed_slice(),
            }),
        }
    }

    /// The current epoch (monotonic; advanced once per publish).
    pub fn epoch(&self) -> u64 {
        self.global.load(Ordering::Acquire)
    }

    /// Number of pin slots (fixed at construction).
    pub fn slot_count(&self) -> usize {
        self.array.slots.len()
    }

    /// Number of slots currently pinning an epoch — the shell's
    /// "pinned readers" figure.
    pub fn pinned_count(&self) -> usize {
        self.array
            .slots
            .iter()
            .filter(|s| s.epoch.load(Ordering::SeqCst) != UNPINNED)
            .count()
    }

    /// The oldest pinned epoch, or `u64::MAX` when nothing is pinned.
    /// A version retired at epoch `e` may be freed once
    /// `min_pinned() >= e`.
    pub fn min_pinned(&self) -> u64 {
        let mut min = UNPINNED;
        for slot in self.array.slots.iter() {
            min = min.min(slot.epoch.load(Ordering::SeqCst));
        }
        min
    }

    /// Advances the global epoch, returning the new value. Called by
    /// [`Versioned::publish`] after the pointer swing; the post-advance
    /// epoch is the retire epoch of the displaced version.
    pub fn advance(&self) -> u64 {
        self.global.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Pins the current epoch, keeping every version retired after this
    /// moment alive until the guard drops. Steady-state (slot already
    /// claimed by this thread) this is wait-free: two loads and one
    /// store, no CAS — strictly cheaper than an uncontended `RwLock`
    /// read, and never blocked by a writer publishing.
    // LINT: hot
    pub fn pin(&self) -> EpochGuard<'_> {
        let idx = self.claim_slot();
        let slot = &self.array.slots[idx];
        // ORDERING: Relaxed — a TLS slot's epoch is written only by
        // this thread; this read just detects an outer pin on the same
        // thread.
        let pinned = slot.epoch.load(Ordering::Relaxed);
        if pinned != UNPINNED {
            // Nested pin: the outer guard's older slot value already
            // protects everything retired from here on; overwriting it
            // with a newer epoch would un-protect the outer guard's
            // version mid-use. Bump the extra-guard count so the slot
            // is cleared only when the *last* guard drops, in any drop
            // order, and report the epoch the slot actually protects.
            // ORDERING: Relaxed — depth is same-thread traffic (the
            // guard is `!Send`); the scan only reads `epoch`, whose
            // cross-thread edges are the SeqCst pin protocol's.
            let depth = slot.depth.load(Ordering::Relaxed);
            slot.depth.store(depth + 1, Ordering::Relaxed);
            return EpochGuard {
                domain: self,
                idx,
                epoch: pinned,
                _not_send: PhantomData,
            };
        }
        // Outermost pin: depth (extra guards beyond this one) is
        // already 0, so only the epoch write is needed.
        let epoch = self.pin_slot(slot);
        EpochGuard {
            domain: self,
            idx,
            epoch,
            _not_send: PhantomData,
        }
    }

    /// The validated pin write shared by borrowed and owned pins: store
    /// the observed epoch, re-load, retry until they agree.
    // LINT: hot
    fn pin_slot(&self, slot: &Slot) -> u64 {
        let mut e = self.global.load(Ordering::Acquire);
        loop {
            slot.epoch.store(e, Ordering::SeqCst);
            // ORDERING: SeqCst on both the store above and this re-load —
            // Dekker's pattern against the writer's advance + scan; see
            // the module docs. If the re-load disagrees, the pin may be
            // invisible to an in-flight scan: retry at the newer epoch.
            let seen = self.global.load(Ordering::SeqCst);
            if seen == e {
                return e;
            }
            e = seen;
        }
    }

    /// Like [`pin`](Self::pin), but the guard co-owns the domain, for
    /// snapshots that must outlive the borrow (the catalog's `Snapshot`).
    ///
    /// The returned guard is `Send`: it may migrate to, and drop on, a
    /// different thread than the one that pinned — including after the
    /// pinning thread has exited. To make that sound it does not share
    /// the thread-affine TLS claim: it claims a dedicated slot here and
    /// owns it until drop, wherever that runs. Nested `pin_owned` calls
    /// therefore each occupy their own slot (size `RINGO_EPOCH_SLOTS`
    /// for the peak of concurrently-pinning threads *plus* live owned
    /// snapshots).
    pub fn pin_owned(self: &Arc<Self>) -> OwnedEpochGuard {
        let idx = self.claim_slot_slow();
        let epoch = self.pin_slot(&self.array.slots[idx]);
        OwnedEpochGuard {
            domain: Arc::clone(self),
            idx,
            epoch,
        }
    }

    /// Finds this thread's slot in the claim cache, claiming one on the
    /// first pin from this thread (nested borrowed pins reuse it via the
    /// slot's depth count and need no extra slot).
    // LINT: hot
    fn claim_slot(&self) -> usize {
        let cached = CLAIMS.with(|c| {
            c.borrow()
                .iter()
                .find(|cl| cl.domain_id == self.id)
                .map(|cl| cl.idx)
        });
        if let Some(idx) = cached {
            return idx;
        }
        let idx = self.claim_slot_slow();
        CLAIMS.with(|c| {
            let mut claims = c.borrow_mut();
            // Prune cache entries for dead domains on the miss path (the
            // only path that grows the list), so a long-lived thread
            // touching many short-lived domains doesn't scan a growing
            // list — and the steady-state hit path above stays a pure
            // TLS scan with no per-pin `Weak` upgrade traffic.
            claims.retain(|cl| cl.array.strong_count() > 0);
            claims.push(Claim {
                domain_id: self.id,
                idx,
                array: Arc::downgrade(&self.array),
            });
        });
        idx
    }

    /// Claims a free slot with a CAS: the first pin from a thread on
    /// this domain, and every [`pin_owned`](Self::pin_owned). Spins
    /// (with yields) when every slot is claimed — capacity is a
    /// configuration matter (`RINGO_EPOCH_SLOTS` must cover the peak of
    /// concurrently-pinning threads plus live owned guards), not a
    /// correctness one. [`ORPHANED`] slots are skipped: their release
    /// belongs to the lingering guard.
    fn claim_slot_slow(&self) -> usize {
        loop {
            for (idx, slot) in self.array.slots.iter().enumerate() {
                // ORDERING: Relaxed — the pre-check load is a contention
                // filter only; the AcqRel CAS (with a Relaxed failure
                // load, another filter) carries the claim's edge.
                if slot.owner.load(Ordering::Relaxed) == FREE
                    && slot
                        .owner
                        .compare_exchange(FREE, CLAIMED, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                {
                    return idx;
                }
            }
            yield_now();
        }
    }
}

/// RAII pin on an [`EpochDomain`]; see [`EpochDomain::pin`].
///
/// `!Send`: borrowed guards share this thread's TLS-claimed slot, and
/// the slot's depth bookkeeping is plain same-thread traffic — sound
/// only because the guard cannot migrate. Guards on the same thread may
/// drop in any order (the slot unpins when the last one goes). For a
/// guard that must cross threads, use [`EpochDomain::pin_owned`].
#[derive(Debug)]
pub struct EpochGuard<'a> {
    domain: &'a EpochDomain,
    idx: usize,
    epoch: u64,
    _not_send: PhantomData<*mut ()>,
}

impl EpochGuard<'_> {
    /// The epoch this guard protects: the pin-time epoch, or for a
    /// nested pin the (possibly older) epoch of this thread's outer pin.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn domain_id(&self) -> u64 {
        self.domain.id
    }
}

impl Drop for EpochGuard<'_> {
    // LINT: hot
    fn drop(&mut self) {
        let slot = &self.domain.array.slots[self.idx];
        // ORDERING: Relaxed — depth is thread-affine (the guard is
        // `!Send`). Drops may be non-LIFO relative to other guards on
        // this thread: a drop that still sees siblings (depth > 0)
        // defers to them; the drop that sees none clears the pin.
        let depth = slot.depth.load(Ordering::Relaxed);
        if depth == 0 {
            // ORDERING: Release — pairs with the writer scan's SeqCst
            // loads of the slot epoch; everything this reader did while
            // pinned is visible before the slot reads unpinned.
            slot.epoch.store(UNPINNED, Ordering::Release);
        } else if depth == DEPTH_ORPHANED {
            // Last guard on a slot whose claim cache was destroyed
            // first (see `Claim::drop`): releasing the claim fell to
            // this guard.
            slot.depth.store(0, Ordering::Relaxed);
            slot.epoch.store(UNPINNED, Ordering::Release);
            slot.owner.store(FREE, Ordering::Release);
        } else {
            // Sibling guards remain (the orphan bit, if set, rides
            // along untouched: depth - 1 keeps it while any count
            // bits remain).
            // ORDERING: Relaxed — same thread-affine depth counter as
            // the load above; no other thread observes it.
            slot.depth.store(depth - 1, Ordering::Relaxed);
        }
    }
}

/// Owning, `Send` variant of [`EpochGuard`]; see
/// [`EpochDomain::pin_owned`]. Owns its pin slot outright, so it may be
/// dropped on any thread, after the pinning thread exits included.
#[derive(Debug)]
pub struct OwnedEpochGuard {
    domain: Arc<EpochDomain>,
    idx: usize,
    epoch: u64,
}

impl OwnedEpochGuard {
    /// The epoch this guard observed at pin time.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn domain_id(&self) -> u64 {
        self.domain.id
    }
}

impl Drop for OwnedEpochGuard {
    fn drop(&mut self) {
        let slot = &self.domain.array.slots[self.idx];
        // ORDERING: Release on both stores — the unpin pairs with the
        // writer scan's SeqCst loads (same edge as `EpochGuard::drop`),
        // and the owner release is ordered after it so a thread that
        // re-claims this slot (AcqRel CAS in `claim_slot_slow`) never
        // finds our stale pinned epoch in it.
        slot.epoch.store(UNPINNED, Ordering::Release);
        slot.owner.store(FREE, Ordering::Release);
    }
}

/// One published version's heap node; owned by `current` while live,
/// then by the retired list until reclaimed.
#[derive(Debug)]
struct VersionNode<T> {
    value: T,
}

/// A version awaiting reclamation: freed once `min_pinned >= epoch`.
struct Retired<T> {
    /// The post-advance epoch of the publish that displaced this node.
    epoch: u64,
    node: *mut VersionNode<T>,
}

/// An epoch-versioned cell: readers [`load`](Versioned::load) the
/// current value under a pin, a single writer
/// [`publish`](Versioned::publish)es replacements, and displaced
/// versions are reclaimed by [`gc`](Versioned::gc) once no pin predates
/// them.
///
/// ```
/// use ringo_concurrent::epoch::{EpochDomain, Versioned};
/// use std::sync::Arc;
///
/// let domain = Arc::new(EpochDomain::new());
/// let cell = Versioned::new(Arc::clone(&domain), "v1");
/// let guard = domain.pin();
/// assert_eq!(*cell.load(&guard), "v1");
/// cell.publish("v2");
/// // The pinned reader can still reach v1's memory; new pins see v2.
/// assert_eq!(cell.gc(), 0, "v1 stays while the old pin lives");
/// drop(guard);
/// assert_eq!(cell.gc(), 1, "v1 reclaimed after unpin");
/// let guard = domain.pin();
/// assert_eq!(*cell.load(&guard), "v2");
/// ```
pub struct Versioned<T> {
    domain: Arc<EpochDomain>,
    /// Never null: constructed with an initial version.
    current: VAtomicPtr<VersionNode<T>>,
    /// Serializes publish against publish and against gc — the "single
    /// writer" of the protocol is whoever holds this lock.
    writer: VMutex<Vec<Retired<T>>>,
}

// SAFETY: the raw `VersionNode` pointers are created from `Box` and
// uniquely owned by this cell's current-pointer / retired-list
// structure; shared references handed out by `load` are `&T`, so the
// usual `Send + Sync` bounds on `T` make cross-thread sharing of the
// cell sound.
unsafe impl<T: Send + Sync> Send for Versioned<T> {}
// SAFETY: see the `Send` impl above; `load` only ever produces `&T`.
unsafe impl<T: Send + Sync> Sync for Versioned<T> {}

impl<T> Versioned<T> {
    /// A cell whose first version is `initial`, protected by `domain`.
    pub fn new(domain: Arc<EpochDomain>, initial: T) -> Self {
        let node = Box::into_raw(Box::new(VersionNode { value: initial }));
        Self {
            domain,
            current: VAtomicPtr::new(node),
            writer: VMutex::new(Vec::new()),
        }
    }

    /// The domain protecting this cell.
    pub fn domain(&self) -> &Arc<EpochDomain> {
        &self.domain
    }

    /// The current value, valid for as long as `guard` stays pinned.
    ///
    /// # Panics
    /// Panics if `guard` pins a different domain than this cell's.
    // LINT: hot
    pub fn load<'a>(&'a self, guard: &'a EpochGuard<'_>) -> &'a T {
        assert_eq!(
            guard.domain_id(),
            self.domain.id,
            "epoch guard pins a different domain than this Versioned cell"
        );
        let p = self.current.load(Ordering::Acquire);
        // SAFETY: `current` is never null, and the node it points at
        // cannot have been freed: reclamation requires `min_pinned >=
        // retire_epoch`, the validated pin holds the guard's slot at an
        // epoch older than any publish that could retire this node, and
        // the SeqCst pin/scan protocol (module docs) guarantees the scan
        // sees that slot. The `'a` bound ties the borrow to both the
        // guard (pin lifetime) and `self` (cell lifetime).
        unsafe { &(*p).value }
    }

    /// Like [`load`](Self::load) but for an owned guard.
    ///
    /// # Panics
    /// Panics if `guard` pins a different domain than this cell's.
    pub fn load_owned<'a>(&'a self, guard: &'a OwnedEpochGuard) -> &'a T {
        assert_eq!(
            guard.domain_id(),
            self.domain.id,
            "epoch guard pins a different domain than this Versioned cell"
        );
        let p = self.current.load(Ordering::Acquire);
        // SAFETY: identical argument to `load`; the owned guard pins the
        // same slot protocol.
        unsafe { &(*p).value }
    }

    /// Installs `value` as the new current version and retires the old
    /// one, returning the new global epoch. Readers never block on this:
    /// the swing is one `Release` pointer store.
    pub fn publish(&self, value: T) -> u64 {
        let mut sp = ringo_trace::span!("epoch.publish");
        let mut retired = self.writer.lock();
        let node = Box::into_raw(Box::new(VersionNode { value }));
        // ORDERING: Acquire/Release on the current pointer — only the
        // lock holder stores it, so load-then-store is not a race; the
        // Release store publishes the new node's contents to readers'
        // Acquire loads. The epoch advance AFTER the swing (SeqCst, see
        // module docs) is what makes the retire epoch safe: any reader
        // pinned before the advance can at worst still see the old node,
        // whose retire epoch now exceeds that reader's pin.
        let old = self.current.load(Ordering::Acquire);
        self.current.store(node, Ordering::Release);
        let epoch = self.domain.advance();
        retired.push(Retired { epoch, node: old });
        sp.rows_out(retired.len());
        epoch
    }

    /// Number of versions retired but not yet reclaimed.
    pub fn retired_count(&self) -> usize {
        self.writer.lock().len()
    }

    /// Frees every retired version no pinned reader can still reach,
    /// returning how many were freed.
    pub fn gc(&self) -> usize {
        let mut sp = ringo_trace::span!("epoch.gc");
        let mut retired = self.writer.lock();
        sp.rows_in(retired.len());
        let min = self.domain.min_pinned();
        let before = retired.len();
        retired.retain(|r| {
            if r.epoch <= min {
                // SAFETY: retired nodes are uniquely owned by this list
                // (the publish that displaced them holds the only other
                // path, `current`, which now points elsewhere), and
                // `min_pinned >= retire epoch` proves no reader pin can
                // still reach the node (module docs).
                drop(unsafe { Box::from_raw(r.node) });
                false
            } else {
                true
            }
        });
        let freed = before - retired.len();
        ringo_trace::counter("epoch.reclaimed").add(freed as u64);
        sp.rows_out(freed);
        freed
    }
}

impl<T> Drop for Versioned<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no guard-borrowed reference remains
        // (load ties borrows to `&self`), so both the current node and
        // every retired node are uniquely reachable from here.
        unsafe {
            drop(Box::from_raw(*self.current.get_mut()));
            for r in self.writer.get_mut().drain(..) {
                drop(Box::from_raw(r.node));
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Versioned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Versioned")
            .field("epoch", &self.domain.epoch())
            .field("retired", &self.retired_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_tracks_current_epoch() {
        let d = EpochDomain::with_slots(4);
        assert_eq!(d.epoch(), 1);
        let g = d.pin();
        assert_eq!(g.epoch(), 1);
        assert_eq!(d.pinned_count(), 1);
        assert_eq!(d.min_pinned(), 1);
        drop(g);
        assert_eq!(d.pinned_count(), 0);
        assert_eq!(d.min_pinned(), u64::MAX);
    }

    #[test]
    fn nested_pins_keep_oldest_epoch() {
        let d = Arc::new(EpochDomain::with_slots(4));
        let cell = Versioned::new(Arc::clone(&d), 1u32);
        let outer = d.pin();
        cell.publish(2);
        let inner = d.pin();
        // The inner pin must not overwrite the outer pin's older epoch.
        assert_eq!(d.min_pinned(), outer.epoch());
        assert_eq!(*cell.load(&inner), 2, "inner pin reads the new version");
        assert_eq!(cell.gc(), 0, "outer pin still protects v1");
        drop(inner);
        assert_eq!(d.min_pinned(), outer.epoch(), "outer pin survives inner");
        drop(outer);
        assert_eq!(cell.gc(), 1);
    }

    #[test]
    fn nested_guard_reports_protected_epoch() {
        let d = Arc::new(EpochDomain::with_slots(4));
        let cell = Versioned::new(Arc::clone(&d), 0u8);
        let outer = d.pin();
        cell.publish(1);
        cell.publish(2);
        let inner = d.pin();
        // The slot still pins the outer epoch; the nested guard must not
        // claim a newer one than the pin actually protects.
        assert_eq!(inner.epoch(), outer.epoch());
        assert_eq!(d.min_pinned(), outer.epoch());
    }

    #[test]
    fn non_lifo_guard_drop_keeps_remaining_pin() {
        let d = Arc::new(EpochDomain::with_slots(4));
        let cell = Versioned::new(Arc::clone(&d), vec![1u8; 32]);
        let g1 = d.pin();
        let g2 = d.pin();
        let v1 = cell.load(&g2);
        // Dropping the *first* (outermost) guard while the nested one is
        // still live must not clear the slot.
        drop(g1);
        assert_eq!(d.min_pinned(), g2.epoch(), "g2 still pins");
        cell.publish(vec![2u8; 32]);
        assert_eq!(cell.gc(), 0, "v1 stays reachable under g2");
        assert_eq!(v1[0], 1, "pinned version intact after non-LIFO drop");
        drop(g2);
        assert_eq!(cell.gc(), 1);
    }

    #[test]
    fn owned_guards_take_dedicated_slots() {
        let d = Arc::new(EpochDomain::with_slots(4));
        let a = d.pin_owned();
        let b = d.pin_owned();
        assert_eq!(d.pinned_count(), 2, "owned pins never share a slot");
        let g = d.pin();
        assert_eq!(d.pinned_count(), 3);
        // Any drop order releases exactly the dropped pin.
        drop(a);
        drop(g);
        assert_eq!(d.pinned_count(), 1);
        assert_eq!(d.min_pinned(), b.epoch());
        drop(b);
        assert_eq!(d.pinned_count(), 0);
    }

    #[test]
    fn owned_guard_survives_thread_exit_and_foreign_drop() {
        let d = Arc::new(EpochDomain::with_slots(2));
        let cell = Arc::new(Versioned::new(Arc::clone(&d), 1u32));
        // Pin on a thread that exits immediately: the guard migrates out
        // while the creating thread's TLS is torn down.
        let g = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || d.pin_owned()).join().unwrap()
        };
        // A new thread claiming a slot must not land on the migrated
        // guard's (still-pinned) slot and take an unprotected pin.
        {
            let (d, cell) = (Arc::clone(&d), Arc::clone(&cell));
            std::thread::spawn(move || {
                let inner = d.pin();
                assert_eq!(*cell.load(&inner), 1);
            })
            .join()
            .unwrap();
        }
        cell.publish(2);
        assert_eq!(cell.gc(), 0, "migrated guard still pins v1");
        assert_eq!(*cell.load_owned(&g), 2);
        // Dropped on a different thread than the one that pinned.
        drop(g);
        assert_eq!(cell.gc(), 1);
        assert_eq!(d.pinned_count(), 0);
    }

    #[test]
    fn publish_retire_reclaim_cycle() {
        let d = Arc::new(EpochDomain::with_slots(4));
        let cell = Versioned::new(Arc::clone(&d), vec![1u8; 64]);
        let g = d.pin();
        assert_eq!(cell.load(&g).len(), 64);
        for i in 0..5 {
            cell.publish(vec![i; 64]);
        }
        assert_eq!(cell.retired_count(), 5);
        assert_eq!(cell.gc(), 0, "pinned reader holds all retirees");
        drop(g);
        assert_eq!(cell.gc(), 5);
        assert_eq!(cell.retired_count(), 0);
        let g = d.pin();
        assert_eq!(*cell.load(&g), vec![4u8; 64]);
    }

    #[test]
    fn owned_guard_pins_like_borrowed() {
        let d = Arc::new(EpochDomain::with_slots(4));
        let cell = Versioned::new(Arc::clone(&d), 7i64);
        let g = d.pin_owned();
        cell.publish(8);
        assert_eq!(*cell.load_owned(&g), 8);
        assert_eq!(cell.gc(), 0);
        drop(g);
        assert_eq!(cell.gc(), 1);
    }

    #[test]
    fn slots_are_reused_across_threads() {
        let d = Arc::new(EpochDomain::with_slots(2));
        // Sequential short-lived threads release their claims on exit,
        // so two slots serve any number of them.
        for i in 0..8u64 {
            let d = Arc::clone(&d);
            std::thread::spawn(move || {
                let g = d.pin();
                assert!(g.epoch() >= 1);
                i
            })
            .join()
            .unwrap();
        }
        assert_eq!(d.pinned_count(), 0);
    }

    #[test]
    fn concurrent_readers_never_see_freed_versions() {
        let d = Arc::new(EpochDomain::new());
        let cell = Arc::new(Versioned::new(Arc::clone(&d), vec![0u64; 256]));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let (d, cell, stop) = (Arc::clone(&d), Arc::clone(&cell), Arc::clone(&stop));
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let g = d.pin();
                        let v = cell.load(&g);
                        let first = v[0];
                        assert!(v.iter().all(|&x| x == first), "torn version");
                        assert!(first >= last, "version went backwards");
                        last = first;
                    }
                })
            })
            .collect();
        for ver in 1..=200u64 {
            cell.publish(vec![ver; 256]);
            cell.gc();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        cell.gc();
        assert_eq!(cell.retired_count(), 0, "all pins gone after join");
    }
}
