//! Epoch-based version reclamation: wait-free reader pins, single-writer
//! copy-on-write publish, deferred reclamation.
//!
//! This is the substrate under the core crate's `Catalog` (GraphX-style
//! versioned snapshots of tables and graphs) and under graph compaction,
//! which publishes a rewritten adjacency slab as a new version. The
//! protocol is the classic epoch scheme specialized to one writer:
//!
//! * a [`EpochDomain`] holds a monotonically increasing **global epoch**
//!   and a fixed array of per-thread **pin slots** (`RINGO_EPOCH_SLOTS`,
//!   padded to a cache line each);
//! * a reader [`EpochDomain::pin`]s by writing the epoch it observed
//!   into its slot and re-validating the global epoch — steady-state
//!   this is two loads and one store, no CAS, no lock, and never blocks
//!   on a writer;
//! * the single writer publishes a new [`Versioned`] value by swinging
//!   the current pointer (`Release`) and *then* advancing the global
//!   epoch, recording the displaced version with the post-advance epoch;
//! * a retired version is freed only once [`EpochDomain::min_pinned`]
//!   reaches its retire epoch, so any reader that could still hold a
//!   reference keeps it alive.
//!
//! Why the re-validation loop in `pin` is load-bearing: the reader's
//! slot store and the writer's reclamation scan race in both directions
//! (Dekker's pattern — reader stores slot then loads global, writer
//! stores global then loads slots). With plain acquire/release either
//! side may miss the other and a version could be freed under a reader
//! that just pinned. Both rungs are therefore `SeqCst`: the single total
//! order guarantees that if the reader's re-load still sees the *old*
//! epoch, its slot store precedes the writer's scan, and if it sees the
//! *new* epoch, the acquire edge from the epoch advance makes the new
//! current pointer (and nothing older) the only value the reader can
//! load. The deliberately weakened variant of this protocol is killed by
//! the checker in `crates/check/tests/model_epoch.rs`.
//!
//! Everything routes through [`crate::sync`], so the same source runs on
//! real atomics in production and on `ringo-check`'s virtual atomics
//! under `--features model`.

use crate::sync::{yield_now, VAtomicPtr, VAtomicU64, VAtomicUsize, VMutex};
use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock, Weak};

/// Slot value meaning "no epoch pinned".
const UNPINNED: u64 = u64::MAX;

/// Slot owner flag: free for any thread to claim.
const FREE: usize = 0;
/// Slot owner flag: claimed by some thread (slots are thread-affine; the
/// claim is cached thread-locally and released on thread exit).
const CLAIMED: usize = 1;

/// Default pin-slot count when `RINGO_EPOCH_SLOTS` is unset: generous
/// enough that slot claiming never becomes the bottleneck for any pool
/// size this repo targets.
pub const DEFAULT_EPOCH_SLOTS: usize = 64;

/// Pin-slot count for new domains: `RINGO_EPOCH_SLOTS` if set and
/// positive, otherwise [`DEFAULT_EPOCH_SLOTS`] (same ignore-invalid
/// policy as `RINGO_THREADS`).
pub fn epoch_slots() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("RINGO_EPOCH_SLOTS") {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => return n,
                _ => eprintln!(
                    "ringo: ignoring invalid RINGO_EPOCH_SLOTS={v:?} \
                     (expected a positive integer); using {DEFAULT_EPOCH_SLOTS}"
                ),
            }
        }
        DEFAULT_EPOCH_SLOTS
    })
}

/// One reader's pin slot, padded to its own cache line so pin/unpin
/// traffic from different threads never false-shares.
#[repr(align(128))]
#[derive(Debug, Default)]
struct Slot {
    /// The epoch this slot's thread has pinned, or [`UNPINNED`]. Written
    /// only by the owning thread; read by the writer's reclamation scan.
    epoch: VAtomicU64,
    /// [`FREE`] or [`CLAIMED`]; claims are thread-affine and long-lived.
    owner: VAtomicUsize,
}

/// The slot array, `Arc`-shared so thread-local claim caches can release
/// their claims on thread exit even if that races a domain drop.
#[derive(Debug)]
struct SlotArray {
    slots: Box<[Slot]>,
}

thread_local! {
    /// This thread's cached slot claims: `(domain id, slot index, array)`.
    /// Dropping the vec at thread exit releases every claim whose domain
    /// is still alive.
    static CLAIMS: RefCell<Vec<Claim>> = const { RefCell::new(Vec::new()) };
}

/// One cached slot claim (see [`CLAIMS`]).
struct Claim {
    domain_id: u64,
    idx: usize,
    array: Weak<SlotArray>,
}

impl Drop for Claim {
    fn drop(&mut self) {
        if let Some(array) = self.array.upgrade() {
            // No guard can outlive its thread, so the slot is unpinned
            // here; returning the claim lets a future thread reuse it.
            array.slots[self.idx].owner.store(FREE, Ordering::Release);
        }
    }
}

/// A reclamation domain: one global epoch plus the pin slots of every
/// reader thread that participates in it.
///
/// Readers call [`pin`](EpochDomain::pin) (or
/// [`pin_owned`](EpochDomain::pin_owned) from an `Arc`) and hold the
/// guard across every access to values protected by this domain. The
/// writer side lives in [`Versioned`].
#[derive(Debug)]
pub struct EpochDomain {
    /// Process-unique id, so thread-local claim caches never confuse two
    /// domains even if one is dropped and another reuses its allocation.
    id: u64,
    /// The current epoch. Starts at 1 and only grows.
    global: VAtomicU64,
    array: Arc<SlotArray>,
}

impl Default for EpochDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochDomain {
    /// A domain with [`epoch_slots`] pin slots.
    pub fn new() -> Self {
        Self::with_slots(epoch_slots())
    }

    /// A domain with an explicit slot count (the model tests shrink it to
    /// force claim contention).
    pub fn with_slots(n: usize) -> Self {
        static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let mut slots = Vec::with_capacity(n.max(1));
        slots.resize_with(n.max(1), || Slot {
            epoch: VAtomicU64::new(UNPINNED),
            owner: VAtomicUsize::new(FREE),
        });
        Self {
            // ORDERING: Relaxed — the id is only a uniqueness token; no
            // data is published through it. Deliberately a plain std
            // atomic (not the facade) so id generation adds no
            // preemption points to model schedules.
            id: NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            global: VAtomicU64::new(1),
            array: Arc::new(SlotArray {
                slots: slots.into_boxed_slice(),
            }),
        }
    }

    /// The current epoch (monotonic; advanced once per publish).
    pub fn epoch(&self) -> u64 {
        self.global.load(Ordering::Acquire)
    }

    /// Number of pin slots (fixed at construction).
    pub fn slot_count(&self) -> usize {
        self.array.slots.len()
    }

    /// Number of slots currently pinning an epoch — the shell's
    /// "pinned readers" figure.
    pub fn pinned_count(&self) -> usize {
        self.array
            .slots
            .iter()
            .filter(|s| s.epoch.load(Ordering::SeqCst) != UNPINNED)
            .count()
    }

    /// The oldest pinned epoch, or `u64::MAX` when nothing is pinned.
    /// A version retired at epoch `e` may be freed once
    /// `min_pinned() >= e`.
    pub fn min_pinned(&self) -> u64 {
        let mut min = UNPINNED;
        for slot in self.array.slots.iter() {
            min = min.min(slot.epoch.load(Ordering::SeqCst));
        }
        min
    }

    /// Advances the global epoch, returning the new value. Called by
    /// [`Versioned::publish`] after the pointer swing; the post-advance
    /// epoch is the retire epoch of the displaced version.
    pub fn advance(&self) -> u64 {
        self.global.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Pins the current epoch, keeping every version retired after this
    /// moment alive until the guard drops. Steady-state (slot already
    /// claimed by this thread) this is wait-free: two loads and one
    /// store, no CAS — strictly cheaper than an uncontended `RwLock`
    /// read, and never blocked by a writer publishing.
    // LINT: hot
    pub fn pin(&self) -> EpochGuard<'_> {
        let idx = self.claim_slot();
        let slot = &self.array.slots[idx];
        // ORDERING: Relaxed — the slot epoch is written only by this
        // thread; this read just detects an outer pin on the same
        // thread.
        if slot.epoch.load(Ordering::Relaxed) != UNPINNED {
            // Nested pin: the outer guard's older slot value already
            // protects everything retired from here on; overwriting it
            // with a newer epoch would un-protect the outer guard's
            // version mid-use.
            return EpochGuard {
                domain: self,
                idx,
                epoch: self.global.load(Ordering::Acquire),
                outermost: false,
            };
        }
        let mut e = self.global.load(Ordering::Acquire);
        loop {
            slot.epoch.store(e, Ordering::SeqCst);
            // ORDERING: SeqCst on both the store above and this re-load —
            // Dekker's pattern against the writer's advance + scan; see
            // the module docs. If the re-load disagrees, the pin may be
            // invisible to an in-flight scan: retry at the newer epoch.
            let seen = self.global.load(Ordering::SeqCst);
            if seen == e {
                break;
            }
            e = seen;
        }
        EpochGuard {
            domain: self,
            idx,
            epoch: e,
            outermost: true,
        }
    }

    /// Like [`pin`](Self::pin), but the guard co-owns the domain, for
    /// snapshots that must outlive the borrow (the catalog's `Snapshot`).
    pub fn pin_owned(self: &Arc<Self>) -> OwnedEpochGuard {
        let guard = self.pin();
        let (idx, epoch, outermost) = (guard.idx, guard.epoch, guard.outermost);
        std::mem::forget(guard);
        OwnedEpochGuard {
            domain: Arc::clone(self),
            idx,
            epoch,
            outermost,
        }
    }

    /// Finds this thread's slot in the claim cache, claiming one on the
    /// first pin from this thread (and per *extra* nesting level beyond
    /// the slot's own reentrancy handling, which needs no extra slot).
    // LINT: hot
    fn claim_slot(&self) -> usize {
        let cached = CLAIMS.with(|c| {
            c.borrow()
                .iter()
                .find(|cl| cl.domain_id == self.id)
                .map(|cl| cl.idx)
        });
        if let Some(idx) = cached {
            return idx;
        }
        let idx = self.claim_slot_slow();
        CLAIMS.with(|c| {
            let mut claims = c.borrow_mut();
            // Prune cache entries for dead domains on the miss path (the
            // only path that grows the list), so a long-lived thread
            // touching many short-lived domains doesn't scan a growing
            // list — and the steady-state hit path above stays a pure
            // TLS scan with no per-pin `Weak` upgrade traffic.
            claims.retain(|cl| cl.array.strong_count() > 0);
            claims.push(Claim {
                domain_id: self.id,
                idx,
                array: Arc::downgrade(&self.array),
            });
        });
        idx
    }

    /// First pin from this thread on this domain: scan for a free slot
    /// and claim it with a CAS. Spins (with yields) when every slot is
    /// claimed — capacity is a configuration matter (`RINGO_EPOCH_SLOTS`
    /// must be at least the number of concurrently-pinning threads), not
    /// a correctness one.
    fn claim_slot_slow(&self) -> usize {
        loop {
            for (idx, slot) in self.array.slots.iter().enumerate() {
                // ORDERING: Relaxed — the pre-check load is a contention
                // filter only; the AcqRel CAS (with a Relaxed failure
                // load, another filter) carries the claim's edge.
                if slot.owner.load(Ordering::Relaxed) == FREE
                    && slot
                        .owner
                        .compare_exchange(FREE, CLAIMED, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                {
                    return idx;
                }
            }
            yield_now();
        }
    }
}

/// RAII pin on an [`EpochDomain`]; see [`EpochDomain::pin`].
#[derive(Debug)]
pub struct EpochGuard<'a> {
    domain: &'a EpochDomain,
    idx: usize,
    epoch: u64,
    /// Whether this guard wrote the slot (outermost pin on this thread).
    /// Nested guards piggyback on the outer pin and must not clear it.
    outermost: bool,
}

impl EpochGuard<'_> {
    /// The epoch this guard observed at pin time.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn domain_id(&self) -> u64 {
        self.domain.id
    }
}

impl Drop for EpochGuard<'_> {
    // LINT: hot
    fn drop(&mut self) {
        if self.outermost {
            // ORDERING: Release — pairs with the writer scan's SeqCst
            // loads of the slot epoch; everything this reader did while
            // pinned is visible before the slot reads unpinned.
            self.domain.array.slots[self.idx]
                .epoch
                .store(UNPINNED, Ordering::Release);
        }
    }
}

/// Owning variant of [`EpochGuard`]; see [`EpochDomain::pin_owned`].
#[derive(Debug)]
pub struct OwnedEpochGuard {
    domain: Arc<EpochDomain>,
    idx: usize,
    epoch: u64,
    outermost: bool,
}

impl OwnedEpochGuard {
    /// The epoch this guard observed at pin time.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn domain_id(&self) -> u64 {
        self.domain.id
    }
}

impl Drop for OwnedEpochGuard {
    fn drop(&mut self) {
        if self.outermost {
            // ORDERING: Release — same unpin edge as `EpochGuard::drop`.
            self.domain.array.slots[self.idx]
                .epoch
                .store(UNPINNED, Ordering::Release);
        }
    }
}

/// One published version's heap node; owned by `current` while live,
/// then by the retired list until reclaimed.
#[derive(Debug)]
struct VersionNode<T> {
    value: T,
}

/// A version awaiting reclamation: freed once `min_pinned >= epoch`.
struct Retired<T> {
    /// The post-advance epoch of the publish that displaced this node.
    epoch: u64,
    node: *mut VersionNode<T>,
}

/// An epoch-versioned cell: readers [`load`](Versioned::load) the
/// current value under a pin, a single writer
/// [`publish`](Versioned::publish)es replacements, and displaced
/// versions are reclaimed by [`gc`](Versioned::gc) once no pin predates
/// them.
///
/// ```
/// use ringo_concurrent::epoch::{EpochDomain, Versioned};
/// use std::sync::Arc;
///
/// let domain = Arc::new(EpochDomain::new());
/// let cell = Versioned::new(Arc::clone(&domain), "v1");
/// let guard = domain.pin();
/// assert_eq!(*cell.load(&guard), "v1");
/// cell.publish("v2");
/// // The pinned reader can still reach v1's memory; new pins see v2.
/// assert_eq!(cell.gc(), 0, "v1 stays while the old pin lives");
/// drop(guard);
/// assert_eq!(cell.gc(), 1, "v1 reclaimed after unpin");
/// let guard = domain.pin();
/// assert_eq!(*cell.load(&guard), "v2");
/// ```
pub struct Versioned<T> {
    domain: Arc<EpochDomain>,
    /// Never null: constructed with an initial version.
    current: VAtomicPtr<VersionNode<T>>,
    /// Serializes publish against publish and against gc — the "single
    /// writer" of the protocol is whoever holds this lock.
    writer: VMutex<Vec<Retired<T>>>,
}

// SAFETY: the raw `VersionNode` pointers are created from `Box` and
// uniquely owned by this cell's current-pointer / retired-list
// structure; shared references handed out by `load` are `&T`, so the
// usual `Send + Sync` bounds on `T` make cross-thread sharing of the
// cell sound.
unsafe impl<T: Send + Sync> Send for Versioned<T> {}
// SAFETY: see the `Send` impl above; `load` only ever produces `&T`.
unsafe impl<T: Send + Sync> Sync for Versioned<T> {}

impl<T> Versioned<T> {
    /// A cell whose first version is `initial`, protected by `domain`.
    pub fn new(domain: Arc<EpochDomain>, initial: T) -> Self {
        let node = Box::into_raw(Box::new(VersionNode { value: initial }));
        Self {
            domain,
            current: VAtomicPtr::new(node),
            writer: VMutex::new(Vec::new()),
        }
    }

    /// The domain protecting this cell.
    pub fn domain(&self) -> &Arc<EpochDomain> {
        &self.domain
    }

    /// The current value, valid for as long as `guard` stays pinned.
    ///
    /// # Panics
    /// Panics if `guard` pins a different domain than this cell's.
    // LINT: hot
    pub fn load<'a>(&'a self, guard: &'a EpochGuard<'_>) -> &'a T {
        assert_eq!(
            guard.domain_id(),
            self.domain.id,
            "epoch guard pins a different domain than this Versioned cell"
        );
        let p = self.current.load(Ordering::Acquire);
        // SAFETY: `current` is never null, and the node it points at
        // cannot have been freed: reclamation requires `min_pinned >=
        // retire_epoch`, the validated pin holds the guard's slot at an
        // epoch older than any publish that could retire this node, and
        // the SeqCst pin/scan protocol (module docs) guarantees the scan
        // sees that slot. The `'a` bound ties the borrow to both the
        // guard (pin lifetime) and `self` (cell lifetime).
        unsafe { &(*p).value }
    }

    /// Like [`load`](Self::load) but for an owned guard.
    ///
    /// # Panics
    /// Panics if `guard` pins a different domain than this cell's.
    pub fn load_owned<'a>(&'a self, guard: &'a OwnedEpochGuard) -> &'a T {
        assert_eq!(
            guard.domain_id(),
            self.domain.id,
            "epoch guard pins a different domain than this Versioned cell"
        );
        let p = self.current.load(Ordering::Acquire);
        // SAFETY: identical argument to `load`; the owned guard pins the
        // same slot protocol.
        unsafe { &(*p).value }
    }

    /// Installs `value` as the new current version and retires the old
    /// one, returning the new global epoch. Readers never block on this:
    /// the swing is one `Release` pointer store.
    pub fn publish(&self, value: T) -> u64 {
        let mut sp = ringo_trace::span!("epoch.publish");
        let mut retired = self.writer.lock();
        let node = Box::into_raw(Box::new(VersionNode { value }));
        // ORDERING: Acquire/Release on the current pointer — only the
        // lock holder stores it, so load-then-store is not a race; the
        // Release store publishes the new node's contents to readers'
        // Acquire loads. The epoch advance AFTER the swing (SeqCst, see
        // module docs) is what makes the retire epoch safe: any reader
        // pinned before the advance can at worst still see the old node,
        // whose retire epoch now exceeds that reader's pin.
        let old = self.current.load(Ordering::Acquire);
        self.current.store(node, Ordering::Release);
        let epoch = self.domain.advance();
        retired.push(Retired { epoch, node: old });
        sp.rows_out(retired.len());
        epoch
    }

    /// Number of versions retired but not yet reclaimed.
    pub fn retired_count(&self) -> usize {
        self.writer.lock().len()
    }

    /// Frees every retired version no pinned reader can still reach,
    /// returning how many were freed.
    pub fn gc(&self) -> usize {
        let mut sp = ringo_trace::span!("epoch.gc");
        let mut retired = self.writer.lock();
        sp.rows_in(retired.len());
        let min = self.domain.min_pinned();
        let before = retired.len();
        retired.retain(|r| {
            if r.epoch <= min {
                // SAFETY: retired nodes are uniquely owned by this list
                // (the publish that displaced them holds the only other
                // path, `current`, which now points elsewhere), and
                // `min_pinned >= retire epoch` proves no reader pin can
                // still reach the node (module docs).
                drop(unsafe { Box::from_raw(r.node) });
                false
            } else {
                true
            }
        });
        let freed = before - retired.len();
        ringo_trace::counter("epoch.reclaimed").add(freed as u64);
        sp.rows_out(freed);
        freed
    }
}

impl<T> Drop for Versioned<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no guard-borrowed reference remains
        // (load ties borrows to `&self`), so both the current node and
        // every retired node are uniquely reachable from here.
        unsafe {
            drop(Box::from_raw(*self.current.get_mut()));
            for r in self.writer.get_mut().drain(..) {
                drop(Box::from_raw(r.node));
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Versioned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Versioned")
            .field("epoch", &self.domain.epoch())
            .field("retired", &self.retired_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_tracks_current_epoch() {
        let d = EpochDomain::with_slots(4);
        assert_eq!(d.epoch(), 1);
        let g = d.pin();
        assert_eq!(g.epoch(), 1);
        assert_eq!(d.pinned_count(), 1);
        assert_eq!(d.min_pinned(), 1);
        drop(g);
        assert_eq!(d.pinned_count(), 0);
        assert_eq!(d.min_pinned(), u64::MAX);
    }

    #[test]
    fn nested_pins_keep_oldest_epoch() {
        let d = Arc::new(EpochDomain::with_slots(4));
        let cell = Versioned::new(Arc::clone(&d), 1u32);
        let outer = d.pin();
        cell.publish(2);
        let inner = d.pin();
        // The inner pin must not overwrite the outer pin's older epoch.
        assert_eq!(d.min_pinned(), outer.epoch());
        assert_eq!(*cell.load(&inner), 2, "inner pin reads the new version");
        assert_eq!(cell.gc(), 0, "outer pin still protects v1");
        drop(inner);
        assert_eq!(d.min_pinned(), outer.epoch(), "outer pin survives inner");
        drop(outer);
        assert_eq!(cell.gc(), 1);
    }

    #[test]
    fn publish_retire_reclaim_cycle() {
        let d = Arc::new(EpochDomain::with_slots(4));
        let cell = Versioned::new(Arc::clone(&d), vec![1u8; 64]);
        let g = d.pin();
        assert_eq!(cell.load(&g).len(), 64);
        for i in 0..5 {
            cell.publish(vec![i; 64]);
        }
        assert_eq!(cell.retired_count(), 5);
        assert_eq!(cell.gc(), 0, "pinned reader holds all retirees");
        drop(g);
        assert_eq!(cell.gc(), 5);
        assert_eq!(cell.retired_count(), 0);
        let g = d.pin();
        assert_eq!(*cell.load(&g), vec![4u8; 64]);
    }

    #[test]
    fn owned_guard_pins_like_borrowed() {
        let d = Arc::new(EpochDomain::with_slots(4));
        let cell = Versioned::new(Arc::clone(&d), 7i64);
        let g = d.pin_owned();
        cell.publish(8);
        assert_eq!(*cell.load_owned(&g), 8);
        assert_eq!(cell.gc(), 0);
        drop(g);
        assert_eq!(cell.gc(), 1);
    }

    #[test]
    fn slots_are_reused_across_threads() {
        let d = Arc::new(EpochDomain::with_slots(2));
        // Sequential short-lived threads release their claims on exit,
        // so two slots serve any number of them.
        for i in 0..8u64 {
            let d = Arc::clone(&d);
            std::thread::spawn(move || {
                let g = d.pin();
                assert!(g.epoch() >= 1);
                i
            })
            .join()
            .unwrap();
        }
        assert_eq!(d.pinned_count(), 0);
    }

    #[test]
    fn concurrent_readers_never_see_freed_versions() {
        let d = Arc::new(EpochDomain::new());
        let cell = Arc::new(Versioned::new(Arc::clone(&d), vec![0u64; 256]));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let (d, cell, stop) = (Arc::clone(&d), Arc::clone(&cell), Arc::clone(&stop));
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let g = d.pin();
                        let v = cell.load(&g);
                        let first = v[0];
                        assert!(v.iter().all(|&x| x == first), "torn version");
                        assert!(first >= last, "version went backwards");
                        last = first;
                    }
                })
            })
            .collect();
        for ver in 1..=200u64 {
            cell.publish(vec![ver; 256]);
            cell.gc();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        cell.gc();
        assert_eq!(cell.retired_count(), 0, "all pins gone after join");
    }
}
