//! OpenMP-style fork-join parallel loops on the persistent worker pool.
//!
//! Ringo parallelizes its critical loops with a handful of OpenMP pragmas
//! using static scheduling: an index range is cut into one contiguous chunk
//! per worker and each worker processes its chunk independently. These
//! helpers reproduce that model on top of [`crate::pool::Pool`], a
//! long-lived worker team created once per process — so a `parallel_for`
//! inside a table operator or a PageRank iteration costs a condvar wake,
//! not `threads` OS thread creations, exactly the amortization the paper's
//! interactivity numbers assume. Closures may still borrow from the
//! caller's stack like an OpenMP parallel region: every entry point blocks
//! until its last chunk finishes.
//!
//! All entry points take an explicit thread count so benchmarks can sweep
//! it; [`num_threads`] supplies a default honoring the `RINGO_THREADS`
//! environment variable.

use crate::pool::Pool;
use std::ops::Range;

/// Default worker count: `RINGO_THREADS` if set and positive, otherwise the
/// machine's available parallelism.
///
/// An unparsable or zero `RINGO_THREADS` is ignored, falling back to
/// available parallelism, and a warning is printed to stderr the first
/// time that happens so typos do not silently serialize (or oversubscribe)
/// a session.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("RINGO_THREADS") {
        match v.parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "ringo: ignoring invalid RINGO_THREADS={v:?} \
                         (expected a positive integer); using available \
                         parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Splits `len` items into at most `threads` contiguous chunks of nearly
/// equal size. Returns the chunk boundaries; consecutive boundaries delimit
/// one chunk. Never returns empty chunks.
pub fn chunk_bounds(len: usize, threads: usize) -> Vec<usize> {
    let threads = threads.max(1).min(len.max(1));
    let base = len / threads;
    let extra = len % threads;
    let mut bounds = Vec::with_capacity(threads + 1);
    let mut pos = 0;
    bounds.push(0);
    for t in 0..threads {
        pos += base + usize::from(t < extra);
        bounds.push(pos);
    }
    bounds
}

/// Runs `body(chunk_index, index_range)` over `0..len` split statically
/// across `threads` workers of the process-wide pool. Equivalent to
/// `#pragma omp parallel for schedule(static)`.
///
/// With `threads <= 1` (or a single chunk) the body runs on the calling
/// thread, so the function is cheap to call for small inputs.
///
/// ```
/// use ringo_concurrent::{parallel_for, parallel_reduce};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let data: Vec<u64> = (0..10_000).collect();
/// let sum = AtomicU64::new(0);
/// parallel_for(data.len(), 4, |_worker, range| {
///     let local: u64 = range.map(|i| data[i]).sum();
///     sum.fetch_add(local, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 10_000 * 9_999 / 2);
///
/// // Or without shared state, via a reduction:
/// let total = parallel_reduce(
///     data.len(), 4, 0u64,
///     |range| range.map(|i| data[i]).sum::<u64>(),
///     |a, b| a + b,
/// );
/// assert_eq!(total, 10_000 * 9_999 / 2);
/// ```
pub fn parallel_for<F>(len: usize, threads: usize, body: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let bounds = chunk_bounds(len, threads);
    let chunks = bounds.len() - 1;
    if chunks <= 1 {
        body(0, 0..len);
        return;
    }
    Pool::global().run(chunks, &|t| body(t, bounds[t]..bounds[t + 1]));
}

/// Runs `body(index_range)` per chunk and collects one result per chunk, in
/// chunk order. The workhorse for "each thread produces a partial result,
/// the caller combines them" patterns (histograms, partial sums, partial
/// output buffers).
pub fn parallel_map<T, F>(len: usize, threads: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let bounds = chunk_bounds(len, threads);
    let chunks = bounds.len() - 1;
    if chunks <= 1 {
        return vec![body(0..len)];
    }
    // One slot per chunk; each chunk writes only its own index, so a plain
    // mutex around the whole vector would serialize nothing of consequence
    // (chunks ≤ threads writes total) — but std::sync::Mutex per write is
    // still avoidable: slots are disjoint, use the same erased-window trick
    // as the sorter.
    let mut slots: Vec<Option<T>> = (0..chunks).map(|_| None).collect();
    {
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        Pool::global().run(chunks, &|t| {
            let result = body(bounds[t]..bounds[t + 1]);
            // SAFETY: chunk `t` exclusively owns slot `t`; the vector
            // outlives the blocking `run` call.
            unsafe { *slots_ptr.get().add(t) = Some(result) };
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every chunk fills its slot"))
        .collect()
}

/// Parallel reduction: maps each chunk with `body`, then folds the partial
/// results with `combine` starting from `init`. The reduction order over
/// chunks is deterministic (chunk 0 first), so floating-point reductions
/// are reproducible for a fixed thread count.
pub fn parallel_reduce<T, F, C>(len: usize, threads: usize, init: T, body: F, combine: C) -> T
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
    C: Fn(T, T) -> T,
{
    parallel_map(len, threads, body)
        .into_iter()
        .fold(init, combine)
}

/// Default rows per morsel for morsel-driven operators: small enough that
/// a worst-case `u32` hit list per morsel (256KB) stays cache-resident,
/// large enough that claiming a morsel from the pool's shared counter is
/// noise next to scanning it.
pub const DEFAULT_MORSEL_ROWS: usize = 65_536;

/// Rows per morsel: `RINGO_MORSEL_ROWS` if set and positive, otherwise
/// [`DEFAULT_MORSEL_ROWS`]. Parsed once; an invalid value warns to stderr
/// (same policy as `RINGO_THREADS`).
pub fn morsel_rows() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("RINGO_MORSEL_ROWS") {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => return n,
                _ => eprintln!(
                    "ringo: ignoring invalid RINGO_MORSEL_ROWS={v:?} \
                     (expected a positive integer); using {DEFAULT_MORSEL_ROWS}"
                ),
            }
        }
        DEFAULT_MORSEL_ROWS
    })
}

/// Splits `0..len` into fixed-size morsels of [`morsel_rows`] rows (the
/// last morsel may be short). Returns morsel boundaries like
/// [`chunk_bounds`]. Unlike `chunk_bounds`, the partition depends only on
/// `len` — **never** on the thread count — which is what lets
/// morsel-driven operators produce bit-identical results (including
/// float accumulation order) at every thread count.
pub fn morsel_bounds(len: usize) -> Vec<usize> {
    let m = morsel_rows();
    let n = len.div_ceil(m).max(1);
    let mut bounds = Vec::with_capacity(n + 1);
    for i in 0..n {
        bounds.push(i * m);
    }
    bounds.push(len);
    bounds
}

/// How a morsel-driven dispatch actually ran: how many morsels the index
/// space split into, how many distinct threads executed at least one of
/// them (the *effective* worker count — what the plan executor surfaces
/// per node), and how the busy time divided between those threads (the
/// per-worker busy share `QueryBuilder::profile` renders).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MorselStats {
    /// Morsels dispatched (≥ 1 for any non-degenerate input).
    pub morsels: u32,
    /// Distinct threads that executed at least one morsel.
    pub workers: u32,
    /// Nanoseconds spent inside morsel bodies per distinct executing
    /// thread, sorted descending (one entry per worker counted in
    /// `workers`). The spread exposes skew: a balanced dispatch has
    /// near-equal entries, a skewed one is dominated by the first.
    pub busy_ns: Vec<u64>,
}

/// Runs `body(morsel_index, index_range)` over `0..len` split into
/// fixed-size morsels (see [`morsel_bounds`]) and collects one result per
/// morsel, **in morsel order**. Morsels are claimed dynamically from the
/// pool's shared counter, so a worker stuck on an expensive morsel does
/// not hold up the rest — the morsel-driven scheduling discipline, in
/// contrast to [`parallel_map`]'s static one-chunk-per-worker split.
///
/// With `threads <= 1` the morsels run inline on the calling thread, in
/// order — the *same* per-morsel partition, so partial results (and any
/// float accumulation order derived from them) are identical at every
/// thread count.
pub fn parallel_map_morsels<T, F>(len: usize, threads: usize, body: F) -> (Vec<T>, MorselStats)
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    morsel_dispatch(None, len, threads, body)
}

/// [`parallel_map_morsels`] with flight-recorder attribution: every morsel
/// body runs inside a trace span named `span` (rows-in = morsel length),
/// recorded into the executing thread's per-thread event buffer. On the
/// dispatching thread the morsel spans nest under the caller's open
/// operator span; on pool workers they are that thread's top-level slices
/// — which is how the Chrome export reconstructs per-worker timelines.
pub fn parallel_map_morsels_traced<T, F>(
    span: &'static str,
    len: usize,
    threads: usize,
    body: F,
) -> (Vec<T>, MorselStats)
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    morsel_dispatch(Some(span), len, threads, body)
}

/// [`parallel_map_morsels`] without per-morsel results: runs
/// `body(morsel_index, index_range)` for every morsel, dynamically
/// scheduled. Callers that write output do so through disjoint windows
/// (per-morsel offsets), exactly like the static [`parallel_for`] users.
pub fn parallel_for_morsels<F>(len: usize, threads: usize, body: F) -> MorselStats
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let (_, stats) = parallel_map_morsels(len, threads, body);
    stats
}

/// [`parallel_for_morsels`] with flight-recorder attribution; see
/// [`parallel_map_morsels_traced`].
pub fn parallel_for_morsels_traced<F>(
    span: &'static str,
    len: usize,
    threads: usize,
    body: F,
) -> MorselStats
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let (_, stats) = parallel_map_morsels_traced(span, len, threads, body);
    stats
}

/// Shared implementation of the morsel dispatchers: splits `0..len` into
/// fixed-size morsels, runs them (inline or dynamically claimed on the
/// pool), optionally wraps each body in a trace span, and accounts busy
/// nanoseconds per executing thread for [`MorselStats::busy_ns`].
fn morsel_dispatch<T, F>(
    span: Option<&'static str>,
    len: usize,
    threads: usize,
    body: F,
) -> (Vec<T>, MorselStats)
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let bounds = morsel_bounds(len);
    let morsels = bounds.len() - 1;
    let timed = |m: usize| -> (T, u64) {
        let range = bounds[m]..bounds[m + 1];
        let started = std::time::Instant::now();
        let out = match span {
            Some(name) => {
                let mut sp = ringo_trace::Span::enter(name);
                sp.rows_in(range.len());
                body(m, range)
            }
            None => body(m, range),
        };
        (out, started.elapsed().as_nanos() as u64)
    };
    if threads <= 1 || morsels <= 1 {
        let mut busy = 0u64;
        let out = (0..morsels)
            .map(|m| {
                let (v, ns) = timed(m);
                busy += ns;
                v
            })
            .collect();
        return (
            out,
            MorselStats {
                morsels: morsels as u32,
                workers: 1,
                busy_ns: vec![busy],
            },
        );
    }
    let mut slots: Vec<Option<T>> = (0..morsels).map(|_| None).collect();
    let workers: std::sync::Mutex<std::collections::HashMap<std::thread::ThreadId, u64>> =
        std::sync::Mutex::new(std::collections::HashMap::new());
    {
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        Pool::global().run(morsels, &|m| {
            let (result, ns) = timed(m);
            *workers
                .lock()
                .expect("morsel worker set poisoned")
                .entry(std::thread::current().id())
                .or_insert(0) += ns;
            // SAFETY: morsel `m` exclusively owns slot `m`; the vector
            // outlives the blocking `run` call.
            unsafe { *slots_ptr.get().add(m) = Some(result) };
        });
    }
    let mut busy_ns: Vec<u64> = workers
        .into_inner()
        .expect("morsel worker set poisoned")
        .into_values()
        .collect();
    busy_ns.sort_unstable_by(|a, b| b.cmp(a));
    let distinct = busy_ns.len();
    (
        slots
            .into_iter()
            .map(|s| s.expect("every morsel fills its slot"))
            .collect(),
        MorselStats {
            morsels: morsels as u32,
            workers: distinct as u32,
            busy_ns,
        },
    )
}

/// Runs `body(i)` for every `i` in `0..items` with items claimed
/// dynamically from the pool's shared counter — load balancing for
/// heterogeneous work items (e.g. skewed radix buckets) where a static
/// contiguous split would serialize behind the biggest item.
pub fn parallel_for_dynamic<F>(items: usize, threads: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    if threads <= 1 || items <= 1 {
        for i in 0..items {
            body(i);
        }
        return;
    }
    Pool::global().run(items, &|i| body(i));
}

/// Applies `body(chunk_index, chunk_start, chunk)` to disjoint mutable
/// chunks of `data`, one chunk per worker. This is the write-side
/// counterpart of [`parallel_for`]: threads share nothing, so no locking is
/// needed — the pattern Ringo uses for graph-to-table export where each
/// thread owns a pre-assigned partition of the output table.
pub fn parallel_for_each_chunk_mut<T, F>(data: &mut [T], threads: usize, body: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let len = data.len();
    let bounds = chunk_bounds(len, threads);
    let chunks = bounds.len() - 1;
    if chunks <= 1 {
        body(0, 0, data);
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    Pool::global().run(chunks, &|t| {
        let (lo, hi) = (bounds[t], bounds[t + 1]);
        // SAFETY: `[lo, hi)` windows are pairwise disjoint across chunks
        // and in-bounds; `data` outlives the blocking `run` call.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
        body(t, lo, chunk);
    });
}

/// Shared mutable slice handed to workers that provably touch disjoint
/// index windows. This is the one aliasing escape hatch of the parallel
/// runtime: the unsafe surface is confined to [`DisjointSlice::slice_mut`]
/// and [`DisjointSlice::write`], whose callers must guarantee that no index
/// is written concurrently from two workers. Used by the merge sorter
/// (disjoint output windows per merged pair), the radix sorter (scatter
/// cursors partition the output), and the conversion fill phase (disjoint
/// slab ranges per node).
pub struct DisjointSlice<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: shared access only hands out pairwise-disjoint windows (the
// caller contract of `slice_mut`/`write`), so no two threads alias.
unsafe impl<T: Send> Sync for DisjointSlice<T> {}

impl<T> DisjointSlice<T> {
    /// Wraps `slice` for disjoint concurrent writes. The wrapper holds a
    /// raw pointer, so the caller must keep the underlying storage alive
    /// and un-moved for as long as the cell is used.
    pub fn new(slice: &mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    /// Callers must ensure `[lo, hi)` windows obtained concurrently are
    /// pairwise disjoint and within bounds. The `&self` receiver is what
    /// lets workers share the cell; disjointness is the aliasing argument.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, lo: usize, hi: usize) -> &mut [T] {
        debug_assert!(lo <= hi && hi <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }

    /// Writes one element.
    ///
    /// # Safety
    /// `i` must be in bounds and written by at most one worker for the
    /// lifetime of the concurrent region.
    #[inline(always)]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        self.ptr.add(i).write(value);
    }
}

/// A raw pointer that may cross thread boundaries. Callers must uphold the
/// usual aliasing rules themselves (disjoint writes per chunk). Accessed
/// through [`SendPtr::get`] so closures capture the whole wrapper (edition
/// 2021 disjoint capture would otherwise grab the bare non-`Sync` field).
struct SendPtr<T>(*mut T);

// SAFETY: the wrapper only makes the pointer *transferable*; every
// dereference site upholds disjointness itself (see struct docs).
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_bounds_cover_range_exactly() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for threads in [1usize, 2, 3, 8, 200] {
                let b = chunk_bounds(len, threads);
                assert_eq!(*b.first().unwrap(), 0);
                assert_eq!(*b.last().unwrap(), len);
                for w in b.windows(2) {
                    assert!(w[0] <= w[1]);
                    if len >= threads {
                        assert!(w[1] > w[0], "empty chunk for len={len} threads={threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_for_touches_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 4, |_, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_single_thread_runs_inline() {
        let mut sum = 0u64;
        // With threads=1 the closure runs on this thread, so a non-Sync
        // mutation through a cell is safe; use a plain loop to check range.
        parallel_for(5, 1, |tid, range| {
            assert_eq!(tid, 0);
            assert_eq!(range, 0..5);
        });
        for i in 0..5u64 {
            sum += i;
        }
        assert_eq!(sum, 10);
    }

    #[test]
    fn parallel_map_preserves_chunk_order() {
        let parts = parallel_map(100, 4, |range| range.start);
        let mut sorted = parts.clone();
        sorted.sort_unstable();
        assert_eq!(parts, sorted);
        assert_eq!(parts.len(), 4);
    }

    #[test]
    fn parallel_reduce_sums_correctly() {
        let data: Vec<u64> = (0..100_000).collect();
        let total = parallel_reduce(
            data.len(),
            8,
            0u64,
            |range| range.map(|i| data[i]).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, 100_000 * 99_999 / 2);
    }

    #[test]
    fn chunk_mut_writes_disjoint_partitions() {
        let mut data = vec![0usize; 1000];
        parallel_for_each_chunk_mut(&mut data, 7, |_, start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = start + off;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn zero_length_is_a_noop() {
        parallel_for(0, 4, |_, range| assert!(range.is_empty()));
        let parts = parallel_map(0, 4, |range| range.len());
        assert_eq!(parts, vec![0]);
    }

    #[test]
    fn more_threads_than_items_does_not_panic() {
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(3, 16, |_, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn repeated_parallel_for_never_spawns_per_call() {
        // Warm the pool up, then check that 200 further dispatches change
        // only the job counters — never the worker count.
        parallel_for(64, 4, |_, _| {});
        let before = crate::pool::pool_stats();
        for _ in 0..200 {
            parallel_for(64, 4, |_, range| {
                std::hint::black_box(range.sum::<usize>());
            });
        }
        let after = crate::pool::pool_stats();
        assert_eq!(after.workers, before.workers, "pool size is constant");
        assert_eq!(after.jobs_dispatched - before.jobs_dispatched, 200);
        assert!(after.chunks_executed - before.chunks_executed >= 200);
    }

    #[test]
    fn parallel_map_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(1000, 4, |range| {
                if range.start == 0 {
                    panic!("first chunk fails");
                }
                range.len()
            })
        });
        assert!(caught.is_err());
    }
}
