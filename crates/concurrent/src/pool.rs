//! Persistent fork-join worker pool.
//!
//! The paper's interactivity argument (§2.5) assumes OpenMP-style parallel
//! regions whose fork-join cost is amortized by a resident thread team:
//! every table operator and every PageRank iteration opens a region, so
//! paying OS thread creation per region would dominate small and medium
//! inputs. This module provides that resident team. A process-wide pool of
//! `N` workers is created lazily on first use (`N` from [`num_threads`],
//! which honors `RINGO_THREADS`) and lives for the rest of the process;
//! [`Pool::run`] dispatches one fork-join job onto it and returns when
//! every chunk of the job has executed.
//!
//! Scheduling is static in the OpenMP `schedule(static)` sense: the caller
//! pre-partitions its index space into contiguous chunks (one per
//! requested worker, see [`crate::parallel::chunk_bounds`]) and the pool
//! never re-splits them. Which physical worker executes which chunk is
//! first-come — workers claim chunk indices from a shared atomic counter —
//! so a job asking for more parallelism than the pool has workers still
//! completes, and nested `run` calls issued from inside a worker cannot
//! deadlock: the dispatching thread always participates in executing its
//! own job, so every job drains even if all pool workers are busy
//! elsewhere.
//!
//! Panics inside a chunk are caught, the remaining chunks still run (the
//! fork-join contract: the region completes), and the first panic payload
//! is re-thrown on the dispatching thread — the same observable behavior
//! as the scoped-thread implementation this replaces, minus the per-call
//! spawns.
//!
//! [`num_threads`]: crate::parallel::num_threads

use crate::sync::VAtomicU64;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Cached registry handles for the `ringo-trace` wiring, so the per-chunk
/// hot path pays one pointer load instead of a name lookup. All three feed
/// the registry with *deltas* (`add`), which is what lets
/// `ringo_trace::reset()` open a clean measurement window even though the
/// pool's own cumulative [`PoolStats`] keep counting from process start.
struct TraceCounters {
    jobs: &'static ringo_trace::Counter,
    chunks: &'static ringo_trace::Counter,
    busy_ns: &'static ringo_trace::Counter,
    workers: &'static ringo_trace::Counter,
    /// Gauge (`set`, not `add`): executors currently inside chunk bodies.
    /// The background sampler reads it to plot busy/idle worker counts.
    busy_workers: &'static ringo_trace::Counter,
}

fn trace_counters() -> &'static TraceCounters {
    static COUNTERS: OnceLock<TraceCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| TraceCounters {
        jobs: ringo_trace::counter("pool.jobs_dispatched"),
        chunks: ringo_trace::counter("pool.chunks_executed"),
        busy_ns: ringo_trace::counter("pool.busy_ns"),
        workers: ringo_trace::counter("pool.workers"),
        busy_workers: ringo_trace::counter("pool.busy_workers"),
    })
}

/// A chunk body with its lifetime erased to `'static`. Only [`Pool::run`]
/// creates these, and it blocks until all chunks finish, so the borrow is
/// live for every dereference despite the lie in the lifetime.
struct Task {
    func: &'static (dyn Fn(usize) + Sync),
}

/// Completion state of one dispatched job, guarded by `Job::done`.
struct JobDone {
    /// Chunks not yet finished executing.
    remaining: usize,
    /// First panic payload caught in a chunk, re-thrown by the dispatcher.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One fork-join job: `chunks` calls of `task.func(t)` for `t` in
/// `0..chunks`, each executed exactly once.
///
/// Invariant: `task.func` is dereferenced only after claiming `t <
/// chunks` from `next`, and every claimed chunk decrements `remaining`
/// when done. `Pool::run` returns (invalidating the pointer) only once
/// `remaining == 0`, hence no dangling use.
struct Job {
    task: Task,
    chunks: usize,
    /// Next unclaimed chunk index; values `>= chunks` mean "drained".
    next: AtomicUsize,
    done: Mutex<JobDone>,
    done_cv: Condvar,
}

impl Job {
    /// True when every chunk index has been claimed (not necessarily
    /// finished); such a job no longer offers work to idle workers.
    fn drained(&self) -> bool {
        // ORDERING: Relaxed is enough — a stale answer only makes a worker
        // attempt a claim that `fetch_add` then rejects, or skip a job it
        // will revisit on the next queue wakeup.
        self.next.load(Ordering::Relaxed) >= self.chunks
    }
}

/// State shared between the dispatcher side and the worker threads.
struct Shared {
    /// Jobs that may still have unclaimed chunks. Kept tiny: one entry per
    /// in-flight `Pool::run`, removed by the dispatcher on completion.
    queue: Mutex<Vec<Arc<Job>>>,
    /// Signals workers that the queue gained a job with unclaimed chunks.
    work_cv: Condvar,
    jobs_dispatched: VAtomicU64,
    chunks_executed: VAtomicU64,
    busy_nanos: VAtomicU64,
    /// Executors (workers and dispatching threads) currently engaged in
    /// chunk bodies of some job — the pool's busy/idle instrumentation.
    busy_workers: AtomicUsize,
}

/// Observability snapshot of a [`Pool`], taken with [`Pool::stats`].
///
/// `busy` aggregates wall-clock time spent inside chunk bodies across all
/// executors (workers and dispatching threads), so `busy / elapsed` bounds
/// the pool's effective parallelism from below.
#[derive(Clone, Copy, Debug)]
pub struct PoolStats {
    /// Worker threads owned by the pool (constant after creation).
    pub workers: usize,
    /// Fork-join jobs dispatched through the pool since creation.
    pub jobs_dispatched: u64,
    /// Chunks executed across all jobs.
    pub chunks_executed: u64,
    /// Cumulative time spent executing chunk bodies.
    pub busy: Duration,
    /// Executors currently inside chunk bodies at snapshot time (a
    /// point-in-time gauge, unlike the cumulative fields above).
    pub busy_workers: usize,
}

/// A persistent team of worker threads executing fork-join jobs.
///
/// Most code should not construct one: [`Pool::global`] returns the lazily
/// created process-wide instance that all `parallel_*` helpers dispatch
/// to. Dedicated instances (e.g. [`Pool::with_workers`]) exist for tests
/// and benchmarks that need a pool of known size.
pub struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

impl Pool {
    /// Creates a pool owning exactly `workers` threads (at least one).
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            jobs_dispatched: VAtomicU64::new(0),
            chunks_executed: VAtomicU64::new(0),
            busy_nanos: VAtomicU64::new(0),
            busy_workers: AtomicUsize::new(0),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ringo-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn pool worker");
        }
        Self { shared, workers }
    }

    /// The process-wide pool, created on first use with
    /// [`num_threads`](crate::parallel::num_threads) workers.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::with_workers(crate::parallel::num_threads()))
    }

    /// Number of worker threads owned by this pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `body(t)` for every `t` in `0..chunks`, in parallel on the
    /// pool plus the calling thread, returning when all chunks finished.
    ///
    /// If any chunk panics, the remaining chunks still run and the first
    /// panic payload is resumed on the caller once the job completes.
    /// `chunks <= 1` runs inline without touching the pool.
    pub fn run(&self, chunks: usize, body: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if chunks == 1 {
            body(0);
            return;
        }
        // ORDERING: Relaxed — monotonic statistics counter; readers only
        // need eventual totals, never ordering against job effects.
        self.shared.jobs_dispatched.fetch_add(1, Ordering::Relaxed);
        if ringo_trace::enabled() {
            let t = trace_counters();
            t.jobs.add(1);
            t.workers.set(self.workers as u64);
        }
        let task = Task {
            // SAFETY: erasing the borrow's lifetime is sound because this
            // function blocks until `remaining == 0`, i.e. until no
            // executor can dereference `func` again (see `Job` invariants).
            func: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    body,
                )
            },
        };
        let job = Arc::new(Job {
            task,
            chunks,
            next: AtomicUsize::new(0),
            done: Mutex::new(JobDone {
                remaining: chunks,
                panic: None,
            }),
            done_cv: Condvar::new(),
        });

        self.shared
            .queue
            .lock()
            .expect("pool queue poisoned")
            .push(Arc::clone(&job));
        self.shared.work_cv.notify_all();

        // The dispatcher is part of the team: it claims chunks like any
        // worker, which both uses the calling thread's core and guarantees
        // progress for nested jobs dispatched from inside a worker.
        execute_chunks(&self.shared, &job);

        let mut d = job.done.lock().expect("pool job state poisoned");
        while d.remaining > 0 {
            d = job.done_cv.wait(d).expect("pool job state poisoned");
        }
        let panic = d.panic.take();
        drop(d);

        self.shared
            .queue
            .lock()
            .expect("pool queue poisoned")
            .retain(|j| !Arc::ptr_eq(j, &job));

        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }

    /// Counters snapshot; see [`PoolStats`].
    pub fn stats(&self) -> PoolStats {
        // ORDERING: Relaxed — statistics snapshot; each counter is
        // independently monotonic and no cross-counter consistency is
        // promised by the API.
        PoolStats {
            workers: self.workers,
            jobs_dispatched: self.shared.jobs_dispatched.load(Ordering::Relaxed),
            chunks_executed: self.shared.chunks_executed.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.shared.busy_nanos.load(Ordering::Relaxed)),
            busy_workers: self.shared.busy_workers.load(Ordering::Relaxed),
        }
    }
}

/// Convenience: [`PoolStats`] of the global pool.
pub fn pool_stats() -> PoolStats {
    Pool::global().stats()
}

/// Body of each resident worker: sleep until some job has unclaimed
/// chunks, help drain it, repeat forever. Workers are daemon threads; they
/// die with the process.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.iter().find(|j| !j.drained()) {
                    break Arc::clone(job);
                }
                q = shared.work_cv.wait(q).expect("pool queue poisoned");
            }
        };
        execute_chunks(shared, &job);
    }
}

/// Claims and executes chunks of `job` until none are left unclaimed.
/// Shared by workers and dispatching threads. While this executor holds at
/// least one claimed chunk it counts as *busy* in the pool's busy-worker
/// gauge (idle/busy transition instrumentation for the sampler).
fn execute_chunks(shared: &Shared, job: &Job) {
    let mut engaged = false;
    loop {
        // ORDERING: Relaxed — the claim only needs atomicity (each index
        // handed out once); the chunk body's effects are published by the
        // `done` mutex, not by this counter.
        let t = job.next.fetch_add(1, Ordering::Relaxed);
        if t >= job.chunks {
            break;
        }
        if !engaged {
            engaged = true;
            // ORDERING: Relaxed — point-in-time gauge for observability
            // snapshots; no data is published through it.
            let now = shared.busy_workers.fetch_add(1, Ordering::Relaxed) + 1;
            if ringo_trace::enabled() {
                trace_counters().busy_workers.set(now as u64);
            }
        }
        let started = Instant::now();
        // `t < chunks` was claimed exclusively above, so the dispatcher is
        // still blocked in `Pool::run` and the erased borrow is alive.
        let func = job.task.func;
        let result = catch_unwind(AssertUnwindSafe(|| func(t)));
        let busy = started.elapsed().as_nanos() as u64;
        // ORDERING: Relaxed — monotonic statistics counters (see `stats`).
        shared.busy_nanos.fetch_add(busy, Ordering::Relaxed);
        shared.chunks_executed.fetch_add(1, Ordering::Relaxed);
        if ringo_trace::enabled() {
            let tc = trace_counters();
            tc.chunks.add(1);
            tc.busy_ns.add(busy);
        }

        let mut d = job.done.lock().expect("pool job state poisoned");
        d.remaining -= 1;
        if let Err(payload) = result {
            d.panic.get_or_insert(payload);
        }
        if d.remaining == 0 {
            job.done_cv.notify_all();
        }
    }
    if engaged {
        // ORDERING: Relaxed — gauge decrement, see the increment above.
        let now = shared.busy_workers.fetch_sub(1, Ordering::Relaxed) - 1;
        if ringo_trace::enabled() {
            trace_counters().busy_workers.set(now as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread::ThreadId;

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = Pool::with_workers(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, &|t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn repeated_jobs_reuse_the_same_workers() {
        let pool = Pool::with_workers(3);
        let before = pool.stats();
        let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        for _ in 0..50 {
            pool.run(6, &|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // A little work so multiple executors get a chance to run.
                std::hint::black_box((0..500).sum::<u64>());
            });
        }
        let after = pool.stats();
        assert_eq!(after.workers, before.workers, "no workers created per call");
        assert_eq!(after.jobs_dispatched - before.jobs_dispatched, 50);
        assert_eq!(after.chunks_executed - before.chunks_executed, 300);
        // Executors are only the 3 resident workers plus this test thread:
        // 50 calls never spawned a fresh OS thread.
        let distinct = ids.lock().unwrap().len();
        assert!(
            distinct <= pool.workers() + 1,
            "expected at most {} executor threads, saw {distinct}",
            pool.workers() + 1
        );
        assert!(after.busy > before.busy, "busy time accumulates");
    }

    #[test]
    fn panic_propagates_with_original_payload() {
        let pool = Pool::with_workers(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|t| {
                if t == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "chunk 5 exploded");
        // The pool survives a panicked job.
        let ran = AtomicUsize::new(0);
        pool.run(4, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn more_chunks_than_workers_completes() {
        let pool = Pool::with_workers(2);
        let count = AtomicUsize::new(0);
        pool.run(97, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 97);
    }

    #[test]
    fn nested_jobs_do_not_deadlock() {
        let pool = Pool::global();
        let total = AtomicUsize::new(0);
        // Saturate the pool with outer chunks that each dispatch an inner
        // job; dispatcher participation guarantees the inner jobs drain.
        crate::parallel::parallel_for(8, 8, |_, outer| {
            for _ in outer {
                crate::parallel::parallel_for(16, 4, |_, inner| {
                    total.fetch_add(inner.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 16);
        assert!(pool.stats().jobs_dispatched > 0);
    }

    #[test]
    fn zero_and_one_chunk_run_inline() {
        let pool = Pool::with_workers(2);
        let before = pool.stats();
        pool.run(0, &|_| panic!("no chunks, no calls"));
        let main_id = std::thread::current().id();
        pool.run(1, &|t| {
            assert_eq!(t, 0);
            assert_eq!(std::thread::current().id(), main_id, "inline fast path");
        });
        let after = pool.stats();
        assert_eq!(
            after.jobs_dispatched, before.jobs_dispatched,
            "inline paths never dispatch"
        );
    }
}
