//! Concurrent fixed-size bitset: one bit per index, packed into atomic
//! 64-bit words.
//!
//! The workhorse of frontier-style parallel algorithms: [`set`] is an
//! atomic `fetch_or` whose return value says whether *this* caller
//! flipped the bit — a wait-free claim protocol (exactly one of any
//! number of concurrent setters of the same bit wins). Membership reads
//! are one bit instead of the 4-byte distance word a dense `u32` state
//! array would touch, which is why direction-optimizing BFS keeps its
//! bottom-up frontier here.
//!
//! The claim protocol (two setters of the same bit, setters of distinct
//! bits in one word) has deterministic-schedule coverage in
//! `crates/check/tests/model_bitset.rs`.
//!
//! [`set`]: ConcurrentBitset::set

use crate::sync::VAtomicU64;
use std::sync::atomic::Ordering;

/// Fixed-capacity bitset with atomic bit claims. See the module docs.
#[derive(Debug, Default)]
pub struct ConcurrentBitset {
    words: Vec<VAtomicU64>,
    bits: usize,
}

impl ConcurrentBitset {
    /// A bitset of `bits` zeroed bits.
    pub fn new(bits: usize) -> Self {
        let words = (0..bits.div_ceil(64)).map(|_| VAtomicU64::new(0)).collect();
        Self { words, bits }
    }

    /// Capacity in bits.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// True when the capacity is zero bits.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Atomically sets bit `i`, returning `true` when this call flipped
    /// it from 0 to 1. Concurrent setters of the same bit agree: exactly
    /// one observes `true`.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        let mask = 1u64 << (i % 64);
        // ORDERING: Relaxed — the bit is a claim token, not a publication:
        // the fetch_or's atomicity alone decides the unique winner, and
        // any data guarded by the claim is published by the pool's
        // dispatch barrier before another phase reads it.
        let prev = self.words[i / 64].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        // ORDERING: Relaxed — membership reads race only with claims of
        // *other* bits in the word (fetch_or never clears), or run after
        // the setting phase's pool barrier.
        self.words[i / 64].load(Ordering::Relaxed) & (1u64 << (i % 64)) != 0
    }

    /// Clears every bit. Exclusive access proves no concurrent claimer
    /// exists, so this is a plain sweep.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            // ORDERING: Relaxed — counting is only meaningful after the
            // setting phase; the pool barrier orders it.
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_claims_exactly_once() {
        let b = ConcurrentBitset::new(130);
        assert!(!b.get(0));
        assert!(b.set(0), "first set flips the bit");
        assert!(!b.set(0), "second set does not");
        assert!(b.get(0));
        assert!(b.set(129), "last bit usable");
        assert!(b.get(129));
        assert!(!b.get(128), "neighboring bit untouched");
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn clear_resets_all_bits() {
        let mut b = ConcurrentBitset::new(70);
        for i in 0..70 {
            assert!(b.set(i));
        }
        assert_eq!(b.count_ones(), 70);
        b.clear();
        assert_eq!(b.count_ones(), 0);
        assert!(b.set(65), "cleared bits claimable again");
    }

    #[test]
    fn empty_bitset() {
        let b = ConcurrentBitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn parallel_claims_are_unique() {
        let bits = 10_000;
        let b = ConcurrentBitset::new(bits);
        // Every index claimed by 4 logical workers; total wins must be
        // exactly `bits`.
        let wins: usize = crate::parallel_map(4 * bits, 4, |range| {
            range.filter(|i| b.set(i % bits)).count()
        })
        .into_iter()
        .sum();
        assert_eq!(wins, bits);
        assert_eq!(b.count_ones(), bits);
    }
}
