//! Fixed-capacity vector with atomic-claim insertion.
//!
//! The paper (§2.5): "Concurrent insertions to a vector are implemented by
//! using an atomic increment instruction to claim an index of a cell to
//! which a new value is inserted." [`ConcurrentVec`] is that structure: the
//! capacity is fixed at construction, `push` claims `len.fetch_add(1)` and
//! writes the value into the claimed cell without any locking.

use crate::sync::VAtomicUsize;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;

/// Error returned by [`ConcurrentVec::push`] when the vector is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError;

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ConcurrentVec capacity exhausted")
    }
}

impl std::error::Error for CapacityError {}

/// A fixed-capacity vector supporting lock-free concurrent `push`.
///
/// Reads through [`ConcurrentVec::get`] or iteration are only valid for
/// indices below the observed length; because `push` publishes the length
/// with a release increment *after* writing the cell, readers that observe
/// an index as in-bounds... — note the subtlety: the claim happens *before*
/// the write, so concurrent readers could observe `len` past a cell still
/// being written. To keep the API safe, reads are therefore only offered on
/// `&mut self` or after consuming the vector with
/// [`ConcurrentVec::into_vec`]; during the parallel phase the structure is
/// write-only, exactly how Ringo uses it.
pub struct ConcurrentVec<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    len: VAtomicUsize,
}

// SAFETY: all concurrent access is mediated by atomic index claiming; cells
// are written at most once and read only with exclusive access.
unsafe impl<T: Send> Sync for ConcurrentVec<T> {}
// SAFETY: owning the vector owns the cells; sending it sends the `T`s.
unsafe impl<T: Send> Send for ConcurrentVec<T> {}

impl<T> ConcurrentVec<T> {
    /// Creates a vector able to hold exactly `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Self {
            buf,
            len: VAtomicUsize::new(0),
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Number of elements pushed so far. With concurrent pushers in flight
    /// this is a lower bound on the eventually visible count.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire).min(self.buf.len())
    }

    /// True when no elements have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `value`, returning the index it was stored at.
    ///
    /// Lock-free: claims a cell with one `fetch_add`. Returns
    /// `Err(CapacityError)` when full (the over-claim is rolled back so
    /// repeated failures cannot overflow the counter).
    pub fn push(&self, value: T) -> Result<usize, CapacityError> {
        let idx = self.len.fetch_add(1, Ordering::AcqRel);
        if idx >= self.buf.len() {
            self.len.fetch_sub(1, Ordering::AcqRel);
            return Err(CapacityError);
        }
        // SAFETY: `idx` was claimed exclusively by this thread's fetch_add;
        // no other thread will touch this cell until exclusive access.
        unsafe {
            (*self.buf[idx].get()).write(value);
        }
        Ok(idx)
    }

    /// Reads the element at `i`. Requires `&mut self`, guaranteeing all
    /// pushes have completed (no thread can hold `&self` concurrently).
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        if i < self.len() {
            // SAFETY: i < len means the cell was fully written, and &mut
            // self means no concurrent writer exists.
            Some(unsafe { (*self.buf[i].get()).assume_init_mut() })
        } else {
            None
        }
    }

    /// Consumes the vector, returning the pushed elements in claim order.
    pub fn into_vec(self) -> Vec<T> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            // SAFETY: cells [0, n) are initialized; we take ownership and
            // mark the source empty so Drop does not double-free.
            unsafe {
                out.push((*self.buf[i].get()).assume_init_read());
            }
        }
        self.len.store(0, Ordering::Release);
        out
    }
}

impl<T> Drop for ConcurrentVec<T> {
    fn drop(&mut self) {
        let n = self.len();
        for i in 0..n {
            // SAFETY: cells [0, n) are initialized and owned by us.
            unsafe {
                (*self.buf[i].get()).assume_init_drop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::parallel_for;

    #[test]
    fn push_and_into_vec_sequential() {
        let v = ConcurrentVec::with_capacity(10);
        for i in 0..10 {
            assert_eq!(v.push(i), Ok(i));
        }
        assert_eq!(v.push(99), Err(CapacityError));
        assert_eq!(v.len(), 10);
        assert_eq!(v.into_vec(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_pushes_land_exactly_once() {
        let n = 50_000usize;
        let v = ConcurrentVec::with_capacity(n);
        parallel_for(n, 8, |_, range| {
            for i in range {
                v.push(i).expect("capacity sized exactly");
            }
        });
        assert_eq!(v.len(), n);
        let mut out = v.into_vec();
        out.sort_unstable();
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_is_reported_not_ub() {
        let n = 1000usize;
        let v = ConcurrentVec::with_capacity(n / 2);
        let mut failures = 0usize;
        for i in 0..n {
            if v.push(i).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, n / 2);
        assert_eq!(v.len(), n / 2);
    }

    #[test]
    fn drop_runs_for_owned_values() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let v = ConcurrentVec::with_capacity(8);
            for _ in 0..5 {
                v.push(Counted).unwrap();
            }
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn get_mut_respects_length() {
        let mut v = ConcurrentVec::with_capacity(4);
        v.push(7i64).unwrap();
        assert_eq!(v.get_mut(0), Some(&mut 7));
        assert_eq!(v.get_mut(1), None);
    }

    #[test]
    fn zero_capacity_push_fails() {
        let v: ConcurrentVec<i32> = ConcurrentVec::with_capacity(0);
        assert_eq!(v.push(1), Err(CapacityError));
        assert!(v.is_empty());
    }

    /// Stress the capacity-rollback path under real contention: many
    /// workers keep pushing well past capacity, so failing pushes
    /// (fetch_add then fetch_sub) race with succeeding ones the whole
    /// time. Afterwards `len` must equal capacity exactly — the transient
    /// over-claims must all have been rolled back — and the stored
    /// elements must be precisely the set of values whose push reported
    /// success: nothing lost, nothing duplicated.
    #[test]
    fn contended_overflow_rolls_back_and_loses_nothing() {
        use std::sync::atomic::AtomicBool;

        let capacity = 4_096usize;
        let attempts = 64 * 1024usize; // 16x oversubscribed
        for round in 0..8 {
            let v: ConcurrentVec<usize> = ConcurrentVec::with_capacity(capacity);
            let succeeded: Vec<AtomicBool> =
                (0..attempts).map(|_| AtomicBool::new(false)).collect();
            parallel_for(attempts, 16, |_, range| {
                for i in range {
                    if v.push(i).is_ok() {
                        succeeded[i].store(true, Ordering::Relaxed);
                    }
                }
            });
            assert_eq!(v.len(), capacity, "round {round}: len != capacity");
            let mut stored = v.into_vec();
            assert_eq!(stored.len(), capacity, "round {round}");
            stored.sort_unstable();
            let mut expected: Vec<usize> = (0..attempts)
                .filter(|&i| succeeded[i].load(Ordering::Relaxed))
                .collect();
            expected.sort_unstable();
            assert_eq!(stored, expected, "round {round}: lost or duplicated");
        }
    }
}
