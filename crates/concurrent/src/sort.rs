//! Parallel merge sort (general `Ord` keys).
//!
//! The "sort-first" table-to-graph conversion (paper §2.4) hinges on sorting
//! the copied source/destination columns in parallel. We use a classic
//! two-phase merge sort: sort one contiguous chunk per worker with the
//! standard library's unstable sort, then merge pairs of runs in rounds,
//! with the merges of one round running in parallel. One auxiliary buffer
//! of the same length is ping-ponged against the input between rounds so
//! data is moved, never reallocated.
//!
//! This is the fallback for arbitrary `Ord` keys; integer-keyed sorts
//! (node ids, edge pairs, `order_by` on int columns) route through the
//! faster non-comparison [`crate::radix`] sorter instead.

use crate::parallel::{chunk_bounds, parallel_for, DisjointSlice};

/// Sorts `data` in ascending order using `threads` workers.
///
/// Falls back to `sort_unstable` when `threads <= 1` or the input is small
/// (< 8192 elements), where fork-join overhead would dominate.
pub fn parallel_sort<T: Ord + Copy + Send + Sync>(data: &mut [T], threads: usize) {
    parallel_sort_by_key(data, threads, |x| *x);
}

/// Sorts `data` ascending by the key extracted with `key`, in parallel.
pub fn parallel_sort_by_key<T, K, F>(data: &mut [T], threads: usize, key: F)
where
    T: Copy + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let len = data.len();
    if threads <= 1 || len < 8192 {
        data.sort_unstable_by_key(|a| key(a));
        return;
    }
    let bounds = chunk_bounds(len, threads);
    let runs = bounds.len() - 1;

    // Phase 1: sort each chunk independently.
    parallel_for_sorted_chunks(data, &bounds, threads, &key);
    if runs == 1 {
        return;
    }

    // Phase 2: merge pairs of adjacent runs, round by round, ping-ponging
    // between `data` itself and ONE auxiliary buffer. (An earlier version
    // copied the input into two fresh buffers — `src = data.to_vec()` plus
    // `dst.extend_from_slice(data)` — doubling phase-2 memory for nothing:
    // with correct parity tracking the input slice serves as one side of
    // the ping-pong.) T: Copy makes the single clone a memcpy; its
    // contents only matter for the trailing-unpaired-run copy-through.
    let mut aux: Vec<T> = data.to_vec();
    // True while the current runs live in `data` (merges write to `aux`).
    let mut in_data = true;

    let mut run_bounds = bounds;
    while run_bounds.len() > 2 {
        let pairs = (run_bounds.len() - 1) / 2;
        let next_bounds: Vec<usize> = {
            let mut nb = Vec::with_capacity(pairs + 2);
            let mut i = 0;
            nb.push(0);
            while i + 2 < run_bounds.len() {
                nb.push(run_bounds[i + 2]);
                i += 2;
            }
            if i + 1 < run_bounds.len() && *nb.last().unwrap() != len {
                nb.push(len);
            }
            nb
        };
        {
            let (src_ref, dst_cell): (&[T], DisjointSlice<T>) = if in_data {
                (&*data, DisjointSlice::new(&mut aux))
            } else {
                (&aux, DisjointSlice::new(data))
            };
            let rb = &run_bounds;
            let key = &key;
            // `run_bounds.len() > 2` guarantees at least one full pair,
            // and every pair index satisfies `2p + 2 <= run_bounds.len() - 1`,
            // so the window bounds below never index past the slice.
            debug_assert!(pairs >= 1);
            parallel_for(pairs, threads, |_, pair_range| {
                for p in pair_range {
                    let lo = rb[2 * p];
                    let mid = rb[2 * p + 1];
                    let hi = rb[2 * p + 2];
                    // SAFETY: pairs own disjoint [lo, hi) output windows:
                    // `rb` is strictly increasing, so windows of distinct
                    // pair indices cannot overlap, and `hi <= len`.
                    let out = unsafe { dst_cell.slice_mut(lo, hi) };
                    merge_runs(&src_ref[lo..mid], &src_ref[mid..hi], out, key);
                }
            });
            // A trailing unpaired run is copied through unchanged.
            if run_bounds.len().is_multiple_of(2) {
                let lo = run_bounds[run_bounds.len() - 2];
                let hi = run_bounds[run_bounds.len() - 1];
                // SAFETY: the pair windows above end at rb[2*pairs] == lo,
                // so [lo, hi) is written by this thread alone.
                unsafe { dst_cell.slice_mut(lo, hi) }.copy_from_slice(&src_ref[lo..hi]);
            }
        }
        in_data = !in_data;
        run_bounds = next_bounds;
    }
    // An odd number of merge rounds leaves the sorted data in `aux`.
    if !in_data {
        data.copy_from_slice(&aux);
    }
}

fn parallel_for_sorted_chunks<T, K, F>(data: &mut [T], bounds: &[usize], threads: usize, key: &F)
where
    T: Copy + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let cell = DisjointSlice::new(data);
    parallel_for(bounds.len() - 1, threads, |_, chunk_range| {
        for c in chunk_range {
            // SAFETY: chunks are disjoint index windows of `data`.
            let chunk = unsafe { cell.slice_mut(bounds[c], bounds[c + 1]) };
            chunk.sort_unstable_by_key(|a| key(a));
        }
    });
}

fn merge_runs<T, K, F>(a: &[T], b: &[T], out: &mut [T], key: &F)
where
    T: Copy,
    K: Ord,
    F: Fn(&T) -> K,
{
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => key(x) <= key(y),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("merge exhausted both runs early"),
        };
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringo_rng::Rng64;

    fn check_sorted(threads: usize, len: usize, seed: u64) {
        let mut rng = Rng64::new(seed);
        let mut data: Vec<i64> = (0..len).map(|_| rng.range_i64(-1000..1000)).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        parallel_sort(&mut data, threads);
        assert_eq!(data, expect, "threads={threads} len={len}");
    }

    #[test]
    fn sorts_small_inputs_inline() {
        check_sorted(4, 0, 1);
        check_sorted(4, 1, 2);
        check_sorted(4, 100, 3);
    }

    #[test]
    fn sorts_large_inputs_with_various_thread_counts() {
        for threads in [2, 3, 4, 7, 8] {
            check_sorted(threads, 50_000, threads as u64);
        }
    }

    #[test]
    fn sorts_with_duplicates_and_already_sorted() {
        let mut dup: Vec<i64> = (0..30_000).map(|i| i % 5).collect();
        let mut expect = dup.clone();
        expect.sort_unstable();
        parallel_sort(&mut dup, 4);
        assert_eq!(dup, expect);

        let mut asc: Vec<i64> = (0..30_000).collect();
        let expect = asc.clone();
        parallel_sort(&mut asc, 4);
        assert_eq!(asc, expect);

        let mut desc: Vec<i64> = (0..30_000).rev().collect();
        parallel_sort(&mut desc, 3);
        let expect: Vec<i64> = (0..30_000).collect();
        assert_eq!(desc, expect);
    }

    #[test]
    fn sort_by_key_orders_pairs_by_first_component() {
        let mut pairs: Vec<(i64, i64)> = (0..20_000).map(|i| ((i * 7919) % 1000, i)).collect();
        parallel_sort_by_key(&mut pairs, 4, |p| p.0);
        for w in pairs.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn merge_runs_basic() {
        let a = [1, 3, 5];
        let b = [2, 4, 6];
        let mut out = [0; 6];
        merge_runs(&a, &b, &mut out, &|x| *x);
        assert_eq!(out, [1, 2, 3, 4, 5, 6]);
    }

    /// Regression test for the single-aux-buffer ping-pong: odd run counts
    /// exercise the trailing-unpaired-run copy-through, and both round
    /// parities (odd leaves the result in `aux` and must copy back).
    #[test]
    fn odd_run_counts_with_single_aux_buffer() {
        let mut rng = Rng64::new(0x0DD5);
        for threads in [3usize, 5, 7, 9] {
            let len = 60_000 + rng.below(100);
            let mut data: Vec<i64> = (0..len).map(|_| rng.range_i64(-5000..5000)).collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            parallel_sort(&mut data, threads);
            assert_eq!(data, expect, "threads={threads} len={len}");
        }
    }

    /// Property test guarding the merge-round window arithmetic (the
    /// `DisjointSlice` unsafe surface): `parallel_sort_by_key` must agree with
    /// `sort_unstable_by_key` for random inputs across lengths 0–20k and
    /// thread counts 1–9, which exercises odd run counts, a trailing
    /// unpaired run, and the single-pair final round.
    #[test]
    fn property_sort_by_key_matches_std_across_lengths_and_threads() {
        let mut rng = Rng64::new(0xD1CE);
        for case in 0..48 {
            // Mix maximal and uniform lengths so the >= 8192 parallel path
            // is hit often, not only the small-input fallback.
            let len = if case % 3 == 0 {
                20_000 - rng.below(64)
            } else {
                rng.below(20_001)
            };
            for threads in 1..=9usize {
                let mut data: Vec<(i64, u32)> = (0..len)
                    .map(|i| (rng.range_i64(-300..300), i as u32))
                    .collect();
                let mut expect = data.clone();
                expect.sort_unstable_by_key(|p| p.0);
                parallel_sort_by_key(&mut data, threads, |p| p.0);
                // Keys must match the std ordering exactly; payloads must
                // be a permutation (neither sort is stable).
                assert!(
                    data.iter().map(|p| p.0).eq(expect.iter().map(|p| p.0)),
                    "key order diverged: len={len} threads={threads}"
                );
                let mut got: Vec<u32> = data.iter().map(|p| p.1).collect();
                let mut want: Vec<u32> = expect.iter().map(|p| p.1).collect();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "payload lost: len={len} threads={threads}");
            }
        }
    }
}
