//! Synchronization facade: the one place this crate names its atomics.
//!
//! Library code uses `crate::sync::VAtomic*` instead of
//! `std::sync::atomic::Atomic*`. In a normal build (no `model` feature)
//! these are *type aliases* onto the `std` types — the compiler sees
//! exactly the code it would without the facade, so codegen is identical
//! and the crate keeps its zero-dependency runtime. Under
//! `--features model` (or `--cfg ringo_model`) the aliases point at
//! `ringo_check`'s virtual atomics, which route every operation through
//! the deterministic cooperative scheduler so `cargo test -p ringo-check
//! --features model` can explore interleavings of this crate's lock-free
//! structures. See `crates/check` and DESIGN.md § "Concurrency checking".
//!
//! Beyond the integer atomics, the facade carries the three extra
//! primitives the epoch layer ([`crate::epoch`]) is built from:
//! [`VAtomicPtr`] (the version pointer a publish swings), [`VMutex`]
//! (the writer-side lock serializing publish/gc — a mutex the model can
//! schedule around, unlike a raw `std::sync::Mutex`, whose blocking
//! would wedge the cooperative scheduler), and [`yield_now`] (a pure
//! preemption point for spin fallbacks).

#[cfg(not(any(feature = "model", ringo_model)))]
pub use std::sync::atomic::{
    AtomicI64 as VAtomicI64, AtomicPtr as VAtomicPtr, AtomicU64 as VAtomicU64,
    AtomicUsize as VAtomicUsize,
};

#[cfg(not(any(feature = "model", ringo_model)))]
mod std_shims {
    /// `std::sync::Mutex` behind `ringo_check::sync::VMutex`'s exact API:
    /// `lock` returns the guard directly and swallows poisoning (a
    /// panicked writer leaves the protected state at its last completed
    /// mutation; the epoch bookkeeping guarded by this type has no torn
    /// intermediate states).
    #[derive(Debug, Default)]
    pub struct VMutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> VMutex<T> {
        /// Creates the mutex; `const` to match the model-side type.
        pub const fn new(value: T) -> Self {
            Self {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Locks, returning the plain `std` guard.
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Exclusive access without locking.
        pub fn get_mut(&mut self) -> &mut T {
            self.inner
                .get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    /// Hints the OS scheduler; the model-side counterpart is a scheduler
    /// preemption point.
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

#[cfg(not(any(feature = "model", ringo_model)))]
pub use std_shims::{yield_now, VMutex};

#[cfg(any(feature = "model", ringo_model))]
pub use ringo_check::sync::{yield_now, VAtomicI64, VAtomicPtr, VAtomicU64, VAtomicUsize, VMutex};
