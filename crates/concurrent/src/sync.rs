//! Synchronization facade: the one place this crate names its atomics.
//!
//! Library code uses `crate::sync::VAtomic*` instead of
//! `std::sync::atomic::Atomic*`. In a normal build (no `model` feature)
//! these are *type aliases* onto the `std` types — the compiler sees
//! exactly the code it would without the facade, so codegen is identical
//! and the crate keeps its zero-dependency runtime. Under
//! `--features model` (or `--cfg ringo_model`) the aliases point at
//! `ringo_check`'s virtual atomics, which route every operation through
//! the deterministic cooperative scheduler so `cargo test -p ringo-check
//! --features model` can explore interleavings of this crate's lock-free
//! structures. See `crates/check` and DESIGN.md § "Concurrency checking".

#[cfg(not(any(feature = "model", ringo_model)))]
pub use std::sync::atomic::{
    AtomicI64 as VAtomicI64, AtomicU64 as VAtomicU64, AtomicUsize as VAtomicUsize,
};

#[cfg(any(feature = "model", ringo_model))]
pub use ringo_check::sync::{VAtomicI64, VAtomicU64, VAtomicUsize};
