//! Parallel LSD radix sort for integer keys.
//!
//! The sort-first conversion pipeline (paper §2.4) and integer `order_by`
//! spend their time sorting `i64` node ids and `(i64, i64)` edge pairs.
//! A comparison sort pays `O(n log n)` branchy comparisons for keys that
//! are plain machine integers; a least-significant-digit radix sort pays
//! `O(passes · n)` sequential memory traffic instead, and — because node
//! ids in real graphs occupy a narrow byte range — most of the eight
//! possible passes can be skipped outright.
//!
//! The algorithm per 8-bit digit pass:
//!
//! 1. **Histogram** — each worker counts the digit values of its
//!    contiguous chunk into a private 256-bucket histogram (no sharing,
//!    no atomics).
//! 2. **Prefix scan** — a sequential scan over `workers × 256` counts
//!    turns the histograms into per-worker scatter cursors: worker `w`'s
//!    cursor for digit value `v` starts at
//!    `Σ_{v'<v} total[v'] + Σ_{w'<w} hist[w'][v]`.
//! 3. **Scatter** — each worker walks its chunk in order and writes every
//!    element to `dst[cursor[digit]++]`. The cursor ranges partition the
//!    output, so writes are disjoint and lock-free; walking chunks in
//!    order makes the pass **stable**, which is what lets a pair sort run
//!    as two chained single-key sorts.
//!
//! Passes ping-pong between the input and one auxiliary buffer. A
//! histogram **pre-pass** over all digit positions finds digits whose
//! value is identical across every key (the high bytes of small node ids,
//! the sign byte of non-negative ids); those passes are skipped. Signed
//! keys are mapped to unsigned order with the bias transform
//! `x ^ i64::MIN`, which flips the sign bit so `i64::MIN..=i64::MAX` maps
//! monotonically to `0..=u64::MAX`.
//!
//! Two digit widths are used. Plain `u64`/`i64` values sort with
//! **16-bit digits** (4 positions, 65536-bucket histograms): half the
//! passes of a byte-wise sort, and the histograms still fit per-worker.
//! The keyed record sort keeps 8-bit digits, where the 256-entry cursor
//! table stays cache-resident next to arbitrary-size payloads. Pair
//! sorts first probe the biased keys' bit span; when both components fit
//! in 32 active bits (node ids in practice) each pair packs into one
//! `u64` — `src_low32 : dst_low32`, whose value order equals the tuple
//! order — so the sort moves 8-byte keys instead of 16-byte tuples and
//! reconstructs the pairs afterwards. Wide pairs fall back to two
//! chained stable byte-wise sorts.
//!
//! Because a scatter pass permutes but never changes the key multiset,
//! the per-digit totals from the pre-pass stay valid for every pass;
//! with a single worker the totals are also the (only) worker histogram,
//! so a sequential sort performs exactly one counting scan. Multiple
//! workers recount their new chunk boundaries per pass, a sequential
//! read that overlaps the scatter's pay-off.
//!
//! Inputs shorter than [`SEQ_THRESHOLD`] fall back to the standard
//! library sort, where radix setup (histograms + aux buffer) would
//! dominate.

use crate::parallel::{
    chunk_bounds, parallel_for, parallel_for_dynamic, parallel_map, DisjointSlice,
};

/// Inputs shorter than this use the standard library sort instead of the
/// radix machinery (aux buffer + `workers × 8 × 256` histogram setup).
pub const SEQ_THRESHOLD: usize = 4096;

const DIGITS: usize = 8;
const RADIX: usize = 256;
/// Digit width for the plain-`u64` value sorter. 11 bits = 2048 buckets:
/// few enough that the cursor table (16KB) and the currently-filling
/// cache line of every bucket stay resident even in a small L2, wide
/// enough that a 40-bit packed edge key sorts in four passes.
const DIGIT_BITS_V: usize = 11;
const DIGITS_V: usize = 64usize.div_ceil(DIGIT_BITS_V);
const RADIX_V: usize = 1 << DIGIT_BITS_V;

/// Order-preserving map from signed to unsigned keys: flipping the sign
/// bit sends `i64::MIN..=i64::MAX` monotonically to `0..=u64::MAX`.
#[inline(always)]
pub fn i64_key(x: i64) -> u64 {
    (x as u64) ^ (1u64 << 63)
}

/// Inverse of [`i64_key`].
#[inline(always)]
fn un_i64_key(k: u64) -> i64 {
    (k ^ (1u64 << 63)) as i64
}

/// Order-preserving map from IEEE-754 doubles to unsigned keys whose
/// `u64` order equals [`f64::total_cmp`]'s total order:
/// `-NaN < -inf < … < -0 < +0 < … < +inf < +NaN`. Negative values have
/// all bits flipped (reversing their magnitude order), non-negative
/// values only the sign bit — the same transform `total_cmp` applies
/// before its integer compare, then biased through [`i64_key`].
#[inline(always)]
pub fn f64_key(x: f64) -> u64 {
    let b = x.to_bits() as i64;
    i64_key(b ^ ((((b >> 63) as u64) >> 1) as i64))
}

#[inline(always)]
fn digit(k: u64, d: usize) -> usize {
    ((k >> (8 * d)) & 0xFF) as usize
}

#[inline(always)]
fn digitv(k: u64, d: usize) -> usize {
    ((k >> (DIGIT_BITS_V * d)) & (RADIX_V as u64 - 1)) as usize
}

/// Sorts unsigned 64-bit integers ascending.
pub fn radix_sort_u64(data: &mut [u64], threads: usize) {
    let mut sp = ringo_trace::span!("sort.radix.u64");
    sp.rows_in(data.len());
    sp.rows_out(data.len());
    if data.len() < SEQ_THRESHOLD || data.len() >= u32::MAX as usize {
        data.sort_unstable();
        return;
    }
    lsd_u64(data, threads);
}

/// Sorts signed 64-bit integers ascending (bias transform, see module
/// docs).
pub fn radix_sort_i64(data: &mut [i64], threads: usize) {
    let mut sp = ringo_trace::span!("sort.radix.i64");
    sp.rows_in(data.len());
    sp.rows_out(data.len());
    if data.len() < SEQ_THRESHOLD || data.len() >= u32::MAX as usize {
        data.sort_unstable();
        return;
    }
    // An i64 slice and a u64 slice have identical layout; bias in place,
    // sort by unsigned value, un-bias.
    let len = data.len();
    // SAFETY: same element size and alignment, same length, exclusive
    // borrow for the whole region.
    let bits: &mut [u64] =
        unsafe { std::slice::from_raw_parts_mut(data.as_mut_ptr() as *mut u64, len) };
    let flip = |bits: &mut [u64]| {
        let cell = DisjointSlice::new(bits);
        parallel_for(len, threads, |_, range| {
            // SAFETY: chunk ranges are disjoint.
            let chunk = unsafe { cell.slice_mut(range.start, range.end) };
            for x in chunk {
                *x ^= 1u64 << 63;
            }
        });
    };
    flip(bits);
    lsd_u64(bits, threads);
    flip(bits);
}

/// Sorts `(i64, i64)` pairs in full lexicographic (`Ord`) order — the
/// sort the conversion pipeline runs on its copied edge columns.
///
/// A mask probe finds each component's varying-bit span (bits above it
/// are constant across the input — node ids in practice occupy a narrow
/// range, so most of each `i64` never varies). When the two spans fit in
/// one u64 together, a single **MSD partition pass** scatters the tuples
/// into up to 2048 buckets keyed by the top varying bits of the combined
/// key: bucket order equals tuple order, every bucket is small enough to
/// finish with a cache-resident comparison sort, and the whole sort
/// touches DRAM a constant number of times instead of once per digit.
/// The spans are guessed from a sample and verified during the counting
/// pass (full masks come along for free); a bad guess — some high bit
/// varies so rarely the sample missed it — just recounts with the
/// corrected spans. Pairs whose spans exceed 64 bits together fall back
/// to two chained stable single-key LSD sorts: first by the second
/// component, then by the first; stability of the second pass preserves
/// the first pass's order among equal leading keys.
pub fn radix_sort_pairs(data: &mut [(i64, i64)], threads: usize) {
    let mut sp = ringo_trace::span!("sort.radix.pairs");
    sp.rows_in(data.len());
    sp.rows_out(data.len());
    let len = data.len();
    if len < SEQ_THRESHOLD || len >= u32::MAX as usize {
        data.sort_unstable();
        return;
    }
    // One cheap sequential scan makes already-sorted input (a common case
    // when re-converting) a no-op instead of a full partition cycle, and a
    // descending run just a reversal — pdqsort handles both adaptively, so
    // the radix path must too or it loses exactly those comparisons.
    if data.is_sorted() {
        return;
    }
    if data.is_sorted_by(|a, b| a >= b) {
        data.reverse();
        return;
    }

    let span_of = |or: u64, and: u64| (64 - (or ^ and).leading_zeros()) as usize;
    let mask_of = |bits: usize| -> u64 {
        if bits >= 64 {
            !0u64
        } else {
            (1u64 << bits) - 1
        }
    };

    // Guess the varying spans from a strided sample.
    let step = (len / 512).max(1);
    let (mut s_or, mut s_and, mut d_or, mut d_and) = (0u64, !0u64, 0u64, !0u64);
    for &(s, d) in data.iter().step_by(step) {
        let (sk, dk) = (i64_key(s), i64_key(d));
        s_or |= sk;
        s_and &= sk;
        d_or |= dk;
        d_and &= dk;
    }
    let (mut bits_s, mut bits_d) = (span_of(s_or, s_and), span_of(d_or, d_and));

    // Counting pass: per-worker bucket histograms plus the full masks
    // that verify the sampled spans. A span the sample underestimated
    // forces one recount with the corrected bucket function.
    let (hist, total_bits, bucket_bits, full_and_s, full_and_d) = loop {
        if bits_s + bits_d > 64 {
            // Spans too wide to combine: chained stable LSD sorts.
            lsd_by_key(data, threads, &|p: &(i64, i64)| i64_key(p.1));
            lsd_by_key(data, threads, &|p: &(i64, i64)| i64_key(p.0));
            return;
        }
        let total_bits = bits_s + bits_d;
        let bucket_bits = DIGIT_BITS_V.min(total_bits);
        let (s_mask, d_mask) = (mask_of(bits_s), mask_of(bits_d));
        let (bs, bd, down) = (bits_s, bits_d, (total_bits - bucket_bits) as u32);
        let per: Vec<(Vec<u32>, [u64; 4])> = parallel_map(len, threads, |range| {
            let mut h = vec![0u32; 1 << bucket_bits];
            let (mut s_or, mut s_and, mut d_or, mut d_and) = (0u64, !0u64, 0u64, !0u64);
            for i in range {
                let (s, d) = data[i];
                let (sk, dk) = (i64_key(s), i64_key(d));
                s_or |= sk;
                s_and &= sk;
                d_or |= dk;
                d_and &= dk;
                let key = (sk & s_mask).wrapping_shl(bd as u32) | (dk & d_mask);
                h[key.wrapping_shr(down) as usize] += 1;
            }
            (h, [s_or, s_and, d_or, d_and])
        });
        let (mut s_or, mut s_and, mut d_or, mut d_and) = (0u64, !0u64, 0u64, !0u64);
        for (_, m) in &per {
            s_or |= m[0];
            s_and &= m[1];
            d_or |= m[2];
            d_and &= m[3];
        }
        let (full_s, full_d) = (span_of(s_or, s_and), span_of(d_or, d_and));
        if full_s > bits_s || full_d > bits_d {
            bits_s = full_s;
            bits_d = full_d;
            continue;
        }
        debug_assert_eq!((bs, bd), (bits_s, bits_d));
        break (per, total_bits, bucket_bits, s_and, d_and);
    };

    if ringo_trace::enabled() {
        ringo_trace::counter("sort.radix.passes").add(1);
    }
    if total_bits == 0 {
        return; // every pair identical
    }
    let buckets = 1usize << bucket_bits;
    let (s_mask, d_mask) = (mask_of(bits_s), mask_of(bits_d));
    let down = (total_bits - bucket_bits) as u32;
    // Bits above each verified span are constant across the whole input;
    // the AND mask carries their value so unpacking can restore them.
    let s_const = full_and_s & !s_mask;
    let d_const = full_and_d & !d_mask;
    let pack = move |s: i64, d: i64| -> u64 {
        (i64_key(s) & s_mask).wrapping_shl(bits_d as u32) | (i64_key(d) & d_mask)
    };

    // Prefix scan → bucket offsets and per-worker scatter cursors.
    let workers = hist.len();
    let mut offsets = vec![0usize; buckets + 1];
    for b in 0..buckets {
        let mut sum = offsets[b];
        for (h, _) in &hist {
            sum += h[b] as usize;
        }
        offsets[b + 1] = sum;
    }
    debug_assert_eq!(offsets[buckets], len);
    let mut cursors = vec![0usize; workers * buckets];
    {
        let mut run = offsets[..buckets].to_vec();
        for (w, (h, _)) in hist.iter().enumerate() {
            cursors[w * buckets..(w + 1) * buckets].copy_from_slice(&run);
            for (v, r) in run.iter_mut().enumerate() {
                *r += h[v] as usize;
            }
        }
    }

    // Partition pass: pack each tuple into an 8-byte order-preserving key
    // and scatter it to its bucket range — half the write traffic of
    // scattering 16-byte tuples, and the finish sort compares plain u64s.
    let mut aux: Vec<u64> = vec![0u64; len];
    {
        let aux_cell = DisjointSlice::new(&mut aux);
        let cursor_cell = DisjointSlice::new(&mut cursors);
        parallel_for(len, threads, |w, range| {
            // SAFETY: each worker touches only its own cursor row.
            let cur = unsafe { cursor_cell.slice_mut(w * buckets, (w + 1) * buckets) };
            for i in range {
                let (s, d) = data[i];
                let key = pack(s, d);
                let b = key.wrapping_shr(down) as usize;
                // SAFETY: cursor ranges partition `0..len`.
                unsafe { aux_cell.write(cur[b], key) };
                cur[b] += 1;
            }
        });
    }

    // Finish pass: each bucket holds a narrow, cache-sized key range;
    // sort it in place and unpack it home while it is still warm. When
    // the bucket index already consumed every varying bit, buckets are
    // all-equal and only the unpack remains. Buckets are claimed
    // *dynamically* from the pool's shared counter rather than cut into
    // static contiguous runs: skewed data (an R-MAT hub vertex can own a
    // bucket holding a large fraction of all edges) would otherwise
    // serialize a whole chunk of buckets behind the one hot bucket.
    let need_sort = total_bits > bucket_bits;
    let aux_cell = DisjointSlice::new(&mut aux);
    let data_cell = DisjointSlice::new(data);
    parallel_for_dynamic(buckets, threads, |b| {
        let (lo, hi) = (offsets[b], offsets[b + 1]);
        if lo == hi {
            return;
        }
        // SAFETY: bucket ranges are disjoint.
        let chunk = unsafe { aux_cell.slice_mut(lo, hi) };
        if need_sort {
            chunk.sort_unstable();
        }
        // SAFETY: bucket ranges are disjoint (same windows as above).
        let home = unsafe { data_cell.slice_mut(lo, hi) };
        for (slot, &p) in home.iter_mut().zip(chunk.iter()) {
            let s = un_i64_key(s_const | (p.wrapping_shr(bits_d as u32) & s_mask));
            let d = un_i64_key(d_const | (p & d_mask));
            *slot = (s, d);
        }
    });
}

/// **Stable** sort of arbitrary `Copy` records by an extracted `u64` key.
/// This is the entry point integer `order_by` uses on `(key, row)` pairs;
/// the small-input fallback is the standard library's *stable* sort so the
/// stability contract holds at every size.
pub fn radix_sort_by_u64_key<T, F>(data: &mut [T], threads: usize, key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let mut sp = ringo_trace::span!("sort.radix.key");
    sp.rows_in(data.len());
    sp.rows_out(data.len());
    if data.len() < SEQ_THRESHOLD {
        data.sort_by_key(|a| key(a));
        return;
    }
    lsd_by_key(data, threads, &key);
}

/// LSD core for plain `u64` values: 11-bit digits (see [`DIGIT_BITS_V`]).
/// One pre-pass counts every position; constant positions are skipped;
/// with a single worker no further counting scans run at all (the totals
/// are the worker histogram of every arrangement). Callers gate on
/// [`SEQ_THRESHOLD`] and the `u32` count limit.
// LINT: hot — exact-size buffers only (`vec![…]`/`with_capacity` stay legal).
fn lsd_u64(data: &mut [u64], threads: usize) {
    let len = data.len();
    let bounds = chunk_bounds(len, threads);
    let workers = bounds.len() - 1;

    // Pre-pass: per-worker histograms of all positions in one scan.
    let pre: Vec<Box<[u32]>> = parallel_map(len, threads, |range| {
        let mut h = vec![0u32; DIGITS_V * RADIX_V].into_boxed_slice();
        for i in range {
            let k = data[i];
            for d in 0..DIGITS_V {
                h[d * RADIX_V + digitv(k, d)] += 1;
            }
        }
        h
    });
    debug_assert_eq!(pre.len(), workers);

    let mut totals = vec![0u32; DIGITS_V * RADIX_V];
    for h in &pre {
        for (t, c) in totals.iter_mut().zip(h.iter()) {
            *t += c;
        }
    }
    let active: Vec<usize> = (0..DIGITS_V)
        .filter(|&d| {
            !totals[d * RADIX_V..(d + 1) * RADIX_V]
                .iter()
                .any(|&t| t as usize == len)
        })
        .collect();
    if ringo_trace::enabled() {
        ringo_trace::counter("sort.radix.passes").add(active.len() as u64);
        ringo_trace::counter("sort.radix.digits_skipped").add((DIGITS_V - active.len()) as u64);
    }
    if active.is_empty() {
        return;
    }

    let mut aux: Vec<u64> = data.to_vec();
    let data_cell = DisjointSlice::new(data);
    let aux_cell = DisjointSlice::new(&mut aux);
    let mut in_data = true;

    for (pass, &d) in active.iter().enumerate() {
        let (src_cell, dst_cell) = if in_data {
            (&data_cell, &aux_cell)
        } else {
            (&aux_cell, &data_cell)
        };
        // SAFETY: the source buffer is only read during this pass.
        let src: &[u64] = unsafe { src_cell.slice_mut(0, len) };

        // Per-worker histogram of this position for the current
        // arrangement. The totals are permutation-invariant, so one
        // worker never recounts; several workers recount after the first
        // pass because their chunk boundaries now hold different keys.
        let hist: Vec<Vec<u32>> = if workers == 1 {
            vec![totals[d * RADIX_V..(d + 1) * RADIX_V].to_vec()]
        } else if pass == 0 {
            pre.iter()
                .map(|h| h[d * RADIX_V..(d + 1) * RADIX_V].to_vec())
                .collect()
        } else {
            parallel_map(len, threads, |range| {
                let mut h = vec![0u32; RADIX_V];
                for i in range {
                    h[digitv(src[i], d)] += 1;
                }
                h
            })
        };

        // Prefix scan → per-worker scatter cursors, one flat row per
        // worker so each can advance its own cursors in place.
        let mut cursors = vec![0usize; workers * RADIX_V];
        {
            let mut run = vec![0usize; RADIX_V];
            let mut sum = 0usize;
            for (v, r) in run.iter_mut().enumerate() {
                *r = sum;
                sum += totals[d * RADIX_V + v] as usize;
            }
            debug_assert_eq!(sum, len);
            for (w, h) in hist.iter().enumerate() {
                cursors[w * RADIX_V..(w + 1) * RADIX_V].copy_from_slice(&run);
                for (v, r) in run.iter_mut().enumerate() {
                    *r += h[v] as usize;
                }
            }
        }
        let cursor_cell = DisjointSlice::new(&mut cursors);

        parallel_for(len, threads, |w, range| {
            // SAFETY: each worker touches only its own cursor row.
            let cur = unsafe { cursor_cell.slice_mut(w * RADIX_V, (w + 1) * RADIX_V) };
            for i in range {
                let x = src[i];
                let v = digitv(x, d);
                // SAFETY: cursor ranges partition `0..len` across workers
                // and digit values; each index is written exactly once.
                unsafe { dst_cell.write(cur[v], x) };
                cur[v] += 1;
            }
        });
        in_data = !in_data;
    }

    if !in_data {
        data.copy_from_slice(&aux);
    }
}

/// The LSD core: histogram pre-pass, digit skipping, ping-pong passes.
/// Stable. Callers gate on [`SEQ_THRESHOLD`].
// LINT: hot — exact-size buffers only (`vec![…]`/`with_capacity` stay legal).
fn lsd_by_key<T, F>(data: &mut [T], threads: usize, key: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let len = data.len();
    if len >= u32::MAX as usize {
        // Per-worker histograms count in u32; inputs this large (≥ 64GB of
        // pairs) take the comparison path rather than widening every count.
        data.sort_by_key(|a| key(a));
        return;
    }
    let bounds = chunk_bounds(len, threads);
    let workers = bounds.len() - 1;

    // Pre-pass: per-worker histograms of all eight digits in one scan.
    let pre: Vec<Box<[u32]>> = parallel_map(len, threads, |range| {
        let mut h = vec![0u32; DIGITS * RADIX].into_boxed_slice();
        for i in range {
            let k = key(&data[i]);
            for d in 0..DIGITS {
                h[d * RADIX + digit(k, d)] += 1;
            }
        }
        h
    });
    debug_assert_eq!(pre.len(), workers);

    // Global totals per digit; a digit where one value owns every key
    // would be a pure copy pass — skip it.
    let mut active: Vec<usize> = Vec::with_capacity(DIGITS);
    let mut totals = [[0u32; RADIX]; DIGITS];
    for (d, total) in totals.iter_mut().enumerate() {
        for h in &pre {
            for (v, t) in total.iter_mut().enumerate() {
                *t += h[d * RADIX + v];
            }
        }
        if !total.iter().any(|&t| t as usize == len) {
            active.push(d);
        }
    }
    if ringo_trace::enabled() {
        ringo_trace::counter("sort.radix.passes").add(active.len() as u64);
        ringo_trace::counter("sort.radix.digits_skipped").add((DIGITS - active.len()) as u64);
    }
    if active.is_empty() {
        return; // all keys equal: already sorted, stability trivially holds
    }

    // T: Copy makes the clone a memcpy; contents are overwritten before
    // they are read except by the skipped-digit parity copy at the end.
    let mut aux: Vec<T> = data.to_vec();
    let data_cell = DisjointSlice::new(data);
    let aux_cell = DisjointSlice::new(&mut aux);
    let mut in_data = true;

    for (pass, &d) in active.iter().enumerate() {
        let (src_cell, dst_cell) = if in_data {
            (&data_cell, &aux_cell)
        } else {
            (&aux_cell, &data_cell)
        };
        // SAFETY: the source buffer is only read during this pass; all
        // writes of the pass go to the other buffer.
        let src: &[T] = unsafe { src_cell.slice_mut(0, len) };

        // Per-worker histogram for this digit. The totals never change
        // (a scatter permutes the keys), so a single worker reuses them
        // for every pass; several workers reuse the pre-pass split only
        // for the first pass and recount after the data has moved.
        let hist: Vec<[u32; RADIX]> = if workers == 1 {
            vec![totals[d]]
        } else if pass == 0 {
            pre.iter()
                .map(|h| {
                    let mut row = [0u32; RADIX];
                    row.copy_from_slice(&h[d * RADIX..(d + 1) * RADIX]);
                    row
                })
                .collect()
        } else {
            parallel_map(len, threads, |range| {
                let mut h = [0u32; RADIX];
                for i in range {
                    h[digit(key(&src[i]), d)] += 1;
                }
                h
            })
        };

        // Prefix scan → per-worker scatter cursors.
        let mut run = [0usize; RADIX];
        {
            let mut sum = 0usize;
            for (v, r) in run.iter_mut().enumerate() {
                *r = sum;
                sum += totals[d][v] as usize;
            }
            debug_assert_eq!(sum, len);
        }
        let mut cursors: Vec<[usize; RADIX]> = Vec::with_capacity(workers);
        for h in &hist {
            cursors.push(run);
            for (v, r) in run.iter_mut().enumerate() {
                *r += h[v] as usize;
            }
        }

        parallel_for(len, threads, |w, range| {
            let mut cur = cursors[w];
            for i in range {
                let x = src[i];
                let v = digit(key(&x), d);
                // SAFETY: cursor ranges partition `0..len` across workers
                // and digit values; each index is written exactly once.
                unsafe { dst_cell.write(cur[v], x) };
                cur[v] += 1;
            }
        });
        in_data = !in_data;
    }

    if !in_data {
        data.copy_from_slice(&aux);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringo_rng::Rng64;

    fn check_i64(data: &mut Vec<i64>, threads: usize, ctx: &str) {
        let mut expect = data.clone();
        expect.sort_unstable();
        radix_sort_i64(data, threads);
        assert_eq!(*data, expect, "{ctx}");
    }

    #[test]
    fn small_inputs_fall_back() {
        for len in [0usize, 1, 2, 100, SEQ_THRESHOLD - 1] {
            let mut rng = Rng64::new(len as u64);
            let mut data: Vec<i64> = (0..len).map(|_| rng.i64()).collect();
            check_i64(&mut data, 4, &format!("len={len}"));
        }
    }

    #[test]
    fn sorts_u64_full_range() {
        let mut rng = Rng64::new(7);
        let mut data: Vec<u64> = (0..50_000).map(|_| rng.u64()).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        radix_sort_u64(&mut data, 4);
        assert_eq!(data, expect);
    }

    #[test]
    fn sorts_i64_negative_and_extremes() {
        let mut rng = Rng64::new(11);
        let mut data: Vec<i64> = (0..30_000).map(|_| rng.range_i64(-500..500)).collect();
        data.extend([i64::MIN, i64::MAX, 0, -1, 1, i64::MIN, i64::MAX]);
        check_i64(&mut data, 4, "negatives + extremes");
    }

    #[test]
    fn all_equal_and_duplicates_heavy() {
        let mut all_equal = vec![42i64; 20_000];
        check_i64(&mut all_equal, 4, "all equal");
        let mut dups: Vec<i64> = (0..20_000).map(|i| (i % 3) - 1).collect();
        check_i64(&mut dups, 3, "duplicates");
    }

    #[test]
    fn presorted_and_reversed() {
        let mut asc: Vec<i64> = (0..30_000).collect();
        check_i64(&mut asc, 4, "presorted");
        let mut desc: Vec<i64> = (0..30_000).rev().collect();
        check_i64(&mut desc, 4, "reversed");
    }

    #[test]
    fn pairs_match_std_full_ord() {
        let mut rng = Rng64::new(23);
        for threads in [1usize, 2, 4] {
            let mut pairs: Vec<(i64, i64)> = (0..40_000)
                .map(|_| (rng.range_i64(-100..100), rng.range_i64(-100..100)))
                .collect();
            let mut expect = pairs.clone();
            expect.sort_unstable();
            radix_sort_pairs(&mut pairs, threads);
            assert_eq!(pairs, expect, "threads={threads}");
        }
    }

    #[test]
    fn by_key_is_stable() {
        // Payloads record the original order; equal keys must keep it at
        // every size (fallback and radix path alike).
        for len in [100usize, SEQ_THRESHOLD + 1000, 40_000] {
            let mut rng = Rng64::new(len as u64);
            let mut data: Vec<(i64, u32)> =
                (0..len).map(|i| (rng.range_i64(0..16), i as u32)).collect();
            let mut expect = data.clone();
            expect.sort_by_key(|p| p.0);
            radix_sort_by_u64_key(&mut data, 4, |p| i64_key(p.0));
            assert_eq!(data, expect, "stability violated at len={len}");
        }
    }

    #[test]
    fn threshold_boundary_lengths() {
        let mut rng = Rng64::new(31);
        for len in [SEQ_THRESHOLD - 1, SEQ_THRESHOLD, SEQ_THRESHOLD + 1] {
            for threads in [1usize, 2, 4] {
                let mut data: Vec<i64> = (0..len).map(|_| rng.i64()).collect();
                check_i64(&mut data, threads, &format!("len={len} threads={threads}"));
            }
        }
    }

    #[test]
    fn bias_transform_is_monotone() {
        let samples = [
            i64::MIN,
            i64::MIN + 1,
            -2,
            -1,
            0,
            1,
            2,
            i64::MAX - 1,
            i64::MAX,
        ];
        for w in samples.windows(2) {
            assert!(i64_key(w[0]) < i64_key(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn float_transform_matches_total_order() {
        let neg_nan = f64::from_bits(f64::NAN.to_bits() | (1u64 << 63));
        let samples = [
            neg_nan,
            f64::NEG_INFINITY,
            f64::MIN,
            -1.5,
            -f64::MIN_POSITIVE, // largest negative normal magnitude step
            -f64::from_bits(1), // negative subnormal closest to zero
            -0.0,
            0.0,
            f64::from_bits(1), // smallest positive subnormal
            f64::MIN_POSITIVE,
            1.5,
            f64::MAX,
            f64::INFINITY,
            f64::NAN,
        ];
        for w in samples.windows(2) {
            assert!(f64_key(w[0]) < f64_key(w[1]), "{} vs {}", w[0], w[1]);
            assert_eq!(w[0].total_cmp(&w[1]), std::cmp::Ordering::Less);
        }
        // Key order must agree with total_cmp on every pair, equal or not.
        for &a in &samples {
            for &b in &samples {
                assert_eq!(f64_key(a).cmp(&f64_key(b)), a.total_cmp(&b), "{a} vs {b}");
            }
        }
    }
}
