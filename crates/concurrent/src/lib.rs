//! Concurrency substrate for Ringo.
//!
//! The Ringo paper (§2.5) builds its graph engine on three low-level
//! ingredients: OpenMP-style parallel loops, a fast open-addressing hash
//! table with linear probing, and vectors that support thread-safe
//! insertions by claiming cell indices with an atomic increment. This crate
//! provides Rust equivalents of all three:
//!
//! * [`pool`] — a persistent fork-join worker pool created once per
//!   process, so parallel regions cost a wakeup instead of OS thread
//!   spawns, with [`pool::PoolStats`] counters for observability,
//! * [`parallel`] — OpenMP-style loops on that pool
//!   ([`parallel::parallel_for`], [`parallel::parallel_map`], reductions),
//!   the moral equivalent of `#pragma omp parallel for` with static
//!   scheduling,
//! * [`sort`] — parallel merge sort built on the runtime, the fallback
//!   for arbitrary `Ord` keys,
//! * [`radix`] — parallel LSD radix sort for integer keys (per-worker
//!   histograms, digit skipping, stable scatter), the fast path behind
//!   the "sort-first" table-to-graph conversion and integer `order_by`,
//! * [`hash_table`] — [`hash_table::IntHashTable`], a sequential
//!   open-addressing / linear-probing map keyed by `i64`, and
//!   [`hash_table::ConcurrentIntTable`], a fixed-capacity concurrent set
//!   with CAS insertion used during parallel graph construction,
//! * [`atomic_vec`] — [`atomic_vec::ConcurrentVec`], a fixed-capacity
//!   vector whose `push` claims an index with `fetch_add`,
//! * [`bitset`] — [`bitset::ConcurrentBitset`], a packed atomic visited
//!   set whose `set` is a `fetch_or` claim, used by the frontier engine's
//!   bottom-up traversal phase,
//! * [`epoch`] — [`epoch::EpochDomain`] / [`epoch::Versioned`],
//!   epoch-based version reclamation: wait-free reader pins and a
//!   single-writer copy-on-write publish, the substrate under the core
//!   crate's versioned `Catalog` snapshots.

#![warn(missing_docs)]

pub mod atomic_vec;
pub mod bitset;
pub mod epoch;
pub mod hash_table;
pub mod parallel;
pub mod pool;
pub mod radix;
pub mod sort;
pub mod sync;

pub use atomic_vec::ConcurrentVec;
pub use bitset::ConcurrentBitset;
pub use epoch::{EpochDomain, EpochGuard, OwnedEpochGuard, Versioned};
pub use hash_table::{ConcurrentIntTable, IntHashTable};
pub use parallel::{
    morsel_bounds, morsel_rows, num_threads, parallel_for, parallel_for_dynamic,
    parallel_for_morsels, parallel_for_morsels_traced, parallel_map, parallel_map_morsels,
    parallel_map_morsels_traced, parallel_reduce, DisjointSlice, MorselStats, DEFAULT_MORSEL_ROWS,
};
pub use pool::{pool_stats, Pool, PoolStats};
pub use radix::{
    f64_key, i64_key, radix_sort_by_u64_key, radix_sort_i64, radix_sort_pairs, radix_sort_u64,
};
pub use sort::{parallel_sort, parallel_sort_by_key};
