//! Open-addressing hash tables with linear probing.
//!
//! The paper (§2.5) implements "an open addressing hash table with linear
//! probing" as the backbone of both the graph's node index and the table
//! engine's grouping/join operators, citing its cache friendliness for
//! integer keys. [`IntHashTable`] is the sequential variant with proper
//! deletion (backward-shift, no tombstones). [`ConcurrentIntTable`] is a
//! fixed-capacity concurrent key set whose `insert` claims a slot with a
//! compare-and-swap; callers attach per-slot payload in their own arrays of
//! atomics — exactly the pattern Ringo uses when counting node degrees
//! during parallel graph construction.

use crate::sync::{VAtomicI64, VAtomicUsize};
use std::sync::atomic::Ordering;

/// Sentinel marking an empty slot. `i64::MIN` is reserved and may not be
/// used as a key.
pub const EMPTY_KEY: i64 = i64::MIN;

/// Finalizer from splitmix64: cheap, well-mixed hashing for integer keys.
#[inline]
pub fn hash_i64(key: i64) -> u64 {
    let mut z = (key as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A sequential open-addressing hash map from `i64` keys to values of type
/// `V`, using linear probing and backward-shift deletion.
///
/// Capacity is always a power of two; the table grows at 75% load.
#[derive(Clone, Debug)]
pub struct IntHashTable<V> {
    keys: Vec<i64>,
    vals: Vec<Option<V>>,
    len: usize,
    mask: usize,
}

impl<V> Default for IntHashTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> IntHashTable<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// Creates a table that can hold at least `cap` entries before growing.
    pub fn with_capacity(cap: usize) -> Self {
        let slots = (cap.max(4) * 4 / 3 + 1).next_power_of_two();
        Self {
            keys: vec![EMPTY_KEY; slots],
            vals: (0..slots).map(|_| None).collect(),
            len: 0,
            mask: slots - 1,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots currently allocated (diagnostic / memory accounting).
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Approximate heap footprint of the table structure itself, excluding
    /// any heap memory owned by the values.
    pub fn mem_size(&self) -> usize {
        self.keys.len() * std::mem::size_of::<i64>()
            + self.vals.len() * std::mem::size_of::<Option<V>>()
    }

    #[inline]
    fn slot_of(&self, key: i64) -> usize {
        (hash_i64(key) as usize) & self.mask
    }

    /// Finds the slot holding `key`, if present.
    #[inline]
    fn probe(&self, key: i64) -> Option<usize> {
        debug_assert_ne!(key, EMPTY_KEY);
        let mut i = self.slot_of(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts `key -> val`, returning the previous value if the key was
    /// already present.
    ///
    /// # Panics
    /// Panics if `key == EMPTY_KEY` (`i64::MIN` is reserved).
    pub fn insert(&mut self, key: i64, val: V) -> Option<V> {
        assert_ne!(key, EMPTY_KEY, "i64::MIN is a reserved key");
        if (self.len + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let mut i = self.slot_of(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return self.vals[i].replace(val);
            }
            if k == EMPTY_KEY {
                self.keys[i] = key;
                self.vals[i] = Some(val);
                self.len += 1;
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Returns a reference to the value for `key`.
    pub fn get(&self, key: i64) -> Option<&V> {
        self.probe(key)
            .map(|i| self.vals[i].as_ref().expect("occupied slot"))
    }

    /// Returns a mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: i64) -> Option<&mut V> {
        match self.probe(key) {
            Some(i) => self.vals[i].as_mut(),
            None => None,
        }
    }

    /// Returns the value for `key`, inserting `default()` first if absent.
    pub fn get_or_insert_with(&mut self, key: i64, default: impl FnOnce() -> V) -> &mut V {
        if self.probe(key).is_none() {
            self.insert(key, default());
        }
        let i = self.probe(key).expect("just inserted");
        self.vals[i].as_mut().expect("occupied slot")
    }

    /// True when `key` is present.
    pub fn contains(&self, key: i64) -> bool {
        self.probe(key).is_some()
    }

    /// Removes `key`, returning its value. Uses backward-shift deletion so
    /// probe sequences stay compact (no tombstones accumulate).
    pub fn remove(&mut self, key: i64) -> Option<V> {
        let mut hole = self.probe(key)?;
        let val = self.vals[hole].take();
        self.keys[hole] = EMPTY_KEY;
        self.len -= 1;
        // Backward-shift: walk forward; any entry whose home slot does not
        // lie in the (cyclic) open interval (hole, current] is moved into
        // the hole.
        let mut i = hole;
        loop {
            i = (i + 1) & self.mask;
            let k = self.keys[i];
            if k == EMPTY_KEY {
                break;
            }
            let home = self.slot_of(k);
            let in_between = if hole < i {
                hole < home && home <= i
            } else {
                home > hole || home <= i
            };
            if !in_between {
                self.keys[hole] = k;
                self.vals[hole] = self.vals[i].take();
                self.keys[i] = EMPTY_KEY;
                hole = i;
            }
        }
        val
    }

    /// Iterates over `(key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &V)> {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|(k, _)| **k != EMPTY_KEY)
            .map(|(k, v)| (*k, v.as_ref().expect("occupied slot")))
    }

    /// Iterates over keys in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = i64> + '_ {
        self.keys.iter().copied().filter(|k| *k != EMPTY_KEY)
    }

    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_slots]);
        let old_vals = std::mem::replace(&mut self.vals, (0..new_slots).map(|_| None).collect());
        self.mask = new_slots - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY_KEY {
                self.insert(k, v.expect("occupied slot"));
            }
        }
    }
}

/// A fixed-capacity concurrent set of `i64` keys with CAS insertion.
///
/// `insert` returns a stable *slot index* for the key, usable as a dense-ish
/// handle into caller-owned arrays of atomics (degree counters, write
/// cursors, ...). The table never grows and never deletes — matching its
/// role in Ringo's graph construction, where the number of distinct nodes is
/// bounded by the number of edge endpoints and the table is sized up front.
pub struct ConcurrentIntTable {
    keys: Vec<VAtomicI64>,
    len: VAtomicUsize,
    mask: usize,
}

impl ConcurrentIntTable {
    /// Creates a table that can absorb `cap` distinct keys while keeping
    /// the load factor at or below 75%.
    pub fn with_capacity(cap: usize) -> Self {
        let slots = (cap.max(4) * 4 / 3 + 1).next_power_of_two();
        Self {
            keys: (0..slots).map(|_| VAtomicI64::new(EMPTY_KEY)).collect(),
            len: VAtomicUsize::new(0),
            mask: slots - 1,
        }
    }

    /// Number of distinct keys inserted so far.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when no keys have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of slots allocated.
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Inserts `key` (idempotently) and returns `(slot, inserted_now)`.
    ///
    /// # Panics
    /// Panics if `key == EMPTY_KEY` or the table is full.
    pub fn insert(&self, key: i64) -> (usize, bool) {
        assert_ne!(key, EMPTY_KEY, "i64::MIN is a reserved key");
        let mut i = (hash_i64(key) as usize) & self.mask;
        let mut probes = 0usize;
        loop {
            let k = self.keys[i].load(Ordering::Acquire);
            if k == key {
                return (i, false);
            }
            if k == EMPTY_KEY {
                match self.keys[i].compare_exchange(
                    EMPTY_KEY,
                    key,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.len.fetch_add(1, Ordering::AcqRel);
                        return (i, true);
                    }
                    Err(current) => {
                        if current == key {
                            return (i, false);
                        }
                        // Lost the race to a different key: continue probing
                        // from this slot.
                        continue;
                    }
                }
            }
            i = (i + 1) & self.mask;
            probes += 1;
            assert!(probes <= self.keys.len(), "ConcurrentIntTable is full");
        }
    }

    /// Looks up the slot of `key` without inserting.
    pub fn find(&self, key: i64) -> Option<usize> {
        debug_assert_ne!(key, EMPTY_KEY);
        let mut i = (hash_i64(key) as usize) & self.mask;
        let mut probes = 0usize;
        loop {
            let k = self.keys[i].load(Ordering::Acquire);
            if k == key {
                return Some(i);
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & self.mask;
            probes += 1;
            if probes > self.keys.len() {
                return None;
            }
        }
    }

    /// Returns the key stored in `slot`, or `None` if the slot is empty.
    pub fn key_at(&self, slot: usize) -> Option<i64> {
        let k = self.keys[slot].load(Ordering::Acquire);
        (k != EMPTY_KEY).then_some(k)
    }

    /// Iterates over `(slot, key)` pairs of occupied slots.
    pub fn iter(&self) -> impl Iterator<Item = (usize, i64)> + '_ {
        self.keys.iter().enumerate().filter_map(|(i, k)| {
            let k = k.load(Ordering::Acquire);
            (k != EMPTY_KEY).then_some((i, k))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::parallel_for;
    use ringo_rng::Rng64;
    use std::collections::HashMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = IntHashTable::new();
        assert!(t.is_empty());
        for i in 0..1000i64 {
            assert_eq!(t.insert(i * 3, i), None);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000i64 {
            assert_eq!(t.get(i * 3), Some(&i));
            assert_eq!(t.get(i * 3 + 1), None);
        }
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut t = IntHashTable::new();
        assert_eq!(t.insert(7, "a"), None);
        assert_eq!(t.insert(7, "b"), Some("a"));
        assert_eq!(t.get(7), Some(&"b"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn negative_keys_work() {
        let mut t = IntHashTable::new();
        t.insert(-5, 1);
        t.insert(-1_000_000_007, 2);
        assert_eq!(t.get(-5), Some(&1));
        assert_eq!(t.get(-1_000_000_007), Some(&2));
    }

    #[test]
    #[should_panic(expected = "reserved key")]
    fn reserved_key_panics() {
        let mut t = IntHashTable::new();
        t.insert(EMPTY_KEY, 0);
    }

    #[test]
    fn remove_backward_shift_preserves_others() {
        let mut t = IntHashTable::with_capacity(8);
        // Force collisions by filling densely.
        for i in 0..200i64 {
            t.insert(i, i * 10);
        }
        for i in (0..200i64).step_by(2) {
            assert_eq!(t.remove(i), Some(i * 10));
            assert_eq!(t.remove(i), None);
        }
        assert_eq!(t.len(), 100);
        for i in 0..200i64 {
            if i % 2 == 0 {
                assert!(!t.contains(i));
            } else {
                assert_eq!(t.get(i), Some(&(i * 10)));
            }
        }
    }

    #[test]
    fn get_or_insert_with_only_defaults_once() {
        let mut t: IntHashTable<Vec<i64>> = IntHashTable::new();
        t.get_or_insert_with(1, Vec::new).push(10);
        t.get_or_insert_with(1, || panic!("should not run"))
            .push(20);
        assert_eq!(t.get(1), Some(&vec![10, 20]));
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut t = IntHashTable::new();
        for i in 0..100i64 {
            t.insert(i, i);
        }
        let mut seen: Vec<i64> = t.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn randomized_against_std_hashmap() {
        let mut rng = Rng64::new(42);
        let mut ours: IntHashTable<u64> = IntHashTable::new();
        let mut reference: HashMap<i64, u64> = HashMap::new();
        for step in 0..20_000u64 {
            let key = rng.range_i64(-500..500);
            match rng.below(3) {
                0 | 1 => {
                    assert_eq!(ours.insert(key, step), reference.insert(key, step));
                }
                _ => {
                    assert_eq!(ours.remove(key), reference.remove(&key));
                }
            }
            assert_eq!(ours.len(), reference.len());
        }
        for (k, v) in &reference {
            assert_eq!(ours.get(*k), Some(v));
        }
    }

    #[test]
    fn concurrent_table_sequential_semantics() {
        let t = ConcurrentIntTable::with_capacity(100);
        let (s1, fresh1) = t.insert(42);
        let (s2, fresh2) = t.insert(42);
        assert_eq!(s1, s2);
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.find(42), Some(s1));
        assert_eq!(t.find(43), None);
        assert_eq!(t.key_at(s1), Some(42));
    }

    #[test]
    fn concurrent_table_parallel_inserts_dedupe() {
        let n = 10_000i64;
        let t = ConcurrentIntTable::with_capacity(n as usize);
        // Each key inserted by multiple threads; final count must be exact.
        parallel_for(4 * n as usize, 8, |_, range| {
            for i in range {
                t.insert((i as i64) % n);
            }
        });
        assert_eq!(t.len(), n as usize);
        let mut keys: Vec<i64> = t.iter().map(|(_, k)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_table_slots_are_stable() {
        let t = ConcurrentIntTable::with_capacity(1000);
        let slots: Vec<usize> = (0..1000).map(|k| t.insert(k).0).collect();
        for (k, s) in slots.iter().enumerate() {
            assert_eq!(t.find(k as i64), Some(*s));
        }
    }
}
