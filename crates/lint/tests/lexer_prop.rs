//! Seeded property test for the lexer's totality contract (PR 1 style:
//! `ringo_rng::Rng64`, fixed seeds, failures reproduce exactly).
//!
//! The lexer promises that ANY input produces a token stream whose
//! spans tile `[0, len)` on character boundaries without panicking —
//! that is what lets the lint driver point it at arbitrary files. The
//! generator assembles adversarial soup from the fragments that
//! historically break hand-rolled lexers: unterminated strings, raw
//! strings with mismatched fences, lone quotes and backslashes, nested
//! comment openers, multi-byte characters, and digit/dot ambiguities —
//! then checks tiling, and that the token-tree forest is a permutation-
//! free re-ordering of exactly the token indices.

use ringo_lint::lexer::{lex, str_content};
use ringo_lint::tree;
use ringo_rng::Rng64;

/// Fragments chosen for their edge-case density, not realism.
const FRAGMENTS: &[&str] = &[
    "fn",
    "unsafe",
    "r#match",
    "x1",
    "_",
    "'a",
    "'static",
    "'x'",
    "'\\''",
    "'",
    "\"str\"",
    "\"open",
    "\"esc\\\"q\"",
    "\"\"",
    "r\"raw\"",
    "r#\"fenced\"#",
    "r##\"deep\"##",
    "r#\"open",
    "r#",
    "r",
    "b\"bytes\"",
    "b'x'",
    "b'",
    "br#\"rb\"#",
    "b",
    "br",
    "//",
    "// line",
    "///doc",
    "//!",
    "/*",
    "/* b */",
    "/* /* n */ */",
    "*/",
    "0",
    "1.5",
    "1.",
    "1.max",
    "0xFF",
    "1e9",
    "1e",
    "1_000u64",
    "2..3",
    "0b1",
    "::",
    ":",
    ";",
    ",",
    ".",
    "..",
    "...",
    "->",
    "=>",
    "=",
    "==",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "<",
    ">",
    "#",
    "!",
    "?",
    "@",
    "$",
    "\\",
    "`",
    "&&",
    "||",
    "^",
    "%",
    "*",
    "+",
    "-",
    "/",
    "~",
    " ",
    "\t",
    "\n",
    "\r\n",
    "é",
    "→",
    "🦀",
    "名前",
    "\u{200b}",
    "span!",
    "Ordering::Relaxed",
    "#[cfg(test)]",
];

fn soup(rng: &mut Rng64, max_frags: usize) -> String {
    let n = 1 + (rng.u64() as usize) % max_frags;
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(FRAGMENTS[(rng.u64() as usize) % FRAGMENTS.len()]);
    }
    s
}

/// Spans tile `[0, len)` exactly, every boundary is a char boundary
/// (slicing panics otherwise), and no token is empty.
fn assert_tiles(src: &str) {
    let tokens = lex(src);
    let mut at = 0usize;
    for t in &tokens {
        assert_eq!(t.start, at, "gap/overlap at byte {at} of {src:?}");
        assert!(t.end > t.start, "empty token at {at} of {src:?}");
        let text = t.text(src); // panics on a non-char-boundary span
        let _ = str_content(t.kind, text); // must never panic either
        at = t.end;
    }
    assert_eq!(at, src.len(), "tokens do not cover {src:?}");

    // The forest contains every token exactly once, in order.
    let trees = tree::build(src, &tokens);
    let mut flat = Vec::new();
    tree::flatten_into(&trees, &mut flat);
    let expect: Vec<usize> = (0..tokens.len()).collect();
    assert_eq!(
        flat, expect,
        "tree forest lost or reordered tokens of {src:?}"
    );
}

#[test]
fn lexer_is_total_on_seeded_token_soup() {
    let mut rng = Rng64::new(0x11A7_F00D);
    for round in 0..4000 {
        let src = soup(&mut rng, 40);
        // A panic inside carries the source; the seed above reproduces it.
        assert_tiles(&src);
        let _ = round;
    }
}

#[test]
fn lexer_is_total_on_long_inputs() {
    let mut rng = Rng64::new(0xDEAD_BEEF_u64);
    for _ in 0..40 {
        assert_tiles(&soup(&mut rng, 2000));
    }
}

#[test]
fn lexer_is_total_on_raw_bytes_of_every_ascii_pair() {
    // Exhaustive 2-grams of printable ASCII + the interesting controls:
    // no pair of leading characters may panic or break tiling.
    let mut alphabet: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
    alphabet.extend(['\n', '\t', '\r']);
    for &a in &alphabet {
        for &b in &alphabet {
            let src: String = [a, b].iter().collect();
            assert_tiles(&src);
        }
    }
}
