//! Pass control: identical `.unwrap()` — the test config carries an
//! audited allowlist entry for this file (and the live use keeps the
//! entry fresh).

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
