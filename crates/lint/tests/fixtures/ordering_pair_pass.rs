//! Pass control: the same `Release` store, paired with an `Acquire`
//! load of the field in the same crate.

use std::sync::atomic::{AtomicU32, Ordering};

pub struct Cell {
    ready: AtomicU32,
}

impl Cell {
    pub fn publish(&self) {
        self.ready.store(1, Ordering::Release);
    }

    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire) == 1
    }
}
