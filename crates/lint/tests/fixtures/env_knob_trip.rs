//! Trip fixture: a `RINGO_*` knob read by library code but absent from
//! the knob inventory.

pub fn threads() -> usize {
    std::env::var("RINGO_FIXTURE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
