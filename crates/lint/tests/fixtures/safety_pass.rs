//! Pass control: the same `unsafe` token, annotated.

/// Reads one element without bounds checking.
///
/// # Safety
///
/// `i` must be in bounds for `xs`.
// SAFETY: callers uphold `i < xs.len()` per the doc contract.
pub unsafe fn get_unchecked(xs: &[u32], i: usize) -> u32 {
    *xs.get_unchecked(i)
}
