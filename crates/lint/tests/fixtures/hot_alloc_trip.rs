//! Trip fixture: a `// LINT: hot` kernel growing a buffer from empty —
//! the per-element reallocation idiom the tripwire exists for.

// LINT: hot
pub fn collect_even(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    for &x in xs {
        if x % 2 == 0 {
            out.push(x);
        }
    }
    out
}
