//! Pass control: identical spawn — the test config allowlists this file,
//! the way the real config allowlists the pool, sampler, and checker.

use std::thread;

pub fn fire_and_forget() {
    thread::spawn(|| {});
}
