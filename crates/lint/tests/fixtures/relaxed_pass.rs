//! Pass control: the same `Ordering::Relaxed`, annotated.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    // ORDERING: pure statistics counter — no data is published through it.
    counter.fetch_add(1, Ordering::Relaxed)
}
