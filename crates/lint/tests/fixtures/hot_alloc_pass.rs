//! Pass control: the same kernel with a pre-sized buffer — bulk
//! allocation up front stays legal inside hot functions.

// LINT: hot
pub fn collect_even(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(xs.len());
    for &x in xs {
        if x % 2 == 0 {
            out.push(x);
        }
    }
    out
}
