//! Trip fixture: a `Release` store whose field is never loaded with an
//! acquire-class ordering anywhere in the crate — the published edge is
//! never consumed.

use std::sync::atomic::{AtomicU32, Ordering};

pub struct Cell {
    ready: AtomicU32,
}

impl Cell {
    pub fn publish(&self) {
        self.ready.store(1, Ordering::Release);
    }
}
