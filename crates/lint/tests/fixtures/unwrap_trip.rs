//! Trip fixture: `.unwrap()` in a file no audit has covered.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
