//! Trip fixture: an `unsafe` token with no SAFETY annotation in range.

/// Reads one element without bounds checking.
pub unsafe fn get_unchecked(xs: &[u32], i: usize) -> u32 {
    *xs.get_unchecked(i)
}
