//! Pass control: guards bound to underscore-prefixed names live to end
//! of scope and measure the whole function.

pub fn work(xs: &[u32]) -> u64 {
    let _sp = ringo_trace::span!("fixture.work");
    let _sum = ringo_trace::Span::enter("fixture.sum");
    xs.iter().map(|&x| u64::from(x)).sum()
}
