//! Trip fixture: a malformed metric name and a name registered from two
//! call sites with no shared-name allowlist entry. (The CI dead-assert
//! arm of the lint trips via the synthetic ci.yml the test supplies.)

pub fn scan(xs: &[u32]) -> u64 {
    let _sp = ringo_trace::span!("BadName");
    ringo_trace::counter("fixture.dup").add(1);
    xs.iter().map(|&x| u64::from(x)).sum()
}

pub fn rescan(xs: &[u32]) -> u64 {
    ringo_trace::counter("fixture.dup").add(1);
    xs.iter().map(|&x| u64::from(x)).sum()
}
