//! Pass control: dotted names, one call site each, matching what the
//! synthetic ci.yml asserts (exact and prefix forms).

pub fn scan(xs: &[u32]) -> u64 {
    let _sp = ringo_trace::span!("fixture.scan");
    ringo_trace::counter("fixture.scan.rows").add(xs.len() as u64);
    xs.iter().map(|&x| u64::from(x)).sum()
}
