//! Trip fixture: span guards destroyed on the spot — both the bare
//! statement form and the `let _ =` form record zero-length spans.

pub fn work(xs: &[u32]) -> u64 {
    ringo_trace::span!("fixture.work");
    let _ = ringo_trace::Span::enter("fixture.sum");
    xs.iter().map(|&x| u64::from(x)).sum()
}
