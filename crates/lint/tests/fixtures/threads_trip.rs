//! Trip fixture: an ad-hoc thread outside the allowed files.

use std::thread;

pub fn fire_and_forget() {
    thread::spawn(|| {});
}
