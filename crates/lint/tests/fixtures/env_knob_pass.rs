//! Pass control: the same knob read — the test config inventories it
//! and the synthetic README documents it.

pub fn threads() -> usize {
    std::env::var("RINGO_FIXTURE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
