//! Every lint is provably live: for each rule there is a fixture that
//! trips it and a control that passes it, run against synthetic
//! workspaces ([`Workspace::synthetic`]) with [`Config::empty`] (or a
//! minimal config exercising the allowlist path). Deleting a lint's
//! implementation makes its trip test fail — the catalog cannot decay
//! silently. The freshness tests pin the shrink-only allowlist policy:
//! an entry that stops suppressing anything becomes a finding itself.

use ringo_lint::{run_all, Config, Finding, Workspace};

const LIB: &str = "crates/fixture/src/lib.rs";

fn findings_of(ws: &Workspace, cfg: &Config, lint: &str) -> Vec<Finding> {
    run_all(ws, cfg)
        .into_iter()
        .filter(|f| f.lint == lint)
        .collect()
}

fn lib_ws(text: &str) -> Workspace {
    Workspace::synthetic(&[(LIB, text)], "", "", &[])
}

// ---------------------------------------------------------------- safety

#[test]
fn safety_trips_on_unannotated_unsafe() {
    let ws = lib_ws(include_str!("fixtures/safety_trip.rs"));
    let f = findings_of(&ws, &Config::empty(), "unsafe-safety-comment");
    assert!(!f.is_empty(), "unannotated `unsafe` must trip");
    assert_eq!(f[0].file, LIB);
}

#[test]
fn safety_passes_with_annotation() {
    let ws = lib_ws(include_str!("fixtures/safety_pass.rs"));
    let f = findings_of(&ws, &Config::empty(), "unsafe-safety-comment");
    assert!(f.is_empty(), "annotated `unsafe` must pass: {f:?}");
}

// --------------------------------------------------------------- relaxed

#[test]
fn relaxed_trips_on_unannotated_relaxed() {
    let ws = lib_ws(include_str!("fixtures/relaxed_trip.rs"));
    let f = findings_of(&ws, &Config::empty(), "relaxed-ordering-comment");
    assert!(!f.is_empty(), "unannotated `Ordering::Relaxed` must trip");
}

#[test]
fn relaxed_passes_with_annotation() {
    let ws = lib_ws(include_str!("fixtures/relaxed_pass.rs"));
    let f = findings_of(&ws, &Config::empty(), "relaxed-ordering-comment");
    assert!(
        f.is_empty(),
        "annotated `Ordering::Relaxed` must pass: {f:?}"
    );
}

// --------------------------------------------------------------- threads

#[test]
fn threads_trip_outside_allowlist() {
    let ws = lib_ws(include_str!("fixtures/threads_trip.rs"));
    let f = findings_of(&ws, &Config::empty(), "thread-confinement");
    assert!(!f.is_empty(), "spawn outside the allowlist must trip");
}

#[test]
fn threads_pass_inside_allowlist() {
    let ws = lib_ws(include_str!("fixtures/threads_pass.rs"));
    let mut cfg = Config::empty();
    cfg.thread_spawn_allow.push(LIB.to_owned());
    let f = findings_of(&ws, &cfg, "thread-confinement");
    assert!(f.is_empty(), "allowlisted spawn must pass: {f:?}");
}

#[test]
fn threads_prefix_entries_match_directories() {
    let ws = lib_ws(include_str!("fixtures/threads_pass.rs"));
    let mut cfg = Config::empty();
    cfg.thread_spawn_allow.push("crates/fixture/".to_owned());
    let f = findings_of(&ws, &cfg, "thread-confinement");
    assert!(f.is_empty(), "directory-prefix allowlist must match: {f:?}");
}

// ---------------------------------------------------------------- unwrap

#[test]
fn unwrap_trips_outside_allowlist() {
    let ws = lib_ws(include_str!("fixtures/unwrap_trip.rs"));
    let f = findings_of(&ws, &Config::empty(), "unwrap-audit");
    assert!(!f.is_empty(), "unaudited `.unwrap()` must trip");
}

#[test]
fn unwrap_passes_with_audited_entry() {
    let ws = lib_ws(include_str!("fixtures/unwrap_pass.rs"));
    let mut cfg = Config::empty();
    cfg.unwrap_allow
        .push((LIB.to_owned(), "audited".to_owned()));
    let f = findings_of(&ws, &cfg, "unwrap-audit");
    assert!(f.is_empty(), "audited `.unwrap()` must pass: {f:?}");
}

#[test]
fn unwrap_allowlist_entries_go_stale() {
    // An entry for a file with no live uses, and one for a file that no
    // longer exists: both must surface as freshness findings.
    let ws = lib_ws("pub fn clean() {}\n");
    let mut cfg = Config::empty();
    cfg.unwrap_allow
        .push((LIB.to_owned(), "was audited".to_owned()));
    cfg.unwrap_allow.push((
        "crates/gone/src/lib.rs".to_owned(),
        "file removed".to_owned(),
    ));
    let f = findings_of(&ws, &cfg, "unwrap-audit");
    assert_eq!(f.len(), 2, "both stale entries must be findings: {f:?}");
}

// --------------------------------------------------------- dropped-guard

#[test]
fn dropped_guard_trips_on_both_forms() {
    let ws = lib_ws(include_str!("fixtures/dropped_guard_trip.rs"));
    let f = findings_of(&ws, &Config::empty(), "dropped-guard");
    assert_eq!(
        f.len(),
        2,
        "bare `span!(…);` and `let _ = Span::enter(…);` must both trip: {f:?}"
    );
}

#[test]
fn dropped_guard_passes_named_bindings() {
    let ws = lib_ws(include_str!("fixtures/dropped_guard_pass.rs"));
    let f = findings_of(&ws, &Config::empty(), "dropped-guard");
    assert!(
        f.is_empty(),
        "underscore-prefixed bindings must pass: {f:?}"
    );
}

// ------------------------------------------------------- metric-registry

#[test]
fn metrics_trip_on_format_duplicates_and_dead_ci_assert() {
    let ws = Workspace::synthetic(
        &[(LIB, include_str!("fixtures/metrics_trip.rs"))],
        "",
        "      - run: grep -q \"ghost.metric\" trace.json\n",
        &[],
    );
    let f = findings_of(&ws, &Config::empty(), "metric-registry");
    let msgs: Vec<&str> = f.iter().map(|x| x.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("`BadName`")),
        "malformed name must trip: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("`fixture.dup`")),
        "duplicate call sites must trip: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("`ghost.metric`")),
        "dead CI assert must trip: {msgs:?}"
    );
}

#[test]
fn metrics_pass_with_unique_names_and_resolving_asserts() {
    let ws = Workspace::synthetic(
        &[(LIB, include_str!("fixtures/metrics_pass.rs"))],
        "",
        "      - run: grep -q \"fixture.scan\" trace.json\n      - run: grep -q \"fixture.\" trace.json\n",
        &[],
    );
    let f = findings_of(&ws, &Config::empty(), "metric-registry");
    assert!(
        f.is_empty(),
        "unique dotted names + live asserts pass: {f:?}"
    );
}

#[test]
fn metrics_shared_allowlist_suppresses_and_goes_stale() {
    let trip = include_str!("fixtures/metrics_trip.rs");
    // Allowlisting the duplicated name suppresses the uniqueness finding.
    let ws = lib_ws(trip);
    let mut cfg = Config::empty();
    cfg.shared_metric_allow.push((
        "fixture.dup".to_owned(),
        "two passes of one kernel".to_owned(),
    ));
    let f = findings_of(&ws, &cfg, "metric-registry");
    assert!(
        !f.iter().any(|x| x.message.contains("`fixture.dup`")),
        "allowlisted duplicate must be suppressed: {f:?}"
    );
    // With only one call site left, the same entry is stale.
    let ws = lib_ws(include_str!("fixtures/metrics_pass.rs"));
    let f = findings_of(&ws, &cfg, "metric-registry");
    assert!(
        f.iter().any(|x| x.message.contains("stale shared-metric")),
        "entry with <2 sites must be stale: {f:?}"
    );
}

#[test]
fn metrics_example_references_are_cross_checked() {
    let ws = Workspace::synthetic(
        &[(LIB, include_str!("fixtures/metrics_pass.rs"))],
        "",
        "",
        &[(
            "examples/demo.rs",
            "fn main() { assert_present(\"fixture.scan\"); assert_present(\"ghost.name\"); }\n",
        )],
    );
    let f = findings_of(&ws, &Config::empty(), "metric-registry");
    assert!(
        f.iter().any(|x| x.message.contains("`ghost.name`")),
        "dead example reference must trip: {f:?}"
    );
    assert!(
        !f.iter().any(|x| x.message.contains("`fixture.scan`")),
        "registered name referenced by the example must pass: {f:?}"
    );
}

// ----------------------------------------------------- env-knob-registry

#[test]
fn env_knob_trips_on_uninventoried_knob() {
    let ws = lib_ws(include_str!("fixtures/env_knob_trip.rs"));
    let f = findings_of(&ws, &Config::empty(), "env-knob-registry");
    assert_eq!(f.len(), 1, "uninventoried knob must trip once: {f:?}");
    assert!(f[0].message.contains("RINGO_FIXTURE_THREADS"));
}

#[test]
fn env_knob_passes_when_inventoried_and_documented() {
    let ws = Workspace::synthetic(
        &[(LIB, include_str!("fixtures/env_knob_pass.rs"))],
        "| `RINGO_FIXTURE_THREADS` | fixture knob |\n",
        "",
        &[],
    );
    let mut cfg = Config::empty();
    cfg.knob_inventory.push((
        "RINGO_FIXTURE_THREADS".to_owned(),
        "fixture knob".to_owned(),
    ));
    let f = findings_of(&ws, &cfg, "env-knob-registry");
    assert!(f.is_empty(), "inventoried + documented knob passes: {f:?}");
}

#[test]
fn env_knob_inventory_goes_stale_and_readme_is_required() {
    // Inventoried but never read: stale. Read + inventoried but not in
    // README: a README finding.
    let ws = lib_ws(include_str!("fixtures/env_knob_pass.rs"));
    let mut cfg = Config::empty();
    cfg.knob_inventory.push((
        "RINGO_FIXTURE_THREADS".to_owned(),
        "fixture knob".to_owned(),
    ));
    cfg.knob_inventory
        .push(("RINGO_NEVER_READ".to_owned(), "dead knob".to_owned()));
    let f = findings_of(&ws, &cfg, "env-knob-registry");
    assert!(
        f.iter().any(|x| x
            .message
            .contains("stale knob inventory entry `RINGO_NEVER_READ`")),
        "unreferenced inventory entry must be stale: {f:?}"
    );
    assert!(
        f.iter()
            .any(|x| x.file == "README.md" && x.message.contains("RINGO_FIXTURE_THREADS")),
        "knob missing from README must be a finding: {f:?}"
    );
}

#[test]
fn env_knob_ignores_magic_padding_tails() {
    // The io.rs bad-magic fixture shape: `NOTRINGO________` — `RINGO_`
    // glued to a word on the left and an all-underscore tail on the
    // right. Neither side makes it a knob.
    let ws = lib_ws("pub const BAD: &[u8; 16] = b\"NOTRINGO________\";\n");
    let f = findings_of(&ws, &Config::empty(), "env-knob-registry");
    assert!(f.is_empty(), "magic padding is not a knob: {f:?}");
}

// ------------------------------------------------------ ordering-pairing

#[test]
fn ordering_pair_trips_on_unconsumed_release() {
    let ws = lib_ws(include_str!("fixtures/ordering_pair_trip.rs"));
    let f = findings_of(&ws, &Config::empty(), "ordering-pairing");
    assert_eq!(f.len(), 1, "unpaired Release store must trip: {f:?}");
    assert!(f[0].message.contains("`ready`"));
}

#[test]
fn ordering_pair_passes_with_acquire_partner() {
    let ws = lib_ws(include_str!("fixtures/ordering_pair_pass.rs"));
    let f = findings_of(&ws, &Config::empty(), "ordering-pairing");
    assert!(f.is_empty(), "paired Release/Acquire must pass: {f:?}");
}

#[test]
fn ordering_pair_allowlist_suppresses_and_goes_stale() {
    let mut cfg = Config::empty();
    cfg.release_pair_allow.push((
        "fixture::ready".to_owned(),
        "partner in another crate".to_owned(),
    ));
    // Suppresses the unpaired store…
    let ws = lib_ws(include_str!("fixtures/ordering_pair_trip.rs"));
    let f = findings_of(&ws, &cfg, "ordering-pairing");
    assert!(f.is_empty(), "allowlisted field must be suppressed: {f:?}");
    // …and goes stale once the pair exists in-crate.
    let ws = lib_ws(include_str!("fixtures/ordering_pair_pass.rs"));
    let f = findings_of(&ws, &cfg, "ordering-pairing");
    assert_eq!(f.len(), 1, "entry suppressing nothing must be stale: {f:?}");
    assert!(f[0].message.contains("stale release-pair"));
}

// ------------------------------------------------------------- hot-alloc

#[test]
fn hot_alloc_trips_on_vec_new_in_hot_fn() {
    let ws = lib_ws(include_str!("fixtures/hot_alloc_trip.rs"));
    let f = findings_of(&ws, &Config::empty(), "hot-alloc");
    assert_eq!(f.len(), 1, "Vec::new in a hot kernel must trip: {f:?}");
    assert!(f[0].message.contains("`collect_even`"));
}

#[test]
fn hot_alloc_passes_presized_buffers() {
    let ws = lib_ws(include_str!("fixtures/hot_alloc_pass.rs"));
    let f = findings_of(&ws, &Config::empty(), "hot-alloc");
    assert!(f.is_empty(), "with_capacity in a hot kernel passes: {f:?}");
}

#[test]
fn hot_alloc_flags_annotation_without_function() {
    let ws = lib_ws("// LINT: hot\npub const N: usize = 4;\n");
    let f = findings_of(&ws, &Config::empty(), "hot-alloc");
    assert_eq!(f.len(), 1, "dangling annotation must be a finding: {f:?}");
    assert!(f[0].message.contains("no function"));
}

#[test]
fn hot_alloc_ignores_doc_comment_mentions() {
    // Prose like this crate's own lint table must not create hot regions.
    let ws = lib_ws(
        "//! The `// LINT: hot` annotation marks kernels.\npub fn f() -> Vec<u32> { Vec::new() }\n",
    );
    let f = findings_of(&ws, &Config::empty(), "hot-alloc");
    assert!(
        f.is_empty(),
        "doc-comment mention is not an annotation: {f:?}"
    );
}

// ----------------------------------------------------------- whole-suite

#[test]
fn test_code_is_exempt_everywhere() {
    // The same violations that trip in library code are exempt past the
    // `#[cfg(test)]` cutoff (workspace convention: test modules last).
    let src = "\
pub fn lib_code() {}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::thread;

    #[test]
    fn helper() {
        let x = AtomicU32::new(0);
        x.load(Ordering::Relaxed);
        x.store(1, Ordering::Release);
        thread::spawn(|| {}).join().unwrap();
        ringo_trace::span!(\"test.span\");
    }
}
";
    let ws = lib_ws(src);
    let f = run_all(&ws, &Config::empty());
    assert!(
        f.is_empty(),
        "test code must be exempt from every lint: {f:?}"
    );
}
