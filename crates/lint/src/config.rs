//! Lint configuration: lookback window, per-lint allowlists, the knob
//! inventory, and the synthetic-metric registry.
//!
//! Policy (PR 4 style, enforced mechanically by the lints themselves):
//! allowlists are **shrink-only** — every entry records the reason the
//! audit concluded the site is fine, and an entry that no longer
//! suppresses anything is reported as a stale-allowlist finding, so the
//! lists can only get shorter as code improves.
//!
//! [`Config::project`] is the one place Ringo's own tables live. The
//! literal-scanning lints (`env-knob-registry`, `metric-registry`) skip
//! this file (see [`Config::scan_exempt`]): the inventory necessarily
//! *names* every knob, and letting it satisfy its own freshness check
//! would make the registry unfalsifiable.

/// Everything a lint run can be parameterized on.
#[derive(Clone, Debug)]
pub struct Config {
    /// How many lines above a flagged site an annotation comment may
    /// sit (shared by the SAFETY and ORDERING lints).
    pub lookback: usize,
    /// Files whose `.unwrap()` / `.expect(` uses have been audited:
    /// `(workspace-relative path, audit conclusion)`.
    pub unwrap_allow: Vec<(String, String)>,
    /// Where `thread::spawn` / `thread::Builder` may appear. An entry
    /// ending in `/` matches a directory prefix, otherwise exact file.
    pub thread_spawn_allow: Vec<String>,
    /// Metric names legitimately recorded from more than one call site:
    /// `(name, reason)`.
    pub shared_metric_allow: Vec<(String, String)>,
    /// Metric names that exist only at export time (never registered
    /// through `span!`/`counter`): `(name, reason)`. They satisfy CI
    /// cross-checks; freshness requires the literal to still appear in
    /// library source.
    pub synthetic_metrics: Vec<(String, String)>,
    /// The complete `RINGO_*` knob inventory: `(name, description)`.
    /// `ringo-lint --knobs` prints it; the env-knob lint enforces that
    /// it exactly matches the knobs read by library code and that every
    /// entry appears in README's knob table.
    pub knob_inventory: Vec<(String, String)>,
    /// `Release`-side atomic writes allowed to have no `Acquire`-side
    /// partner in their crate: `("crate-dir::field", reason)` — e.g.
    /// when the acquire side lives in another crate or behind a fence.
    pub release_pair_allow: Vec<(String, String)>,
    /// Files excluded from the literal-scanning lints (the config
    /// itself, which must name every knob and shared metric).
    pub scan_exempt: Vec<String>,
}

impl Config {
    /// An empty configuration: no allowlists, default lookback. The
    /// fixture tests run against this so every trip fixture trips.
    pub fn empty() -> Self {
        Self {
            lookback: 10,
            unwrap_allow: Vec::new(),
            thread_spawn_allow: Vec::new(),
            shared_metric_allow: Vec::new(),
            synthetic_metrics: Vec::new(),
            knob_inventory: Vec::new(),
            release_pair_allow: Vec::new(),
            scan_exempt: Vec::new(),
        }
    }

    /// Ringo's own configuration — the audited allowlists and the knob
    /// inventory for this workspace.
    pub fn project() -> Self {
        let own = |pairs: &[(&str, &str)]| -> Vec<(String, String)> {
            pairs
                .iter()
                .map(|(a, b)| ((*a).to_owned(), (*b).to_owned()))
                .collect()
        };
        Self {
            lookback: 10,
            unwrap_allow: own(UNWRAP_ALLOWLIST),
            thread_spawn_allow: THREAD_SPAWN_ALLOW.iter().map(|s| (*s).to_owned()).collect(),
            shared_metric_allow: own(SHARED_METRIC_ALLOW),
            synthetic_metrics: own(SYNTHETIC_METRICS),
            knob_inventory: own(KNOB_INVENTORY),
            release_pair_allow: own(RELEASE_PAIR_ALLOW),
            scan_exempt: vec!["crates/lint/src/config.rs".to_owned()],
        }
    }
}

/// Files whose `.unwrap()` / `.expect(` uses have been audited, with the
/// audit's conclusion (carried over from the PR 4 gate; the freshness
/// lint keeps it shrink-only).
const UNWRAP_ALLOWLIST: &[(&str, &str)] = &[
    // Traversal/algorithm kernels: every use is an `expect` naming a loop
    // invariant established by the surrounding code (queued slots are
    // live, popped nodes have distances, neighbors exist in the graph).
    (
        "crates/algo/src/anf.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/bfs.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/bipartite.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/centrality.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/community.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/components.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/connectivity.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/eigen.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/frontier.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/hits.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/independent.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/kcore.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/ktruss.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/pagerank.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/random_walk.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/similarity.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/sssp.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/stats.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/traversal.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/union_find.rs",
        "invariant expects in kernel loops",
    ),
    (
        "crates/algo/src/weighted.rs",
        "invariant expects in kernel loops",
    ),
    // Benchmark drivers and harness: setup failures (I/O, column lookups)
    // abort the run loudly by design — a benchmark must not limp on.
    (
        "crates/bench/src/bin/all_tables.rs",
        "bench driver aborts loudly",
    ),
    (
        "crates/bench/src/bin/table4.rs",
        "bench driver aborts loudly",
    ),
    (
        "crates/bench/src/bin/table5.rs",
        "bench driver aborts loudly",
    ),
    ("crates/bench/src/harness.rs", "bench harness aborts loudly"),
    ("crates/bench/src/lib.rs", "bench fixtures abort loudly"),
    // Checker internals: a violated invariant inside the scheduler or the
    // memory model is a checker bug; it must panic so the schedule fails
    // loudly rather than report a wrong verdict.
    (
        "crates/check/src/memory.rs",
        "checker invariants panic loudly",
    ),
    (
        "crates/check/src/sched.rs",
        "checker invariants panic loudly",
    ),
    (
        "crates/check/src/vthread.rs",
        "checker invariants panic loudly",
    ),
    // Lock-free/parallel kernels: occupied-slot and just-inserted expects
    // in the sequential table, chunk-fill expects in parallel_map, and
    // the pool's lock/spawn failures which are fatal by design.
    (
        "crates/concurrent/src/hash_table.rs",
        "occupied-slot invariants",
    ),
    ("crates/concurrent/src/parallel.rs", "chunk-fill invariant"),
    (
        "crates/concurrent/src/pool.rs",
        "poisoning/spawn failure is fatal",
    ),
    ("crates/concurrent/src/sort.rs", "run-bound invariant"),
    // Conversion layer: prefix-sum offsets (`last()` after a push) and
    // caller-validated equal-length column extraction.
    ("crates/convert/src/lib.rs", "prefix-sum/column invariants"),
    // Generators: fixed catalogs and self-consistent generated columns.
    ("crates/gen/src/catalog.rs", "fixed-catalog membership"),
    ("crates/gen/src/lib.rs", "generated columns are consistent"),
    (
        "crates/gen/src/stackoverflow.rs",
        "generated columns are consistent",
    ),
    // Graph mutation paths: cells ensured earlier in the same call.
    (
        "crates/graph/src/csr.rs",
        "index built in the same function",
    ),
    (
        "crates/graph/src/directed.rs",
        "cells ensured in the same call",
    ),
    (
        "crates/graph/src/transform.rs",
        "cells ensured in the same call",
    ),
    (
        "crates/graph/src/undirected.rs",
        "cells ensured in the same call",
    ),
    (
        "crates/graph/src/weighted.rs",
        "cells ensured in the same call",
    ),
    // Weighted sampling table is non-empty by construction.
    ("crates/rng/src/lib.rs", "cumulative table non-empty"),
    // Table layer: summary columns built together stay consistent.
    (
        "crates/table/src/ops/describe.rs",
        "summary columns consistent",
    ),
    (
        "crates/table/src/strings.rs",
        "u32 symbol-space overflow is fatal",
    ),
    ("crates/table/src/table.rs", "single-column consistency"),
    // `fmt::Write` into `String` is infallible.
    (
        "crates/trace/src/json.rs",
        "write! into String is infallible",
    ),
    (
        "crates/trace/src/lib.rs",
        "write! into String is infallible",
    ),
];

/// Where `thread::spawn` / `thread::Builder` may appear: the worker
/// pool, the checker's virtual-thread runtime, and the trace crate's
/// background resource sampler.
const THREAD_SPAWN_ALLOW: &[&str] = &[
    "crates/concurrent/src/pool.rs",
    "crates/trace/src/sampler.rs",
    "crates/check/",
];

/// Metric names recorded from more than one call site on purpose.
const SHARED_METRIC_ALLOW: &[(&str, &str)] = &[
    (
        "convert.fill.count",
        "directed and undirected conversion record the same fill phase",
    ),
    (
        "convert.fill.scatter",
        "directed and undirected conversion record the same fill phase",
    ),
    (
        "plan.morsel.select",
        "count and fill passes of one selection kernel",
    ),
    (
        "plan.morsel.join",
        "build, probe, and materialize passes of one join kernel",
    ),
    (
        "sort.radix.passes",
        "u64/i64/by-key variants of one radix sorter",
    ),
    (
        "sort.radix.digits_skipped",
        "u64/i64/by-key variants of one radix sorter",
    ),
];

/// Names that exist only at export time.
const SYNTHETIC_METRICS: &[(&str, &str)] = &[(
    "mem.bytes",
    "Chrome-exporter counter track synthesized from the sampler series",
)];

/// The complete `RINGO_*` knob inventory. `ringo-lint --knobs` prints
/// this table; the env-knob lint fails if library code reads a knob not
/// listed here, if an entry is no longer read anywhere, or if README's
/// knob table omits an entry.
const KNOB_INVENTORY: &[(&str, &str)] = &[
    (
        "RINGO_BENCH_SAMPLES",
        "benchmark harness: samples per measurement",
    ),
    (
        "RINGO_BFS_ALPHA",
        "frontier engine: top-down to bottom-up crossover factor (0 forces top-down)",
    ),
    (
        "RINGO_BFS_BETA",
        "frontier engine: bottom-up to top-down crossover factor (MAX forces bottom-up)",
    ),
    (
        "RINGO_CATALOG_GC",
        "versioned catalog: reclamation policy (auto after publish, or manual)",
    ),
    (
        "RINGO_CHECK_PCT_DEPTH",
        "concurrency checker: PCT strategy change points",
    ),
    (
        "RINGO_CHECK_SCHEDULES",
        "concurrency checker: schedules explored per strategy",
    ),
    (
        "RINGO_CHECK_SEED",
        "concurrency checker: replay one exact interleaving",
    ),
    (
        "RINGO_CHECK_STRATEGY",
        "concurrency checker: restrict exploration strategies",
    ),
    (
        "RINGO_EPOCH_SLOTS",
        "epoch domains: reader pin-slot count per domain",
    ),
    (
        "RINGO_LJ_SCALE",
        "benchmark fixtures: LiveJournal-shaped dataset scale",
    ),
    (
        "RINGO_MORSEL_ROWS",
        "parallel executor: rows per morsel (read once per process)",
    ),
    (
        "RINGO_SAMPLE_MS",
        "trace: background resource sampler period (off when unset)",
    ),
    ("RINGO_THREADS", "worker pool: default worker count"),
    (
        "RINGO_TRACE",
        "trace: enable span/counter recording (dump at exit)",
    ),
    (
        "RINGO_TRACE_CHROME",
        "trace: Chrome trace-event export path (implies recording)",
    ),
    (
        "RINGO_TRACE_JSON",
        "trace: JSON dump path (implies RINGO_TRACE=1)",
    ),
    (
        "RINGO_TW_SCALE",
        "benchmark fixtures: Twitter-shaped dataset scale",
    ),
];

/// `Release` writes allowed to go unpaired within their crate.
const RELEASE_PAIR_ALLOW: &[(&str, &str)] = &[];
