//! Parsed source files and the workspace view the lints run over.
//!
//! A [`SourceFile`] bundles everything a lint needs about one file:
//! the text, the token stream, the token-tree forest, a line index for
//! `file:line:col` diagnostics, the significant (non-trivia) token
//! subsequence, and the byte offset where `#[cfg(test)]` code begins
//! (everything at or past that offset is exempt, mirroring the PR 4
//! gate's convention that test modules come last).
//!
//! A [`Workspace`] is the lint driver's input: every library source file
//! under `crates/*/src` and `src/`, plus the auxiliary files some lints
//! cross-check against (README, the CI workflow, the example sources).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Token};
use crate::tree::{self, TokenTree};

/// Maps byte offsets to 1-based line and column numbers.
#[derive(Clone, Debug)]
pub struct LineIndex {
    /// Byte offset of the start of each line.
    starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the index for `text`.
    pub fn new(text: &str) -> Self {
        let mut starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        Self { starts }
    }

    /// 1-based `(line, column)` of a byte offset. Columns count bytes
    /// from the line start, which matches how editors address ASCII
    /// source; multi-byte characters earlier in the line shift columns
    /// but never lines.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.starts[line] + 1)
    }
}

/// One lexed + structured source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// The raw text.
    pub text: String,
    /// Every token, spans tiling the text.
    pub tokens: Vec<Token>,
    /// Indices (into `tokens`) of non-trivia tokens, in order.
    pub sig: Vec<usize>,
    /// Token-tree forest over all tokens.
    pub trees: Vec<TokenTree>,
    /// Line index for diagnostics.
    pub lines: LineIndex,
    /// Byte offset where the first `#[cfg(test)]` attribute starts;
    /// tokens at or past this offset are exempt from lints.
    pub test_cutoff: Option<usize>,
}

impl SourceFile {
    /// Lexes and structures `text`.
    pub fn parse(rel: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let tokens = lexer::lex(&text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.kind.is_trivia())
            .map(|(i, _)| i)
            .collect();
        let trees = tree::build(&text, &tokens);
        let lines = LineIndex::new(&text);
        let test_cutoff = find_test_cutoff(&text, &tokens, &sig);
        Self {
            rel: rel.into(),
            text,
            tokens,
            sig,
            trees,
            lines,
            test_cutoff,
        }
    }

    /// Text of token `i`.
    pub fn tok_text(&self, i: usize) -> &str {
        self.tokens[i].text(&self.text)
    }

    /// True when token `i` sits in the file's `#[cfg(test)]` tail.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_cutoff
            .is_some_and(|cut| self.tokens[i].start >= cut)
    }

    /// 1-based `(line, col)` of token `i`.
    pub fn tok_line_col(&self, i: usize) -> (usize, usize) {
        self.lines.line_col(self.tokens[i].start)
    }

    /// The significant token following sig-position `p`, if any.
    /// `p` indexes into [`SourceFile::sig`], not `tokens`.
    pub fn sig_tok(&self, p: usize) -> Option<usize> {
        self.sig.get(p).copied()
    }

    /// True when the significant tokens starting at sig-position `p`
    /// have exactly the given texts, in order.
    pub fn sig_matches(&self, p: usize, texts: &[&str]) -> bool {
        texts.iter().enumerate().all(|(k, want)| {
            self.sig
                .get(p + k)
                .is_some_and(|&ti| self.tok_text(ti) == *want)
        })
    }

    /// True when any comment token containing one of `tags` ends within
    /// `lookback` lines above `line` (and starts no later than `line`).
    /// This is the annotation rule shared by the SAFETY/ORDERING lints:
    /// a block annotation covers the statements beneath it.
    pub fn annotated(&self, line: usize, lookback: usize, tags: &[&str]) -> bool {
        let lo = line.saturating_sub(lookback);
        self.tokens.iter().filter(|t| t.kind.is_comment()).any(|t| {
            let (start_line, _) = self.lines.line_col(t.start);
            let (end_line, _) = self.lines.line_col(t.end.saturating_sub(1).max(t.start));
            start_line <= line
                && end_line >= lo
                && tags.iter().any(|tag| t.text(&self.text).contains(tag))
        })
    }
}

/// Finds the byte offset of the first top-level `#[cfg(test)]`
/// attribute: the exact significant-token sequence `# [ cfg ( test ) ]`.
fn find_test_cutoff(text: &str, tokens: &[Token], sig: &[usize]) -> Option<usize> {
    let texts: Vec<&str> = sig.iter().map(|&i| tokens[i].text(text)).collect();
    const SEQ: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    for p in 0..texts.len().saturating_sub(SEQ.len() - 1) {
        if (0..SEQ.len()).all(|k| texts[p + k] == SEQ[k]) {
            return Some(tokens[sig[p]].start);
        }
    }
    None
}

/// The full input a lint run sees.
#[derive(Debug)]
pub struct Workspace {
    /// Library sources: `crates/*/src/**/*.rs` plus the root `src/`.
    pub lib_files: Vec<SourceFile>,
    /// `README.md` text (empty when absent).
    pub readme: String,
    /// `.github/workflows/ci.yml` text (empty when absent).
    pub ci_yaml: String,
    /// `examples/*.rs`, lexed — the metric lint cross-checks the names
    /// they reference.
    pub example_files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads the workspace rooted at `root` from disk.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut lib_paths = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            for entry in fs::read_dir(&crates_dir)? {
                let src = entry?.path().join("src");
                if src.is_dir() {
                    collect_rs(&src, &mut lib_paths)?;
                }
            }
        }
        let root_src = root.join("src");
        if root_src.is_dir() {
            collect_rs(&root_src, &mut lib_paths)?;
        }
        lib_paths.sort();

        let mut lib_files = Vec::with_capacity(lib_paths.len());
        for p in &lib_paths {
            lib_files.push(SourceFile::parse(rel_of(root, p), fs::read_to_string(p)?));
        }

        let mut example_files = Vec::new();
        let examples = root.join("examples");
        if examples.is_dir() {
            let mut paths = Vec::new();
            collect_rs(&examples, &mut paths)?;
            paths.sort();
            for p in &paths {
                example_files.push(SourceFile::parse(rel_of(root, p), fs::read_to_string(p)?));
            }
        }

        Ok(Self {
            lib_files,
            readme: fs::read_to_string(root.join("README.md")).unwrap_or_default(),
            ci_yaml: fs::read_to_string(root.join(".github/workflows/ci.yml")).unwrap_or_default(),
            example_files,
        })
    }

    /// Builds an in-memory workspace — the fixture tests' entry point.
    /// `lib` maps workspace-relative paths to file contents.
    pub fn synthetic(
        lib: &[(&str, &str)],
        readme: &str,
        ci_yaml: &str,
        examples: &[(&str, &str)],
    ) -> Self {
        Self {
            lib_files: lib
                .iter()
                .map(|(rel, text)| SourceFile::parse(*rel, *text))
                .collect(),
            readme: readme.to_owned(),
            ci_yaml: ci_yaml.to_owned(),
            example_files: examples
                .iter()
                .map(|(rel, text)| SourceFile::parse(*rel, *text))
                .collect(),
        }
    }
}

fn rel_of(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_index_round_trips() {
        let idx = LineIndex::new("ab\ncd\n\nx");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(1), (1, 2));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(6), (3, 1));
        assert_eq!(idx.line_col(7), (4, 1));
    }

    #[test]
    fn test_cutoff_ignores_strings_and_comments() {
        let src = "\
// #[cfg(test)] in a comment does not count
const S: &str = \"#[cfg(test)]\";
fn live() {}
#[cfg(test)]
mod tests {}
";
        let f = SourceFile::parse("x.rs", src);
        let cut = f.test_cutoff.expect("real attribute found");
        assert!(src[cut..].starts_with("#[cfg(test)]"));
        assert!(!f.in_test_code(0));
    }

    #[test]
    fn annotated_respects_lookback_window() {
        let src = "\
// SAFETY: fine here
line2();
line3();
line4();
";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.annotated(2, 1, &["SAFETY:"]));
        assert!(f.annotated(3, 2, &["SAFETY:"]));
        assert!(!f.annotated(3, 1, &["SAFETY:"]));
    }
}
