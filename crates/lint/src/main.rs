//! `ringo-lint` command-line driver.
//!
//! ```text
//! ringo-lint --workspace           # lint the enclosing workspace
//! ringo-lint --root <path>         # lint an explicit root
//! ringo-lint --workspace --json    # machine-readable findings
//! ringo-lint --knobs               # print the RINGO_* knob inventory
//! ```
//!
//! Exits non-zero when any finding is reported, so CI can gate on it.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use ringo_lint::{render_human, render_json, run_all, Config, Workspace};

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut knobs = false;
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--knobs" => knobs = true,
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ringo-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: ringo-lint [--workspace | --root <path>] [--json] [--knobs]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ringo-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = Config::project();

    if knobs {
        println!(
            "RINGO_* knob inventory ({} knobs):",
            cfg.knob_inventory.len()
        );
        for (name, desc) in &cfg.knob_inventory {
            println!("  {name:<24} {desc}");
        }
        if !workspace && root.is_none() {
            return ExitCode::SUCCESS;
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            if !workspace {
                eprintln!("ringo-lint: pass --workspace or --root <path> (see --help)");
                return ExitCode::from(2);
            }
            let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "ringo-lint: no enclosing workspace (no Cargo.toml with \
                         [workspace] above the current directory)"
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("ringo-lint: failed to load {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let findings = run_all(&ws, &cfg);
    if json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_human(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
