//! `ringo-lint` — a token-aware static analyzer for Ringo's own
//! invariant surface.
//!
//! The PR 4 tier-1 gate (`tests/static_gate.rs`) was a line-based
//! tripwire: fast, but foolable by strings and comments, and blind to
//! the bug classes that actually bite an observability-heavy concurrent
//! codebase — a `span!` guard dropped on the spot, a `Release` store
//! with no `Acquire` partner, an undocumented `RINGO_*` knob. This crate
//! replaces it with a real (std-only, hermetic) lexer + token-tree
//! analyzer and a catalog of project-specific lints:
//!
//! | lint | what it enforces |
//! |---|---|
//! | `unsafe-safety-comment`   | every `unsafe` token carries `// SAFETY:` / `# Safety` |
//! | `relaxed-ordering-comment`| every `Ordering::Relaxed` carries `// ORDERING:` |
//! | `thread-confinement`      | `thread::spawn`/`Builder` only in the pool/checker/sampler |
//! | `unwrap-audit`            | `.unwrap()`/`.expect(` only in audited files |
//! | `dropped-guard`           | no `let _ = span!(…)` / bare `span!(…);` statements |
//! | `metric-registry`         | span/counter names are dotted, unique, and CI-checked |
//! | `env-knob-registry`       | every `RINGO_*` knob is inventoried and in README |
//! | `ordering-pairing`        | `Release` writes have an `Acquire`-side partner in-crate |
//! | `hot-alloc`               | no alloc idioms inside `// LINT: hot` functions |
//!
//! All allowlists live in [`config::Config`] and are **shrink-only**:
//! every entry needs a recorded reason, and a stale entry (one that no
//! longer suppresses anything) is itself a finding, in the PR 4 style.
//!
//! The crate is both a library (driven by `tests/static_gate.rs` in
//! tier 1 and by the fixture tests) and a binary:
//!
//! ```text
//! cargo run --release -p ringo-lint -- --workspace
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod source;
pub mod tree;

pub use config::Config;
pub use diag::{render_human, render_json, Finding};
pub use lints::{all_lints, run_all, Lint};
pub use source::{SourceFile, Workspace};
