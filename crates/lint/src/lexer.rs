//! A std-only Rust lexer with exact byte spans.
//!
//! The lexer exists so the lints in this crate can reason about *tokens*
//! instead of raw lines: a `SAFETY:` tag inside a string literal is data,
//! an `unsafe` inside a comment is prose, and neither should trip (or
//! satisfy) a rule. It handles the full literal surface the workspace
//! uses — raw strings with arbitrary hash fences, nested block comments,
//! char/byte literals, lifetimes vs char disambiguation, doc comments —
//! and it is **total**: any `&str` input produces a token stream whose
//! byte spans tile the input exactly (asserted by the seeded property
//! test in `tests/lexer_prop.rs`). Unrecognized bytes become
//! [`TokenKind::Unknown`] tokens rather than panics, so the lexer can be
//! pointed at arbitrary files without pre-validation.
//!
//! Design notes:
//! * Spans are `[start, end)` byte offsets into the original text; lines
//!   and columns are derived lazily by [`crate::source::LineIndex`] so
//!   the hot loop never tracks them.
//! * Keywords are not distinguished from identifiers — lints match on
//!   token text, which keeps the lexer stable across editions.
//! * Numeric literals follow rustc's shape rules (`1.max(2)` is an int
//!   followed by a method call, `1.5e-3f64` is one float token) but do
//!   not validate digits against the base; a malformed number is still
//!   one token with a correct span.

/// What a single token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace characters.
    Whitespace,
    /// `// ...` to end of line; `doc` covers both `///` and `//!`.
    LineComment {
        /// True for `///` and `//!` doc comments.
        doc: bool,
    },
    /// `/* ... */`, nesting-aware.
    BlockComment {
        /// True for `/**` and `/*!` doc comments.
        doc: bool,
        /// False when the comment runs to end of input unclosed.
        terminated: bool,
    },
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// `'a`, `'static`, `'_` — a lifetime or loop label.
    Lifetime,
    /// `'x'` with escapes.
    Char {
        /// False when the literal runs to end of line/input unclosed.
        terminated: bool,
    },
    /// `b'x'`.
    Byte {
        /// See [`TokenKind::Char::terminated`].
        terminated: bool,
    },
    /// `"..."` with escapes.
    Str {
        /// See [`TokenKind::Char::terminated`].
        terminated: bool,
    },
    /// `b"..."`.
    ByteStr {
        /// See [`TokenKind::Char::terminated`].
        terminated: bool,
    },
    /// `r"..."` / `r#"..."#` with any number of hashes.
    RawStr {
        /// See [`TokenKind::Char::terminated`].
        terminated: bool,
    },
    /// `br"..."` / `br#"..."#`.
    RawByteStr {
        /// See [`TokenKind::Char::terminated`].
        terminated: bool,
    },
    /// Integer or float literal, including base prefixes, underscores,
    /// exponents, and type suffixes.
    Num,
    /// A punctuation token. Single characters, except `::` which is
    /// glued into one token — it is the only compound operator the
    /// sequence-matching lints care about (`Span :: enter`,
    /// `Ordering :: Relaxed`, `thread :: spawn`).
    Punct,
    /// Any character the lexer has no rule for (stray `\`, emoji, …).
    Unknown,
}

impl TokenKind {
    /// True for whitespace and comments — tokens lints usually skip.
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokenKind::Whitespace | TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// True for any comment token (line, block, doc).
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// True for any string-shaped literal whose content
    /// [`str_content`] can extract.
    pub fn is_string(self) -> bool {
        matches!(
            self,
            TokenKind::Str { .. }
                | TokenKind::ByteStr { .. }
                | TokenKind::RawStr { .. }
                | TokenKind::RawByteStr { .. }
        )
    }
}

/// One lexed token: a kind plus its `[start, end)` byte span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
}

impl Token {
    /// The token's text within the file it was lexed from.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }
}

/// Strips quotes, prefixes, and raw-string hash fences from a
/// string-shaped literal's text, returning the inner content.
///
/// Escapes are left as written (`\n` stays two characters): the lints
/// that scan literal content look for plain identifiers and dotted
/// names, which never contain escapes. Returns `None` for non-string
/// tokens or unterminated literals.
pub fn str_content(kind: TokenKind, text: &str) -> Option<&str> {
    let (prefix_len, terminated) = match kind {
        TokenKind::Str { terminated } => (0, terminated),
        TokenKind::ByteStr { terminated } => (1, terminated),
        TokenKind::RawStr { terminated } => (1, terminated),
        TokenKind::RawByteStr { terminated } => (2, terminated),
        _ => return None,
    };
    if !terminated {
        return None;
    }
    let rest = &text[prefix_len..];
    let hashes = rest.len() - rest.trim_start_matches('#').len();
    let body = &rest[hashes..];
    // body is now `"...<content>..."` followed by `hashes` closing hashes.
    let inner = body.strip_prefix('"')?;
    let inner = &inner[..inner.len().checked_sub(1 + hashes)?];
    Some(inner)
}

/// Lexes `source` into a token stream whose spans tile `[0, len)`.
pub fn lex(source: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut lexer = Lexer {
        src: source,
        pos: 0,
    };
    while let Some(c) = lexer.peek() {
        let start = lexer.pos;
        let kind = lexer.next_kind(c);
        debug_assert!(lexer.pos > start, "lexer must always advance");
        tokens.push(Token {
            kind,
            start,
            end: lexer.pos,
        });
    }
    tokens
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n_chars: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n_chars)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.pos += c.len_utf8();
        }
    }

    /// Lexes one token starting at `self.pos`; `c` is the character
    /// already peeked there by the caller.
    fn next_kind(&mut self, c: char) -> TokenKind {
        if c.is_whitespace() {
            self.eat_while(char::is_whitespace);
            return TokenKind::Whitespace;
        }

        if c == '/' {
            match self.peek_at(1) {
                Some('/') => return self.line_comment(),
                Some('*') => return self.block_comment(),
                _ => {
                    self.bump();
                    return TokenKind::Punct;
                }
            }
        }

        if c == '\'' {
            return self.lifetime_or_char();
        }
        if c == '"' {
            return self.string(TokenKind::Str { terminated: true });
        }

        if is_ident_start(c) {
            return self.ident_or_prefixed_literal();
        }

        if c.is_ascii_digit() {
            return self.number();
        }

        // `::` is the one compound operator the sequence-matching lints
        // pattern on, so it gets glued; every other punctuation-like
        // character is emitted one at a time (`->` is two tokens, which
        // no lint cares about).
        if c == ':' && self.peek_at(1) == Some(':') {
            self.bump();
            self.bump();
            return TokenKind::Punct;
        }
        const PUNCT: &str = "!#$%&()*+,-./:;<=>?@[]^`{|}~\\";
        if PUNCT.contains(c) {
            self.bump();
            return TokenKind::Punct;
        }

        self.bump();
        TokenKind::Unknown
    }

    fn line_comment(&mut self) -> TokenKind {
        // self.pos is at the first `/`.
        let rest = &self.src[self.pos..];
        let doc = (rest.starts_with("///") && !rest.starts_with("////")) || rest.starts_with("//!");
        self.eat_while(|c| c != '\n');
        TokenKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokenKind {
        let rest = &self.src[self.pos..];
        let doc =
            (rest.starts_with("/**") && !rest.starts_with("/***") && !rest.starts_with("/**/"))
                || rest.starts_with("/*!");
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                None => {
                    return TokenKind::BlockComment {
                        doc,
                        terminated: false,
                    }
                }
                Some('/') if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek() == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
            }
        }
        TokenKind::BlockComment {
            doc,
            terminated: true,
        }
    }

    /// At a `'`: decide between a lifetime/label and a char literal the
    /// way rustc does — `'` + ident-start is a lifetime unless the ident
    /// is exactly one character long and followed by a closing `'`.
    fn lifetime_or_char(&mut self) -> TokenKind {
        let after = self.peek_at(1);
        if let Some(a) = after {
            if is_ident_start(a) {
                // Scan the identifier run after the quote.
                let mut chars = self.src[self.pos + 1..].char_indices();
                let mut ident_end = 0;
                for (i, ch) in &mut chars {
                    if is_ident_continue(ch) {
                        ident_end = i + ch.len_utf8();
                    } else {
                        break;
                    }
                }
                let follows = self.src[self.pos + 1 + ident_end..].chars().next();
                if follows != Some('\'') {
                    self.pos += 1 + ident_end;
                    return TokenKind::Lifetime;
                }
            }
        }
        self.char_like(TokenKind::Char { terminated: true })
    }

    /// Consumes a `'...'`-shaped literal (char or byte). `terminated_kind`
    /// carries the kind to return on success; the unterminated variant is
    /// produced when a newline or end of input arrives first.
    fn char_like(&mut self, terminated_kind: TokenKind) -> TokenKind {
        let unterminated = match terminated_kind {
            TokenKind::Char { .. } => TokenKind::Char { terminated: false },
            _ => TokenKind::Byte { terminated: false },
        };
        self.bump(); // opening quote
        loop {
            match self.peek() {
                None | Some('\n') => return unterminated,
                Some('\\') => {
                    self.bump();
                    self.bump(); // the escaped character, whatever it is
                }
                Some('\'') => {
                    self.bump();
                    return terminated_kind;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    /// Consumes a `"..."`-shaped literal with escapes. Unlike chars,
    /// strings may span lines; only end of input leaves it unterminated.
    fn string(&mut self, terminated_kind: TokenKind) -> TokenKind {
        let unterminated = match terminated_kind {
            TokenKind::Str { .. } => TokenKind::Str { terminated: false },
            _ => TokenKind::ByteStr { terminated: false },
        };
        self.bump(); // opening quote
        loop {
            match self.peek() {
                None => return unterminated,
                Some('\\') => {
                    self.bump();
                    self.bump();
                }
                Some('"') => {
                    self.bump();
                    return terminated_kind;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    /// Consumes `r"…"` / `r#"…"#` bodies after the caller has positioned
    /// `pos` at the first `#` or `"`. The literal ends at a `"` followed
    /// by `hashes` hash characters.
    fn raw_string(&mut self, byte: bool) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        let make = |terminated| {
            if byte {
                TokenKind::RawByteStr { terminated }
            } else {
                TokenKind::RawStr { terminated }
            }
        };
        if self.peek() != Some('"') {
            // `r#foo` raw identifier (or a stray `r#`): the caller
            // classified too eagerly; treat what we consumed plus the
            // identifier run as one Ident token.
            self.eat_while(is_ident_continue);
            return TokenKind::Ident;
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None => return make(false),
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return make(true);
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// An identifier, or one of the literal prefixes `r` / `b` / `br`
    /// immediately followed by a quote or hash fence.
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let rest = &self.src[self.pos..];
        if rest.starts_with("r\"") || rest.starts_with("r#") {
            self.bump(); // `r`
            return self.raw_string(false);
        }
        if rest.starts_with("br\"") || rest.starts_with("br#") {
            self.bump(); // `b`
            self.bump(); // `r`
            return self.raw_string(true);
        }
        if rest.starts_with("b\"") {
            self.bump(); // `b`
            return self.string(TokenKind::ByteStr { terminated: true });
        }
        if rest.starts_with("b'") {
            self.bump(); // `b`
            return self.char_like(TokenKind::Byte { terminated: true });
        }
        self.eat_while(is_ident_continue);
        TokenKind::Ident
    }

    /// Numeric literal: optional base prefix, digit/underscore run,
    /// optional fraction and exponent (decimal only), optional ident
    /// suffix (`u64`, `f32`, arbitrary).
    fn number(&mut self) -> TokenKind {
        let radix_prefixed = {
            let rest = &self.src[self.pos..];
            rest.starts_with("0x")
                || rest.starts_with("0X")
                || rest.starts_with("0o")
                || rest.starts_with("0O")
                || rest.starts_with("0b")
                || rest.starts_with("0B")
        };
        if radix_prefixed {
            self.pos += 2;
            // Hex digits include `a-f`; `eat_while` over alphanumerics
            // also swallows any type suffix, which is fine span-wise.
            self.eat_while(is_ident_continue);
            return TokenKind::Num;
        }
        self.eat_while(|c| c.is_ascii_digit() || c == '_');
        // Fraction: a `.` NOT followed by another `.` (range) or an
        // identifier start (method call / field access).
        if self.peek() == Some('.') {
            let after = self.peek_at(1);
            let is_fraction = match after {
                None => true,
                Some(a) => a.is_ascii_digit() || !(a == '.' || is_ident_start(a)),
            };
            if is_fraction {
                self.bump();
                self.eat_while(|c| c.is_ascii_digit() || c == '_');
            } else {
                return TokenKind::Num;
            }
        }
        // Exponent: `e`/`E` with optional sign, only if digits follow.
        if matches!(self.peek(), Some('e') | Some('E')) {
            let (sign_len, digit_at) = match self.peek_at(1) {
                Some('+') | Some('-') => (1, 2),
                _ => (0, 1),
            };
            if self.peek_at(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                self.bump(); // e
                for _ in 0..sign_len {
                    self.bump();
                }
                self.eat_while(|c| c.is_ascii_digit() || c == '_');
            }
        }
        // Type suffix (`u64`, `f32`, `usize`, …) — any ident run glued on.
        if self.peek().is_some_and(is_ident_start) {
            self.eat_while(is_ident_continue);
        }
        TokenKind::Num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn tiles(src: &str) {
        let toks = lex(src);
        let mut at = 0;
        for t in &toks {
            assert_eq!(t.start, at, "gap before {t:?} in {src:?}");
            assert!(t.end > t.start);
            at = t.end;
        }
        assert_eq!(at, src.len(), "tokens do not cover {src:?}");
    }

    #[test]
    fn idents_keywords_and_punct() {
        let ks = kinds("pub unsafe fn f(x: &mut u8) -> u8 { x }");
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unsafe"));
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::Punct && *t == "{"));
        tiles("pub unsafe fn f(x: &mut u8) -> u8 { x }");
    }

    #[test]
    fn double_colon_is_one_token() {
        let ks = kinds("Ordering::Relaxed; a: b; x ::< y");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| *t).collect();
        assert_eq!(
            texts,
            ["Ordering", "::", "Relaxed", ";", "a", ":", "b", ";", "x", "::", "<", "y"]
        );
        tiles("Ordering::Relaxed; a: b; x ::< y");
    }

    #[test]
    fn strings_hide_their_content() {
        let src = r#"let s = "unsafe // SAFETY: not a comment";"#;
        let ks = kinds(src);
        let strs: Vec<_> = ks.iter().filter(|(k, _)| k.is_string()).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(
            str_content(strs[0].0, strs[0].1),
            Some("unsafe // SAFETY: not a comment")
        );
        assert_eq!(
            ks.iter().filter(|(_, t)| *t == "unsafe").count(),
            0,
            "no bare unsafe token outside the string"
        );
        tiles(src);
    }

    #[test]
    fn raw_strings_with_hash_fences() {
        let src = r###"let s = r#"quote " inside"#; let t = r"plain";"###;
        let ks = kinds(src);
        let raws: Vec<_> = ks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::RawStr { terminated: true }))
            .collect();
        assert_eq!(raws.len(), 2);
        assert_eq!(str_content(raws[0].0, raws[0].1), Some("quote \" inside"));
        assert_eq!(str_content(raws[1].0, raws[1].1), Some("plain"));
        tiles(src);
    }

    #[test]
    fn byte_literals_and_raw_idents() {
        let src = r##"let m = b"RINGOGR1"; let b = b'x'; let k = r#match; let rb = br#"x"#;"##;
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, _)| matches!(k, TokenKind::ByteStr { terminated: true })));
        assert!(ks
            .iter()
            .any(|(k, _)| matches!(k, TokenKind::Byte { terminated: true })));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "r#match"));
        assert!(ks
            .iter()
            .any(|(k, _)| matches!(k, TokenKind::RawByteStr { terminated: true })));
        tiles(src);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let lbl = 'outer: loop { break 'outer; }; let u = '_; }";
        let ks = kinds(src);
        let lifetimes: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'outer", "'outer", "'_"]);
        let chars = ks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::Char { terminated: true }))
            .count();
        assert_eq!(chars, 2);
        tiles(src);
    }

    #[test]
    fn nested_block_comments_and_docs() {
        let src = "/* outer /* inner */ still */ code /// doc\n//! inner doc\n// plain";
        let ks = kinds(src);
        assert_eq!(ks[0].1, "/* outer /* inner */ still */");
        assert!(matches!(
            ks[0].0,
            TokenKind::BlockComment {
                doc: false,
                terminated: true
            }
        ));
        assert!(matches!(ks[2].0, TokenKind::LineComment { doc: true }));
        assert!(matches!(ks[3].0, TokenKind::LineComment { doc: true }));
        assert!(matches!(ks[4].0, TokenKind::LineComment { doc: false }));
        tiles(src);
    }

    #[test]
    fn numbers_floats_and_method_calls() {
        for (src, want) in [
            ("1.max(2)", "1"),
            ("1.5e-3f64", "1.5e-3f64"),
            ("0xFF_u32", "0xFF_u32"),
            ("1..4", "1"),
            ("2.", "2."),
            ("1_000_000", "1_000_000"),
        ] {
            let toks = lex(src);
            assert_eq!(toks[0].kind, TokenKind::Num, "{src}");
            assert_eq!(toks[0].text(src), want, "{src}");
            tiles(src);
        }
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"open", "r#\"open", "b\"open", "'", "'\\", "/* open", "b'"] {
            tiles(src);
        }
    }
}
