//! Token trees: the lexer's flat stream grouped by `()` / `[]` / `{}`.
//!
//! Lints that care about *structure* — "is this `span!` call a whole
//! statement?", "what is inside this function body?" — walk trees
//! instead of scanning lines. The builder is error-tolerant: a stray
//! closing delimiter becomes a plain leaf, and a group left open at end
//! of input is closed implicitly (`close: None`), so any input produces
//! a tree. Flattening a tree in order yields exactly the input token
//! indices (asserted by the property test in `tests/lexer_prop.rs`).

use crate::lexer::{Token, TokenKind};

/// One node of a token tree. Leaves and group delimiters are stored as
/// indices into the file's token vector, which keeps the tree cheap and
/// every node traceable to an exact byte span.
#[derive(Clone, Debug)]
pub enum TokenTree {
    /// A single non-delimiter token (index into the token vector).
    Leaf(usize),
    /// A delimited group and everything inside it.
    Group {
        /// The opening delimiter character: `(`, `[`, or `{`.
        delim: char,
        /// Token index of the opening delimiter.
        open: usize,
        /// Token index of the closing delimiter; `None` when the group
        /// ran to end of input unclosed.
        close: Option<usize>,
        /// Child nodes, in source order.
        children: Vec<TokenTree>,
    },
}

/// Builds the token-tree forest for a token stream.
///
/// Trivia tokens (whitespace, comments) are kept as leaves so the
/// flattened tree reproduces the stream exactly; lints skip them via
/// [`TokenKind::is_trivia`].
pub fn build(source: &str, tokens: &[Token]) -> Vec<TokenTree> {
    // Each stack frame is (delim char, open index, children collected so
    // far); the bottom frame is the top-level forest.
    let mut stack: Vec<(char, usize, Vec<TokenTree>)> = vec![(' ', usize::MAX, Vec::new())];
    for (i, t) in tokens.iter().enumerate() {
        let text = if t.kind == TokenKind::Punct {
            t.text(source)
        } else {
            ""
        };
        match text {
            "(" | "[" | "{" => {
                stack.push((text.chars().next().unwrap_or('('), i, Vec::new()));
            }
            ")" | "]" | "}" => {
                let want = match text {
                    ")" => '(',
                    "]" => '[',
                    _ => '{',
                };
                if stack.len() > 1 && stack[stack.len() - 1].0 == want {
                    let (delim, open, children) =
                        stack.pop().unwrap_or((' ', usize::MAX, Vec::new()));
                    let node = TokenTree::Group {
                        delim,
                        open,
                        close: Some(i),
                        children,
                    };
                    if let Some(top) = stack.last_mut() {
                        top.2.push(node);
                    }
                } else {
                    // Mismatched or stray closer: keep it as a leaf so the
                    // tree still flattens to the input.
                    if let Some(top) = stack.last_mut() {
                        top.2.push(TokenTree::Leaf(i));
                    }
                }
            }
            _ => {
                if let Some(top) = stack.last_mut() {
                    top.2.push(TokenTree::Leaf(i));
                }
            }
        }
    }
    // Close any groups left open at end of input.
    while stack.len() > 1 {
        let (delim, open, children) = stack.pop().unwrap_or((' ', usize::MAX, Vec::new()));
        let node = TokenTree::Group {
            delim,
            open,
            close: None,
            children,
        };
        if let Some(top) = stack.last_mut() {
            top.2.push(node);
        }
    }
    stack.pop().map(|(_, _, c)| c).unwrap_or_default()
}

/// Depth-first walk over every node of a forest.
pub fn walk<'t>(trees: &'t [TokenTree], f: &mut impl FnMut(&'t TokenTree)) {
    for t in trees {
        f(t);
        if let TokenTree::Group { children, .. } = t {
            walk(children, f);
        }
    }
}

/// Appends every token index under `trees`, in source order.
pub fn flatten_into(trees: &[TokenTree], out: &mut Vec<usize>) {
    for t in trees {
        match t {
            TokenTree::Leaf(i) => out.push(*i),
            TokenTree::Group {
                open,
                close,
                children,
                ..
            } => {
                out.push(*open);
                flatten_into(children, out);
                if let Some(c) = close {
                    out.push(*c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn groups_nest_and_flatten() {
        let src = "fn f(a: [u8; 2]) { g(a[0]); }";
        let toks = lex(src);
        let trees = build(src, &toks);
        let mut flat = Vec::new();
        flatten_into(&trees, &mut flat);
        assert_eq!(flat, (0..toks.len()).collect::<Vec<_>>());
        let mut groups = 0;
        walk(&trees, &mut |t| {
            if matches!(t, TokenTree::Group { .. }) {
                groups += 1;
            }
        });
        assert_eq!(groups, 5, "( [ ) {{ ( [ nest count");
    }

    #[test]
    fn stray_and_unclosed_delimiters_survive() {
        for src in ["} stray", "open { never", "a ) b ( c", "((("] {
            let toks = lex(src);
            let trees = build(src, &toks);
            let mut flat = Vec::new();
            flatten_into(&trees, &mut flat);
            assert_eq!(flat, (0..toks.len()).collect::<Vec<_>>(), "{src}");
        }
    }
}
