//! Findings and their renderings.
//!
//! Every lint reports violations as [`Finding`]s with exact
//! `file:line:col` positions derived from token byte offsets. The
//! driver renders them two ways: a human report grouped by lint, and a
//! machine-readable JSON array (hand-rolled, like `crates/trace`'s
//! dumps — the workspace is hermetic).

use std::fmt::Write as _;

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Name of the lint that produced this finding.
    pub lint: &'static str,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl Finding {
    /// Builds a finding; the usual constructor inside lints.
    pub fn new(
        lint: &'static str,
        file: &str,
        line: usize,
        col: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            lint,
            file: file.to_owned(),
            line,
            col,
            message: message.into(),
        }
    }
}

/// Renders findings as a human report: one `file:line:col` block per
/// finding, grouped under the lint that produced it, with a trailing
/// total. Empty input renders a clean-bill line instead.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    if findings.is_empty() {
        out.push_str("ringo-lint: no findings\n");
        return out;
    }
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (a.lint, &a.file, a.line, a.col).cmp(&(b.lint, &b.file, b.line, b.col)));
    let mut current = "";
    for f in &sorted {
        if f.lint != current {
            current = f.lint;
            let _ = writeln!(out, "[{current}]");
        }
        let _ = writeln!(out, "  {}:{}:{}: {}", f.file, f.line, f.col, f.message);
    }
    let _ = writeln!(
        out,
        "ringo-lint: {} finding{} across {} lint{}",
        sorted.len(),
        if sorted.len() == 1 { "" } else { "s" },
        count_lints(&sorted),
        if count_lints(&sorted) == 1 { "" } else { "s" },
    );
    out
}

fn count_lints(sorted: &[&Finding]) -> usize {
    let mut n = 0;
    let mut last = "";
    for f in sorted {
        if f.lint != last {
            n += 1;
            last = f.lint;
        }
    }
    n
}

/// Renders findings as a JSON array of objects with `lint`, `file`,
/// `line`, `col`, and `message` fields.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
            escape(f.lint),
            escape(&f.file),
            f.line,
            f.col,
            escape(&f.message)
        );
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_report_groups_by_lint() {
        let fs = vec![
            Finding::new("b-lint", "b.rs", 2, 1, "second"),
            Finding::new("a-lint", "a.rs", 1, 5, "first"),
        ];
        let r = render_human(&fs);
        assert!(r.contains("[a-lint]\n  a.rs:1:5: first"), "{r}");
        assert!(r.contains("[b-lint]\n  b.rs:2:1: second"), "{r}");
        assert!(r.contains("2 findings across 2 lints"), "{r}");
        assert!(render_human(&[]).contains("no findings"));
    }

    #[test]
    fn json_escapes_content() {
        let fs = vec![Finding::new("l", "f.rs", 1, 1, "say \"hi\"\\path")];
        let j = render_json(&fs);
        assert!(j.contains(r#""message": "say \"hi\"\\path""#), "{j}");
    }
}
