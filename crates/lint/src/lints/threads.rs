//! `thread-confinement`: ad-hoc thread creation is forbidden outside
//! the worker pool, the checker's virtual-thread runtime, and the trace
//! sampler. Everything else must go through the pool so work is bounded
//! by its worker count and observable in pool stats.
//!
//! Token-aware re-implementation of PR 4's rule 3: matches the
//! significant-token sequences `thread :: spawn` and
//! `thread :: Builder`, so mentions in strings and comments no longer
//! count.

use crate::config::Config;
use crate::diag::Finding;
use crate::lints::{finding_at, Lint};
use crate::source::Workspace;

/// See module docs.
pub struct ThreadConfinement;

fn allowed(cfg: &Config, rel: &str) -> bool {
    cfg.thread_spawn_allow.iter().any(|a| {
        if a.ends_with('/') {
            rel.starts_with(a.as_str())
        } else {
            rel == a
        }
    })
}

impl Lint for ThreadConfinement {
    fn name(&self) -> &'static str {
        "thread-confinement"
    }

    fn check(&self, ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
        for file in &ws.lib_files {
            if allowed(cfg, &file.rel) {
                continue;
            }
            for p in 0..file.sig.len() {
                let hit = file.sig_matches(p, &["thread", "::", "spawn"])
                    || file.sig_matches(p, &["thread", "::", "Builder"]);
                if !hit {
                    continue;
                }
                let ti = match file.sig_tok(p) {
                    Some(t) => t,
                    None => continue,
                };
                if file.in_test_code(ti) {
                    continue;
                }
                out.push(finding_at(
                    self.name(),
                    file,
                    ti,
                    "ad-hoc thread creation outside the worker pool and ringo-check \
                     (route work through ringo_concurrent::pool so it is bounded and \
                     observable)",
                ));
            }
        }
    }
}
