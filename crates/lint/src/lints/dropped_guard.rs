//! `dropped-guard`: a `span!` / `Span::enter` RAII guard must be bound
//! to a live name.
//!
//! `let _ = span!("x");` and a bare `span!("x");` statement both destroy
//! the guard at the end of the statement, recording a zero-length span —
//! the operation being "measured" runs entirely after the guard died.
//! `let _sp = span!("x");` is the correct form (an underscore-*prefixed*
//! binding still lives to the end of scope; the bare `_` pattern never
//! binds at all).
//!
//! The lint walks every brace group's statement list: a statement that
//! is exactly a span-constructor call, or a `let _ =` whose right-hand
//! side is exactly a span-constructor call, is flagged.

use crate::config::Config;
use crate::diag::Finding;
use crate::lints::{finding_at, Lint};
use crate::source::{SourceFile, Workspace};
use crate::tree::{self, TokenTree};

/// See module docs.
pub struct DroppedGuard;

/// A statement's significant nodes: trivia leaves removed.
fn sig_nodes<'t>(stmt: &[&'t TokenTree], file: &SourceFile) -> Vec<&'t TokenTree> {
    stmt.iter()
        .filter(|n| match n {
            TokenTree::Leaf(i) => !file.tokens[*i].kind.is_trivia(),
            TokenTree::Group { .. } => true,
        })
        .copied()
        .collect()
}

/// True when `nodes` form exactly a span-constructor call: an optional
/// path prefix (`crate ::`, `ringo_trace ::`, …) followed by
/// `span ! ( … )` or `Span :: enter ( … )`.
fn is_span_call(nodes: &[&TokenTree], file: &SourceFile) -> bool {
    let Some((TokenTree::Group { delim: '(', .. }, head)) = nodes.split_last() else {
        return false;
    };
    let texts: Vec<&str> = head
        .iter()
        .map(|n| match n {
            TokenTree::Leaf(i) => file.tok_text(*i),
            TokenTree::Group { .. } => "<group>",
        })
        .collect();
    // Everything before the call group must be path-shaped.
    if texts
        .iter()
        .any(|t| !(*t == "::" || *t == "!" || t.chars().all(|c| c.is_alphanumeric() || c == '_')))
    {
        return false;
    }
    texts.ends_with(&["span", "!"]) || texts.ends_with(&["Span", "::", "enter"])
}

/// Splits a brace group's children into `;`-terminated statements and
/// flags dropped guards.
fn scan_block(children: &[TokenTree], file: &SourceFile, out: &mut Vec<Finding>) {
    let mut stmt: Vec<&TokenTree> = Vec::new();
    for node in children {
        let is_semi = matches!(node, TokenTree::Leaf(i) if file.tok_text(*i) == ";");
        if is_semi {
            check_statement(&stmt, file, out);
            stmt.clear();
        } else {
            stmt.push(node);
        }
    }
    // A trailing expression without `;` returns its value — not a drop.
}

fn check_statement(stmt: &[&TokenTree], file: &SourceFile, out: &mut Vec<Finding>) {
    let nodes = sig_nodes(stmt, file);
    if nodes.is_empty() {
        return;
    }
    let first_tok = match nodes[0] {
        TokenTree::Leaf(i) => *i,
        TokenTree::Group { open, .. } => *open,
    };
    if file.in_test_code(first_tok) {
        return;
    }
    // Bare `span!(…);` / `Span::enter(…);` statement.
    if is_span_call(&nodes, file) {
        out.push(finding_at(
            "dropped-guard",
            file,
            first_tok,
            "span guard dropped immediately: a bare `span!(…);` statement records a \
             zero-length span — bind it (`let _sp = span!(…);`) for the scope it measures",
        ));
        return;
    }
    // `let _ = <span call>;`
    let texts: Vec<&str> = nodes
        .iter()
        .take(3)
        .map(|n| match n {
            TokenTree::Leaf(i) => file.tok_text(*i),
            TokenTree::Group { .. } => "<group>",
        })
        .collect();
    if texts == ["let", "_", "="] && is_span_call(&nodes[3..], file) {
        out.push(finding_at(
            "dropped-guard",
            file,
            first_tok,
            "span guard dropped immediately: `let _ = span!(…)` destroys the RAII guard \
             on the spot — use a named binding (`let _sp = …`) so it lives to end of scope",
        ));
    }
}

impl Lint for DroppedGuard {
    fn name(&self) -> &'static str {
        "dropped-guard"
    }

    fn check(&self, ws: &Workspace, _cfg: &Config, out: &mut Vec<Finding>) {
        for file in &ws.lib_files {
            tree::walk(&file.trees, &mut |t| {
                if let TokenTree::Group {
                    delim: '{',
                    children,
                    ..
                } = t
                {
                    scan_block(children, file, out);
                }
            });
        }
    }
}
