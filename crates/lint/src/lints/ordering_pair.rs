//! `ordering-pairing`: a `Release` write to an atomic field with no
//! `Acquire`-side load of the same field anywhere in the crate is
//! flagged for review.
//!
//! A release store publishes; somebody has to acquire, or the edge the
//! store claims to create is never consumed and the store is either dead
//! synchronization or (worse) the acquire side was written with
//! `Relaxed` by mistake. The lint groups atomic method calls by
//! `(crate, receiver field)`:
//!
//! * **release-side**: `store` / `swap` / `fetch_*` /
//!   `compare_exchange*` whose ordering arguments include `Release` and
//!   no acquire-class ordering;
//! * **acquire-side**: any non-`store` atomic method whose ordering
//!   arguments include `Acquire`, `AcqRel`, or `SeqCst` (an `AcqRel`
//!   RMW pairs with itself).
//!
//! Fields with release-side writes and no acquire-side reads in the
//! crate are reported, unless the allowlist records why the partner
//! lives elsewhere (`("crate::field", reason)`). Entries that no longer
//! suppress anything are stale findings, keeping the list shrink-only.
//! Fences are out of scope (none of the workspace's `fence` calls
//! publish a field by themselves).

use std::collections::BTreeMap;

use crate::config::Config;
use crate::diag::Finding;
use crate::lints::{crate_of, finding_at, Lint};
use crate::source::{SourceFile, Workspace};
use crate::tree::TokenTree;

/// See module docs.
pub struct OrderingPairing;

const ATOMIC_METHODS: &[&str] = &[
    "store",
    "load",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
];

/// Ordering idents named inside a call's argument group (after an
/// `Ordering ::` path, so unrelated idents never count).
fn orderings_in(children: &[TokenTree], file: &SourceFile, out: &mut Vec<String>) {
    let mut flat: Vec<usize> = Vec::new();
    crate::tree::flatten_into(children, &mut flat);
    let sig: Vec<usize> = flat
        .into_iter()
        .filter(|&i| !file.tokens[i].kind.is_trivia())
        .collect();
    for w in sig.windows(3) {
        if file.tok_text(w[0]) == "Ordering" && file.tok_text(w[1]) == "::" {
            out.push(file.tok_text(w[2]).to_owned());
        }
    }
}

#[derive(Default)]
struct FieldInfo {
    release_sites: Vec<(usize, usize)>, // (file index, token index)
    has_acquire: bool,
}

fn scan_children(
    children: &[TokenTree],
    file: &SourceFile,
    fi: usize,
    fields: &mut BTreeMap<(String, String), FieldInfo>,
    krate: &str,
) {
    let sig: Vec<usize> = children
        .iter()
        .enumerate()
        .filter(|(_, n)| match n {
            TokenTree::Leaf(i) => !file.tokens[*i].kind.is_trivia(),
            TokenTree::Group { .. } => true,
        })
        .map(|(idx, _)| idx)
        .collect();
    for (k, &idx) in sig.iter().enumerate() {
        if let TokenTree::Group {
            children: inner, ..
        } = &children[idx]
        {
            scan_children(inner, file, fi, fields, krate);
        }
        let TokenTree::Group {
            delim: '(',
            children: inner,
            ..
        } = &children[idx]
        else {
            continue;
        };
        // Pattern: <receiver> [index]? . method ( … )
        if k < 2 {
            continue;
        }
        let method = match &children[sig[k - 1]] {
            TokenTree::Leaf(i) if !file.in_test_code(*i) => file.tok_text(*i),
            _ => continue,
        };
        if !ATOMIC_METHODS.contains(&method) {
            continue;
        }
        if !matches!(&children[sig[k - 2]], TokenTree::Leaf(i) if file.tok_text(*i) == ".") {
            continue;
        }
        // Receiver: optionally skip one index group, then take an ident.
        let mut r = k as isize - 3;
        if r >= 0 {
            if let TokenTree::Group { delim: '[', .. } = &children[sig[r as usize]] {
                r -= 1;
            }
        }
        let field = match r {
            r if r >= 0 => match &children[sig[r as usize]] {
                TokenTree::Leaf(i) => {
                    let t = file.tok_text(*i);
                    if t.chars().all(|c| c.is_alphanumeric() || c == '_') {
                        t.to_owned()
                    } else {
                        continue;
                    }
                }
                _ => continue,
            },
            _ => continue,
        };
        let mut ords = Vec::new();
        orderings_in(inner, file, &mut ords);
        if ords.is_empty() {
            continue; // not an atomic call after all (or ordering via variable)
        }
        let acq = ords
            .iter()
            .any(|o| o == "Acquire" || o == "AcqRel" || o == "SeqCst");
        let rel = ords.iter().any(|o| o == "Release");
        let info = fields.entry((krate.to_owned(), field)).or_default();
        if method != "store" && acq {
            info.has_acquire = true;
        }
        if rel && !acq {
            let ti = match &children[sig[k - 1]] {
                TokenTree::Leaf(i) => *i,
                _ => continue,
            };
            info.release_sites.push((fi, ti));
        }
    }
}

impl Lint for OrderingPairing {
    fn name(&self) -> &'static str {
        "ordering-pairing"
    }

    fn check(&self, ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
        let mut fields: BTreeMap<(String, String), FieldInfo> = BTreeMap::new();
        for (fi, file) in ws.lib_files.iter().enumerate() {
            let krate = crate_of(&file.rel).to_owned();
            scan_children(&file.trees, file, fi, &mut fields, &krate);
        }
        let mut suppressed: Vec<&str> = Vec::new();
        for ((krate, field), info) in &fields {
            if info.has_acquire || info.release_sites.is_empty() {
                continue;
            }
            let key = format!("{krate}::{field}");
            if let Some((k, _)) = cfg.release_pair_allow.iter().find(|(k, _)| *k == key) {
                suppressed.push(k);
                continue;
            }
            for &(fi, ti) in &info.release_sites {
                out.push(finding_at(
                    self.name(),
                    &ws.lib_files[fi],
                    ti,
                    format!(
                        "`Release` write to `{field}` has no `Acquire`-side load of the \
                         field anywhere in crate `{krate}` — the published edge is never \
                         consumed (pair it, or record why in the release-pair allowlist)"
                    ),
                ));
            }
        }
        for (key, reason) in &cfg.release_pair_allow {
            if !suppressed.contains(&key.as_str()) {
                out.push(Finding::new(
                    self.name(),
                    "crates/lint/src/config.rs",
                    1,
                    1,
                    format!(
                        "stale release-pair allowlist entry `{key}` ({reason}): no \
                         unpaired Release write remains — remove the entry"
                    ),
                ));
            }
        }
    }
}
