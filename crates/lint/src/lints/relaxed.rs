//! `relaxed-ordering-comment`: every `Ordering::Relaxed` use must carry
//! a `// ORDERING:` comment in the lookback window explaining why no
//! synchronization edge is required.
//!
//! Stronger orderings are self-documenting (they claim an edge);
//! `Relaxed` claims the *absence* of one, which is exactly the claim the
//! deterministic checker in `crates/check` exists to test — so the
//! source must say why it believes it. Token-aware: `Ordering::Relaxed`
//! inside strings, comments, or `#[cfg(test)]` code is ignored.

use crate::config::Config;
use crate::diag::Finding;
use crate::lints::{finding_at, Lint};
use crate::source::Workspace;

/// See module docs.
pub struct RelaxedOrderingComment;

impl Lint for RelaxedOrderingComment {
    fn name(&self) -> &'static str {
        "relaxed-ordering-comment"
    }

    fn check(&self, ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
        for file in &ws.lib_files {
            for p in 0..file.sig.len() {
                if !file.sig_matches(p, &["Ordering", "::", "Relaxed"]) {
                    continue;
                }
                let ti = match file.sig_tok(p + 2) {
                    Some(t) => t,
                    None => continue,
                };
                if file.in_test_code(ti) {
                    continue;
                }
                let (line, _) = file.tok_line_col(ti);
                if !file.annotated(line, cfg.lookback, &["ORDERING:"]) {
                    out.push(finding_at(
                        self.name(),
                        file,
                        ti,
                        format!(
                            "`Ordering::Relaxed` without a `// ORDERING:` justification \
                             within {} lines (Relaxed claims the *absence* of a needed \
                             edge; say why)",
                            cfg.lookback
                        ),
                    ));
                }
            }
        }
    }
}
