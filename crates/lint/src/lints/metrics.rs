//! `metric-registry`: every span/counter name is a well-formed dotted
//! hierarchy, unique per call site, and consistent with what CI asserts.
//!
//! Three checks, all over *tokens* (so names in comments and test code
//! never participate):
//!
//! 1. **Format + uniqueness.** A name passed to `span!`, `Span::enter`,
//!    `counter`, or the traced morsel dispatchers must match
//!    `[a-z0-9_]` segments joined by dots (≥ 2 segments). A name
//!    registered from two or more call sites is flagged unless the
//!    shared-name allowlist records why (e.g. the directed and
//!    undirected conversion paths record the same fill phase); an
//!    allowlist entry whose name no longer has multiple sites is stale.
//! 2. **CI cross-check.** Dotted names quoted in
//!    `.github/workflows/ci.yml` and in `examples/*.rs` are references:
//!    each must resolve to a registered name (exact) or to at least one
//!    registered name when it ends with `.` (prefix assert). A dead or
//!    misspelled assert is an error — CI must not green-light a span
//!    nobody records.
//! 3. **Synthetic names.** Names that exist only at export time (e.g.
//!    the Chrome exporter's `mem.bytes` counter track) are declared in
//!    the config with a reason; freshness requires the literal to still
//!    appear in library source.
//!
//! Dynamic dispatch (`Span::enter(name)` where `name` is a parameter)
//! registers nothing here — the literal at the *call site that chose
//! the name* is what gets collected.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::str_content;
use crate::lints::{finding_at, is_dotted_metric, Lint};
use crate::source::{LineIndex, SourceFile, Workspace};
use crate::tree::TokenTree;

/// See module docs.
pub struct MetricRegistry;

/// Path/file-name endings that disqualify a dotted literal from being
/// treated as a metric reference (CI quotes plenty of file names).
const FILE_EXTENSIONS: &[&str] = &[
    "json", "rs", "out", "yml", "yaml", "toml", "txt", "md", "csv", "tsv", "gz", "lock", "html",
    "rg",
];

fn looks_like_file(name: &str) -> bool {
    name.rsplit('.')
        .next()
        .is_some_and(|ext| FILE_EXTENSIONS.contains(&ext))
}

fn all_numeric(name: &str) -> bool {
    name.split('.')
        .all(|s| s.bytes().all(|b| b.is_ascii_digit()))
}

/// Functions whose first string argument names a metric.
const NAME_TAKING_FNS: &[&str] = &[
    "counter",
    "parallel_map_morsels_traced",
    "parallel_for_morsels_traced",
];

/// Collects every string literal inside `children`, recursively — a
/// literal in a name-registering position IS a metric name, well-formed
/// or not (the format check rejects the malformed ones; filtering here
/// would make that check unfalsifiable).
fn literals_in(children: &[TokenTree], file: &SourceFile, out: &mut Vec<(String, usize)>) {
    for node in children {
        match node {
            TokenTree::Leaf(i) => {
                let t = file.tokens[*i];
                if let Some(content) = str_content(t.kind, t.text(&file.text)) {
                    out.push((content.to_owned(), *i));
                }
            }
            TokenTree::Group { children, .. } => literals_in(children, file, out),
        }
    }
}

/// Like [`literals_in`], but only before the first top-level `,` —
/// the name argument of the traced morsel dispatchers.
fn first_arg_literals(children: &[TokenTree], file: &SourceFile, out: &mut Vec<(String, usize)>) {
    let end = children
        .iter()
        .position(|n| matches!(n, TokenTree::Leaf(i) if file.tok_text(*i) == ","))
        .unwrap_or(children.len());
    literals_in(&children[..end], file, out);
}

/// Scans one sibling list for name-registering calls and recurses.
fn scan_children(
    children: &[TokenTree],
    file: &SourceFile,
    defs: &mut Vec<(String, usize)>, // (name, token index) per site, this file
) {
    // Significant sibling positions, to look behind call groups.
    let sig: Vec<usize> = children
        .iter()
        .enumerate()
        .filter(|(_, n)| match n {
            TokenTree::Leaf(i) => !file.tokens[*i].kind.is_trivia(),
            TokenTree::Group { .. } => true,
        })
        .map(|(idx, _)| idx)
        .collect();
    for (k, &idx) in sig.iter().enumerate() {
        if let TokenTree::Group {
            delim: '(',
            children: inner,
            ..
        } = &children[idx]
        {
            let leaf = |back: usize| -> &str {
                if k >= back {
                    if let TokenTree::Leaf(i) = &children[sig[k - back]] {
                        return file.tok_text(*i);
                    }
                }
                ""
            };
            let mut found = Vec::new();
            let is_span_macro = leaf(1) == "!" && leaf(2) == "span";
            let is_span_enter = leaf(1) == "enter" && leaf(2) == "::" && leaf(3) == "Span";
            if is_span_macro || is_span_enter {
                literals_in(inner, file, &mut found);
            } else if NAME_TAKING_FNS.contains(&leaf(1)) && leaf(2) != "." && leaf(2) != "fn" {
                // Plain function call (not a method named `counter`, not
                // the `fn counter(…)` declaration itself).
                first_arg_literals(inner, file, &mut found);
            }
            defs.append(&mut found);
        }
        if let TokenTree::Group {
            children: inner, ..
        } = &children[idx]
        {
            scan_children(inner, file, defs);
        }
    }
}

/// Extracts dotted-name references from quoted strings in a YAML/script
/// text. Returns `(name, byte offset)`; names keep a trailing `.` when
/// the quote was a prefix assert.
fn yaml_references(text: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for quote in ['"', '\''] {
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] as char == quote {
                if let Some(len) = text[i + 1..].find(quote) {
                    let inner = &text[i + 1..i + 1 + len];
                    if !inner.contains('\n') {
                        let (name, is_prefix) = match inner.strip_suffix('.') {
                            Some(stripped) => (stripped, true),
                            None => (inner, false),
                        };
                        if (is_dotted_metric(name)
                            || (is_prefix
                                && !name.contains('.')
                                && is_dotted_metric(&format!("{name}.x"))))
                            && !looks_like_file(name)
                            && !all_numeric(name)
                        {
                            let full = if is_prefix {
                                format!("{name}.")
                            } else {
                                name.to_owned()
                            };
                            out.push((full, i + 1));
                        }
                    }
                    i += len + 2;
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

impl Lint for MetricRegistry {
    fn name(&self) -> &'static str {
        "metric-registry"
    }

    fn check(&self, ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
        // ---- collect definitions -------------------------------------
        // name -> list of (file index, token index)
        let mut sites: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, file) in ws.lib_files.iter().enumerate() {
            if cfg.scan_exempt.contains(&file.rel) {
                continue;
            }
            let mut defs = Vec::new();
            scan_children(&file.trees, file, &mut defs);
            // A literal can be collected twice when calls nest (a
            // `counter` inside a `span!` group); one token is one site.
            defs.sort();
            defs.dedup();
            for (name, ti) in defs {
                if file.in_test_code(ti) {
                    continue;
                }
                sites.entry(name).or_default().push((fi, ti));
            }
        }

        // ---- format + per-call-site uniqueness -----------------------
        for (name, locs) in &sites {
            for &(fi, ti) in locs {
                let file = &ws.lib_files[fi];
                if !is_dotted_metric(name) {
                    out.push(finding_at(
                        self.name(),
                        file,
                        ti,
                        format!(
                            "metric name `{name}` is not a dotted [a-z0-9_] hierarchy \
                             (e.g. `table.join`)"
                        ),
                    ));
                }
            }
            if locs.len() > 1 && !cfg.shared_metric_allow.iter().any(|(n, _)| n == name) {
                for &(fi, ti) in &locs[1..] {
                    let file = &ws.lib_files[fi];
                    out.push(finding_at(
                        self.name(),
                        file,
                        ti,
                        format!(
                            "metric name `{name}` is registered from {} call sites; \
                             names must be unique per call site so attribution is \
                             unambiguous (or record a reason in the shared-name \
                             allowlist)",
                            locs.len()
                        ),
                    ));
                }
            }
        }

        // ---- allowlist freshness -------------------------------------
        for (name, reason) in &cfg.shared_metric_allow {
            if sites.get(name).map_or(0, Vec::len) < 2 {
                out.push(Finding::new(
                    self.name(),
                    "crates/lint/src/config.rs",
                    1,
                    1,
                    format!(
                        "stale shared-metric allowlist entry `{name}` ({reason}): \
                         fewer than two call sites remain"
                    ),
                ));
            }
        }
        for (name, reason) in &cfg.synthetic_metrics {
            let live = ws.lib_files.iter().any(|f| {
                f.tokens
                    .iter()
                    .any(|t| str_content(t.kind, t.text(&f.text)).is_some_and(|c| c == name))
            });
            if !live {
                out.push(Finding::new(
                    self.name(),
                    "crates/lint/src/config.rs",
                    1,
                    1,
                    format!(
                        "stale synthetic-metric entry `{name}` ({reason}): the literal \
                         no longer appears in library source"
                    ),
                ));
            }
        }

        // ---- CI + example cross-check --------------------------------
        let resolves = |name: &str| -> bool {
            let known = |n: &String| sites.contains_key(n.as_str());
            match name.strip_suffix('.') {
                Some(prefix) => {
                    sites.keys().any(|n| n.starts_with(name) || n == prefix)
                        || cfg
                            .synthetic_metrics
                            .iter()
                            .any(|(n, _)| n.starts_with(name) || n == prefix)
                }
                None => {
                    known(&name.to_owned()) || cfg.synthetic_metrics.iter().any(|(n, _)| n == name)
                }
            }
        };
        if !ws.ci_yaml.is_empty() {
            let lines = LineIndex::new(&ws.ci_yaml);
            for (name, off) in yaml_references(&ws.ci_yaml) {
                if !resolves(&name) {
                    let (line, col) = lines.line_col(off);
                    out.push(Finding::new(
                        self.name(),
                        ".github/workflows/ci.yml",
                        line,
                        col,
                        format!(
                            "CI asserts metric name `{name}` but no library call site \
                             registers it — dead or misspelled assert"
                        ),
                    ));
                }
            }
        }
        for ex in &ws.example_files {
            for &ti in &ex.sig {
                let t = ex.tokens[ti];
                let Some(content) = str_content(t.kind, t.text(&ex.text)) else {
                    continue;
                };
                let is_ref = match content.strip_suffix('.') {
                    Some(p) => {
                        is_dotted_metric(p)
                            || !p.contains('.') && is_dotted_metric(&format!("{p}.x"))
                    }
                    None => is_dotted_metric(content),
                };
                if is_ref
                    && !looks_like_file(content)
                    && !all_numeric(content)
                    && !resolves(content)
                {
                    out.push(finding_at(
                        self.name(),
                        ex,
                        ti,
                        format!(
                            "example references metric name `{content}` but no library \
                             call site registers it"
                        ),
                    ));
                }
            }
        }
    }
}
