//! `unwrap-audit`: no `.unwrap()` / `.expect(` in library code outside
//! the audited per-file allowlist.
//!
//! Token-aware re-implementation of PR 4's rule 4, with the same
//! shrink-only freshness contract: an allowlist entry that points at a
//! missing file, or a file with no live use left, is itself a finding
//! (`stale allowlist entry`), so the list can only shrink.

use crate::config::Config;
use crate::diag::Finding;
use crate::lints::{finding_at, Lint};
use crate::source::{SourceFile, Workspace};

/// See module docs.
pub struct UnwrapAudit;

/// Sig-positions of `.unwrap()` / `.expect(` uses outside test code.
fn live_uses(file: &SourceFile) -> Vec<usize> {
    let mut out = Vec::new();
    for p in 0..file.sig.len() {
        let hit = file.sig_matches(p, &[".", "unwrap", "(", ")"])
            || file.sig_matches(p, &[".", "expect", "("]);
        if !hit {
            continue;
        }
        if let Some(ti) = file.sig_tok(p + 1) {
            if !file.in_test_code(ti) {
                out.push(p);
            }
        }
    }
    out
}

impl Lint for UnwrapAudit {
    fn name(&self) -> &'static str {
        "unwrap-audit"
    }

    fn check(&self, ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
        let mut seen: Vec<&str> = Vec::new();
        for file in &ws.lib_files {
            let uses = live_uses(file);
            let allowed = cfg.unwrap_allow.iter().any(|(p, _)| p == &file.rel);
            if allowed {
                if !uses.is_empty() {
                    seen.push(&file.rel);
                }
                continue;
            }
            for p in uses {
                if let Some(ti) = file.sig_tok(p + 1) {
                    out.push(finding_at(
                        self.name(),
                        file,
                        ti,
                        "`.unwrap()`/`.expect(` outside the audited allowlist (handle \
                         the error, or audit the file and add an allowlist entry with \
                         the reason)",
                    ));
                }
            }
        }
        // Freshness: every allowlist entry must still point at a scanned
        // file with at least one live use.
        for (path, reason) in &cfg.unwrap_allow {
            let exists = ws.lib_files.iter().any(|f| &f.rel == path);
            if !exists {
                out.push(Finding::new(
                    self.name(),
                    path,
                    1,
                    1,
                    format!("stale allowlist entry: file not under the lint ({reason})"),
                ));
            } else if !seen.contains(&path.as_str()) {
                out.push(Finding::new(
                    self.name(),
                    path,
                    1,
                    1,
                    "stale allowlist entry: no unwrap/expect left; remove it",
                ));
            }
        }
    }
}
