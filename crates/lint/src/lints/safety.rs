//! `unsafe-safety-comment`: every `unsafe` keyword must carry a
//! `// SAFETY:` comment (or a `# Safety` doc heading, for `unsafe fn`
//! declarations) on the same line or within the lookback window above.
//!
//! Token-aware re-implementation of PR 4's rule 1: an `unsafe` inside a
//! string literal or a comment is no longer flagged, and a `SAFETY:`
//! that only appears inside a string no longer satisfies the rule —
//! only real comment tokens count.

use crate::config::Config;
use crate::diag::Finding;
use crate::lints::{finding_at, Lint};
use crate::source::Workspace;

/// See module docs.
pub struct UnsafeSafetyComment;

impl Lint for UnsafeSafetyComment {
    fn name(&self) -> &'static str {
        "unsafe-safety-comment"
    }

    fn check(&self, ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
        for file in &ws.lib_files {
            for &ti in &file.sig {
                if file.tok_text(ti) != "unsafe" || file.in_test_code(ti) {
                    continue;
                }
                let (line, _) = file.tok_line_col(ti);
                if !file.annotated(line, cfg.lookback, &["SAFETY:", "# Safety"]) {
                    out.push(finding_at(
                        self.name(),
                        file,
                        ti,
                        format!(
                            "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc \
                             section) on the same line or the {} lines above",
                            cfg.lookback
                        ),
                    ));
                }
            }
        }
    }
}
