//! `env-knob-registry`: every `RINGO_*` environment knob read by
//! library code appears in exactly one inventory (the config's
//! [`knob table`](crate::config::Config::knob_inventory), printed by
//! `ringo-lint --knobs`) and in README's knob reference table.
//!
//! Collection is over string-literal *content* in library code (tests
//! and the config file itself excluded): any word-bounded
//! `RINGO_<NAME>` occurrence counts as a knob reference, which covers
//! direct `std::env::var("RINGO_X")` reads as well as knob names routed
//! through helpers (`env_knob("RINGO_BFS_ALPHA", …)`) and knob names
//! printed in replay hints (`"replay with: RINGO_CHECK_SEED=…"`). An
//! all-underscore tail (`RINGO________`, binary-magic padding) is not a
//! knob.
//!
//! Three failure modes:
//! * library code references a knob missing from the inventory;
//! * an inventory entry is no longer referenced anywhere (stale —
//!   shrink the inventory);
//! * an inventory entry is missing from README's knob table.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::str_content;
use crate::lints::{finding_at, Lint};
use crate::source::Workspace;

/// See module docs.
pub struct EnvKnobRegistry;

/// Word-bounded `RINGO_[A-Z0-9_]+` occurrences in `content`, excluding
/// all-underscore tails.
pub(crate) fn knob_names(content: &str) -> Vec<String> {
    let bytes = content.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = content[i..].find("RINGO_") {
        let start = i + pos;
        let bounded = start == 0 || {
            let b = bytes[start - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let mut end = start + "RINGO_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let tail = &content[start + "RINGO_".len()..end];
        if bounded && !tail.is_empty() && !tail.bytes().all(|b| b == b'_') {
            out.push(content[start..end].to_owned());
        }
        i = end.max(start + 1);
    }
    out
}

impl Lint for EnvKnobRegistry {
    fn name(&self) -> &'static str {
        "env-knob-registry"
    }

    fn check(&self, ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
        let inventoried = |knob: &str| cfg.knob_inventory.iter().any(|(n, _)| n == knob);
        let mut referenced: Vec<String> = Vec::new();
        for file in &ws.lib_files {
            if cfg.scan_exempt.contains(&file.rel) {
                continue;
            }
            for &ti in &file.sig {
                let t = file.tokens[ti];
                let Some(content) = str_content(t.kind, t.text(&file.text)) else {
                    continue;
                };
                for knob in knob_names(content) {
                    if file.in_test_code(ti) {
                        continue;
                    }
                    if !inventoried(&knob) {
                        out.push(finding_at(
                            self.name(),
                            file,
                            ti,
                            format!(
                                "`{knob}` is not in the knob inventory — add it to \
                                 KNOB_INVENTORY in crates/lint/src/config.rs with a \
                                 description, and to README's knob table"
                            ),
                        ));
                    }
                    referenced.push(knob);
                }
            }
        }
        for (knob, desc) in &cfg.knob_inventory {
            if !referenced.iter().any(|k| k == knob) {
                out.push(Finding::new(
                    self.name(),
                    "crates/lint/src/config.rs",
                    1,
                    1,
                    format!(
                        "stale knob inventory entry `{knob}` ({desc}): no library code \
                         references it any more — remove the entry and the README row"
                    ),
                ));
            } else if !ws.readme.contains(knob.as_str()) {
                out.push(Finding::new(
                    self.name(),
                    "README.md",
                    1,
                    1,
                    format!("knob `{knob}` ({desc}) is missing from README's knob table"),
                ));
            }
        }
    }
}
