//! `hot-alloc`: no per-element allocation idioms inside functions
//! annotated `// LINT: hot`.
//!
//! The annotated kernels (frontier traversal steps, radix digit passes,
//! morsel select) have their total allocation counts pinned by
//! `tests/bfs_alloc.rs` / `tests/select_alloc.rs`; this lint catches
//! the *source* pattern before the test catches the count. Flagged
//! inside a hot body: `Vec::new`, `Box::new`, `format!`, and
//! `.to_string(`. Pre-sized bulk buffers (`vec![0; n]`,
//! `Vec::with_capacity`) stay legal — the tripwire targets the idioms
//! that allocate per element or per call, not the one-time setup a
//! kernel legitimately does.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::lints::{finding_at, Lint};
use crate::source::{SourceFile, Workspace};

/// See module docs.
pub struct HotAlloc;

/// True for a plain `// LINT: hot` annotation comment. Doc comments
/// that merely *mention* the annotation (this module's own docs, the
/// crate-level lint table) are prose, not annotations.
fn is_hot_annotation(kind: TokenKind, text: &str) -> bool {
    matches!(kind, TokenKind::LineComment { doc: false })
        && text
            .strip_prefix("//")
            .is_some_and(|rest| rest.trim().starts_with("LINT: hot"))
}

/// Sig-position of the body `{` for the `fn` at sig-position `fn_p`,
/// plus its matching close — found by brace-depth counting over the
/// significant token stream.
fn body_range(file: &SourceFile, fn_p: usize) -> Option<(usize, usize)> {
    let open = (fn_p..file.sig.len()).find(|&p| file.tok_text(file.sig[p]) == "{")?;
    let mut depth = 0usize;
    for p in open..file.sig.len() {
        match file.tok_text(file.sig[p]) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, p));
                }
            }
            _ => {}
        }
    }
    Some((open, file.sig.len() - 1))
}

const PATTERNS: &[&[&str]] = &[
    &["Vec", "::", "new"],
    &["Box", "::", "new"],
    &["format", "!"],
    &[".", "to_string"],
];

impl Lint for HotAlloc {
    fn name(&self) -> &'static str {
        "hot-alloc"
    }

    fn check(&self, ws: &Workspace, _cfg: &Config, out: &mut Vec<Finding>) {
        for file in &ws.lib_files {
            for (ci, tok) in file.tokens.iter().enumerate() {
                if !is_hot_annotation(tok.kind, tok.text(&file.text)) {
                    continue;
                }
                if file.in_test_code(ci) {
                    continue;
                }
                // The annotated function: first `fn` at or after the
                // comment, at most a few tokens away (visibility,
                // attributes).
                let first_sig = file
                    .sig
                    .partition_point(|&i| file.tokens[i].start < tok.end);
                let fn_p = (first_sig..(first_sig + 16).min(file.sig.len()))
                    .find(|&p| file.tok_text(file.sig[p]) == "fn");
                let Some(fn_p) = fn_p else {
                    out.push(finding_at(
                        self.name(),
                        file,
                        ci,
                        "`// LINT: hot` annotation with no function following it",
                    ));
                    continue;
                };
                let fn_name = file
                    .sig_tok(fn_p + 1)
                    .map(|ti| file.tok_text(ti).to_owned())
                    .unwrap_or_default();
                let Some((open, close)) = body_range(file, fn_p) else {
                    continue;
                };
                for p in open..close {
                    for pat in PATTERNS {
                        if file.sig_matches(p, pat) {
                            let ti = file.sig[p];
                            let idiom: String = pat.join("");
                            out.push(finding_at(
                                self.name(),
                                file,
                                ti,
                                format!(
                                    "`{idiom}` inside `// LINT: hot` function `{fn_name}` \
                                     — hot kernels must not allocate per element; hoist \
                                     the buffer or pre-size it"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}
