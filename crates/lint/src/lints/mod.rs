//! The lint catalog and shared helpers.
//!
//! Each lint is a unit struct implementing [`Lint`]; the driver (and the
//! tier-1 `tests/static_gate.rs`) runs [`run_all`] over a
//! [`Workspace`] with a [`Config`]. Fixture tests run individual lints
//! against synthetic workspaces so each rule is provably live.

use crate::config::Config;
use crate::diag::Finding;
use crate::source::{SourceFile, Workspace};

pub mod dropped_guard;
pub mod env_knob;
pub mod hot_alloc;
pub mod metrics;
pub mod ordering_pair;
pub mod relaxed;
pub mod safety;
pub mod threads;
pub mod unwrap;

/// One static-analysis rule.
pub trait Lint {
    /// Stable kebab-case identifier, used in reports and allowlists.
    fn name(&self) -> &'static str;
    /// Appends findings for the whole workspace.
    fn check(&self, ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>);
}

/// Every lint, in report order.
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(safety::UnsafeSafetyComment),
        Box::new(relaxed::RelaxedOrderingComment),
        Box::new(threads::ThreadConfinement),
        Box::new(unwrap::UnwrapAudit),
        Box::new(dropped_guard::DroppedGuard),
        Box::new(metrics::MetricRegistry),
        Box::new(env_knob::EnvKnobRegistry),
        Box::new(ordering_pair::OrderingPairing),
        Box::new(hot_alloc::HotAlloc),
    ]
}

/// Runs every lint and returns the combined findings.
pub fn run_all(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for lint in all_lints() {
        lint.check(ws, cfg, &mut out);
    }
    out
}

/// The crate a library file belongs to: the directory name under
/// `crates/`, or `ringo` for the facade's own `src/`.
pub(crate) fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("ringo")
}

/// Emits a finding at token `ti` of `file`.
pub(crate) fn finding_at(
    lint: &'static str,
    file: &SourceFile,
    ti: usize,
    message: impl Into<String>,
) -> Finding {
    let (line, col) = file.tok_line_col(ti);
    Finding::new(lint, &file.rel, line, col, message)
}

/// True when `name` is a well-formed dotted metric name: two or more
/// non-empty `[a-z0-9_]` segments joined by single dots.
pub(crate) fn is_dotted_metric(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|s| {
            !s.is_empty()
                && s.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        })
}
