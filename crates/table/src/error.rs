//! Error type for table operations.

/// Errors produced by table construction and operators.
#[derive(Debug)]
pub enum TableError {
    /// A referenced column name does not exist in the schema.
    ColumnNotFound(String),
    /// An operation expected a column of a different type.
    TypeMismatch {
        /// Column whose type did not match.
        column: String,
        /// What the operation expected.
        expected: &'static str,
        /// What the schema actually holds.
        actual: &'static str,
    },
    /// Schemas of two tables are incompatible for the requested operation.
    SchemaMismatch(String),
    /// A value failed to parse during TSV ingestion.
    Parse {
        /// 1-based line number in the input file.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Any other invalid argument (bad `k`, negative threshold, ...).
    InvalidArgument(String),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            Self::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch on column {column:?}: expected {expected}, found {actual}"
            ),
            Self::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            Self::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}
