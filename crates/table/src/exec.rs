//! Plan executor with late materialization.
//!
//! Executes a [`Plan`] by threading a *selection vector* — the surviving
//! row positions of an underlying table — between operators instead of
//! materializing an intermediate table per verb. Select narrows the
//! vector, Project narrows the visible columns, OrderBy permutes the
//! vector; only Join, GroupBy and NextK (whose outputs are genuinely new
//! tables) materialize mid-plan, and the final [`Frame`] is gathered into
//! the output table exactly once, at collect time. This is the
//! late-materialization discipline that makes a column store competitive
//! on chained relational verbs: an N-step select/project chain touches
//! full column data once, not N times.
//!
//! Each executed node records a `plan.<op>` trace span; the single
//! gather records the `table.gather` span, so one `table.gather` per
//! `collect()` is observable in trace output. Morsel-driven operators
//! (select, join, group) dispatch through the `_traced` morsel helpers,
//! so every individual morsel records a `plan.morsel.<op>` span in the
//! executing thread's flight-recorder buffer (nested under the operator
//! span on the dispatching thread, top-level on pool workers). Each
//! [`NodeStat`] additionally carries always-on wall time and the
//! per-worker busy split — the raw material of `QueryBuilder::profile`.

use crate::ops::join::{self, JoinOutCol, JoinSide};
use crate::plan::{Plan, Side};
use crate::{Predicate, Result, Schema, Table, TableError};
use ringo_concurrent::MorselStats;

/// Cardinality record for one executed plan node, in post-order.
#[derive(Clone, Debug)]
pub struct NodeStat {
    /// Short operator name (`scan`, `select`, `join`, ... and the final
    /// `collect`).
    pub op: &'static str,
    /// Rows flowing out of the node.
    pub rows_out: u64,
    /// Morsels dispatched by the node's kernel (0 for nodes that are not
    /// morsel-driven: scan, project, order, nextk, collect).
    pub morsels: u32,
    /// Distinct pool workers that executed at least one morsel (0 when
    /// `morsels` is 0).
    pub workers: u32,
    /// Wall time of the node, nanoseconds (always recorded, even with
    /// tracing disabled — the plan executor times every node inline).
    pub wall_ns: u64,
    /// Busy nanoseconds per executing worker, sorted descending (empty
    /// for nodes that are not morsel-driven). The spread exposes skew.
    pub busy_ns: Vec<u64>,
}

impl NodeStat {
    fn new(op: &'static str, rows_out: u64) -> Self {
        NodeStat {
            op,
            rows_out,
            morsels: 0,
            workers: 0,
            wall_ns: 0,
            busy_ns: Vec::new(),
        }
    }

    fn with_morsels(op: &'static str, rows_out: u64, m: MorselStats) -> Self {
        NodeStat {
            op,
            rows_out,
            morsels: m.morsels,
            workers: m.workers,
            wall_ns: 0,
            busy_ns: m.busy_ns,
        }
    }

    /// Stamps the node's wall time from its start instant.
    fn timed(mut self, started: std::time::Instant) -> Self {
        self.wall_ns = started.elapsed().as_nanos() as u64;
        self
    }
}

/// The result of executing a plan: the output table plus the per-node
/// cardinalities and the number of gather passes (always 0 or 1 per
/// collect; 1 unless the plan's result was already materialized).
#[derive(Debug)]
pub struct Executed {
    /// The materialized output table.
    pub table: Table,
    /// Per-node cardinalities, post-order, ending with `collect`.
    pub stats: Vec<NodeStat>,
    /// How many gather passes ran (0 when the final frame was already an
    /// owned table with no pending selection or projection).
    pub gathers: u32,
}

/// A table the executor flows between nodes: borrowed from the input list
/// or owned mid-plan (join/group/nextk outputs).
enum Rows<'a> {
    Borrowed(&'a Table),
    Owned(Table),
}

impl Rows<'_> {
    fn table(&self) -> &Table {
        match self {
            Rows::Borrowed(t) => t,
            Rows::Owned(t) => t,
        }
    }
}

/// The executor's in-flight state: an underlying table plus a pending
/// selection (surviving row positions, in order; `None` = all rows) and a
/// pending projection (visible column indices; `None` = all columns).
/// Neither pending part touches column data until collect.
struct Frame<'a> {
    rows: Rows<'a>,
    sel: Option<Vec<u32>>,
    proj: Option<Vec<usize>>,
}

impl Frame<'_> {
    fn n_rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.rows.table().n_rows(),
        }
    }

    /// Resolves a *logical* column name (respecting the pending
    /// projection) to an underlying column index. A column projected away
    /// is not found, exactly as on a materialized projection.
    fn col_index(&self, name: &str) -> Result<usize> {
        let t = self.rows.table();
        match &self.proj {
            None => t.schema().index_of(name),
            Some(p) => p
                .iter()
                .copied()
                .find(|&i| t.schema().name(i) == name)
                .ok_or_else(|| TableError::ColumnNotFound(name.to_string())),
        }
    }

    /// The visible column indices, in logical order.
    fn logical_cols(&self) -> Vec<usize> {
        match &self.proj {
            Some(p) => p.clone(),
            None => (0..self.rows.table().n_cols()).collect(),
        }
    }
}

/// Executes `plan` against `tables`, validating it first. Returns the
/// output table along with per-node cardinalities and the gather count.
///
/// Run [`Plan::optimize`] beforehand to get fusion/pushdown/pruning; this
/// function executes whatever tree it is given.
pub fn execute(plan: &Plan, tables: &[&Table]) -> Result<Executed> {
    plan.schema(tables)?;
    let mut stats = Vec::new();
    let frame = run(plan, tables, &mut stats)?;
    let mut gathers = 0u32;
    let started = std::time::Instant::now();
    let table = collect_frame(frame, &mut gathers)?;
    stats.push(NodeStat::new("collect", table.n_rows() as u64).timed(started));
    Ok(Executed {
        table,
        stats,
        gathers,
    })
}

/// Validates that every column the predicate reads is visible in the
/// frame (a projected-away column must error even though it still exists
/// on the underlying table).
fn validate_pred_cols(frame: &Frame<'_>, pred: &Predicate) -> Result<()> {
    for c in pred.columns() {
        frame.col_index(&c)?;
    }
    Ok(())
}

fn run<'a>(plan: &Plan, tables: &[&'a Table], stats: &mut Vec<NodeStat>) -> Result<Frame<'a>> {
    match plan {
        Plan::Scan { table } => {
            let started = std::time::Instant::now();
            let t = tables.get(*table).ok_or_else(|| {
                TableError::InvalidArgument(format!(
                    "plan references table #{table}, only {} bound",
                    tables.len()
                ))
            })?;
            stats.push(NodeStat::new("scan", t.n_rows() as u64).timed(started));
            Ok(Frame {
                rows: Rows::Borrowed(t),
                sel: None,
                proj: None,
            })
        }
        Plan::Select {
            input, predicate, ..
        } => {
            let frame = run(input, tables, stats)?;
            let started = std::time::Instant::now();
            let mut sp = ringo_trace::span!("plan.select");
            sp.rows_in(frame.n_rows());
            validate_pred_cols(&frame, predicate)?;
            let (sel, mstats) = frame
                .rows
                .table()
                .select_sel_stats(predicate, frame.sel.as_deref())?;
            sp.rows_out(sel.len());
            stats.push(NodeStat::with_morsels("select", sel.len() as u64, mstats).timed(started));
            Ok(Frame {
                rows: frame.rows,
                sel: Some(sel),
                proj: frame.proj,
            })
        }
        Plan::Project { input, cols, .. } => {
            let frame = run(input, tables, stats)?;
            let started = std::time::Instant::now();
            let mut sp = ringo_trace::span!("plan.project");
            sp.rows_in(frame.n_rows());
            sp.rows_out(frame.n_rows());
            let proj = cols
                .iter()
                .map(|c| frame.col_index(c))
                .collect::<Result<Vec<usize>>>()?;
            stats.push(NodeStat::new("project", frame.n_rows() as u64).timed(started));
            Ok(Frame {
                rows: frame.rows,
                sel: frame.sel,
                proj: Some(proj),
            })
        }
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
            keep,
        } => {
            let lf = run(left, tables, stats)?;
            let rf = run(right, tables, stats)?;
            let started = std::time::Instant::now();
            let mut sp = ringo_trace::span!("plan.join");
            sp.rows_in(lf.n_rows() + rf.n_rows());
            let lt = lf.rows.table();
            let rt = rf.rows.table();
            let li = lf.col_index(left_col)?;
            let ri = rf.col_index(right_col)?;
            let (lrows, rrows, mstats) =
                join::join_pairs_sel_stats(lt, rt, li, ri, lf.sel.as_deref(), rf.sel.as_deref())?;
            let out_cols: Vec<JoinOutCol> = match keep {
                Some(kept) => kept
                    .iter()
                    .map(|kc| {
                        let (frame, side) = match kc.side {
                            Side::Left => (&lf, JoinSide::Left),
                            Side::Right => (&rf, JoinSide::Right),
                        };
                        Ok(JoinOutCol {
                            side,
                            col: frame.col_index(&kc.src)?,
                            name: kc.name.clone(),
                        })
                    })
                    .collect::<Result<_>>()?,
                None => {
                    // Full logical width: simulate the clash suffixing
                    // over both frames' visible columns.
                    let mut sim = Schema::default();
                    let mut out = Vec::new();
                    for &i in &lf.logical_cols() {
                        let name = sim.push_unique(lt.schema().name(i), lt.schema().column_type(i));
                        out.push(JoinOutCol {
                            side: JoinSide::Left,
                            col: i,
                            name,
                        });
                    }
                    for &i in &rf.logical_cols() {
                        let name = sim.push_unique(rt.schema().name(i), rt.schema().column_type(i));
                        out.push(JoinOutCol {
                            side: JoinSide::Right,
                            col: i,
                            name,
                        });
                    }
                    out
                }
            };
            let out = join::materialize_join_cols(lt, rt, &lrows, &rrows, &out_cols)?;
            sp.rows_out(out.n_rows());
            stats.push(NodeStat::with_morsels("join", out.n_rows() as u64, mstats).timed(started));
            Ok(Frame {
                rows: Rows::Owned(out),
                sel: None,
                proj: None,
            })
        }
        Plan::GroupBy {
            input,
            group_cols,
            agg_col,
            op,
            out_name,
        } => {
            let frame = run(input, tables, stats)?;
            let started = std::time::Instant::now();
            let mut sp = ringo_trace::span!("plan.group");
            sp.rows_in(frame.n_rows());
            for c in group_cols {
                frame.col_index(c)?;
            }
            if let Some(a) = agg_col {
                frame.col_index(a)?;
            }
            let gcols: Vec<&str> = group_cols.iter().map(String::as_str).collect();
            let (out, mstats) = frame.rows.table().group_by_sel(
                &gcols,
                agg_col.as_deref(),
                *op,
                out_name,
                frame.sel.as_deref(),
            )?;
            sp.rows_out(out.n_rows());
            stats.push(NodeStat::with_morsels("group", out.n_rows() as u64, mstats).timed(started));
            Ok(Frame {
                rows: Rows::Owned(out),
                sel: None,
                proj: None,
            })
        }
        Plan::OrderBy {
            input,
            cols,
            ascending,
        } => {
            let frame = run(input, tables, stats)?;
            let started = std::time::Instant::now();
            let mut sp = ringo_trace::span!("plan.order");
            sp.rows_in(frame.n_rows());
            sp.rows_out(frame.n_rows());
            for c in cols {
                frame.col_index(c)?;
            }
            let scols: Vec<&str> = cols.iter().map(String::as_str).collect();
            let sel =
                frame
                    .rows
                    .table()
                    .order_perm_sel(&scols, *ascending, frame.sel.as_deref())?;
            stats.push(NodeStat::new("order", sel.len() as u64).timed(started));
            Ok(Frame {
                rows: frame.rows,
                sel: Some(sel),
                proj: frame.proj,
            })
        }
        Plan::NextK {
            input,
            group_col,
            order_col,
            k,
        } => {
            let frame = run(input, tables, stats)?;
            let started = std::time::Instant::now();
            let mut sp = ringo_trace::span!("plan.nextk");
            sp.rows_in(frame.n_rows());
            if let Some(g) = group_col {
                frame.col_index(g)?;
            }
            frame.col_index(order_col)?;
            let t = frame.rows.table();
            let (lrows, rrows) =
                t.next_k_pairs_sel(group_col.as_deref(), order_col, *k, frame.sel.as_deref())?;
            // Self-join layout over the frame's visible columns.
            let mut sim = Schema::default();
            let mut out_cols = Vec::new();
            for side in [JoinSide::Left, JoinSide::Right] {
                for &i in &frame.logical_cols() {
                    let name = sim.push_unique(t.schema().name(i), t.schema().column_type(i));
                    out_cols.push(JoinOutCol { side, col: i, name });
                }
            }
            let out = join::materialize_join_cols(t, t, &lrows, &rrows, &out_cols)?;
            sp.rows_out(out.n_rows());
            stats.push(NodeStat::new("nextk", out.n_rows() as u64).timed(started));
            Ok(Frame {
                rows: Rows::Owned(out),
                sel: None,
                proj: None,
            })
        }
    }
}

/// Materializes the final frame: the single gather pass of the whole
/// plan. A frame with no pending selection or projection passes through
/// (owned tables move, borrowed tables clone — both without a per-row
/// gather).
fn collect_frame(frame: Frame<'_>, gathers: &mut u32) -> Result<Table> {
    let Frame { rows, sel, proj } = frame;
    if sel.is_none() && proj.is_none() {
        return Ok(match rows {
            Rows::Owned(t) => t,
            Rows::Borrowed(t) => t.clone(),
        });
    }
    let t = rows.table();
    let mut sp = ringo_trace::span!("table.gather");
    sp.rows_in(t.n_rows());
    *gathers += 1;
    let cols_idx = match &proj {
        Some(p) => p.clone(),
        None => (0..t.n_cols()).collect(),
    };
    let schema = Schema::new(
        cols_idx
            .iter()
            .map(|&i| (t.schema().name(i).to_string(), t.schema().column_type(i))),
    );
    let (cols, row_ids) = match &sel {
        Some(s) => (
            cols_idx
                .iter()
                .map(|&i| t.column(i).gather_sel(s))
                .collect(),
            s.iter().map(|&r| t.row_ids()[r as usize]).collect(),
        ),
        None => (
            cols_idx.iter().map(|&i| t.column(i).clone()).collect(),
            t.row_ids().to_vec(),
        ),
    };
    let out = Table {
        schema,
        cols,
        row_ids,
        next_row_id: t.next_row_id,
        pool: t.pool().clone(),
        threads: t.threads(),
    };
    sp.rows_out(out.n_rows());
    Ok(out)
}
