//! Physical column storage: one contiguous vector per column.

use crate::ColumnType;

/// The physical data of one column. String columns hold symbols into the
/// owning table's [`crate::StringPool`].
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// 64-bit signed integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Interned string symbols.
    Str(Vec<u32>),
}

impl ColumnData {
    /// Creates an empty column of the given type.
    pub fn new(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => Self::Int(Vec::new()),
            ColumnType::Float => Self::Float(Vec::new()),
            ColumnType::Str => Self::Str(Vec::new()),
        }
    }

    /// Creates an empty column with pre-reserved capacity.
    pub fn with_capacity(ty: ColumnType, cap: usize) -> Self {
        match ty {
            ColumnType::Int => Self::Int(Vec::with_capacity(cap)),
            ColumnType::Float => Self::Float(Vec::with_capacity(cap)),
            ColumnType::Str => Self::Str(Vec::with_capacity(cap)),
        }
    }

    /// The column's logical type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Self::Int(_) => ColumnType::Int,
            Self::Float(_) => ColumnType::Float,
            Self::Str(_) => ColumnType::Str,
        }
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        match self {
            Self::Int(v) => v.len(),
            Self::Float(v) => v.len(),
            Self::Str(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn mem_size(&self) -> usize {
        match self {
            Self::Int(v) => v.capacity() * 8,
            Self::Float(v) => v.capacity() * 8,
            Self::Str(v) => v.capacity() * 4,
        }
    }

    /// Borrows the integer data.
    ///
    /// # Panics
    /// Panics if the column is not an integer column; type checks happen at
    /// operator entry, so this indicates an internal bug.
    pub fn as_int(&self) -> &[i64] {
        match self {
            Self::Int(v) => v,
            _ => panic!("column is not Int"),
        }
    }

    /// Borrows the float data (panics on type mismatch, see
    /// [`ColumnData::as_int`]).
    pub fn as_float(&self) -> &[f64] {
        match self {
            Self::Float(v) => v,
            _ => panic!("column is not Float"),
        }
    }

    /// Borrows the string-symbol data (panics on type mismatch, see
    /// [`ColumnData::as_int`]).
    pub fn as_str_syms(&self) -> &[u32] {
        match self {
            Self::Str(v) => v,
            _ => panic!("column is not Str"),
        }
    }

    /// Keeps only the rows at `keep` (ascending indices), in order.
    pub fn gather(&self, keep: &[usize]) -> Self {
        match self {
            Self::Int(v) => Self::Int(keep.iter().map(|&i| v[i]).collect()),
            Self::Float(v) => Self::Float(keep.iter().map(|&i| v[i]).collect()),
            Self::Str(v) => Self::Str(keep.iter().map(|&i| v[i]).collect()),
        }
    }

    /// [`ColumnData::gather`] over a `u32` selection vector — the form the
    /// lazy executor threads between operators.
    pub fn gather_sel(&self, keep: &[u32]) -> Self {
        match self {
            Self::Int(v) => Self::Int(keep.iter().map(|&i| v[i as usize]).collect()),
            Self::Float(v) => Self::Float(keep.iter().map(|&i| v[i as usize]).collect()),
            Self::Str(v) => Self::Str(keep.iter().map(|&i| v[i as usize]).collect()),
        }
    }

    /// Appends row `i` of `src` to this column. Both columns must share a
    /// type; string symbols are copied verbatim (caller aligns pools).
    pub fn push_from(&mut self, src: &ColumnData, i: usize) {
        match (self, src) {
            (Self::Int(dst), Self::Int(s)) => dst.push(s[i]),
            (Self::Float(dst), Self::Float(s)) => dst.push(s[i]),
            (Self::Str(dst), Self::Str(s)) => dst.push(s[i]),
            _ => panic!("push_from across column types"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_type() {
        for ty in [ColumnType::Int, ColumnType::Float, ColumnType::Str] {
            let c = ColumnData::new(ty);
            assert_eq!(c.column_type(), ty);
            assert!(c.is_empty());
        }
    }

    #[test]
    fn gather_preserves_order() {
        let c = ColumnData::Int(vec![10, 20, 30, 40]);
        let g = c.gather(&[3, 0, 2]);
        assert_eq!(g.as_int(), &[40, 10, 30]);
    }

    #[test]
    fn push_from_copies_value() {
        let src = ColumnData::Float(vec![1.5, 2.5]);
        let mut dst = ColumnData::new(ColumnType::Float);
        dst.push_from(&src, 1);
        assert_eq!(dst.as_float(), &[2.5]);
    }

    #[test]
    #[should_panic(expected = "column is not Int")]
    fn typed_borrow_panics_on_mismatch() {
        ColumnData::Float(vec![]).as_int();
    }
}
