//! The core [`Table`] object.

use crate::{ColumnData, ColumnType, Result, Schema, StringPool, TableError};

/// A single cell value, used at the row-at-a-time API boundary. Bulk
/// operators work directly on columns and never materialize `Value`s.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Integer cell.
    Int(i64),
    /// Float cell.
    Float(f64),
    /// String cell.
    Str(String),
}

impl Value {
    /// The value's column type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Self::Int(_) => ColumnType::Int,
            Self::Float(_) => ColumnType::Float,
            Self::Str(_) => ColumnType::Str,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}

/// A column-store relational table with persistent row identifiers.
///
/// See the crate docs for the design rationale. Rows are addressed by
/// *position* (`0..n_rows()`); every row additionally carries a stable
/// *row id* that survives selection, ordering and grouping, so results can
/// be traced back to original records after "a complex set of operations"
/// (paper §2.3).
///
/// ```
/// use ringo_table::{Cmp, ColumnType, Predicate, Schema, Table, Value};
///
/// let schema = Schema::new([("user", ColumnType::Int), ("lang", ColumnType::Str)]);
/// let mut t = Table::new(schema);
/// t.push_row(&[Value::Int(1), "java".into()]).unwrap();
/// t.push_row(&[Value::Int(2), "rust".into()]).unwrap();
/// t.push_row(&[Value::Int(3), "java".into()]).unwrap();
///
/// let java = t.select(&Predicate::str_eq("lang", "java")).unwrap();
/// assert_eq!(java.n_rows(), 2);
/// assert_eq!(java.row_ids(), &[0, 2]); // ids trace back to the source
///
/// let heavy = t.select(&Predicate::int("user", Cmp::Ge, 2)).unwrap();
/// let both = java.intersect(&heavy).unwrap();
/// assert_eq!(both.int_col("user").unwrap(), &[3]);
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    pub(crate) schema: Schema,
    pub(crate) cols: Vec<ColumnData>,
    pub(crate) row_ids: Vec<u64>,
    pub(crate) next_row_id: u64,
    pub(crate) pool: StringPool,
    pub(crate) threads: usize,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let cols = schema.iter().map(|(_, ty)| ColumnData::new(ty)).collect();
        Self {
            schema,
            cols,
            row_ids: Vec::new(),
            next_row_id: 0,
            pool: StringPool::new(),
            threads: ringo_concurrent::num_threads(),
        }
    }

    /// Builds a table directly from raw column data (fresh row ids are
    /// assigned). String columns must hold symbols valid in `pool`.
    pub fn from_parts(schema: Schema, cols: Vec<ColumnData>, pool: StringPool) -> Result<Self> {
        if schema.len() != cols.len() {
            return Err(TableError::SchemaMismatch(format!(
                "{} columns declared, {} provided",
                schema.len(),
                cols.len()
            )));
        }
        let n_rows = cols.first().map_or(0, ColumnData::len);
        for (i, col) in cols.iter().enumerate() {
            if col.column_type() != schema.column_type(i) {
                return Err(TableError::TypeMismatch {
                    column: schema.name(i).to_string(),
                    expected: schema.column_type(i).name(),
                    actual: col.column_type().name(),
                });
            }
            if col.len() != n_rows {
                return Err(TableError::SchemaMismatch(format!(
                    "column {:?} has {} rows, expected {}",
                    schema.name(i),
                    col.len(),
                    n_rows
                )));
            }
        }
        Ok(Self {
            schema,
            cols,
            row_ids: (0..n_rows as u64).collect(),
            next_row_id: n_rows as u64,
            pool,
            threads: ringo_concurrent::num_threads(),
        })
    }

    /// Convenience constructor: a single-column integer table, as used by
    /// the paper's join benchmark ("the input table is joined with a
    /// second, single column table").
    pub fn from_int_column(name: &str, data: Vec<i64>) -> Self {
        let schema = Schema::new([(name, ColumnType::Int)]);
        Self::from_parts(schema, vec![ColumnData::Int(data)], StringPool::new())
            .expect("single int column is always consistent")
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.row_ids.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.row_ids.is_empty()
    }

    /// Worker threads used by parallel operators on this table.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the worker-thread count used by parallel operators (tables
    /// produced by operators inherit it).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Persistent id of the row at position `row`.
    pub fn row_id(&self, row: usize) -> u64 {
        self.row_ids[row]
    }

    /// All row ids in positional order.
    pub fn row_ids(&self) -> &[u64] {
        &self.row_ids
    }

    /// Appends a row of values matching the schema; returns its row id.
    pub fn push_row(&mut self, values: &[Value]) -> Result<u64> {
        if values.len() != self.schema.len() {
            return Err(TableError::SchemaMismatch(format!(
                "row has {} values, schema has {} columns",
                values.len(),
                self.schema.len()
            )));
        }
        for (i, v) in values.iter().enumerate() {
            if v.column_type() != self.schema.column_type(i) {
                return Err(TableError::TypeMismatch {
                    column: self.schema.name(i).to_string(),
                    expected: self.schema.column_type(i).name(),
                    actual: v.column_type().name(),
                });
            }
        }
        for (col, v) in self.cols.iter_mut().zip(values) {
            match (col, v) {
                (ColumnData::Int(c), Value::Int(x)) => c.push(*x),
                (ColumnData::Float(c), Value::Float(x)) => c.push(*x),
                (ColumnData::Str(c), Value::Str(s)) => c.push(self.pool.intern(s)),
                _ => unreachable!("types validated above"),
            }
        }
        let id = self.next_row_id;
        self.row_ids.push(id);
        self.next_row_id += 1;
        Ok(id)
    }

    /// Reads the cell at (`row`, column `name`).
    pub fn get(&self, row: usize, name: &str) -> Result<Value> {
        let c = self.schema.index_of(name)?;
        Ok(match &self.cols[c] {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Str(v) => Value::Str(self.pool.get(v[row]).to_string()),
        })
    }

    /// Borrows an integer column by name.
    pub fn int_col(&self, name: &str) -> Result<&[i64]> {
        let i = self.schema.index_of(name)?;
        match &self.cols[i] {
            ColumnData::Int(v) => Ok(v),
            other => Err(TableError::TypeMismatch {
                column: name.to_string(),
                expected: "int",
                actual: other.column_type().name(),
            }),
        }
    }

    /// Borrows a float column by name.
    pub fn float_col(&self, name: &str) -> Result<&[f64]> {
        let i = self.schema.index_of(name)?;
        match &self.cols[i] {
            ColumnData::Float(v) => Ok(v),
            other => Err(TableError::TypeMismatch {
                column: name.to_string(),
                expected: "float",
                actual: other.column_type().name(),
            }),
        }
    }

    /// Borrows a string column as pool symbols (resolve with
    /// [`Table::str_value`]).
    pub fn str_sym_col(&self, name: &str) -> Result<&[u32]> {
        let i = self.schema.index_of(name)?;
        match &self.cols[i] {
            ColumnData::Str(v) => Ok(v),
            other => Err(TableError::TypeMismatch {
                column: name.to_string(),
                expected: "str",
                actual: other.column_type().name(),
            }),
        }
    }

    /// Resolves a string symbol from this table's pool.
    pub fn str_value(&self, sym: u32) -> &str {
        self.pool.get(sym)
    }

    /// The table's string pool.
    pub fn pool(&self) -> &StringPool {
        &self.pool
    }

    /// Interns `s` into this table's pool (for building columns in bulk).
    pub fn intern(&mut self, s: &str) -> u32 {
        self.pool.intern(s)
    }

    /// Physical column data by index (bulk access for converters).
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.cols[i]
    }

    /// Renames a column.
    pub fn rename_column(&mut self, old: &str, new: &str) -> Result<()> {
        self.schema.rename(old, new)
    }

    /// Approximate heap footprint in bytes: all column vectors, row ids,
    /// and the string pool. This is the paper's Table 2 "In-memory Table
    /// Size".
    pub fn mem_size(&self) -> usize {
        let cols: usize = self.cols.iter().map(ColumnData::mem_size).sum();
        cols + self.row_ids.capacity() * 8 + self.pool.mem_size()
    }

    /// An empty table with the same schema, pool, and thread setting —
    /// symbols remain valid across the copy, which operator
    /// implementations rely on.
    pub(crate) fn empty_like(&self) -> Self {
        Self {
            schema: self.schema.clone(),
            cols: self
                .schema
                .iter()
                .map(|(_, ty)| ColumnData::new(ty))
                .collect(),
            row_ids: Vec::new(),
            next_row_id: 0,
            pool: self.pool.clone(),
            threads: self.threads,
        }
    }

    /// Keeps only the row positions in `keep` (any order), rebuilding all
    /// columns; row ids are carried over. Shared kernel of selection,
    /// ordering and set operations.
    pub(crate) fn gather_rows(&self, keep: &[usize]) -> Self {
        let mut out = self.empty_like();
        out.cols = self.cols.iter().map(|c| c.gather(keep)).collect();
        out.row_ids = keep.iter().map(|&i| self.row_ids[i]).collect();
        out.next_row_id = self.next_row_id;
        out
    }

    /// [`Table::gather_rows`] over a `u32` selection vector (the executor's
    /// native currency; also the eager `select` materialization step).
    pub(crate) fn gather_rows_sel(&self, keep: &[u32]) -> Self {
        let mut out = self.empty_like();
        out.cols = self.cols.iter().map(|c| c.gather_sel(keep)).collect();
        out.row_ids = keep.iter().map(|&i| self.row_ids[i as usize]).collect();
        out.next_row_id = self.next_row_id;
        out
    }

    /// In-place variant of [`Table::gather_rows_sel`].
    pub(crate) fn retain_rows_sel(&mut self, keep: &[u32]) {
        self.cols = self.cols.iter().map(|c| c.gather_sel(keep)).collect();
        self.row_ids = keep.iter().map(|&i| self.row_ids[i as usize]).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let schema = Schema::new([
            ("name", ColumnType::Str),
            ("age", ColumnType::Int),
            ("score", ColumnType::Float),
        ]);
        let mut t = Table::new(schema);
        t.push_row(&["ada".into(), 36i64.into(), 9.5.into()])
            .unwrap();
        t.push_row(&["bob".into(), 25i64.into(), 7.25.into()])
            .unwrap();
        t.push_row(&["cyd".into(), 31i64.into(), 8.0.into()])
            .unwrap();
        t
    }

    #[test]
    fn push_and_get_roundtrip() {
        let t = people();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.get(0, "name").unwrap(), Value::Str("ada".into()));
        assert_eq!(t.get(1, "age").unwrap(), Value::Int(25));
        assert_eq!(t.get(2, "score").unwrap(), Value::Float(8.0));
    }

    #[test]
    fn row_ids_are_stable_and_sequential() {
        let t = people();
        assert_eq!(t.row_ids(), &[0, 1, 2]);
        let filtered = t.gather_rows(&[2, 0]);
        assert_eq!(filtered.row_ids(), &[2, 0], "ids survive reordering");
    }

    #[test]
    fn push_row_validates_arity_and_types() {
        let mut t = people();
        assert!(t.push_row(&[Value::Int(1)]).is_err());
        assert!(t
            .push_row(&[Value::Int(1), Value::Int(2), Value::Float(3.0)])
            .is_err());
    }

    #[test]
    fn typed_column_accessors() {
        let t = people();
        assert_eq!(t.int_col("age").unwrap(), &[36, 25, 31]);
        assert_eq!(t.float_col("score").unwrap(), &[9.5, 7.25, 8.0]);
        assert!(t.int_col("score").is_err());
        assert!(t.int_col("missing").is_err());
        let syms = t.str_sym_col("name").unwrap();
        assert_eq!(t.str_value(syms[1]), "bob");
    }

    #[test]
    fn from_parts_validates() {
        let schema = Schema::new([("a", ColumnType::Int), ("b", ColumnType::Float)]);
        let ok = Table::from_parts(
            schema.clone(),
            vec![
                ColumnData::Int(vec![1, 2]),
                ColumnData::Float(vec![0.5, 1.5]),
            ],
            StringPool::new(),
        );
        assert_eq!(ok.unwrap().n_rows(), 2);

        let wrong_len = Table::from_parts(
            schema.clone(),
            vec![ColumnData::Int(vec![1]), ColumnData::Float(vec![0.5, 1.5])],
            StringPool::new(),
        );
        assert!(wrong_len.is_err());

        let wrong_type = Table::from_parts(
            schema,
            vec![ColumnData::Int(vec![1]), ColumnData::Int(vec![2])],
            StringPool::new(),
        );
        assert!(wrong_type.is_err());
    }

    #[test]
    fn from_int_column_shortcut() {
        let t = Table::from_int_column("k", vec![5, 6, 7]);
        assert_eq!(t.int_col("k").unwrap(), &[5, 6, 7]);
        assert_eq!(t.n_rows(), 3);
    }

    #[test]
    fn mem_size_positive_and_grows() {
        let t = people();
        let base = t.mem_size();
        let mut bigger = t.clone();
        for _ in 0..100 {
            bigger
                .push_row(&["x".into(), 1i64.into(), 0.0.into()])
                .unwrap();
        }
        assert!(bigger.mem_size() > base);
    }
}
