//! Logical query plans over [`Table`]s.
//!
//! The demo workflow of the paper (§4.1) is a *chain* of relational verbs
//! — Select → Select → Join → GroupBy → ToGraph — and executing each verb
//! eagerly pays one full materialization per step. A [`Plan`] describes
//! the chain as a node tree instead; [`Plan::optimize`] applies a small
//! set of rewrite rules (Select fusion, Select pushdown below Project,
//! column pruning), and [`crate::exec::execute`] runs the optimized tree
//! threading a selection vector between operators so `gather_rows` fires
//! exactly once, at collect time.
//!
//! Schema inference ([`Plan::schema`]) validates a plan against the input
//! tables *before* optimization, so a rewrite can never turn an invalid
//! query into a valid one, and errors match what the eager verb chain
//! would report.

use crate::{AggOp, ColumnType, Predicate, Result, Schema, Table, TableError};

/// Which join input a kept output column is drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The left input of the join.
    Left,
    /// The right input of the join.
    Right,
}

/// One surviving output column of a pruned join: where it comes from and
/// the (already clash-suffixed) name it keeps in the output.
///
/// The optimizer computes these from the *full* child schemas, so pruning
/// the children afterwards cannot change output names: `UserId-1` stays
/// `UserId-1` even when the left side's `UserId` was pruned away.
#[derive(Clone, Debug)]
pub struct JoinKeepCol {
    /// Which input the column is read from.
    pub side: Side,
    /// Column name on that input.
    pub src: String,
    /// Output name (unique across the join's kept columns).
    pub name: String,
}

/// A logical query plan node. Build one with the constructors
/// ([`Plan::scan`], [`Plan::select`], ...) or through the facade's
/// `QueryBuilder`, then [`Plan::optimize`] and hand it to
/// [`crate::exec::execute`].
#[derive(Clone, Debug)]
pub enum Plan {
    /// Reads input table `table` (an index into the executor's table list).
    Scan {
        /// Index into the table list passed alongside the plan.
        table: usize,
    },
    /// Filters rows by a predicate.
    Select {
        /// Input node.
        input: Box<Plan>,
        /// Row predicate.
        predicate: Predicate,
        /// How many source `Select`s were fused into this one (≥ 1).
        fused: u32,
        /// True when the optimizer pushed this select below a `Project`.
        pushed: bool,
    },
    /// Keeps the named columns, in order.
    Project {
        /// Input node.
        input: Box<Plan>,
        /// Output column names.
        cols: Vec<String>,
        /// True when the optimizer inserted this node to prune columns.
        pruned: bool,
    },
    /// Equi hash join of two inputs.
    Join {
        /// Left input node.
        left: Box<Plan>,
        /// Right input node.
        right: Box<Plan>,
        /// Key column on the left input.
        left_col: String,
        /// Key column on the right input.
        right_col: String,
        /// `None` = emit the full clash-suffixed width; `Some` = only
        /// these columns survive (set by the column-pruning rule).
        keep: Option<Vec<JoinKeepCol>>,
    },
    /// Group & aggregate.
    GroupBy {
        /// Input node.
        input: Box<Plan>,
        /// Grouping columns.
        group_cols: Vec<String>,
        /// Aggregate source column (`None` only for [`AggOp::Count`]).
        agg_col: Option<String>,
        /// Aggregate function.
        op: AggOp,
        /// Name of the aggregate output column.
        out_name: String,
    },
    /// Multi-column sort.
    OrderBy {
        /// Input node.
        input: Box<Plan>,
        /// Sort columns (ties broken by the next column).
        cols: Vec<String>,
        /// Ascending (`true`) or descending.
        ascending: bool,
    },
    /// Predecessor–successor join ([`Table::next_k`]).
    NextK {
        /// Input node.
        input: Box<Plan>,
        /// Optional grouping column.
        group_col: Option<String>,
        /// Ordering column.
        order_col: String,
        /// Number of successors per row.
        k: usize,
    },
}

impl Plan {
    /// A scan of input table `table`.
    pub fn scan(table: usize) -> Self {
        Self::Scan { table }
    }

    /// Filters `input` by `predicate`.
    pub fn select(input: Plan, predicate: Predicate) -> Self {
        Self::Select {
            input: Box::new(input),
            predicate,
            fused: 1,
            pushed: false,
        }
    }

    /// Projects `input` onto `cols`.
    pub fn project(input: Plan, cols: Vec<String>) -> Self {
        Self::Project {
            input: Box::new(input),
            cols,
            pruned: false,
        }
    }

    /// Joins `left` and `right` on `left_col == right_col`.
    pub fn join(left: Plan, right: Plan, left_col: &str, right_col: &str) -> Self {
        Self::Join {
            left: Box::new(left),
            right: Box::new(right),
            left_col: left_col.to_string(),
            right_col: right_col.to_string(),
            keep: None,
        }
    }

    /// Groups `input` by `group_cols`, aggregating `agg_col` with `op`.
    pub fn group_by(
        input: Plan,
        group_cols: Vec<String>,
        agg_col: Option<String>,
        op: AggOp,
        out_name: &str,
    ) -> Self {
        Self::GroupBy {
            input: Box::new(input),
            group_cols,
            agg_col,
            op,
            out_name: out_name.to_string(),
        }
    }

    /// Sorts `input` by `cols`.
    pub fn order_by(input: Plan, cols: Vec<String>, ascending: bool) -> Self {
        Self::OrderBy {
            input: Box::new(input),
            cols,
            ascending,
        }
    }

    /// Joins each row of `input` to its next `k` successors.
    pub fn next_k(input: Plan, group_col: Option<String>, order_col: &str, k: usize) -> Self {
        Self::NextK {
            input: Box::new(input),
            group_col,
            order_col: order_col.to_string(),
            k,
        }
    }

    /// Infers the output schema of this plan against `tables`, validating
    /// every column reference and type along the way. The rules replicate
    /// the eager verbs exactly (including join/group clash suffixing), so
    /// a plan validates if and only if the equivalent verb chain runs.
    pub fn schema(&self, tables: &[&Table]) -> Result<Schema> {
        match self {
            Self::Scan { table } => match tables.get(*table) {
                Some(t) => Ok(t.schema().clone()),
                None => Err(TableError::InvalidArgument(format!(
                    "plan references table #{table}, only {} bound",
                    tables.len()
                ))),
            },
            Self::Select {
                input, predicate, ..
            } => {
                let s = input.schema(tables)?;
                validate_predicate(&s, predicate)?;
                Ok(s)
            }
            Self::Project { input, cols, .. } => {
                let s = input.schema(tables)?;
                let mut out = Vec::with_capacity(cols.len());
                for c in cols {
                    let i = s.index_of(c)?;
                    if out.iter().any(|(n, _)| n == c) {
                        return Err(TableError::InvalidArgument(format!(
                            "duplicate column {c:?} in projection"
                        )));
                    }
                    out.push((c.clone(), s.column_type(i)));
                }
                Ok(Schema::new(out))
            }
            Self::Join {
                left,
                right,
                left_col,
                right_col,
                keep,
            } => {
                let ls = left.schema(tables)?;
                let rs = right.schema(tables)?;
                let li = ls.index_of(left_col)?;
                let ri = rs.index_of(right_col)?;
                let (lt, rt) = (ls.column_type(li), rs.column_type(ri));
                if lt != rt {
                    return Err(TableError::TypeMismatch {
                        column: right_col.clone(),
                        expected: lt.name(),
                        actual: rt.name(),
                    });
                }
                if lt == ColumnType::Float {
                    return Err(TableError::InvalidArgument(
                        "join keys must be int or str columns (use sim_join for floats)".into(),
                    ));
                }
                match keep {
                    None => {
                        let mut out = Schema::default();
                        for (name, ty) in ls.iter().chain(rs.iter()) {
                            out.push_unique(name, ty);
                        }
                        Ok(out)
                    }
                    Some(cols) => {
                        let mut out = Schema::default();
                        for kc in cols {
                            let side = match kc.side {
                                Side::Left => &ls,
                                Side::Right => &rs,
                            };
                            let i = side.index_of(&kc.src)?;
                            out.push_unique(&kc.name, side.column_type(i));
                        }
                        Ok(out)
                    }
                }
            }
            Self::GroupBy {
                input,
                group_cols,
                agg_col,
                op,
                out_name,
            } => {
                let s = input.schema(tables)?;
                let mut out = Schema::default();
                for c in group_cols {
                    let i = s.index_of(c)?;
                    out.push_unique(c, s.column_type(i));
                }
                let agg_ty = match (agg_col, op) {
                    (None, AggOp::Count) => None,
                    (None, _) => {
                        return Err(TableError::InvalidArgument(
                            "aggregate column required for non-count aggregates".into(),
                        ))
                    }
                    (Some(name), _) => {
                        let i = s.index_of(name)?;
                        match s.column_type(i) {
                            ColumnType::Str => {
                                return Err(TableError::TypeMismatch {
                                    column: name.clone(),
                                    expected: "int or float",
                                    actual: "str",
                                })
                            }
                            ty => Some(ty),
                        }
                    }
                };
                let float_result = !matches!(op, AggOp::Count)
                    && (matches!(op, AggOp::Mean | AggOp::Var | AggOp::Std)
                        || agg_ty == Some(ColumnType::Float));
                out.push_unique(
                    out_name,
                    if float_result {
                        ColumnType::Float
                    } else {
                        ColumnType::Int
                    },
                );
                Ok(out)
            }
            Self::OrderBy { input, cols, .. } => {
                let s = input.schema(tables)?;
                for c in cols {
                    s.index_of(c)?;
                }
                Ok(s)
            }
            Self::NextK {
                input,
                group_col,
                order_col,
                k,
            } => {
                if *k == 0 {
                    return Err(TableError::InvalidArgument("next_k requires k >= 1".into()));
                }
                let s = input.schema(tables)?;
                if let Some(g) = group_col {
                    s.index_of(g)?;
                }
                s.index_of(order_col)?;
                // Self-join layout: all columns, then suffixed copies.
                let mut out = Schema::default();
                for (name, ty) in s.iter().chain(s.iter()) {
                    out.push_unique(name, ty);
                }
                Ok(out)
            }
        }
    }

    /// Rewrites the plan with the rule-based optimizer, to fixpoint:
    ///
    /// 1. **Select fusion** — `Select(Select(x, p1), p2)` becomes
    ///    `Select(x, p1 AND p2)`: one evaluation pass instead of two.
    /// 2. **Select pushdown** — `Select(Project(x, cols), p)` becomes
    ///    `Project(Select(x, p), cols)`: filter before narrowing (valid
    ///    because `p` only reads columns the project keeps).
    /// 3. **Column pruning** — columns not needed by downstream
    ///    predicates, join/group/sort keys, or the final projection are
    ///    dropped at the lowest point possible: joins record a
    ///    [`JoinKeepCol`] subset and scans get a synthetic
    ///    `Project (pruned)` on top.
    ///
    /// The plan must already validate against `tables` (call
    /// [`Plan::schema`] first); rules preserve both the output schema and
    /// row-level semantics, including row ids.
    pub fn optimize(self, tables: &[&Table]) -> Result<Plan> {
        let mut p = self;
        // Fusion/pushdown shrink the tree or move selects strictly
        // downward, so the fixpoint terminates; bound it anyway.
        for _ in 0..64 {
            let (next, changed) = rewrite(p);
            p = next;
            if !changed {
                break;
            }
        }
        prune(p, None, tables)
    }

    /// Pretty-prints the plan as an indented tree, annotating what the
    /// optimizer did: `(fused n)` on merged selects, `(pushed)` on selects
    /// moved below projects, `(pruned)` on synthetic projections, and
    /// `keep=[...]` on column-pruned joins.
    pub fn display(&self, tables: &[&Table]) -> String {
        let mut out = String::new();
        self.fmt_into(tables, 0, &mut out);
        out
    }

    /// Like [`Plan::display`], but annotates every node with what the
    /// executor actually did — `-> rows=N time=T`, plus
    /// `morsels=M workers=W` for morsel-driven nodes (select, join,
    /// group) — and appends the final `Collect` line with its gather
    /// count. `stats` is the post-order [`NodeStat`] vector from
    /// [`crate::exec::Executed`] (with or without its trailing `collect`
    /// entry).
    pub fn display_executed(
        &self,
        tables: &[&Table],
        stats: &[crate::exec::NodeStat],
        gathers: u32,
    ) -> String {
        use std::fmt::Write;
        // Map each printed line (pre-order) to its post-order stat index.
        fn collect_post(p: &Plan, base: usize, pre: &mut Vec<usize>) -> usize {
            let slot = pre.len();
            pre.push(0);
            let mut sz = 0;
            match p {
                Plan::Scan { .. } => {}
                Plan::Select { input, .. }
                | Plan::Project { input, .. }
                | Plan::GroupBy { input, .. }
                | Plan::OrderBy { input, .. }
                | Plan::NextK { input, .. } => {
                    sz += collect_post(input, base, pre);
                }
                Plan::Join { left, right, .. } => {
                    sz += collect_post(left, base, pre);
                    sz += collect_post(right, base + sz, pre);
                }
            }
            pre[slot] = base + sz;
            sz + 1
        }
        let mut pre = Vec::new();
        let n_nodes = collect_post(self, 0, &mut pre);
        let plain = self.display(tables);
        let mut out = String::new();
        for (line, &idx) in plain.lines().zip(&pre) {
            out.push_str(line);
            if let Some(s) = stats.get(idx) {
                let _ = write!(
                    out,
                    "  -> rows={} time={}",
                    s.rows_out,
                    ringo_trace::fmt_ns(s.wall_ns)
                );
                if s.morsels > 0 {
                    let _ = write!(out, " morsels={} workers={}", s.morsels, s.workers);
                }
            }
            out.push('\n');
        }
        if let Some(c) = stats.get(n_nodes) {
            let _ = writeln!(out, "Collect rows={} gathers={gathers}", c.rows_out);
        }
        out
    }

    fn fmt_into(&self, tables: &[&Table], depth: usize, out: &mut String) {
        use std::fmt::Write;
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            Self::Scan { table } => {
                match tables.get(*table) {
                    Some(t) => {
                        let _ = write!(
                            out,
                            "Scan #{table} [{} rows x {} cols]",
                            t.n_rows(),
                            t.n_cols()
                        );
                    }
                    None => {
                        let _ = write!(out, "Scan #{table} [unbound]");
                    }
                }
                out.push('\n');
            }
            Self::Select {
                input,
                predicate,
                fused,
                pushed,
            } => {
                let _ = write!(out, "Select {}", predicate_display(predicate));
                if *fused > 1 {
                    let _ = write!(out, " (fused {fused})");
                }
                if *pushed {
                    out.push_str(" (pushed)");
                }
                out.push('\n');
                input.fmt_into(tables, depth + 1, out);
            }
            Self::Project {
                input,
                cols,
                pruned,
            } => {
                let _ = write!(out, "Project [{}]", cols.join(", "));
                if *pruned {
                    out.push_str(" (pruned)");
                }
                out.push('\n');
                input.fmt_into(tables, depth + 1, out);
            }
            Self::Join {
                left,
                right,
                left_col,
                right_col,
                keep,
            } => {
                let _ = write!(out, "Join {left_col} == {right_col}");
                if let Some(cols) = keep {
                    let names: Vec<&str> = cols.iter().map(|c| c.name.as_str()).collect();
                    let _ = write!(out, " keep=[{}] (pruned)", names.join(", "));
                }
                out.push('\n');
                left.fmt_into(tables, depth + 1, out);
                right.fmt_into(tables, depth + 1, out);
            }
            Self::GroupBy {
                input,
                group_cols,
                agg_col,
                op,
                out_name,
            } => {
                let _ = write!(out, "GroupBy [{}] {op:?}", group_cols.join(", "));
                if let Some(a) = agg_col {
                    let _ = write!(out, "({a})");
                }
                let _ = write!(out, " as {out_name}");
                out.push('\n');
                input.fmt_into(tables, depth + 1, out);
            }
            Self::OrderBy {
                input,
                cols,
                ascending,
            } => {
                let dir = if *ascending { "asc" } else { "desc" };
                let _ = write!(out, "OrderBy [{}] {dir}", cols.join(", "));
                out.push('\n');
                input.fmt_into(tables, depth + 1, out);
            }
            Self::NextK {
                input,
                group_col,
                order_col,
                k,
            } => {
                let _ = write!(out, "NextK order={order_col} k={k}");
                if let Some(g) = group_col {
                    let _ = write!(out, " group={g}");
                }
                out.push('\n');
                input.fmt_into(tables, depth + 1, out);
            }
        }
    }
}

/// Checks every column reference in `p` against `schema`, with the same
/// name/type errors the eager predicate compiler produces.
fn validate_predicate(schema: &Schema, p: &Predicate) -> Result<()> {
    let check = |column: &str, expected: &'static str, want: ColumnType| -> Result<()> {
        let i = schema.index_of(column)?;
        if schema.column_type(i) != want {
            return Err(TableError::TypeMismatch {
                column: column.to_string(),
                expected,
                actual: schema.column_type(i).name(),
            });
        }
        Ok(())
    };
    match p {
        Predicate::Int { column, .. } | Predicate::IntIn { column, .. } => {
            check(column, "int", ColumnType::Int)
        }
        Predicate::Float { column, .. } => check(column, "float", ColumnType::Float),
        Predicate::Str { column, .. } => check(column, "str", ColumnType::Str),
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            validate_predicate(schema, a)?;
            validate_predicate(schema, b)
        }
        Predicate::Not(inner) => validate_predicate(schema, inner),
        Predicate::True => Ok(()),
    }
}

fn cmp_display(cmp: crate::Cmp) -> &'static str {
    match cmp {
        crate::Cmp::Lt => "<",
        crate::Cmp::Le => "<=",
        crate::Cmp::Eq => "==",
        crate::Cmp::Ne => "!=",
        crate::Cmp::Ge => ">=",
        crate::Cmp::Gt => ">",
    }
}

/// Compact one-line rendering of a predicate for `explain` output.
pub fn predicate_display(p: &Predicate) -> String {
    match p {
        Predicate::Int { column, cmp, value } => {
            format!("{column} {} {value}", cmp_display(*cmp))
        }
        Predicate::Float { column, cmp, value } => {
            format!("{column} {} {value}", cmp_display(*cmp))
        }
        Predicate::Str { column, cmp, value } => {
            format!("{column} {} {value:?}", cmp_display(*cmp))
        }
        Predicate::IntIn { column, values } => {
            if values.len() <= 8 {
                let vals: Vec<String> = values.iter().map(i64::to_string).collect();
                format!("{column} IN [{}]", vals.join(", "))
            } else {
                format!("{column} IN [{} values]", values.len())
            }
        }
        Predicate::And(a, b) => {
            format!("({} AND {})", predicate_display(a), predicate_display(b))
        }
        Predicate::Or(a, b) => {
            format!("({} OR {})", predicate_display(a), predicate_display(b))
        }
        Predicate::Not(inner) => format!("NOT {}", predicate_display(inner)),
        Predicate::True => "TRUE".to_string(),
    }
}

/// One bottom-up pass of the fusion and pushdown rules. Returns the
/// rewritten node and whether anything changed.
fn rewrite(p: Plan) -> (Plan, bool) {
    match p {
        Plan::Select {
            input,
            predicate,
            fused,
            pushed,
        } => {
            let (input, changed) = rewrite(*input);
            match input {
                // Rule 1: fuse adjacent selects into one conjunction. The
                // inner (earlier) predicate stays on the left of the AND,
                // preserving evaluation order.
                Plan::Select {
                    input: inner,
                    predicate: inner_pred,
                    fused: inner_fused,
                    pushed: inner_pushed,
                } => (
                    Plan::Select {
                        input: inner,
                        predicate: inner_pred.and(predicate),
                        fused: inner_fused + fused,
                        pushed: pushed || inner_pushed,
                    },
                    true,
                ),
                // Rule 2: push the select below the project — the
                // predicate only reads columns the project kept, so it is
                // evaluable on the wider input.
                Plan::Project {
                    input: proj_input,
                    cols,
                    pruned,
                } => (
                    Plan::Project {
                        input: Box::new(Plan::Select {
                            input: proj_input,
                            predicate,
                            fused,
                            pushed: true,
                        }),
                        cols,
                        pruned,
                    },
                    true,
                ),
                other => (
                    Plan::Select {
                        input: Box::new(other),
                        predicate,
                        fused,
                        pushed,
                    },
                    changed,
                ),
            }
        }
        Plan::Project {
            input,
            cols,
            pruned,
        } => {
            let (input, changed) = rewrite(*input);
            (
                Plan::Project {
                    input: Box::new(input),
                    cols,
                    pruned,
                },
                changed,
            )
        }
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
            keep,
        } => {
            let (left, cl) = rewrite(*left);
            let (right, cr) = rewrite(*right);
            (
                Plan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    left_col,
                    right_col,
                    keep,
                },
                cl || cr,
            )
        }
        Plan::GroupBy {
            input,
            group_cols,
            agg_col,
            op,
            out_name,
        } => {
            let (input, changed) = rewrite(*input);
            (
                Plan::GroupBy {
                    input: Box::new(input),
                    group_cols,
                    agg_col,
                    op,
                    out_name,
                },
                changed,
            )
        }
        Plan::OrderBy {
            input,
            cols,
            ascending,
        } => {
            let (input, changed) = rewrite(*input);
            (
                Plan::OrderBy {
                    input: Box::new(input),
                    cols,
                    ascending,
                },
                changed,
            )
        }
        Plan::NextK {
            input,
            group_col,
            order_col,
            k,
        } => {
            let (input, changed) = rewrite(*input);
            (
                Plan::NextK {
                    input: Box::new(input),
                    group_col,
                    order_col,
                    k,
                },
                changed,
            )
        }
        leaf @ Plan::Scan { .. } => (leaf, false),
    }
}

/// Top-down column pruning. `required` is the set of columns the parent
/// needs from this node's output; `None` means "all of them".
fn prune(
    p: Plan,
    required: Option<std::collections::HashSet<String>>,
    tables: &[&Table],
) -> Result<Plan> {
    use std::collections::HashSet;
    match p {
        Plan::Scan { table } => {
            let scan = Plan::Scan { table };
            let Some(req) = required else {
                return Ok(scan);
            };
            let schema = scan.schema(tables)?;
            let cols: Vec<String> = schema
                .iter()
                .filter(|(n, _)| req.contains(*n))
                .map(|(n, _)| n.to_string())
                .collect();
            if cols.len() == schema.len() || cols.is_empty() {
                // Nothing to drop (or nothing left: keep the scan intact
                // rather than emit a zero-column table).
                return Ok(scan);
            }
            Ok(Plan::Project {
                input: Box::new(scan),
                cols,
                pruned: true,
            })
        }
        Plan::Select {
            input,
            predicate,
            fused,
            pushed,
        } => {
            let required = required.map(|mut r| {
                r.extend(predicate.columns());
                r
            });
            Ok(Plan::Select {
                input: Box::new(prune(*input, required, tables)?),
                predicate,
                fused,
                pushed,
            })
        }
        Plan::Project {
            input,
            cols,
            pruned,
        } => {
            // The child must produce exactly the projected columns;
            // incoming requirements are a subset of `cols` by validity.
            let child_req: HashSet<String> = cols.iter().cloned().collect();
            Ok(Plan::Project {
                input: Box::new(prune(*input, Some(child_req), tables)?),
                cols,
                pruned,
            })
        }
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
            keep,
        } => {
            // Map required output names back to (side, source column)
            // through the clash-suffix simulation over the FULL child
            // schemas, so output names are stable under child pruning.
            let ls = left.schema(tables)?;
            let rs = right.schema(tables)?;
            let mut sim = Schema::default();
            let mut mapping: Vec<JoinKeepCol> = Vec::with_capacity(ls.len() + rs.len());
            for (name, ty) in ls.iter() {
                let out = sim.push_unique(name, ty);
                mapping.push(JoinKeepCol {
                    side: Side::Left,
                    src: name.to_string(),
                    name: out,
                });
            }
            for (name, ty) in rs.iter() {
                let out = sim.push_unique(name, ty);
                mapping.push(JoinKeepCol {
                    side: Side::Right,
                    src: name.to_string(),
                    name: out,
                });
            }
            let Some(req) = required else {
                // Full width needed: keep as-is, but children may still
                // not be pruned (every column is required).
                return Ok(Plan::Join {
                    left: Box::new(prune(*left, None, tables)?),
                    right: Box::new(prune(*right, None, tables)?),
                    left_col,
                    right_col,
                    keep,
                });
            };
            let mut kept: Vec<JoinKeepCol> = mapping
                .iter()
                .filter(|m| req.contains(&m.name))
                .cloned()
                .collect();
            if kept.is_empty() {
                // Nothing downstream reads join output columns (e.g. an
                // empty projection): keep the left key so the output still
                // carries the correct row count.
                if let Some(key) = mapping
                    .iter()
                    .find(|m| m.side == Side::Left && m.src == left_col)
                {
                    kept.push(key.clone());
                }
            }
            let mut lreq: HashSet<String> = HashSet::new();
            let mut rreq: HashSet<String> = HashSet::new();
            lreq.insert(left_col.clone());
            rreq.insert(right_col.clone());
            for m in &kept {
                match m.side {
                    Side::Left => lreq.insert(m.src.clone()),
                    Side::Right => rreq.insert(m.src.clone()),
                };
            }
            let pruned_any = kept.len() < ls.len() + rs.len();
            Ok(Plan::Join {
                left: Box::new(prune(*left, Some(lreq), tables)?),
                right: Box::new(prune(*right, Some(rreq), tables)?),
                left_col,
                right_col,
                keep: if pruned_any { Some(kept) } else { keep },
            })
        }
        Plan::GroupBy {
            input,
            group_cols,
            agg_col,
            op,
            out_name,
        } => {
            // Grouping replaces the schema wholesale: the child only needs
            // the keys and the aggregate source, whatever the parent asked.
            let mut req: HashSet<String> = group_cols.iter().cloned().collect();
            if let Some(a) = &agg_col {
                req.insert(a.clone());
            }
            Ok(Plan::GroupBy {
                input: Box::new(prune(*input, Some(req), tables)?),
                group_cols,
                agg_col,
                op,
                out_name,
            })
        }
        Plan::OrderBy {
            input,
            cols,
            ascending,
        } => {
            let required = required.map(|mut r| {
                r.extend(cols.iter().cloned());
                r
            });
            Ok(Plan::OrderBy {
                input: Box::new(prune(*input, required, tables)?),
                cols,
                ascending,
            })
        }
        Plan::NextK {
            input,
            group_col,
            order_col,
            k,
        } => {
            // NextK's output carries every input column (twice), so the
            // child keeps its full width.
            Ok(Plan::NextK {
                input: Box::new(prune(*input, None, tables)?),
                group_col,
                order_col,
                k,
            })
        }
    }
}
