//! TSV input/output — the paper's `LoadTableTSV` front door.

use crate::{ColumnData, ColumnType, Result, Schema, StringPool, Table, TableError};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Loads a tab-separated file into a table under the given schema.
///
/// Each line must have exactly one field per schema column. A first line
/// starting with `#` is treated as a header comment and skipped (SNAP
/// dataset convention); empty lines are skipped.
pub fn load_tsv(path: &Path, schema: &Schema) -> Result<Table> {
    load_dsv(path, schema, '\t')
}

/// Loads a delimiter-separated file (e.g. `,` for CSV) into a table under
/// the given schema. Same conventions as [`load_tsv`]; no quoting — fields
/// may not contain the delimiter.
pub fn load_dsv(path: &Path, schema: &Schema, delimiter: char) -> Result<Table> {
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut cols: Vec<ColumnData> = schema.iter().map(|(_, ty)| ColumnData::new(ty)).collect();
    let mut pool = StringPool::new();
    let types: Vec<ColumnType> = schema.iter().map(|(_, ty)| ty).collect();

    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split(delimiter);
        for (i, ty) in types.iter().enumerate() {
            let field = fields.next().ok_or_else(|| TableError::Parse {
                line: lineno,
                message: format!("expected {} fields, found {}", types.len(), i),
            })?;
            match (ty, &mut cols[i]) {
                (ColumnType::Int, ColumnData::Int(v)) => {
                    v.push(field.parse().map_err(|e| TableError::Parse {
                        line: lineno,
                        message: format!("bad int {field:?}: {e}"),
                    })?);
                }
                (ColumnType::Float, ColumnData::Float(v)) => {
                    v.push(field.parse().map_err(|e| TableError::Parse {
                        line: lineno,
                        message: format!("bad float {field:?}: {e}"),
                    })?);
                }
                (ColumnType::Str, ColumnData::Str(v)) => {
                    v.push(pool.intern(field));
                }
                _ => unreachable!("schema/type alignment"),
            }
        }
        if fields.next().is_some() {
            return Err(TableError::Parse {
                line: lineno,
                message: format!("more fields than the {} schema columns", types.len()),
            });
        }
    }
    Table::from_parts(schema.clone(), cols, pool)
}

/// Writes the table as tab-separated values with a `#`-prefixed header of
/// column names.
pub fn save_tsv(table: &Table, path: &Path) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let names: Vec<&str> = table.schema().iter().map(|(n, _)| n).collect();
    writeln!(w, "# {}", names.join("\t"))?;
    for row in 0..table.n_rows() {
        for (i, _) in table.schema().iter().enumerate() {
            if i > 0 {
                w.write_all(b"\t")?;
            }
            match table.column(i) {
                ColumnData::Int(v) => write!(w, "{}", v[row])?,
                ColumnData::Float(v) => write!(w, "{}", v[row])?,
                ColumnData::Str(v) => w.write_all(table.str_value(v[row]).as_bytes())?,
            }
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ringo_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_all_types() {
        let schema = Schema::new([
            ("id", ColumnType::Int),
            ("w", ColumnType::Float),
            ("tag", ColumnType::Str),
        ]);
        let mut t = Table::new(schema.clone());
        t.push_row(&[Value::Int(1), Value::Float(0.5), "java".into()])
            .unwrap();
        t.push_row(&[Value::Int(-2), Value::Float(1.25), "".into()])
            .unwrap();
        let path = tmpfile("roundtrip.tsv");
        save_tsv(&t, &path).unwrap();
        let back = load_tsv(&path, &schema).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.int_col("id").unwrap(), &[1, -2]);
        assert_eq!(back.float_col("w").unwrap(), &[0.5, 1.25]);
        assert_eq!(back.get(0, "tag").unwrap(), Value::Str("java".into()));
        assert_eq!(back.get(1, "tag").unwrap(), Value::Str("".into()));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let path = tmpfile("comments.tsv");
        std::fs::write(&path, "# src\tdst\n1\t2\n\n3\t4\n").unwrap();
        let schema = Schema::new([("src", ColumnType::Int), ("dst", ColumnType::Int)]);
        let t = load_tsv(&path, &schema).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.int_col("dst").unwrap(), &[2, 4]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_delimiter_variant() {
        let path = tmpfile("csv.csv");
        std::fs::write(&path, "1,2.5,java\n2,0.5,rust\n").unwrap();
        let schema = Schema::new([
            ("a", ColumnType::Int),
            ("b", ColumnType::Float),
            ("c", ColumnType::Str),
        ]);
        let t = super::load_dsv(&path, &schema, ',').unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.float_col("b").unwrap(), &[2.5, 0.5]);
        assert_eq!(t.get(1, "c").unwrap(), Value::Str("rust".into()));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let path = tmpfile("bad.tsv");
        std::fs::write(&path, "1\t2\nx\t4\n").unwrap();
        let schema = Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]);
        match load_tsv(&path, &schema) {
            Err(TableError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn field_count_mismatches_rejected() {
        let path = tmpfile("fields.tsv");
        std::fs::write(&path, "1\n").unwrap();
        let schema = Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]);
        assert!(load_tsv(&path, &schema).is_err());
        std::fs::write(&path, "1\t2\t3\n").unwrap();
        assert!(load_tsv(&path, &schema).is_err());
        std::fs::remove_file(path).ok();
    }
}
