//! Table schemas: ordered `(name, type)` column descriptors.

use crate::{Result, TableError};

/// The three Ringo column types (paper §2.3: "integer, floating point, or
/// string").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Interned string.
    Str,
}

impl ColumnType {
    /// Human-readable type name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Int => "int",
            Self::Float => "float",
            Self::Str => "str",
        }
    }
}

impl std::fmt::Display for ColumnType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordered list of named, typed columns.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    cols: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Creates a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names — schemas are programmer-supplied
    /// constants and a duplicate is a bug at the call site.
    pub fn new<I, S>(cols: I) -> Self
    where
        I: IntoIterator<Item = (S, ColumnType)>,
        S: Into<String>,
    {
        let cols: Vec<(String, ColumnType)> =
            cols.into_iter().map(|(n, t)| (n.into(), t)).collect();
        for (i, (name, _)) in cols.iter().enumerate() {
            assert!(
                !cols[..i].iter().any(|(n, _)| n == name),
                "duplicate column name {name:?} in schema"
            );
        }
        Self { cols }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Index of the column called `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.cols
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| TableError::ColumnNotFound(name.to_string()))
    }

    /// True when a column called `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.cols.iter().any(|(n, _)| n == name)
    }

    /// Name of column `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.cols[i].0
    }

    /// Type of column `i`.
    pub fn column_type(&self, i: usize) -> ColumnType {
        self.cols[i].1
    }

    /// Iterates over `(name, type)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ColumnType)> {
        self.cols.iter().map(|(n, t)| (n.as_str(), *t))
    }

    /// Appends a column; disambiguates clashes by suffixing `-1`, `-2`, ...
    /// (the convention visible in the paper's §4.1 demo, where a
    /// self-join's `UserId` columns become `UserId-1` / `UserId-2`).
    /// Returns the name actually used.
    pub(crate) fn push_unique(&mut self, name: &str, ty: ColumnType) -> String {
        if !self.contains(name) {
            self.cols.push((name.to_string(), ty));
            return name.to_string();
        }
        for suffix in 1.. {
            let candidate = format!("{name}-{suffix}");
            if !self.contains(&candidate) {
                self.cols.push((candidate.clone(), ty));
                return candidate;
            }
        }
        unreachable!()
    }

    /// Renames column `old` to `new`.
    pub(crate) fn rename(&mut self, old: &str, new: &str) -> Result<()> {
        if self.contains(new) {
            return Err(TableError::SchemaMismatch(format!(
                "column {new:?} already exists"
            )));
        }
        let i = self.index_of(old)?;
        self.cols[i].0 = new.to_string();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_iteration() {
        let s = Schema::new([("a", ColumnType::Int), ("b", ColumnType::Str)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("c").is_err());
        assert_eq!(s.column_type(0), ColumnType::Int);
        let names: Vec<_> = s.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_panic() {
        Schema::new([("a", ColumnType::Int), ("a", ColumnType::Str)]);
    }

    #[test]
    fn push_unique_suffixes_clashes() {
        let mut s = Schema::new([("UserId", ColumnType::Int)]);
        assert_eq!(s.push_unique("UserId", ColumnType::Int), "UserId-1");
        assert_eq!(s.push_unique("UserId", ColumnType::Int), "UserId-2");
        assert_eq!(s.push_unique("Other", ColumnType::Str), "Other");
    }

    #[test]
    fn rename_checks_conflicts() {
        let mut s = Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]);
        assert!(s.rename("a", "b").is_err());
        s.rename("a", "c").unwrap();
        assert!(s.contains("c"));
        assert!(!s.contains("a"));
    }
}
