//! String interning pool shared by a table's string columns.

use std::collections::HashMap;

/// Interns strings to dense `u32` symbols.
///
/// String columns store symbols; the pool owns each distinct string once.
/// Symbol 0 is always the empty string, so freshly grown columns are valid.
#[derive(Clone, Debug)]
pub struct StringPool {
    strings: Vec<Box<str>>,
    index: HashMap<Box<str>, u32>,
}

impl Default for StringPool {
    fn default() -> Self {
        Self::new()
    }
}

impl StringPool {
    /// Creates a pool containing only the empty string (symbol 0).
    pub fn new() -> Self {
        let mut pool = Self {
            strings: Vec::new(),
            index: HashMap::new(),
        };
        pool.intern("");
        pool
    }

    /// Returns the symbol for `s`, interning it if new.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = u32::try_from(self.strings.len()).expect("string pool overflow");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, sym);
        sym
    }

    /// Returns the symbol for `s` if it is already interned.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Resolves a symbol to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this pool.
    pub fn get(&self, sym: u32) -> &str {
        &self.strings[sym as usize]
    }

    /// Number of distinct interned strings (including the empty string).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when only the empty string is interned.
    pub fn is_empty(&self) -> bool {
        self.strings.len() <= 1
    }

    /// Approximate heap footprint in bytes.
    pub fn mem_size(&self) -> usize {
        let payload: usize = self.strings.iter().map(|s| s.len()).sum();
        // Each string stored twice (vec + index key) plus map/entry overhead.
        2 * payload
            + self.strings.capacity() * std::mem::size_of::<Box<str>>()
            + self.index.capacity()
                * (std::mem::size_of::<Box<str>>() + std::mem::size_of::<u32>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut p = StringPool::new();
        let a = p.intern("hello");
        let b = p.intern("hello");
        assert_eq!(a, b);
        assert_eq!(p.get(a), "hello");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn empty_string_is_symbol_zero() {
        let mut p = StringPool::new();
        assert_eq!(p.intern(""), 0);
        assert_eq!(p.get(0), "");
        assert!(p.is_empty());
    }

    #[test]
    fn lookup_does_not_intern() {
        let p = StringPool::new();
        assert_eq!(p.lookup("x"), None);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut p = StringPool::new();
        let syms: Vec<u32> = (0..100).map(|i| p.intern(&format!("s{i}"))).collect();
        let mut dedup = syms.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100);
        for (i, sym) in syms.iter().enumerate() {
            assert_eq!(p.get(*sym), format!("s{i}"));
        }
    }
}
