//! Projection and column/row addition.

use crate::{ColumnData, ColumnType, Result, Schema, Table, TableError};

impl Table {
    /// Returns a new table with only the named columns, in the given
    /// order. Row ids are preserved.
    pub fn project(&self, cols: &[&str]) -> Result<Table> {
        let idx = self.col_indices(cols)?;
        let schema = Schema::new(
            idx.iter()
                .map(|&i| (self.schema.name(i).to_string(), self.schema.column_type(i))),
        );
        let mut out = Table {
            schema,
            cols: idx.iter().map(|&i| self.cols[i].clone()).collect(),
            row_ids: self.row_ids.clone(),
            next_row_id: self.next_row_id,
            pool: self.pool.clone(),
            threads: self.threads,
        };
        out.threads = self.threads;
        Ok(out)
    }

    /// Appends an integer column (must match the current row count).
    pub fn add_int_column(&mut self, name: &str, data: Vec<i64>) -> Result<()> {
        self.check_new_column(name, data.len())?;
        self.schema.push_unique(name, ColumnType::Int);
        self.cols.push(ColumnData::Int(data));
        Ok(())
    }

    /// Appends a float column (must match the current row count).
    pub fn add_float_column(&mut self, name: &str, data: Vec<f64>) -> Result<()> {
        self.check_new_column(name, data.len())?;
        self.schema.push_unique(name, ColumnType::Float);
        self.cols.push(ColumnData::Float(data));
        Ok(())
    }

    /// Appends a string column (must match the current row count).
    pub fn add_str_column<S: AsRef<str>>(&mut self, name: &str, data: &[S]) -> Result<()> {
        self.check_new_column(name, data.len())?;
        let syms = data.iter().map(|s| self.pool.intern(s.as_ref())).collect();
        self.schema.push_unique(name, ColumnType::Str);
        self.cols.push(ColumnData::Str(syms));
        Ok(())
    }

    /// Appends all rows of `other`, which must have an identical schema.
    /// Appended rows get fresh row ids in this table's id space.
    pub fn append_rows(&mut self, other: &Table) -> Result<()> {
        if self.schema != other.schema {
            return Err(TableError::SchemaMismatch(
                "append_rows requires identical schemas".into(),
            ));
        }
        let n = other.n_rows();
        for (dst, src) in self.cols.iter_mut().zip(&other.cols) {
            match (dst, src) {
                (ColumnData::Int(d), ColumnData::Int(s)) => d.extend_from_slice(s),
                (ColumnData::Float(d), ColumnData::Float(s)) => d.extend_from_slice(s),
                (ColumnData::Str(d), ColumnData::Str(s)) => {
                    d.extend(s.iter().map(|&sym| self.pool.intern(other.pool.get(sym))));
                }
                _ => unreachable!("schemas validated equal"),
            }
        }
        for _ in 0..n {
            self.row_ids.push(self.next_row_id);
            self.next_row_id += 1;
        }
        Ok(())
    }

    fn check_new_column(&self, name: &str, len: usize) -> Result<()> {
        if len != self.n_rows() {
            return Err(TableError::SchemaMismatch(format!(
                "column {name:?} has {len} values, table has {} rows",
                self.n_rows()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn base() -> Table {
        let schema = Schema::new([("a", ColumnType::Int), ("b", ColumnType::Str)]);
        let mut t = Table::new(schema);
        t.push_row(&[Value::Int(1), "x".into()]).unwrap();
        t.push_row(&[Value::Int(2), "y".into()]).unwrap();
        t
    }

    #[test]
    fn project_reorders_and_preserves_ids() {
        let t = base();
        let p = t.project(&["b", "a"]).unwrap();
        assert_eq!(p.schema().name(0), "b");
        assert_eq!(p.row_ids(), t.row_ids());
        assert_eq!(p.get(1, "a").unwrap(), Value::Int(2));
        assert!(t.project(&["zzz"]).is_err());
    }

    #[test]
    fn add_columns_validate_length() {
        let mut t = base();
        assert!(t.add_int_column("c", vec![1]).is_err());
        t.add_int_column("c", vec![10, 20]).unwrap();
        t.add_float_column("d", vec![0.1, 0.2]).unwrap();
        t.add_str_column("e", &["p", "q"]).unwrap();
        assert_eq!(t.n_cols(), 5);
        assert_eq!(t.get(1, "e").unwrap(), Value::Str("q".into()));
    }

    #[test]
    fn append_rows_re_interns_strings() {
        let mut a = base();
        let mut b = base();
        // Extra interning in b to shift symbols.
        b.intern("zzz");
        b.push_row(&[Value::Int(3), "z".into()]).unwrap();
        a.append_rows(&b).unwrap();
        assert_eq!(a.n_rows(), 5);
        assert_eq!(a.get(4, "b").unwrap(), Value::Str("z".into()));
        // Fresh ids continue a's sequence.
        assert_eq!(a.row_ids(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn append_rows_schema_mismatch() {
        let mut a = base();
        let b = Table::from_int_column("a", vec![1]);
        assert!(a.append_rows(&b).is_err());
    }
}
