//! Relational and graph-construction operators on [`crate::Table`].
//!
//! Each submodule implements one operator family as inherent methods on
//! `Table`:
//!
//! * [`select`] — predicate filtering, in-place and copying (paper Table 4),
//! * [`join`] — equi hash join (paper Table 4),
//! * [`project`] — projection, column addition, row concatenation,
//! * [`group`] — group & aggregate, distinct,
//! * [`order`] — multi-column sorting,
//! * [`setops`] — union / intersect / minus over row values,
//! * [`simjoin`] — Ringo's distance-threshold join (paper §2.3),
//! * [`nextk`] — Ringo's predecessor–successor temporal join (paper §2.3).

pub mod compute;
pub mod counts;
pub mod describe;
pub mod group;
pub mod join;
pub mod join_variants;
pub mod nextk;
pub mod order;
pub mod project;
pub mod rowkey;
pub mod select;
pub mod setops;
pub mod simjoin;
