//! Set operations over whole-row values: union, intersection, minus.
//!
//! Two rows are equal when all their cells compare equal (strings by text,
//! so pools may differ between operands). All operations require identical
//! schemas and return new tables.

use crate::ops::rowkey::RowKey;
use crate::{Result, Table, TableError};
use std::collections::{HashMap, HashSet};

impl Table {
    fn check_same_schema(&self, other: &Table, op: &str) -> Result<Vec<usize>> {
        if self.schema != other.schema {
            return Err(TableError::SchemaMismatch(format!(
                "{op} requires identical schemas"
            )));
        }
        Ok((0..self.n_cols()).collect())
    }

    /// Set union: all distinct rows occurring in either table. Rows from
    /// `self` keep their ids; rows contributed by `other` get fresh ids.
    pub fn union(&self, other: &Table) -> Result<Table> {
        let cols = self.check_same_schema(other, "union")?;
        let mut seen: HashSet<RowKey> = HashSet::with_capacity(self.n_rows());
        let mut keep_self = Vec::new();
        for row in 0..self.n_rows() {
            if seen.insert(self.row_key(row, &cols)) {
                keep_self.push(row);
            }
        }
        let mut out = self.gather_rows(&keep_self);
        let mut keep_other = Vec::new();
        for row in 0..other.n_rows() {
            if seen.insert(other.row_key(row, &cols)) {
                keep_other.push(row);
            }
        }
        out.append_rows(&other.gather_rows(&keep_other))?;
        Ok(out)
    }

    /// Bag union: simple concatenation preserving duplicates.
    pub fn union_all(&self, other: &Table) -> Result<Table> {
        self.check_same_schema(other, "union_all")?;
        let mut out = self.clone();
        out.append_rows(other)?;
        Ok(out)
    }

    /// Set intersection: distinct rows of `self` that also occur in
    /// `other` (ids from `self`).
    pub fn intersect(&self, other: &Table) -> Result<Table> {
        let cols = self.check_same_schema(other, "intersect")?;
        let mut in_other: HashSet<RowKey> = HashSet::with_capacity(other.n_rows());
        for row in 0..other.n_rows() {
            in_other.insert(other.row_key(row, &cols));
        }
        let mut emitted: HashSet<RowKey> = HashSet::new();
        let mut keep = Vec::new();
        for row in 0..self.n_rows() {
            let key = self.row_key(row, &cols);
            if in_other.contains(&key) && emitted.insert(key) {
                keep.push(row);
            }
        }
        Ok(self.gather_rows(&keep))
    }

    /// Set difference: distinct rows of `self` that do not occur in
    /// `other` (ids from `self`).
    pub fn minus(&self, other: &Table) -> Result<Table> {
        let cols = self.check_same_schema(other, "minus")?;
        let mut in_other: HashSet<RowKey> = HashSet::with_capacity(other.n_rows());
        for row in 0..other.n_rows() {
            in_other.insert(other.row_key(row, &cols));
        }
        let mut emitted: HashMap<RowKey, ()> = HashMap::new();
        let mut keep = Vec::new();
        for row in 0..self.n_rows() {
            let key = self.row_key(row, &cols);
            if !in_other.contains(&key) && emitted.insert(key, ()).is_none() {
                keep.push(row);
            }
        }
        Ok(self.gather_rows(&keep))
    }
}

#[cfg(test)]
mod tests {
    use crate::{ColumnType, Schema, Table, Value};

    fn make(rows: &[(i64, &str)]) -> Table {
        let schema = Schema::new([("x", ColumnType::Int), ("s", ColumnType::Str)]);
        let mut t = Table::new(schema);
        for (x, s) in rows {
            t.push_row(&[Value::Int(*x), (*s).into()]).unwrap();
        }
        t
    }

    #[test]
    fn union_dedups_across_and_within() {
        let a = make(&[(1, "a"), (2, "b"), (1, "a")]);
        let b = make(&[(2, "b"), (3, "c")]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.n_rows(), 3);
        let mut xs = u.int_col("x").unwrap().to_vec();
        xs.sort_unstable();
        assert_eq!(xs, vec![1, 2, 3]);
    }

    #[test]
    fn union_all_keeps_duplicates() {
        let a = make(&[(1, "a")]);
        let b = make(&[(1, "a"), (2, "b")]);
        let u = a.union_all(&b).unwrap();
        assert_eq!(u.n_rows(), 3);
    }

    #[test]
    fn intersect_requires_text_equality_across_pools() {
        let a = make(&[(1, "a"), (2, "b"), (3, "c")]);
        // Build b with different interning order.
        let b = make(&[(9, "zzz"), (3, "c"), (1, "a")]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.n_rows(), 2);
        assert_eq!(i.row_ids(), &[0, 2], "self ids preserved");
    }

    #[test]
    fn minus_removes_matches_and_dedups() {
        let a = make(&[(1, "a"), (2, "b"), (2, "b"), (3, "c")]);
        let b = make(&[(2, "b")]);
        let m = a.minus(&b).unwrap();
        let mut xs = m.int_col("x").unwrap().to_vec();
        xs.sort_unstable();
        assert_eq!(xs, vec![1, 3]);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let a = make(&[(1, "a")]);
        let b = Table::from_int_column("x", vec![1]);
        assert!(a.union(&b).is_err());
        assert!(a.intersect(&b).is_err());
        assert!(a.minus(&b).is_err());
        assert!(a.union_all(&b).is_err());
    }

    #[test]
    fn empty_operands() {
        let a = make(&[(1, "a")]);
        let e = make(&[]);
        assert_eq!(a.union(&e).unwrap().n_rows(), 1);
        assert_eq!(e.union(&a).unwrap().n_rows(), 1);
        assert_eq!(a.intersect(&e).unwrap().n_rows(), 0);
        assert_eq!(a.minus(&e).unwrap().n_rows(), 1);
    }
}
