//! Multi-column ordering (sort).

use crate::{ColumnData, Result, Table};
use ringo_concurrent::{i64_key, radix_sort_by_u64_key};
use std::cmp::Ordering;

impl Table {
    /// Sorts the table in place by the given columns (ties broken by the
    /// next column). Floats use IEEE total order, so NaNs sort after all
    /// numbers. Row ids travel with their rows. The sort is stable.
    ///
    /// When every sort column is `Int` the permutation is computed with
    /// chained stable radix passes (least-significant column first)
    /// instead of a comparison sort; descending order complements the
    /// biased key, which preserves stability exactly like the comparison
    /// path does.
    pub fn order_by(&mut self, cols: &[&str], ascending: bool) -> Result<()> {
        let mut sp = ringo_trace::span!("table.order");
        sp.rows_in(self.n_rows());
        sp.rows_out(self.n_rows());
        let idx = self.col_indices(cols)?;
        let mut perm: Vec<usize> = (0..self.n_rows()).collect();
        let all_int = idx
            .iter()
            .all(|&c| matches!(self.cols[c], ColumnData::Int(_)));
        if all_int {
            let threads = self.threads();
            for &c in idx.iter().rev() {
                let v = match &self.cols[c] {
                    ColumnData::Int(v) => v,
                    _ => unreachable!("all_int checked above"),
                };
                if ascending {
                    radix_sort_by_u64_key(&mut perm, threads, |&r| i64_key(v[r]));
                } else {
                    radix_sort_by_u64_key(&mut perm, threads, |&r| !i64_key(v[r]));
                }
            }
            self.retain_rows(&perm);
            return Ok(());
        }
        let cmp = |&a: &usize, &b: &usize| -> Ordering {
            for &c in &idx {
                let ord = match &self.cols[c] {
                    ColumnData::Int(v) => v[a].cmp(&v[b]),
                    ColumnData::Float(v) => v[a].total_cmp(&v[b]),
                    ColumnData::Str(v) => self.pool.get(v[a]).cmp(self.pool.get(v[b])),
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        };
        if ascending {
            perm.sort_by(cmp);
        } else {
            perm.sort_by(|a, b| cmp(b, a));
        }
        self.retain_rows(&perm);
        Ok(())
    }

    /// Returns a sorted copy; see [`Table::order_by`].
    pub fn ordered_by(&self, cols: &[&str], ascending: bool) -> Result<Table> {
        let mut out = self.clone();
        out.order_by(cols, ascending)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::{ColumnType, Schema, Table, Value};

    fn t() -> Table {
        let schema = Schema::new([
            ("g", ColumnType::Str),
            ("x", ColumnType::Int),
            ("f", ColumnType::Float),
        ]);
        let mut t = Table::new(schema);
        for (g, x, f) in [
            ("b", 2i64, 0.5),
            ("a", 3, f64::NAN),
            ("b", 1, 2.5),
            ("a", 3, 1.5),
        ] {
            t.push_row(&[g.into(), Value::Int(x), Value::Float(f)])
                .unwrap();
        }
        t
    }

    #[test]
    fn single_int_column_ascending_and_descending() {
        let mut a = t();
        a.order_by(&["x"], true).unwrap();
        assert_eq!(a.int_col("x").unwrap(), &[1, 2, 3, 3]);
        let mut d = t();
        d.order_by(&["x"], false).unwrap();
        assert_eq!(d.int_col("x").unwrap(), &[3, 3, 2, 1]);
    }

    #[test]
    fn multi_column_with_string_primary() {
        let mut s = t();
        s.order_by(&["g", "x"], true).unwrap();
        let g: Vec<String> = (0..4)
            .map(|r| match s.get(r, "g").unwrap() {
                Value::Str(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(g, vec!["a", "a", "b", "b"]);
        assert_eq!(s.int_col("x").unwrap(), &[3, 3, 1, 2]);
    }

    #[test]
    fn nan_sorts_last_ascending() {
        let mut s = t();
        s.order_by(&["f"], true).unwrap();
        let f = s.float_col("f").unwrap();
        assert!(f[3].is_nan());
        assert_eq!(&f[..3], &[0.5, 1.5, 2.5]);
    }

    #[test]
    fn row_ids_travel_with_rows() {
        let mut s = t();
        s.order_by(&["x"], true).unwrap();
        assert_eq!(s.row_ids(), &[2, 0, 1, 3]);
    }

    #[test]
    fn stable_for_equal_keys() {
        let mut s = t();
        s.order_by(&["g"], true).unwrap();
        // Rows 1 and 3 are both "a" — original order preserved.
        assert_eq!(s.row_ids(), &[1, 3, 0, 2]);
    }

    #[test]
    fn int_radix_path_matches_stable_comparison_sort() {
        // Enough rows that the parallel radix path (not the sequential
        // fallback) runs; skewed shifts give duplicates and negatives.
        let n = 10_000usize;
        let mut vals = Vec::with_capacity(n);
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            vals.push((x as i64) >> 48);
        }
        for ascending in [true, false] {
            let mut t = Table::from_int_column("x", vals.clone());
            t.set_threads(4);
            t.order_by(&["x"], ascending).unwrap();
            let mut expect: Vec<usize> = (0..n).collect();
            if ascending {
                expect.sort_by_key(|&r| vals[r]);
            } else {
                expect.sort_by_key(|&r| std::cmp::Reverse(vals[r]));
            }
            let got: Vec<usize> = t.row_ids().iter().map(|&r| r as usize).collect();
            assert_eq!(got, expect, "ascending={ascending}");
        }
    }

    #[test]
    fn multi_int_columns_tie_break_through_radix() {
        let mut t = Table::from_int_column("a", vec![2, 1, 2, 1, 2]);
        t.add_int_column("b", vec![5, 9, -3, 9, 5]).unwrap();
        t.order_by(&["a", "b"], true).unwrap();
        assert_eq!(t.int_col("a").unwrap(), &[1, 1, 2, 2, 2]);
        assert_eq!(t.int_col("b").unwrap(), &[9, 9, -3, 5, 5]);
        // Ties (1,9)x2 and (2,5)x2 keep original order: stability.
        assert_eq!(t.row_ids(), &[1, 3, 2, 0, 4]);
    }

    #[test]
    fn missing_column_errors() {
        let mut s = t();
        assert!(s.order_by(&["nope"], true).is_err());
    }
}
