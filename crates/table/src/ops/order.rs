//! Multi-column ordering (sort).

use crate::{ColumnData, Result, Table};
use ringo_concurrent::{f64_key, i64_key, radix_sort_by_u64_key};
use std::cmp::Ordering;

impl Table {
    /// Permutation kernel shared by the eager verb and the lazy executor:
    /// reorders the positions of `sel` (every row when `None`) so the rows
    /// they name are sorted by `cols`, ties broken by the next column, then
    /// by prior `sel` order (stable). No rows are materialized.
    ///
    /// When every sort column is numeric (`Int` or `Float`) the permutation
    /// is computed with chained stable radix passes (least-significant
    /// column first) instead of a comparison sort; floats map through the
    /// IEEE-754 total-order key [`f64_key`], so NaNs land exactly where
    /// `total_cmp` puts them, and descending order complements the biased
    /// key, which preserves stability exactly like the comparison path.
    pub(crate) fn order_perm_sel(
        &self,
        cols: &[&str],
        ascending: bool,
        sel: Option<&[u32]>,
    ) -> Result<Vec<u32>> {
        let idx = self.col_indices(cols)?;
        let mut perm: Vec<u32> = match sel {
            Some(s) => s.to_vec(),
            None => (0..self.n_rows() as u32).collect(),
        };
        let radixable = idx
            .iter()
            .all(|&c| !matches!(self.cols[c], ColumnData::Str(_)));
        if radixable {
            let threads = self.threads();
            for &c in idx.iter().rev() {
                match &self.cols[c] {
                    ColumnData::Int(v) if ascending => {
                        radix_sort_by_u64_key(&mut perm, threads, |&r| i64_key(v[r as usize]));
                    }
                    ColumnData::Int(v) => {
                        radix_sort_by_u64_key(&mut perm, threads, |&r| !i64_key(v[r as usize]));
                    }
                    ColumnData::Float(v) if ascending => {
                        radix_sort_by_u64_key(&mut perm, threads, |&r| f64_key(v[r as usize]));
                    }
                    ColumnData::Float(v) => {
                        radix_sort_by_u64_key(&mut perm, threads, |&r| !f64_key(v[r as usize]));
                    }
                    ColumnData::Str(_) => unreachable!("radixable checked above"),
                }
            }
            return Ok(perm);
        }
        let cmp = |a: usize, b: usize| -> Ordering {
            for &c in &idx {
                let ord = match &self.cols[c] {
                    ColumnData::Int(v) => v[a].cmp(&v[b]),
                    ColumnData::Float(v) => v[a].total_cmp(&v[b]),
                    ColumnData::Str(v) => self.pool.get(v[a]).cmp(self.pool.get(v[b])),
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        };
        if ascending {
            perm.sort_by(|&a, &b| cmp(a as usize, b as usize));
        } else {
            perm.sort_by(|&a, &b| cmp(b as usize, a as usize));
        }
        Ok(perm)
    }

    /// Sorts the table in place by the given columns (ties broken by the
    /// next column). Floats use IEEE total order, so NaNs sort after all
    /// numbers. Row ids travel with their rows. The sort is stable.
    ///
    /// Numeric sort columns (`Int` and `Float` alike) take the radix path
    /// of [`Table::order_perm_sel`]; any `Str` column falls back to a
    /// stable comparison sort.
    pub fn order_by(&mut self, cols: &[&str], ascending: bool) -> Result<()> {
        let mut sp = ringo_trace::span!("table.order");
        sp.rows_in(self.n_rows());
        sp.rows_out(self.n_rows());
        let perm = self.order_perm_sel(cols, ascending, None)?;
        self.retain_rows_sel(&perm);
        Ok(())
    }

    /// Returns a sorted copy; see [`Table::order_by`].
    pub fn ordered_by(&self, cols: &[&str], ascending: bool) -> Result<Table> {
        let mut out = self.clone();
        out.order_by(cols, ascending)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::{ColumnType, Schema, Table, Value};

    fn t() -> Table {
        let schema = Schema::new([
            ("g", ColumnType::Str),
            ("x", ColumnType::Int),
            ("f", ColumnType::Float),
        ]);
        let mut t = Table::new(schema);
        for (g, x, f) in [
            ("b", 2i64, 0.5),
            ("a", 3, f64::NAN),
            ("b", 1, 2.5),
            ("a", 3, 1.5),
        ] {
            t.push_row(&[g.into(), Value::Int(x), Value::Float(f)])
                .unwrap();
        }
        t
    }

    #[test]
    fn single_int_column_ascending_and_descending() {
        let mut a = t();
        a.order_by(&["x"], true).unwrap();
        assert_eq!(a.int_col("x").unwrap(), &[1, 2, 3, 3]);
        let mut d = t();
        d.order_by(&["x"], false).unwrap();
        assert_eq!(d.int_col("x").unwrap(), &[3, 3, 2, 1]);
    }

    #[test]
    fn multi_column_with_string_primary() {
        let mut s = t();
        s.order_by(&["g", "x"], true).unwrap();
        let g: Vec<String> = (0..4)
            .map(|r| match s.get(r, "g").unwrap() {
                Value::Str(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(g, vec!["a", "a", "b", "b"]);
        assert_eq!(s.int_col("x").unwrap(), &[3, 3, 1, 2]);
    }

    #[test]
    fn nan_sorts_last_ascending() {
        let mut s = t();
        s.order_by(&["f"], true).unwrap();
        let f = s.float_col("f").unwrap();
        assert!(f[3].is_nan());
        assert_eq!(&f[..3], &[0.5, 1.5, 2.5]);
    }

    #[test]
    fn row_ids_travel_with_rows() {
        let mut s = t();
        s.order_by(&["x"], true).unwrap();
        assert_eq!(s.row_ids(), &[2, 0, 1, 3]);
    }

    #[test]
    fn stable_for_equal_keys() {
        let mut s = t();
        s.order_by(&["g"], true).unwrap();
        // Rows 1 and 3 are both "a" — original order preserved.
        assert_eq!(s.row_ids(), &[1, 3, 0, 2]);
    }

    #[test]
    fn int_radix_path_matches_stable_comparison_sort() {
        // Enough rows that the parallel radix path (not the sequential
        // fallback) runs; skewed shifts give duplicates and negatives.
        let n = 10_000usize;
        let mut vals = Vec::with_capacity(n);
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            vals.push((x as i64) >> 48);
        }
        for ascending in [true, false] {
            let mut t = Table::from_int_column("x", vals.clone());
            t.set_threads(4);
            t.order_by(&["x"], ascending).unwrap();
            let mut expect: Vec<usize> = (0..n).collect();
            if ascending {
                expect.sort_by_key(|&r| vals[r]);
            } else {
                expect.sort_by_key(|&r| std::cmp::Reverse(vals[r]));
            }
            let got: Vec<usize> = t.row_ids().iter().map(|&r| r as usize).collect();
            assert_eq!(got, expect, "ascending={ascending}");
        }
    }

    #[test]
    fn multi_int_columns_tie_break_through_radix() {
        let mut t = Table::from_int_column("a", vec![2, 1, 2, 1, 2]);
        t.add_int_column("b", vec![5, 9, -3, 9, 5]).unwrap();
        t.order_by(&["a", "b"], true).unwrap();
        assert_eq!(t.int_col("a").unwrap(), &[1, 1, 2, 2, 2]);
        assert_eq!(t.int_col("b").unwrap(), &[9, 9, -3, 5, 5]);
        // Ties (1,9)x2 and (2,5)x2 keep original order: stability.
        assert_eq!(t.row_ids(), &[1, 3, 2, 0, 4]);
    }

    #[test]
    fn missing_column_errors() {
        let mut s = t();
        assert!(s.order_by(&["nope"], true).is_err());
    }
}
