//! Parallel single-column value counting — the degree-distribution /
//! activity-histogram primitive of the workflow, faster than a general
//! group-by because each worker counts its chunk into a private open-
//! addressing table and the partials merge at the end.

use crate::{ColumnData, ColumnType, Result, Schema, StringPool, Table, TableError};
use ringo_concurrent::{parallel_map, IntHashTable};

impl Table {
    /// Counts occurrences of each distinct value in an int or str column,
    /// returning a table `(value, count)` sorted by descending count
    /// (ties by ascending value).
    pub fn value_counts(&self, col: &str) -> Result<Table> {
        let i = self.schema.index_of(col)?;
        match &self.cols[i] {
            ColumnData::Int(v) => {
                let parts: Vec<IntHashTable<u64>> = parallel_map(v.len(), self.threads, |range| {
                    let mut m: IntHashTable<u64> = IntHashTable::new();
                    for row in range {
                        *m.get_or_insert_with(v[row], || 0) += 1;
                    }
                    m
                });
                let mut merged: IntHashTable<u64> = IntHashTable::new();
                for part in parts {
                    for (k, &c) in part.iter() {
                        *merged.get_or_insert_with(k, || 0) += c;
                    }
                }
                let mut pairs: Vec<(i64, u64)> = merged.iter().map(|(k, &c)| (k, c)).collect();
                pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let schema = Schema::new([
                    (col.to_string(), ColumnType::Int),
                    ("count".to_string(), ColumnType::Int),
                ]);
                let mut out = Table::from_parts(
                    schema,
                    vec![
                        ColumnData::Int(pairs.iter().map(|p| p.0).collect()),
                        ColumnData::Int(pairs.iter().map(|p| p.1 as i64).collect()),
                    ],
                    StringPool::new(),
                )?;
                out.threads = self.threads;
                Ok(out)
            }
            ColumnData::Str(v) => {
                // Symbols are dense enough to count by symbol, resolving
                // to text only for the output.
                let parts: Vec<IntHashTable<u64>> = parallel_map(v.len(), self.threads, |range| {
                    let mut m: IntHashTable<u64> = IntHashTable::new();
                    for row in range {
                        *m.get_or_insert_with(i64::from(v[row]), || 0) += 1;
                    }
                    m
                });
                let mut merged: IntHashTable<u64> = IntHashTable::new();
                for part in parts {
                    for (k, &c) in part.iter() {
                        *merged.get_or_insert_with(k, || 0) += c;
                    }
                }
                let mut pairs: Vec<(&str, u64)> = merged
                    .iter()
                    .map(|(sym, &c)| (self.pool.get(sym as u32), c))
                    .collect();
                pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                let mut pool = StringPool::new();
                let syms: Vec<u32> = pairs.iter().map(|(s, _)| pool.intern(s)).collect();
                let schema = Schema::new([
                    (col.to_string(), ColumnType::Str),
                    ("count".to_string(), ColumnType::Int),
                ]);
                let mut out = Table::from_parts(
                    schema,
                    vec![
                        ColumnData::Str(syms),
                        ColumnData::Int(pairs.iter().map(|p| p.1 as i64).collect()),
                    ],
                    pool,
                )?;
                out.threads = self.threads;
                Ok(out)
            }
            ColumnData::Float(_) => Err(TableError::TypeMismatch {
                column: col.to_string(),
                expected: "int or str",
                actual: "float",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggOp, Value};

    #[test]
    fn int_counts_sorted_by_frequency() {
        let mut t = Table::from_int_column("x", vec![5, 3, 5, 5, 3, 9]);
        t.set_threads(3);
        let c = t.value_counts("x").unwrap();
        assert_eq!(c.int_col("x").unwrap(), &[5, 3, 9]);
        assert_eq!(c.int_col("count").unwrap(), &[3, 2, 1]);
    }

    #[test]
    fn str_counts_resolve_text() {
        let schema = Schema::new([("tag", ColumnType::Str)]);
        let mut t = Table::new(schema);
        for s in ["java", "rust", "java", "go", "java", "rust"] {
            t.push_row(&[s.into()]).unwrap();
        }
        let c = t.value_counts("tag").unwrap();
        assert_eq!(c.get(0, "tag").unwrap(), Value::Str("java".into()));
        assert_eq!(c.int_col("count").unwrap(), &[3, 2, 1]);
    }

    #[test]
    fn matches_group_by_count() {
        let vals: Vec<i64> = (0..5_000).map(|i| (i * 37) % 100).collect();
        let mut t = Table::from_int_column("x", vals);
        t.set_threads(4);
        let fast = t.value_counts("x").unwrap();
        let slow = t.group_by(&["x"], None, AggOp::Count, "count").unwrap();
        assert_eq!(fast.n_rows(), slow.n_rows());
        let total_fast: i64 = fast.int_col("count").unwrap().iter().sum();
        let total_slow: i64 = slow.int_col("count").unwrap().iter().sum();
        assert_eq!(total_fast, total_slow);
        assert_eq!(total_fast, 5_000);
    }

    #[test]
    fn float_column_rejected_and_empty_ok() {
        let schema = Schema::new([("f", ColumnType::Float)]);
        let t = Table::new(schema);
        assert!(t.value_counts("f").is_err());
        let t = Table::from_int_column("x", vec![]);
        assert_eq!(t.value_counts("x").unwrap().n_rows(), 0);
    }

    #[test]
    fn ties_break_by_ascending_value() {
        let t = Table::from_int_column("x", vec![7, 2, 7, 2, 1]);
        let c = t.value_counts("x").unwrap();
        assert_eq!(c.int_col("x").unwrap(), &[2, 7, 1]);
    }
}
