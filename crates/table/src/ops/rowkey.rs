//! Hashable row keys for distinct / grouping / set operations.

use crate::{ColumnData, Result, Table};

/// One cell of a row key. Floats are keyed by their bit pattern (so `-0.0`
/// and `0.0` are distinct keys and `NaN` equals itself — adequate for
/// dedup semantics); strings are resolved to owned text so keys compare
/// correctly across tables with different pools.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum KeyAtom {
    /// Integer cell.
    I(i64),
    /// Float cell (bit pattern).
    F(u64),
    /// String cell (resolved).
    S(Box<str>),
}

/// A hashable tuple of row cells over a fixed column set.
pub type RowKey = Vec<KeyAtom>;

impl Table {
    /// Resolves column names to indices.
    pub(crate) fn col_indices(&self, names: &[&str]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.schema.index_of(n)).collect()
    }

    /// Builds the hashable key of `row` over `cols` (column indices).
    pub(crate) fn row_key(&self, row: usize, cols: &[usize]) -> RowKey {
        cols.iter()
            .map(|&c| match &self.cols[c] {
                ColumnData::Int(v) => KeyAtom::I(v[row]),
                ColumnData::Float(v) => KeyAtom::F(v[row].to_bits()),
                ColumnData::Str(v) => KeyAtom::S(self.pool.get(v[row]).into()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnType, Schema, Value};

    #[test]
    fn keys_equal_across_pools() {
        let schema = Schema::new([("s", ColumnType::Str), ("x", ColumnType::Int)]);
        let mut a = Table::new(schema.clone());
        let mut b = Table::new(schema);
        // Interleave inserts so symbols differ between pools.
        b.push_row(&["zzz".into(), Value::Int(0)]).unwrap();
        a.push_row(&["k".into(), Value::Int(1)]).unwrap();
        b.push_row(&["k".into(), Value::Int(1)]).unwrap();
        let ka = a.row_key(0, &[0, 1]);
        let kb = b.row_key(1, &[0, 1]);
        assert_eq!(ka, kb);
    }

    #[test]
    fn float_bits_distinguish_zero_signs() {
        let schema = Schema::new([("f", ColumnType::Float)]);
        let mut t = Table::new(schema);
        t.push_row(&[Value::Float(0.0)]).unwrap();
        t.push_row(&[Value::Float(-0.0)]).unwrap();
        assert_ne!(t.row_key(0, &[0]), t.row_key(1, &[0]));
    }
}
