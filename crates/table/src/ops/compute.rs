//! Derived columns and top-k selection.

use crate::{ColumnData, Result, Table, TableError};

impl Table {
    /// Appends an integer column computed from an existing integer column
    /// (`f` applied element-wise).
    pub fn map_int(&mut self, src: &str, out: &str, f: impl Fn(i64) -> i64) -> Result<()> {
        let data: Vec<i64> = self.int_col(src)?.iter().map(|&v| f(v)).collect();
        self.add_int_column(out, data)
    }

    /// Appends a float column computed from an existing numeric column
    /// (ints are widened to `f64` first).
    pub fn map_float(&mut self, src: &str, out: &str, f: impl Fn(f64) -> f64) -> Result<()> {
        let i = self.schema.index_of(src)?;
        let data: Vec<f64> = match &self.cols[i] {
            ColumnData::Int(v) => v.iter().map(|&x| f(x as f64)).collect(),
            ColumnData::Float(v) => v.iter().map(|&x| f(x)).collect(),
            ColumnData::Str(_) => {
                return Err(TableError::TypeMismatch {
                    column: src.to_string(),
                    expected: "int or float",
                    actual: "str",
                })
            }
        };
        self.add_float_column(out, data)
    }

    /// Appends an integer column computed from two integer columns.
    pub fn zip_ints(
        &mut self,
        a: &str,
        b: &str,
        out: &str,
        f: impl Fn(i64, i64) -> i64,
    ) -> Result<()> {
        let data: Vec<i64> = self
            .int_col(a)?
            .iter()
            .zip(self.int_col(b)?)
            .map(|(&x, &y)| f(x, y))
            .collect();
        self.add_int_column(out, data)
    }

    /// The `k` rows with the greatest (`ascending = false`) or smallest
    /// (`ascending = true`) values under the multi-column order — a
    /// partial sort that avoids ordering the whole table. Row ids are
    /// preserved; the result is ordered.
    pub fn top_k(&self, cols: &[&str], k: usize, ascending: bool) -> Result<Table> {
        let idx = self.col_indices(cols)?;
        let cmp = |&a: &usize, &b: &usize| -> std::cmp::Ordering {
            for &c in &idx {
                let ord = match &self.cols[c] {
                    ColumnData::Int(v) => v[a].cmp(&v[b]),
                    ColumnData::Float(v) => v[a].total_cmp(&v[b]),
                    ColumnData::Str(v) => self.pool.get(v[a]).cmp(self.pool.get(v[b])),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        };
        let mut perm: Vec<usize> = (0..self.n_rows()).collect();
        let k = k.min(perm.len());
        if k == 0 {
            return Ok(self.gather_rows(&[]));
        }
        if ascending {
            perm.select_nth_unstable_by(k - 1, cmp);
            perm.truncate(k);
            perm.sort_by(cmp);
        } else {
            perm.select_nth_unstable_by(k - 1, |a, b| cmp(b, a));
            perm.truncate(k);
            perm.sort_by(|a, b| cmp(b, a));
        }
        Ok(self.gather_rows(&perm))
    }
}

#[cfg(test)]
mod tests {
    use crate::{ColumnType, Schema, Table, Value};

    fn scores() -> Table {
        let schema = Schema::new([("id", ColumnType::Int), ("score", ColumnType::Float)]);
        let mut t = Table::new(schema);
        for (i, s) in [(1i64, 0.5), (2, 0.9), (3, 0.1), (4, 0.7), (5, 0.3)] {
            t.push_row(&[Value::Int(i), Value::Float(s)]).unwrap();
        }
        t
    }

    #[test]
    fn map_int_and_zip() {
        let mut t = Table::from_int_column("x", vec![1, 2, 3]);
        t.map_int("x", "sq", |v| v * v).unwrap();
        assert_eq!(t.int_col("sq").unwrap(), &[1, 4, 9]);
        t.zip_ints("x", "sq", "sum", |a, b| a + b).unwrap();
        assert_eq!(t.int_col("sum").unwrap(), &[2, 6, 12]);
        assert!(t.map_int("missing", "y", |v| v).is_err());
    }

    #[test]
    fn map_float_widens_ints() {
        let mut t = scores();
        t.map_float("id", "half", |v| v / 2.0).unwrap();
        assert_eq!(t.float_col("half").unwrap()[1], 1.0);
        t.map_float("score", "pct", |v| v * 100.0).unwrap();
        assert_eq!(t.float_col("pct").unwrap()[0], 50.0);
    }

    #[test]
    fn top_k_descending() {
        let t = scores();
        let top = t.top_k(&["score"], 2, false).unwrap();
        assert_eq!(top.int_col("id").unwrap(), &[2, 4]);
        assert_eq!(top.row_ids(), &[1, 3]);
    }

    #[test]
    fn top_k_ascending_and_bounds() {
        let t = scores();
        let bottom = t.top_k(&["score"], 2, true).unwrap();
        assert_eq!(bottom.int_col("id").unwrap(), &[3, 5]);
        assert_eq!(t.top_k(&["score"], 0, true).unwrap().n_rows(), 0);
        assert_eq!(t.top_k(&["score"], 100, true).unwrap().n_rows(), 5);
        assert!(t.top_k(&["nope"], 1, true).is_err());
    }

    #[test]
    fn top_k_matches_full_sort() {
        let mut big = Table::from_int_column(
            "v",
            (0..5_000)
                .map(|i| (i * 2_654_435_761u64 as i64) % 100_000)
                .collect(),
        );
        let top = big.top_k(&["v"], 50, false).unwrap();
        big.order_by(&["v"], false).unwrap();
        assert_eq!(top.int_col("v").unwrap(), &big.int_col("v").unwrap()[..50]);
    }
}
