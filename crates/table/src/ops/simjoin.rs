//! SimJoin: Ringo's similarity join (paper §2.3).
//!
//! "Ringo implements SimJoin, which joins two records if their distance is
//! smaller than a given threshold." We implement a sort-merge band join on
//! the first coordinate — a necessary condition for any Lp distance — and,
//! when more coordinates are given, filter the banded candidates by full
//! Euclidean distance.

use crate::ops::join::materialize_join;
use crate::{ColumnData, Result, Table, TableError};

fn numeric_col<'a>(t: &'a Table, name: &str) -> Result<Box<dyn Fn(usize) -> f64 + Sync + 'a>> {
    let i = t.schema().index_of(name)?;
    match t.column(i) {
        ColumnData::Int(v) => Ok(Box::new(move |row| v[row] as f64)),
        ColumnData::Float(v) => Ok(Box::new(move |row| v[row])),
        ColumnData::Str(_) => Err(TableError::TypeMismatch {
            column: name.to_string(),
            expected: "int or float",
            actual: "str",
        }),
    }
}

impl Table {
    /// Joins rows of `self` and `other` whose points — formed from the
    /// parallel lists of numeric columns — lie within Euclidean distance
    /// `threshold`. With a single column pair this is the classic 1-D band
    /// join `|a - b| <= threshold`.
    ///
    /// Output layout matches [`Table::join`]: all left columns, then all
    /// right columns with clash suffixes.
    pub fn sim_join(
        &self,
        other: &Table,
        left_cols: &[&str],
        right_cols: &[&str],
        threshold: f64,
    ) -> Result<Table> {
        let mut sp = ringo_trace::span!("table.simjoin");
        sp.rows_in(self.n_rows() + other.n_rows());
        if left_cols.is_empty() || left_cols.len() != right_cols.len() {
            return Err(TableError::InvalidArgument(
                "sim_join requires equally many (>=1) columns on both sides".into(),
            ));
        }
        if threshold.is_nan() || threshold < 0.0 {
            return Err(TableError::InvalidArgument(
                "sim_join threshold must be non-negative".into(),
            ));
        }
        let lget: Vec<_> = left_cols
            .iter()
            .map(|c| numeric_col(self, c))
            .collect::<Result<_>>()?;
        let rget: Vec<_> = right_cols
            .iter()
            .map(|c| numeric_col(other, c))
            .collect::<Result<_>>()?;

        // Sort both sides by the first coordinate.
        let mut lsorted: Vec<(f64, u32)> =
            (0..self.n_rows()).map(|r| (lget[0](r), r as u32)).collect();
        let mut rsorted: Vec<(f64, u32)> = (0..other.n_rows())
            .map(|r| (rget[0](r), r as u32))
            .collect();
        lsorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        rsorted.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Sliding window: for each left value, right candidates in
        // [v - threshold, v + threshold].
        let mut left_rows = Vec::new();
        let mut right_rows = Vec::new();
        let mut lo = 0usize;
        for &(lv, lrow) in &lsorted {
            while lo < rsorted.len() && rsorted[lo].0 < lv - threshold {
                lo += 1;
            }
            let mut j = lo;
            while j < rsorted.len() && rsorted[j].0 <= lv + threshold {
                let rrow = rsorted[j].1;
                let within = if lget.len() == 1 {
                    true
                } else {
                    let mut d2 = 0.0;
                    for dim in 0..lget.len() {
                        let diff = lget[dim](lrow as usize) - rget[dim](rrow as usize);
                        d2 += diff * diff;
                    }
                    d2 <= threshold * threshold
                };
                if within {
                    left_rows.push(lrow);
                    right_rows.push(rrow);
                }
                j += 1;
            }
        }
        let out = materialize_join(self, other, &left_rows, &right_rows)?;
        sp.rows_out(out.n_rows());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::{ColumnType, Schema, Table, Value};

    fn points(vals: &[(i64, f64)]) -> Table {
        let schema = Schema::new([("x", ColumnType::Int), ("y", ColumnType::Float)]);
        let mut t = Table::new(schema);
        for (x, y) in vals {
            t.push_row(&[Value::Int(*x), Value::Float(*y)]).unwrap();
        }
        t
    }

    #[test]
    fn one_dimensional_band_join() {
        let l = points(&[(0, 0.0), (10, 0.0), (20, 0.0)]);
        let r = points(&[(2, 0.0), (9, 0.0), (50, 0.0)]);
        let j = l.sim_join(&r, &["x"], &["x"], 2.0).unwrap();
        // (0,2), (10,9) match; 20 and 50 have no partner.
        assert_eq!(j.n_rows(), 2);
        let mut pairs: Vec<(i64, i64)> = j
            .int_col("x")
            .unwrap()
            .iter()
            .zip(j.int_col("x-1").unwrap())
            .map(|(a, b)| (*a, *b))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 2), (10, 9)]);
    }

    #[test]
    fn threshold_zero_is_exact_match() {
        let l = points(&[(1, 0.0), (2, 0.0)]);
        let r = points(&[(2, 0.0), (3, 0.0)]);
        let j = l.sim_join(&r, &["x"], &["x"], 0.0).unwrap();
        assert_eq!(j.n_rows(), 1);
    }

    #[test]
    fn euclidean_two_dimensional() {
        let l = points(&[(0, 0.0)]);
        let r = points(&[(1, 1.0), (1, 0.0), (3, 0.0)]);
        // Distances from (0,0): sqrt(2)≈1.41, 1.0, 3.0.
        let j = l.sim_join(&r, &["x", "y"], &["x", "y"], 1.2).unwrap();
        assert_eq!(j.n_rows(), 1);
        assert_eq!(j.get(0, "x-1").unwrap(), Value::Int(1));
        let j = l.sim_join(&r, &["x", "y"], &["x", "y"], 1.5).unwrap();
        assert_eq!(j.n_rows(), 2);
    }

    #[test]
    fn self_sim_join_pairs_near_rows() {
        let t = points(&[(0, 0.0), (1, 0.0), (5, 0.0)]);
        let j = t.sim_join(&t, &["x"], &["x"], 1.0).unwrap();
        // (0,0)(0,1)(1,0)(1,1)(5,5) = 5 pairs including self-pairs.
        assert_eq!(j.n_rows(), 5);
    }

    #[test]
    fn argument_validation() {
        let t = points(&[(0, 0.0)]);
        assert!(t.sim_join(&t, &[], &[], 1.0).is_err());
        assert!(t.sim_join(&t, &["x"], &["x", "y"], 1.0).is_err());
        assert!(t.sim_join(&t, &["x"], &["x"], -1.0).is_err());
        assert!(t.sim_join(&t, &["x"], &["x"], f64::NAN).is_err());
    }

    #[test]
    fn mixed_int_float_columns() {
        let l = points(&[(0, 1.0)]);
        let r = points(&[(0, 1.4)]);
        let j = l.sim_join(&r, &["y"], &["y"], 0.5).unwrap();
        assert_eq!(j.n_rows(), 1);
        let j = l.sim_join(&r, &["y"], &["y"], 0.3).unwrap();
        assert_eq!(j.n_rows(), 0);
    }
}
