//! NextK: Ringo's predecessor–successor join (paper §2.3).
//!
//! "NextK ... joins predecessor-successor records": within each group (for
//! example, all events of one user or one discussion thread), records are
//! ordered by a timestamp-like column and each record is joined to its next
//! `k` successors — the canonical way to turn an event log into edges that
//! follow temporal order.

use crate::ops::join::materialize_join;
use crate::{Result, Table, TableError};

impl Table {
    /// Joins each row to its next `k` successors in `order_col` order,
    /// optionally restricted to rows sharing the same `group_col` value.
    ///
    /// Output layout matches [`Table::join`] with `self` on both sides:
    /// predecessor columns first, successor columns suffixed. Ties in the
    /// order column are broken by original row position (the sort is
    /// stable), so results are deterministic.
    pub fn next_k(&self, group_col: Option<&str>, order_col: &str, k: usize) -> Result<Table> {
        let mut sp = ringo_trace::span!("table.nextk");
        sp.rows_in(self.n_rows());
        let (left_rows, right_rows) = self.next_k_pairs_sel(group_col, order_col, k, None)?;
        let out = materialize_join(self, self, &left_rows, &right_rows)?;
        sp.rows_out(out.n_rows());
        Ok(out)
    }

    /// Pair kernel shared by the eager verb and the lazy executor:
    /// `(predecessor, successor)` row positions for [`Table::next_k`],
    /// restricted to the rows of the optional selection vector. Sorting is
    /// stable with ties broken by `sel` order, matching what the eager verb
    /// would produce on a pre-materialized selection.
    pub(crate) fn next_k_pairs_sel(
        &self,
        group_col: Option<&str>,
        order_col: &str,
        k: usize,
        sel: Option<&[u32]>,
    ) -> Result<(Vec<u32>, Vec<u32>)> {
        if k == 0 {
            return Err(TableError::InvalidArgument("next_k requires k >= 1".into()));
        }
        // Sort positions by (group, order) without copying the table.
        let sort_cols: Vec<&str> = match group_col {
            Some(g) => vec![g, order_col],
            None => vec![order_col],
        };
        let perm = self.order_perm_sel(&sort_cols, true, sel)?;

        // Group keys for boundary detection (only when grouping).
        let gidx = match group_col {
            Some(g) => Some(self.schema.index_of(g)?),
            None => None,
        };
        let same_group = |a: usize, b: usize| -> bool {
            match gidx {
                None => true,
                Some(c) => match &self.cols[c] {
                    crate::ColumnData::Int(v) => v[a] == v[b],
                    crate::ColumnData::Float(v) => v[a].to_bits() == v[b].to_bits(),
                    crate::ColumnData::Str(v) => v[a] == v[b],
                },
            }
        };

        let mut left_rows = Vec::new();
        let mut right_rows = Vec::new();
        for i in 0..perm.len() {
            for j in (i + 1)..perm.len().min(i + 1 + k) {
                if !same_group(perm[i] as usize, perm[j] as usize) {
                    break;
                }
                left_rows.push(perm[i]);
                right_rows.push(perm[j]);
            }
        }
        Ok((left_rows, right_rows))
    }
}

#[cfg(test)]
mod tests {
    use crate::{ColumnType, Schema, Table, Value};

    fn events() -> Table {
        let schema = Schema::new([
            ("user", ColumnType::Int),
            ("ts", ColumnType::Int),
            ("page", ColumnType::Str),
        ]);
        let mut t = Table::new(schema);
        for (u, ts, p) in [
            (1i64, 30i64, "c"),
            (1, 10, "a"),
            (2, 5, "x"),
            (1, 20, "b"),
            (2, 6, "y"),
        ] {
            t.push_row(&[u.into(), ts.into(), p.into()]).unwrap();
        }
        t
    }

    #[test]
    fn next_1_within_groups() {
        let t = events();
        let j = t.next_k(Some("user"), "ts", 1).unwrap();
        // user 1: a->b, b->c; user 2: x->y.
        assert_eq!(j.n_rows(), 3);
        let pred: Vec<i64> = j.int_col("ts").unwrap().to_vec();
        let succ: Vec<i64> = j.int_col("ts-1").unwrap().to_vec();
        let mut pairs: Vec<(i64, i64)> = pred.into_iter().zip(succ).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(5, 6), (10, 20), (20, 30)]);
    }

    #[test]
    fn next_2_reaches_further() {
        let t = events();
        let j = t.next_k(Some("user"), "ts", 2).unwrap();
        // user 1 adds a->c; user 2 has no third event.
        assert_eq!(j.n_rows(), 4);
    }

    #[test]
    fn ungrouped_chains_across_everything() {
        let t = events();
        let j = t.next_k(None, "ts", 1).unwrap();
        assert_eq!(j.n_rows(), 4, "n-1 consecutive pairs");
        let pred = j.int_col("ts").unwrap();
        let succ = j.int_col("ts-1").unwrap();
        for (p, s) in pred.iter().zip(succ) {
            assert!(p <= s);
        }
    }

    #[test]
    fn k_larger_than_group() {
        let t = events();
        let j = t.next_k(Some("user"), "ts", 100).unwrap();
        // user 1: 3 events -> 3 pairs; user 2: 2 events -> 1 pair.
        assert_eq!(j.n_rows(), 4);
    }

    #[test]
    fn output_columns_are_suffixed_copies() {
        let t = events();
        let j = t.next_k(Some("user"), "ts", 1).unwrap();
        for name in ["user", "ts", "page", "user-1", "ts-1", "page-1"] {
            assert!(j.schema().contains(name), "missing {name}");
        }
        // Group column equal on both sides.
        let a = j.int_col("user").unwrap();
        let b = j.int_col("user-1").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_arguments() {
        let t = events();
        assert!(t.next_k(Some("user"), "ts", 0).is_err());
        assert!(t.next_k(Some("nope"), "ts", 1).is_err());
        assert!(t.next_k(None, "nope", 1).is_err());
    }

    #[test]
    fn empty_table_gives_empty_result() {
        let t = Table::new(Schema::new([("ts", ColumnType::Int)]));
        let j = t.next_k(None, "ts", 1).unwrap();
        assert_eq!(j.n_rows(), 0);
        let _ = Value::Int(0);
    }
}
