//! Selection: filter rows by a predicate, in place or into a new table.
//!
//! The paper's Table 4 benchmarks exactly this operator: "rows are chosen
//! based on a comparison with a constant value", with the in-place variant
//! modifying the current table. Predicate evaluation is embarrassingly
//! parallel; we evaluate per-chunk match lists with the fork-join runtime
//! and concatenate (threads share nothing, mirroring Ringo's
//! contention-free OpenMP loops).

use crate::{ColumnData, Result, Table, TableError};
use ringo_concurrent::{
    morsel_bounds, parallel_for_morsels_traced, parallel_map, parallel_map_morsels_traced,
    DisjointSlice, MorselStats,
};

/// Comparison operator for predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl Cmp {
    #[inline]
    fn eval<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            Self::Lt => a < b,
            Self::Le => a <= b,
            Self::Eq => a == b,
            Self::Ne => a != b,
            Self::Ge => a >= b,
            Self::Gt => a > b,
        }
    }
}

/// A boolean predicate over one row, built from column-vs-constant
/// comparisons composed with and/or/not.
#[derive(Clone, Debug)]
pub enum Predicate {
    /// Compare an integer column against a constant.
    Int {
        /// Column name.
        column: String,
        /// Comparison operator.
        cmp: Cmp,
        /// Constant operand.
        value: i64,
    },
    /// Compare a float column against a constant.
    Float {
        /// Column name.
        column: String,
        /// Comparison operator.
        cmp: Cmp,
        /// Constant operand.
        value: f64,
    },
    /// Compare a string column against a constant (only `Eq`/`Ne` are
    /// meaningful orders for interned strings; other operators compare the
    /// resolved string lexicographically).
    Str {
        /// Column name.
        column: String,
        /// Comparison operator.
        cmp: Cmp,
        /// Constant operand.
        value: String,
    },
    /// Membership of an integer column in a value set (semi-join-style
    /// filtering without materializing a join).
    IntIn {
        /// Column name.
        column: String,
        /// Accepted values.
        values: Vec<i64>,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Matches every row.
    True,
}

impl Predicate {
    /// `column <cmp> value` over an integer column.
    pub fn int(column: &str, cmp: Cmp, value: i64) -> Self {
        Self::Int {
            column: column.into(),
            cmp,
            value,
        }
    }

    /// `column <cmp> value` over a float column.
    pub fn float(column: &str, cmp: Cmp, value: f64) -> Self {
        Self::Float {
            column: column.into(),
            cmp,
            value,
        }
    }

    /// `low <= column <= high` over an integer column.
    pub fn int_between(column: &str, low: i64, high: i64) -> Self {
        Self::int(column, Cmp::Ge, low).and(Self::int(column, Cmp::Le, high))
    }

    /// `column IN values` over an integer column.
    pub fn int_in(column: &str, values: Vec<i64>) -> Self {
        Self::IntIn {
            column: column.into(),
            values,
        }
    }

    /// `column == value` over a string column.
    pub fn str_eq(column: &str, value: &str) -> Self {
        Self::Str {
            column: column.into(),
            cmp: Cmp::Eq,
            value: value.into(),
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Self {
        Self::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Self {
        Self::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Self::Not(Box::new(self))
    }

    /// The column names this predicate reads, deduplicated, in first-use
    /// order. The plan optimizer uses this for predicate pushdown and
    /// column pruning.
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Self::Int { column, .. }
            | Self::Float { column, .. }
            | Self::Str { column, .. }
            | Self::IntIn { column, .. } => {
                if !out.iter().any(|c| c == column) {
                    out.push(column.clone());
                }
            }
            Self::And(a, b) | Self::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Self::Not(p) => p.collect_columns(out),
            Self::True => {}
        }
    }
}

/// Predicate with column indices resolved and string constants mapped to
/// pool symbols, cheap to evaluate per row.
enum Compiled {
    Int(usize, Cmp, i64),
    Float(usize, Cmp, f64),
    IntIn(usize, std::collections::HashSet<i64>),
    /// Fast path: string equality against an interned symbol
    /// (`None` = the constant is not in the pool, so `Eq` never matches).
    StrEqSym(usize, Option<u32>, bool),
    /// Slow path: lexicographic comparison of the resolved string.
    StrOrd(usize, Cmp, String),
    And(Box<Compiled>, Box<Compiled>),
    Or(Box<Compiled>, Box<Compiled>),
    Not(Box<Compiled>),
    True,
}

impl Compiled {
    #[inline]
    fn eval(&self, t: &Table, row: usize) -> bool {
        match self {
            Self::Int(c, cmp, v) => cmp.eval(t.cols[*c].as_int()[row], *v),
            Self::Float(c, cmp, v) => cmp.eval(t.cols[*c].as_float()[row], *v),
            Self::IntIn(c, set) => set.contains(&t.cols[*c].as_int()[row]),
            Self::StrEqSym(c, sym, negate) => {
                let hit = match sym {
                    Some(s) => t.cols[*c].as_str_syms()[row] == *s,
                    None => false,
                };
                hit != *negate
            }
            Self::StrOrd(c, cmp, v) => {
                let s = t.pool.get(t.cols[*c].as_str_syms()[row]);
                cmp.eval(s, v.as_str())
            }
            Self::And(a, b) => a.eval(t, row) && b.eval(t, row),
            Self::Or(a, b) => a.eval(t, row) || b.eval(t, row),
            Self::Not(p) => !p.eval(t, row),
            Self::True => true,
        }
    }
}

fn compile(pred: &Predicate, t: &Table) -> Result<Compiled> {
    Ok(match pred {
        Predicate::Int { column, cmp, value } => {
            let i = t.schema.index_of(column)?;
            if !matches!(t.cols[i], ColumnData::Int(_)) {
                return Err(type_err(t, i, "int"));
            }
            Compiled::Int(i, *cmp, *value)
        }
        Predicate::Float { column, cmp, value } => {
            let i = t.schema.index_of(column)?;
            if !matches!(t.cols[i], ColumnData::Float(_)) {
                return Err(type_err(t, i, "float"));
            }
            Compiled::Float(i, *cmp, *value)
        }
        Predicate::Str { column, cmp, value } => {
            let i = t.schema.index_of(column)?;
            if !matches!(t.cols[i], ColumnData::Str(_)) {
                return Err(type_err(t, i, "str"));
            }
            match cmp {
                Cmp::Eq => Compiled::StrEqSym(i, t.pool.lookup(value), false),
                Cmp::Ne => Compiled::StrEqSym(i, t.pool.lookup(value), true),
                other => Compiled::StrOrd(i, *other, value.clone()),
            }
        }
        Predicate::IntIn { column, values } => {
            let i = t.schema.index_of(column)?;
            if !matches!(t.cols[i], ColumnData::Int(_)) {
                return Err(type_err(t, i, "int"));
            }
            Compiled::IntIn(i, values.iter().copied().collect())
        }
        Predicate::And(a, b) => Compiled::And(Box::new(compile(a, t)?), Box::new(compile(b, t)?)),
        Predicate::Or(a, b) => Compiled::Or(Box::new(compile(a, t)?), Box::new(compile(b, t)?)),
        Predicate::Not(p) => Compiled::Not(Box::new(compile(p, t)?)),
        Predicate::True => Compiled::True,
    })
}

fn type_err(t: &Table, col: usize, expected: &'static str) -> TableError {
    TableError::TypeMismatch {
        column: t.schema.name(col).to_string(),
        expected,
        actual: t.cols[col].column_type().name(),
    }
}

impl Table {
    /// Selection-vector kernel shared by the eager verbs and the lazy
    /// executor: positions (into this table) of the rows matching `pred`,
    /// drawn from `sel` (every row when `None`), in `sel` order.
    ///
    /// See [`Table::select_sel_stats`] for the kernel; this wrapper drops
    /// the morsel dispatch stats.
    pub(crate) fn select_sel(&self, pred: &Predicate, sel: Option<&[u32]>) -> Result<Vec<u32>> {
        self.select_sel_stats(pred, sel).map(|(keep, _)| keep)
    }

    /// Morsel-driven selection kernel. The index space is cut into
    /// fixed-size row-range morsels ([`morsel_bounds`] — a function of the
    /// row count only, never the thread count) claimed dynamically by pool
    /// workers; each morsel fills a private window of the output.
    ///
    /// Runs two passes — count, then fill into one exactly-sized vector
    /// through per-morsel disjoint windows — so the kernel performs a
    /// bounded number of allocations regardless of the match count, and
    /// the concatenation-by-offset keeps hits in `sel` order: the output
    /// is byte-identical to a sequential scan at any thread count.
    // LINT: hot — the select_alloc pin depends on the bounded-alloc design.
    pub(crate) fn select_sel_stats(
        &self,
        pred: &Predicate,
        sel: Option<&[u32]>,
    ) -> Result<(Vec<u32>, MorselStats)> {
        let compiled = compile(pred, self)?;
        let compiled = &compiled;
        let n = sel.map_or(self.n_rows(), <[u32]>::len);
        let row_at = |i: usize| -> usize {
            match sel {
                Some(s) => s[i] as usize,
                None => i,
            }
        };
        let (counts, _) =
            parallel_map_morsels_traced("plan.morsel.select", n, self.threads, |_, range| {
                let mut c = 0usize;
                for i in range {
                    if compiled.eval(self, row_at(i)) {
                        c += 1;
                    }
                }
                c
            });
        let total: usize = counts.iter().sum();
        let mut keep = vec![0u32; total];
        // Both passes partition `0..n` with the same morsel bounds, so
        // morsel `m` of the fill pass writes exactly `counts[m]` hits
        // starting at the prefix sum of the earlier morsels.
        let bounds = morsel_bounds(n);
        let mut offsets = Vec::with_capacity(counts.len());
        let mut acc = 0usize;
        for c in &counts {
            offsets.push(acc);
            acc += c;
        }
        let out = DisjointSlice::new(&mut keep);
        let stats =
            parallel_for_morsels_traced("plan.morsel.select", n, self.threads, |morsel, range| {
                debug_assert_eq!(range.start, bounds[morsel]);
                let mut cursor = offsets[morsel];
                for i in range {
                    let row = row_at(i);
                    if compiled.eval(self, row) {
                        // SAFETY: morsel `morsel` writes only
                        // `offsets[morsel]..offsets[morsel] + counts[morsel]`,
                        // and those windows are disjoint by construction of the
                        // prefix sums over identical morsel bounds.
                        unsafe { out.write(cursor, row as u32) };
                        cursor += 1;
                    }
                }
            });
        Ok((keep, stats))
    }

    /// Positions of all rows matching `pred`, computed in parallel.
    pub fn select_rows(&self, pred: &Predicate) -> Result<Vec<usize>> {
        Ok(self
            .select_sel(pred, None)?
            .into_iter()
            .map(|r| r as usize)
            .collect())
    }

    /// Returns a new table containing the rows matching `pred`; row ids are
    /// preserved.
    pub fn select(&self, pred: &Predicate) -> Result<Table> {
        let mut sp = ringo_trace::span!("table.select");
        sp.rows_in(self.n_rows());
        let out = self.gather_rows_sel(&self.select_sel(pred, None)?);
        sp.rows_out(out.n_rows());
        Ok(out)
    }

    /// Filters this table in place (the paper's "Select, in place"),
    /// keeping rows matching `pred`. Returns the number of surviving rows.
    pub fn select_in_place(&mut self, pred: &Predicate) -> Result<usize> {
        let mut sp = ringo_trace::span!("table.select_in_place");
        sp.rows_in(self.n_rows());
        let keep = self.select_sel(pred, None)?;
        self.retain_rows_sel(&keep);
        sp.rows_out(self.n_rows());
        Ok(self.n_rows())
    }

    /// Counts matching rows without materializing them.
    pub fn count_where(&self, pred: &Predicate) -> Result<usize> {
        let compiled = compile(pred, self)?;
        let compiled = &compiled;
        let counts = parallel_map(self.n_rows(), self.threads, |range| {
            let mut c = 0usize;
            for row in range {
                if compiled.eval(self, row) {
                    c += 1;
                }
            }
            c
        });
        Ok(counts.iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnType, Schema, Value};

    fn posts() -> Table {
        let schema = Schema::new([
            ("Tag", ColumnType::Str),
            ("Type", ColumnType::Str),
            ("Score", ColumnType::Int),
            ("Weight", ColumnType::Float),
        ]);
        let mut t = Table::new(schema);
        let rows: [(&str, &str, i64, f64); 5] = [
            ("java", "question", 10, 0.5),
            ("java", "answer", 3, 1.5),
            ("rust", "question", 7, 2.5),
            ("java", "answer", -2, 3.5),
            ("rust", "answer", 10, 4.5),
        ];
        for (tag, ty, score, w) in rows {
            t.push_row(&[tag.into(), ty.into(), Value::Int(score), Value::Float(w)])
                .unwrap();
        }
        t
    }

    #[test]
    fn int_comparisons() {
        let t = posts();
        assert_eq!(
            t.count_where(&Predicate::int("Score", Cmp::Gt, 5)).unwrap(),
            3
        );
        assert_eq!(
            t.count_where(&Predicate::int("Score", Cmp::Eq, 10))
                .unwrap(),
            2
        );
        assert_eq!(
            t.count_where(&Predicate::int("Score", Cmp::Lt, 0)).unwrap(),
            1
        );
        assert_eq!(
            t.count_where(&Predicate::int("Score", Cmp::Ne, 10))
                .unwrap(),
            3
        );
    }

    #[test]
    fn string_equality_uses_pool_fast_path() {
        let t = posts();
        let java = t.select(&Predicate::str_eq("Tag", "java")).unwrap();
        assert_eq!(java.n_rows(), 3);
        // Constant not in pool: matches nothing, Ne matches everything.
        assert_eq!(t.count_where(&Predicate::str_eq("Tag", "go")).unwrap(), 0);
        let ne = Predicate::Str {
            column: "Tag".into(),
            cmp: Cmp::Ne,
            value: "go".into(),
        };
        assert_eq!(t.count_where(&ne).unwrap(), 5);
    }

    #[test]
    fn string_ordering_comparisons() {
        let t = posts();
        let p = Predicate::Str {
            column: "Tag".into(),
            cmp: Cmp::Gt,
            value: "java".into(),
        };
        assert_eq!(t.count_where(&p).unwrap(), 2, "rust > java");
    }

    #[test]
    fn boolean_combinators() {
        let t = posts();
        let p = Predicate::str_eq("Tag", "java").and(Predicate::str_eq("Type", "answer"));
        assert_eq!(t.count_where(&p).unwrap(), 2);
        let p = Predicate::str_eq("Tag", "rust").or(Predicate::int("Score", Cmp::Lt, 0));
        assert_eq!(t.count_where(&p).unwrap(), 3);
        let p = Predicate::str_eq("Tag", "rust").not();
        assert_eq!(t.count_where(&p).unwrap(), 3);
        assert_eq!(t.count_where(&Predicate::True).unwrap(), 5);
    }

    #[test]
    fn float_predicate() {
        let t = posts();
        assert_eq!(
            t.count_where(&Predicate::float("Weight", Cmp::Ge, 2.5))
                .unwrap(),
            3
        );
    }

    #[test]
    fn int_in_and_between_helpers() {
        let t = posts();
        assert_eq!(
            t.count_where(&Predicate::int_in("Score", vec![10, -2]))
                .unwrap(),
            3
        );
        assert_eq!(
            t.count_where(&Predicate::int_in("Score", vec![])).unwrap(),
            0
        );
        assert_eq!(
            t.count_where(&Predicate::int_between("Score", 3, 10))
                .unwrap(),
            4
        );
        assert!(t.count_where(&Predicate::int_in("Tag", vec![1])).is_err());
    }

    #[test]
    fn select_preserves_row_ids_and_in_place_matches_copy() {
        let t = posts();
        let pred = Predicate::int("Score", Cmp::Ge, 7);
        let copied = t.select(&pred).unwrap();
        assert_eq!(copied.row_ids(), &[0, 2, 4]);

        let mut inplace = t.clone();
        let kept = inplace.select_in_place(&pred).unwrap();
        assert_eq!(kept, 3);
        assert_eq!(inplace.row_ids(), copied.row_ids());
        assert_eq!(
            inplace.int_col("Score").unwrap(),
            copied.int_col("Score").unwrap()
        );
    }

    #[test]
    fn type_and_name_errors() {
        let t = posts();
        assert!(t.select(&Predicate::int("Tag", Cmp::Eq, 1)).is_err());
        assert!(t.select(&Predicate::int("Nope", Cmp::Eq, 1)).is_err());
        assert!(t.select(&Predicate::float("Score", Cmp::Eq, 1.0)).is_err());
    }

    #[test]
    fn select_on_empty_table() {
        let t = Table::new(Schema::new([("x", ColumnType::Int)]));
        assert_eq!(t.count_where(&Predicate::True).unwrap(), 0);
    }
}
