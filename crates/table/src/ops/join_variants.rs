//! Join variants beyond the inner hash join: left outer, semi, and anti
//! joins. Semi/anti joins filter rows of the left table by key existence
//! on the right — the idioms graph workflows use to restrict an edge
//! table to "known users" (semi) or "everyone except bots" (anti).

use crate::{ColumnData, Result, Table, TableError};
use std::collections::HashSet;

/// Key existence set over a join column (int or string), resolving
/// strings through the owning pool so tables with different pools
/// compare by text.
enum KeySet<'a> {
    Int(HashSet<i64>),
    Str(HashSet<&'a str>),
}

impl<'a> KeySet<'a> {
    fn build(t: &'a Table, col: &str) -> Result<Self> {
        let i = t.schema.index_of(col)?;
        Ok(match &t.cols[i] {
            ColumnData::Int(v) => Self::Int(v.iter().copied().collect()),
            ColumnData::Str(v) => Self::Str(v.iter().map(|&sym| t.pool.get(sym)).collect()),
            ColumnData::Float(_) => {
                return Err(TableError::InvalidArgument(
                    "join keys must be int or str columns".into(),
                ))
            }
        })
    }

    fn contains(&self, t: &Table, col_idx: usize, row: usize) -> bool {
        match (self, &t.cols[col_idx]) {
            (Self::Int(set), ColumnData::Int(v)) => set.contains(&v[row]),
            (Self::Str(set), ColumnData::Str(v)) => set.contains(t.pool.get(v[row])),
            _ => false,
        }
    }
}

impl Table {
    /// Left outer join: like [`Table::join`], but left rows without a
    /// match survive with right-side columns filled with `0` / `0.0` /
    /// `""` (Ringo tables have no NULL; the paper's schema has none
    /// either).
    pub fn left_join(&self, other: &Table, left_col: &str, right_col: &str) -> Result<Table> {
        let inner = self.join(other, left_col, right_col)?;
        // Find unmatched left rows and append them with default right cells.
        let keys = KeySet::build(other, right_col)?;
        let li = self.schema.index_of(left_col)?;
        let unmatched: Vec<usize> = (0..self.n_rows())
            .filter(|&row| !keys.contains(self, li, row))
            .collect();
        if unmatched.is_empty() {
            return Ok(inner);
        }
        let mut out = inner;
        let left_width = self.n_cols();
        for &row in &unmatched {
            for (i, col) in out.cols.iter_mut().enumerate() {
                if i < left_width {
                    col.push_from(&self.cols[i], row);
                } else {
                    match col {
                        ColumnData::Int(v) => v.push(0),
                        ColumnData::Float(v) => v.push(0.0),
                        ColumnData::Str(v) => v.push(0), // symbol 0 = ""
                    }
                }
            }
            let id = out.next_row_id;
            out.row_ids.push(id);
            out.next_row_id += 1;
        }
        Ok(out)
    }

    /// Semi join: rows of `self` whose key appears in `other` (row ids
    /// preserved; output has only `self`'s columns, each row at most once).
    pub fn semi_join(&self, other: &Table, left_col: &str, right_col: &str) -> Result<Table> {
        let keys = KeySet::build(other, right_col)?;
        let li = self.schema.index_of(left_col)?;
        self.check_key_compat(li, other, right_col)?;
        let keep: Vec<usize> = (0..self.n_rows())
            .filter(|&row| keys.contains(self, li, row))
            .collect();
        Ok(self.gather_rows(&keep))
    }

    /// Anti join: rows of `self` whose key does **not** appear in `other`.
    pub fn anti_join(&self, other: &Table, left_col: &str, right_col: &str) -> Result<Table> {
        let keys = KeySet::build(other, right_col)?;
        let li = self.schema.index_of(left_col)?;
        self.check_key_compat(li, other, right_col)?;
        let keep: Vec<usize> = (0..self.n_rows())
            .filter(|&row| !keys.contains(self, li, row))
            .collect();
        Ok(self.gather_rows(&keep))
    }

    fn check_key_compat(&self, left_idx: usize, other: &Table, right_col: &str) -> Result<()> {
        let ri = other.schema.index_of(right_col)?;
        let lt = self.cols[left_idx].column_type();
        let rt = other.cols[ri].column_type();
        if lt != rt {
            return Err(TableError::TypeMismatch {
                column: right_col.to_string(),
                expected: lt.name(),
                actual: rt.name(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnType, Schema, Value};

    fn users() -> Table {
        let schema = Schema::new([("uid", ColumnType::Int), ("name", ColumnType::Str)]);
        let mut t = Table::new(schema);
        for (u, n) in [(1i64, "ada"), (2, "bob"), (3, "cyd")] {
            t.push_row(&[u.into(), n.into()]).unwrap();
        }
        t
    }

    fn events() -> Table {
        Table::from_int_column("uid", vec![1, 1, 3, 9])
    }

    #[test]
    fn semi_join_keeps_matching_rows_once() {
        let u = users();
        let e = events();
        let s = u.semi_join(&e, "uid", "uid").unwrap();
        assert_eq!(s.int_col("uid").unwrap(), &[1, 3]);
        assert_eq!(s.row_ids(), &[0, 2], "ids preserved");
        assert_eq!(s.n_cols(), 2, "left columns only");
    }

    #[test]
    fn anti_join_is_the_complement() {
        let u = users();
        let e = events();
        let a = u.anti_join(&e, "uid", "uid").unwrap();
        assert_eq!(a.int_col("uid").unwrap(), &[2]);
        let s = u.semi_join(&e, "uid", "uid").unwrap();
        assert_eq!(a.n_rows() + s.n_rows(), u.n_rows());
    }

    #[test]
    fn left_join_pads_unmatched_rows() {
        let u = users();
        let e = events();
        let j = u.left_join(&e, "uid", "uid").unwrap();
        // uid 1 matches twice, uid 3 once, uid 2 unmatched -> 4 rows.
        assert_eq!(j.n_rows(), 4);
        let uids = j.int_col("uid").unwrap();
        let right = j.int_col("uid-1").unwrap();
        let bob_row = uids.iter().position(|&x| x == 2).unwrap();
        assert_eq!(right[bob_row], 0, "default fill for unmatched");
        assert_eq!(j.get(bob_row, "name").unwrap(), Value::Str("bob".into()));
    }

    #[test]
    fn string_keys_across_pools() {
        let schema = Schema::new([("tag", ColumnType::Str)]);
        let mut l = Table::new(schema.clone());
        for s in ["java", "rust", "go"] {
            l.push_row(&[s.into()]).unwrap();
        }
        let mut r = Table::new(schema);
        for s in ["zzz", "rust"] {
            r.push_row(&[s.into()]).unwrap();
        }
        let s = l.semi_join(&r, "tag", "tag").unwrap();
        assert_eq!(s.n_rows(), 1);
        assert_eq!(s.get(0, "tag").unwrap(), Value::Str("rust".into()));
        let a = l.anti_join(&r, "tag", "tag").unwrap();
        assert_eq!(a.n_rows(), 2);
    }

    #[test]
    fn type_mismatch_and_float_keys_rejected() {
        let u = users();
        let schema = Schema::new([("uid", ColumnType::Float)]);
        let mut f = Table::new(schema);
        f.push_row(&[Value::Float(1.0)]).unwrap();
        assert!(u.semi_join(&f, "uid", "uid").is_err());
        assert!(u.anti_join(&f, "uid", "uid").is_err());
        assert!(u.semi_join(&f, "name", "uid").is_err());
    }

    #[test]
    fn empty_right_side() {
        let u = users();
        let empty = Table::from_int_column("uid", vec![]);
        assert_eq!(u.semi_join(&empty, "uid", "uid").unwrap().n_rows(), 0);
        assert_eq!(u.anti_join(&empty, "uid", "uid").unwrap().n_rows(), 3);
        let l = u.left_join(&empty, "uid", "uid").unwrap();
        assert_eq!(l.n_rows(), 3, "all rows padded");
    }
}
