//! Exploratory helpers: per-column summaries, sampling, head.

use crate::{ColumnData, ColumnType, Result, Schema, StringPool, Table};
use std::collections::HashSet;

impl Table {
    /// One-row-per-column summary table with schema
    /// `column:str, type:str, count:int, distinct:int, min:float,
    /// max:float, mean:float`. For string columns the numeric cells are
    /// 0 and `distinct` counts distinct symbols.
    pub fn describe(&self) -> Table {
        let mut names: Vec<&str> = Vec::new();
        let mut types: Vec<&str> = Vec::new();
        let mut counts: Vec<i64> = Vec::new();
        let mut distincts: Vec<i64> = Vec::new();
        let (mut mins, mut maxs, mut means): (Vec<f64>, Vec<f64>, Vec<f64>) =
            (Vec::new(), Vec::new(), Vec::new());
        for (i, (name, ty)) in self.schema.iter().enumerate() {
            names.push(name);
            types.push(ty.name());
            counts.push(self.n_rows() as i64);
            match &self.cols[i] {
                ColumnData::Int(v) => {
                    let set: HashSet<i64> = v.iter().copied().collect();
                    distincts.push(set.len() as i64);
                    mins.push(v.iter().copied().min().unwrap_or(0) as f64);
                    maxs.push(v.iter().copied().max().unwrap_or(0) as f64);
                    means.push(if v.is_empty() {
                        0.0
                    } else {
                        v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64
                    });
                }
                ColumnData::Float(v) => {
                    let set: HashSet<u64> = v.iter().map(|x| x.to_bits()).collect();
                    distincts.push(set.len() as i64);
                    mins.push(v.iter().copied().fold(f64::INFINITY, f64::min));
                    maxs.push(v.iter().copied().fold(f64::NEG_INFINITY, f64::max));
                    means.push(if v.is_empty() {
                        0.0
                    } else {
                        v.iter().sum::<f64>() / v.len() as f64
                    });
                    if v.is_empty() {
                        *mins.last_mut().unwrap() = 0.0;
                        *maxs.last_mut().unwrap() = 0.0;
                    }
                }
                ColumnData::Str(v) => {
                    let set: HashSet<u32> = v.iter().copied().collect();
                    distincts.push(set.len() as i64);
                    mins.push(0.0);
                    maxs.push(0.0);
                    means.push(0.0);
                }
            }
        }
        let mut pool = StringPool::new();
        let name_syms: Vec<u32> = names.iter().map(|n| pool.intern(n)).collect();
        let type_syms: Vec<u32> = types.iter().map(|t| pool.intern(t)).collect();
        let schema = Schema::new([
            ("column", ColumnType::Str),
            ("type", ColumnType::Str),
            ("count", ColumnType::Int),
            ("distinct", ColumnType::Int),
            ("min", ColumnType::Float),
            ("max", ColumnType::Float),
            ("mean", ColumnType::Float),
        ]);
        Table::from_parts(
            schema,
            vec![
                ColumnData::Str(name_syms),
                ColumnData::Str(type_syms),
                ColumnData::Int(counts),
                ColumnData::Int(distincts),
                ColumnData::Float(mins),
                ColumnData::Float(maxs),
                ColumnData::Float(means),
            ],
            pool,
        )
        .expect("summary columns are consistent")
    }

    /// A uniform sample (without replacement) of `n` rows, deterministic
    /// for a fixed `seed`; row ids preserved. Returns the whole table when
    /// `n >= n_rows()`. Output keeps the original row order.
    pub fn sample_rows(&self, n: usize, seed: u64) -> Table {
        let total = self.n_rows();
        if n >= total {
            return self.clone();
        }
        // Floyd's algorithm for a uniform n-subset.
        let mut state = seed | 1;
        let mut rand_below = move |m: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % m as u64) as usize
        };
        let mut chosen: HashSet<usize> = HashSet::with_capacity(n);
        for j in (total - n)..total {
            let t = rand_below(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        let mut keep: Vec<usize> = chosen.into_iter().collect();
        keep.sort_unstable();
        self.gather_rows(&keep)
    }

    /// The first `n` rows (row ids preserved).
    pub fn head(&self, n: usize) -> Result<Table> {
        let keep: Vec<usize> = (0..n.min(self.n_rows())).collect();
        Ok(self.gather_rows(&keep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn t() -> Table {
        let schema = Schema::new([
            ("x", ColumnType::Int),
            ("f", ColumnType::Float),
            ("s", ColumnType::Str),
        ]);
        let mut t = Table::new(schema);
        for (x, f, s) in [
            (1i64, 0.5, "a"),
            (2, 1.5, "b"),
            (2, 2.5, "a"),
            (3, 0.5, "a"),
        ] {
            t.push_row(&[Value::Int(x), Value::Float(f), s.into()])
                .unwrap();
        }
        t
    }

    #[test]
    fn describe_summarizes_each_column() {
        let d = t().describe();
        assert_eq!(d.n_rows(), 3);
        // Row 0: column x.
        assert_eq!(d.get(0, "column").unwrap(), Value::Str("x".into()));
        assert_eq!(d.get(0, "distinct").unwrap(), Value::Int(3));
        assert_eq!(d.get(0, "min").unwrap(), Value::Float(1.0));
        assert_eq!(d.get(0, "max").unwrap(), Value::Float(3.0));
        assert_eq!(d.get(0, "mean").unwrap(), Value::Float(2.0));
        // Row 1: float column.
        assert_eq!(d.get(1, "distinct").unwrap(), Value::Int(3));
        // Row 2: string column.
        assert_eq!(d.get(2, "type").unwrap(), Value::Str("str".into()));
        assert_eq!(d.get(2, "distinct").unwrap(), Value::Int(2));
    }

    #[test]
    fn describe_empty_table() {
        let d = Table::new(Schema::new([("x", ColumnType::Int)])).describe();
        assert_eq!(d.n_rows(), 1);
        assert_eq!(d.get(0, "count").unwrap(), Value::Int(0));
        assert_eq!(d.get(0, "mean").unwrap(), Value::Float(0.0));
    }

    #[test]
    fn sample_is_deterministic_subset() {
        let big = Table::from_int_column("v", (0..1000).collect());
        let s1 = big.sample_rows(100, 7);
        let s2 = big.sample_rows(100, 7);
        assert_eq!(s1.int_col("v").unwrap(), s2.int_col("v").unwrap());
        assert_eq!(s1.n_rows(), 100);
        // Sampled values are distinct and from the source.
        let mut vals = s1.int_col("v").unwrap().to_vec();
        vals.dedup();
        assert_eq!(vals.len(), 100);
        assert!(vals.iter().all(|v| (0..1000).contains(v)));
        // Different seed, (almost surely) different sample.
        let s3 = big.sample_rows(100, 8);
        assert_ne!(s1.int_col("v").unwrap(), s3.int_col("v").unwrap());
    }

    #[test]
    fn sample_larger_than_table_is_identity() {
        let t = t();
        assert_eq!(t.sample_rows(10, 1).n_rows(), 4);
    }

    #[test]
    fn head_takes_prefix() {
        let t = t();
        let h = t.head(2).unwrap();
        assert_eq!(h.n_rows(), 2);
        assert_eq!(h.row_ids(), &[0, 1]);
        assert_eq!(t.head(0).unwrap().n_rows(), 0);
    }
}
