//! Equi hash join.
//!
//! The paper's Table 4 benchmarks join throughput; Ringo's "join operation
//! always produces a new table object". We build an open-addressing hash
//! index on the build side's key column (the smaller table) and probe with
//! the larger side in parallel, each worker emitting a private match list —
//! the contention-free pattern used throughout Ringo's engine.

use crate::{ColumnData, Result, Table, TableError};
use ringo_concurrent::hash_table::hash_i64;
use ringo_concurrent::{
    morsel_bounds, parallel_for_morsels_traced, parallel_map, parallel_map_morsels_traced,
    DisjointSlice, IntHashTable, MorselStats,
};
use std::collections::HashMap;

impl Table {
    /// Joins `self` with `other` on `self.left_col == other.right_col`,
    /// producing a new table whose columns are all of `self`'s followed by
    /// all of `other`'s (name clashes suffixed `-1`, `-2`, ... as in the
    /// paper's §4.1 demo). Key columns must both be `Int` or both `Str`.
    pub fn join(&self, other: &Table, left_col: &str, right_col: &str) -> Result<Table> {
        let mut sp = ringo_trace::span!("table.join");
        sp.rows_in(self.n_rows() + other.n_rows());
        let li = self.schema.index_of(left_col)?;
        let ri = other.schema.index_of(right_col)?;
        let (left_rows, right_rows, _) = join_pairs_sel_stats(self, other, li, ri, None, None)?;
        let out = materialize_join(self, other, &left_rows, &right_rows)?;
        sp.rows_out(out.n_rows());
        Ok(out)
    }
}

/// Minimum build-side rows before the partitioned parallel build kicks in;
/// below this a sequential single-partition build is faster than two
/// scatter passes (and the output is identical either way).
const PARALLEL_BUILD_MIN_ROWS: usize = 4096;

/// Probe kernel shared by the eager verb and the lazy executor: matched
/// `(left_row, right_row)` position pairs (into the underlying tables) for
/// the equi join of `left[li] == right[ri]`, restricted to the rows of the
/// optional selection vectors. Builds the hash index on the side with fewer
/// surviving rows and probes with the other side morsel by morsel.
///
/// For large build sides the index is radix-partitioned by the top bits of
/// the key hash: a stable two-pass scatter groups build positions by
/// partition (preserving selection order within each partition), then one
/// hash table per partition is built in parallel. Every key lives in
/// exactly one partition and its match list keeps selection order, so the
/// partitioned index answers probes identically to the sequential build —
/// pair output is byte-identical at any thread count. The probe side runs
/// as fixed-size morsels whose private pair lists are concatenated in
/// morsel (= selection) order; the returned [`MorselStats`] describe the
/// probe dispatch.
pub(crate) fn join_pairs_sel_stats(
    left: &Table,
    right: &Table,
    li: usize,
    ri: usize,
    lsel: Option<&[u32]>,
    rsel: Option<&[u32]>,
) -> Result<(Vec<u32>, Vec<u32>, MorselStats)> {
    let lt = left.cols[li].column_type();
    let rt = right.cols[ri].column_type();
    if lt != rt {
        return Err(TableError::TypeMismatch {
            column: right.schema.name(ri).to_string(),
            expected: lt.name(),
            actual: rt.name(),
        });
    }
    let ln = lsel.map_or(left.n_rows(), <[u32]>::len);
    let rn = rsel.map_or(right.n_rows(), <[u32]>::len);
    // Probe with the larger effective side.
    let (build, bi, bsel, bn, probe, pi, psel, pn, left_is_build) = if ln <= rn {
        (left, li, lsel, ln, right, ri, rsel, rn, true)
    } else {
        (right, ri, rsel, rn, left, li, lsel, ln, false)
    };
    let brow = |i: usize| -> usize {
        match bsel {
            Some(s) => s[i] as usize,
            None => i,
        }
    };
    let parts = if build.threads <= 1 || bn < PARALLEL_BUILD_MIN_ROWS {
        1
    } else {
        build.threads.next_power_of_two().min(256)
    };
    // Partition by the *top* hash bits: the open-addressing table derives
    // slots from the low bits, so partition and slot choice stay
    // independent. With a single partition the mask is 0, so the shift is
    // irrelevant — wrap it to keep `>>` in range.
    let shift = (64 - parts.trailing_zeros()) % 64;
    let (pairs, stats): (Vec<(u32, u32)>, MorselStats) = match &build.cols[bi] {
        ColumnData::Int(bkeys) => {
            let key_at = |i: usize| bkeys[brow(i)];
            let part_of = |i: usize| ((hash_i64(key_at(i)) >> shift) & (parts as u64 - 1)) as usize;
            let (scatter, offsets) = partition_build_positions(bn, build.threads, parts, &part_of);
            let indexes: Vec<IntHashTable<Vec<u32>>> =
                parallel_map(parts, build.threads, |range| {
                    range
                        .map(|p| {
                            let slice = &scatter[offsets[p]..offsets[p + 1]];
                            let mut index: IntHashTable<Vec<u32>> =
                                IntHashTable::with_capacity(slice.len());
                            for &i in slice {
                                let row = brow(i as usize);
                                index
                                    .get_or_insert_with(bkeys[row], Vec::new)
                                    .push(row as u32);
                            }
                            index
                        })
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
            let keys = probe.cols[pi].as_int();
            probe_pairs_morsels(pn, psel, probe.threads, |row, emit| {
                let k = keys[row];
                let p = ((hash_i64(k) >> shift) & (parts as u64 - 1)) as usize;
                if let Some(rows) = indexes[p].get(k) {
                    for &b in rows {
                        emit(b);
                    }
                }
            })
        }
        ColumnData::Str(bsyms) => {
            let part_of = |i: usize| {
                ((hash_str(build.pool.get(bsyms[brow(i)])) >> shift) & (parts as u64 - 1)) as usize
            };
            let (scatter, offsets) = partition_build_positions(bn, build.threads, parts, &part_of);
            let indexes: Vec<HashMap<&str, Vec<u32>>> =
                parallel_map(parts, build.threads, |range| {
                    range
                        .map(|p| {
                            let slice = &scatter[offsets[p]..offsets[p + 1]];
                            let mut index: HashMap<&str, Vec<u32>> =
                                HashMap::with_capacity(slice.len());
                            for &i in slice {
                                let row = brow(i as usize);
                                index
                                    .entry(build.pool.get(bsyms[row]))
                                    .or_default()
                                    .push(row as u32);
                            }
                            index
                        })
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
            let syms = probe.cols[pi].as_str_syms();
            probe_pairs_morsels(pn, psel, probe.threads, |row, emit| {
                let s = probe.pool.get(syms[row]);
                let p = ((hash_str(s) >> shift) & (parts as u64 - 1)) as usize;
                if let Some(rows) = indexes[p].get(s) {
                    for &b in rows {
                        emit(b);
                    }
                }
            })
        }
        ColumnData::Float(_) => {
            return Err(TableError::InvalidArgument(
                "join keys must be int or str columns (use sim_join for floats)".into(),
            ))
        }
    };

    // Orient pairs as (left_row, right_row).
    let (l, r) = if left_is_build {
        pairs.iter().map(|&(p, b)| (b, p)).unzip()
    } else {
        pairs.into_iter().unzip()
    };
    Ok((l, r, stats))
}

/// FNV-1a over the key bytes; used only to pick a build partition, so it
/// must hash *string contents* (probe and build sides intern into
/// different pools, making symbol ids incomparable).
fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Stable radix scatter of build positions: returns build-side selection
/// positions (`0..bn`) grouped by partition, each partition's run keeping
/// ascending position (= selection) order, plus per-partition offsets.
/// Two morsel-driven passes — per-(morsel, partition) histogram, then
/// exact scatter through disjoint cursors — mirror the select kernel's
/// count-then-fill discipline.
fn partition_build_positions(
    bn: usize,
    threads: usize,
    parts: usize,
    part_of: &(dyn Fn(usize) -> usize + Sync),
) -> (Vec<u32>, Vec<usize>) {
    if parts == 1 {
        return ((0..bn as u32).collect(), vec![0, bn]);
    }
    let (hists, _) = parallel_map_morsels_traced("plan.morsel.join", bn, threads, |_, range| {
        let mut h = vec![0u32; parts];
        for i in range {
            h[part_of(i)] += 1;
        }
        h
    });
    // Partition-major cursor layout: partition p's run holds morsel 0's
    // positions, then morsel 1's, ... so ascending position order is
    // preserved within each partition.
    let mut offsets = vec![0usize; parts + 1];
    for p in 0..parts {
        let total: usize = hists.iter().map(|h| h[p] as usize).sum();
        offsets[p + 1] = offsets[p] + total;
    }
    let morsels = hists.len();
    let mut cursors = vec![0usize; morsels * parts];
    for p in 0..parts {
        let mut at = offsets[p];
        for (m, h) in hists.iter().enumerate() {
            cursors[m * parts + p] = at;
            at += h[p] as usize;
        }
    }
    let mut scatter = vec![0u32; bn];
    let out = DisjointSlice::new(&mut scatter);
    let bounds = morsel_bounds(bn);
    parallel_for_morsels_traced("plan.morsel.join", bn, threads, |morsel, range| {
        debug_assert_eq!(range.start, bounds[morsel]);
        let mut cur = cursors[morsel * parts..(morsel + 1) * parts].to_vec();
        for i in range {
            let p = part_of(i);
            // SAFETY: morsel `morsel` writes partition `p` only in
            // `cursors[morsel][p]..cursors[morsel][p] + hists[morsel][p]`;
            // those windows are disjoint across (morsel, partition) by
            // construction of the histogram prefix sums.
            unsafe { out.write(cur[p], i as u32) };
            cur[p] += 1;
        }
    });
    (scatter, offsets)
}

/// Probes each position of the probe side's selection (every row when
/// `None`) morsel by morsel, collecting `(probe_row, build_row)` pairs of
/// underlying row positions. Each morsel emits into a private vector;
/// concatenating them in morsel order reproduces the sequential pair
/// order exactly.
fn probe_pairs_morsels<F>(
    pn: usize,
    psel: Option<&[u32]>,
    threads: usize,
    lookup: F,
) -> (Vec<(u32, u32)>, MorselStats)
where
    F: Fn(usize, &mut dyn FnMut(u32)) + Sync,
{
    let lookup = &lookup;
    let (parts, stats) =
        parallel_map_morsels_traced("plan.morsel.join", pn, threads, |_, range| {
            let mut out: Vec<(u32, u32)> = Vec::new();
            for i in range {
                let row = match psel {
                    Some(s) => s[i] as usize,
                    None => i,
                };
                let mut emit = |b: u32| out.push((row as u32, b));
                lookup(row, &mut emit);
            }
            out
        });
    let total = parts.iter().map(Vec::len).sum();
    let mut pairs = Vec::with_capacity(total);
    for p in parts {
        pairs.extend(p);
    }
    (pairs, stats)
}

/// Which input table a join output column is drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum JoinSide {
    /// The left (probe or build) input.
    Left,
    /// The right input.
    Right,
}

/// One column of a join's output: source side, source column index, and the
/// (already clash-suffixed) output name.
#[derive(Clone, Debug)]
pub(crate) struct JoinOutCol {
    pub side: JoinSide,
    pub col: usize,
    pub name: String,
}

/// Builds the output table of a join given matched row positions, emitting
/// exactly the columns in `out_cols` (whose names must be distinct). The
/// pruned-join path of the lazy executor passes a subset here; the eager
/// join passes the full clash-suffixed width.
pub(crate) fn materialize_join_cols(
    left: &Table,
    right: &Table,
    left_rows: &[u32],
    right_rows: &[u32],
    out_cols: &[JoinOutCol],
) -> Result<Table> {
    debug_assert_eq!(left_rows.len(), right_rows.len());
    let mut schema = crate::Schema::default();
    let mut cols: Vec<ColumnData> = Vec::with_capacity(out_cols.len());
    let mut pool = left.pool.clone();

    for oc in out_cols {
        match oc.side {
            JoinSide::Left => {
                schema.push_unique(&oc.name, left.schema.column_type(oc.col));
                cols.push(left.cols[oc.col].gather_sel(left_rows));
            }
            JoinSide::Right => {
                schema.push_unique(&oc.name, right.schema.column_type(oc.col));
                let gathered = right.cols[oc.col].gather_sel(right_rows);
                // Right-side string symbols must be re-interned into the
                // output pool, which was seeded from the left table.
                let remapped = match gathered {
                    ColumnData::Str(syms) => ColumnData::Str(
                        syms.iter()
                            .map(|&s| pool.intern(right.pool.get(s)))
                            .collect(),
                    ),
                    other => other,
                };
                cols.push(remapped);
            }
        }
    }

    let mut out = Table::from_parts(schema, cols, pool)?;
    out.threads = left.threads;
    Ok(out)
}

/// The full clash-suffixed output column list of `left ⋈ right`: all of
/// `left`'s columns then all of `right`'s, later name clashes suffixed
/// `-1`, `-2`, ... by [`crate::Schema::push_unique`].
pub(crate) fn join_out_cols(left: &Table, right: &Table) -> Vec<JoinOutCol> {
    let mut sim = crate::Schema::default();
    let mut out = Vec::with_capacity(left.n_cols() + right.n_cols());
    for (i, (name, ty)) in left.schema.iter().enumerate() {
        let name = sim.push_unique(name, ty);
        out.push(JoinOutCol {
            side: JoinSide::Left,
            col: i,
            name,
        });
    }
    for (i, (name, ty)) in right.schema.iter().enumerate() {
        let name = sim.push_unique(name, ty);
        out.push(JoinOutCol {
            side: JoinSide::Right,
            col: i,
            name,
        });
    }
    out
}

/// Builds the full-width output table of a join given matched row positions.
pub(crate) fn materialize_join(
    left: &Table,
    right: &Table,
    left_rows: &[u32],
    right_rows: &[u32],
) -> Result<Table> {
    materialize_join_cols(
        left,
        right,
        left_rows,
        right_rows,
        &join_out_cols(left, right),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, ColumnType, Predicate, Schema, Value};

    fn questions() -> Table {
        let schema = Schema::new([
            ("PostId", ColumnType::Int),
            ("UserId", ColumnType::Int),
            ("AcceptedAnswer", ColumnType::Int),
        ]);
        let mut t = Table::new(schema);
        for (p, u, a) in [(1i64, 100i64, 11i64), (2, 101, 12), (3, 102, -1)] {
            t.push_row(&[p.into(), u.into(), a.into()]).unwrap();
        }
        t
    }

    fn answers() -> Table {
        let schema = Schema::new([("PostId", ColumnType::Int), ("UserId", ColumnType::Int)]);
        let mut t = Table::new(schema);
        for (p, u) in [(11i64, 200i64), (12, 201), (13, 202)] {
            t.push_row(&[p.into(), u.into()]).unwrap();
        }
        t
    }

    #[test]
    fn int_join_matches_and_suffixes_columns() {
        let q = questions();
        let a = answers();
        let j = q.join(&a, "AcceptedAnswer", "PostId").unwrap();
        assert_eq!(j.n_rows(), 2);
        // Clashing names from the right side get suffixes.
        assert!(j.schema().contains("PostId"));
        assert!(j.schema().contains("PostId-1"));
        assert!(j.schema().contains("UserId"));
        assert!(j.schema().contains("UserId-1"));
        let askers = j.int_col("UserId").unwrap();
        let answerers = j.int_col("UserId-1").unwrap();
        let mut pairs: Vec<(i64, i64)> = askers
            .iter()
            .zip(answerers)
            .map(|(a, b)| (*a, *b))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(100, 200), (101, 201)]);
    }

    #[test]
    fn join_handles_duplicate_keys_cross_product() {
        let mut l = Table::from_int_column("k", vec![1, 1, 2]);
        let r = Table::from_int_column("k", vec![1, 1, 3]);
        l.set_threads(2);
        let j = l.join(&r, "k", "k").unwrap();
        assert_eq!(j.n_rows(), 4, "2 left ones x 2 right ones");
        assert!(j.schema().contains("k") && j.schema().contains("k-1"));
    }

    #[test]
    fn join_is_symmetric_in_row_count() {
        let big = Table::from_int_column("k", (0..1000).collect());
        let small = Table::from_int_column("k", vec![5, 500, 999, 1000]);
        let a = big.join(&small, "k", "k").unwrap();
        let b = small.join(&big, "k", "k").unwrap();
        assert_eq!(a.n_rows(), 3);
        assert_eq!(b.n_rows(), 3);
    }

    #[test]
    fn string_join_across_pools() {
        let schema = Schema::new([("tag", ColumnType::Str)]);
        let mut l = Table::new(schema.clone());
        let mut r = Table::new(schema);
        for s in ["java", "rust", "go"] {
            l.push_row(&[s.into()]).unwrap();
        }
        // Different interning order in the right pool.
        for s in ["go", "java", "python"] {
            r.push_row(&[s.into()]).unwrap();
        }
        let j = l.join(&r, "tag", "tag").unwrap();
        assert_eq!(j.n_rows(), 2);
        let syms = j.str_sym_col("tag").unwrap();
        let mut tags: Vec<&str> = syms.iter().map(|&s| j.str_value(s)).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec!["go", "java"]);
        // Right-side string column re-interned correctly.
        let syms1 = j.str_sym_col("tag-1").unwrap();
        let mut tags1: Vec<&str> = syms1.iter().map(|&s| j.str_value(s)).collect();
        tags1.sort_unstable();
        assert_eq!(tags1, vec!["go", "java"]);
    }

    #[test]
    fn join_type_mismatch_rejected() {
        let l = Table::from_int_column("k", vec![1]);
        let schema = Schema::new([("k", ColumnType::Str)]);
        let mut r = Table::new(schema);
        r.push_row(&["1".into()]).unwrap();
        assert!(l.join(&r, "k", "k").is_err());
    }

    #[test]
    fn float_join_key_rejected() {
        let schema = Schema::new([("f", ColumnType::Float)]);
        let mut l = Table::new(schema.clone());
        l.push_row(&[Value::Float(1.0)]).unwrap();
        let mut r = Table::new(schema);
        r.push_row(&[Value::Float(1.0)]).unwrap();
        assert!(l.join(&r, "f", "f").is_err());
    }

    #[test]
    fn empty_join_result() {
        let l = Table::from_int_column("k", vec![1, 2]);
        let r = Table::from_int_column("k", vec![3, 4]);
        let j = l.join(&r, "k", "k").unwrap();
        assert_eq!(j.n_rows(), 0);
        assert_eq!(j.n_cols(), 2);
    }

    #[test]
    fn join_then_select_pipeline() {
        // The paper's demo pattern: join, then filter the joined table.
        let q = questions();
        let a = answers();
        let j = q.join(&a, "AcceptedAnswer", "PostId").unwrap();
        let experts = j.select(&Predicate::int("UserId-1", Cmp::Gt, 200)).unwrap();
        assert_eq!(experts.n_rows(), 1);
        assert_eq!(experts.get(0, "UserId-1").unwrap(), Value::Int(201));
    }
}
