//! Equi hash join.
//!
//! The paper's Table 4 benchmarks join throughput; Ringo's "join operation
//! always produces a new table object". We build an open-addressing hash
//! index on the build side's key column (the smaller table) and probe with
//! the larger side in parallel, each worker emitting a private match list —
//! the contention-free pattern used throughout Ringo's engine.

use crate::{ColumnData, Result, Table, TableError};
use ringo_concurrent::{parallel_map, IntHashTable};
use std::collections::HashMap;

/// Key column view supporting both join key types.
enum KeyCol<'a> {
    Int(&'a [i64]),
    /// Resolved strings (symbol → text via the owning table's pool).
    Str(&'a Table, &'a [u32]),
}

impl Table {
    /// Joins `self` with `other` on `self.left_col == other.right_col`,
    /// producing a new table whose columns are all of `self`'s followed by
    /// all of `other`'s (name clashes suffixed `-1`, `-2`, ... as in the
    /// paper's §4.1 demo). Key columns must both be `Int` or both `Str`.
    pub fn join(&self, other: &Table, left_col: &str, right_col: &str) -> Result<Table> {
        let mut sp = ringo_trace::span!("table.join");
        sp.rows_in(self.n_rows() + other.n_rows());
        let li = self.schema.index_of(left_col)?;
        let ri = other.schema.index_of(right_col)?;
        let lt = self.cols[li].column_type();
        let rt = other.cols[ri].column_type();
        if lt != rt {
            return Err(TableError::TypeMismatch {
                column: right_col.to_string(),
                expected: lt.name(),
                actual: rt.name(),
            });
        }

        // Probe with the larger side.
        let (build, bi, probe, pi, left_is_build) = if self.n_rows() <= other.n_rows() {
            (self, li, other, ri, true)
        } else {
            (other, ri, self, li, false)
        };

        let pairs: Vec<(u32, u32)> = match &build.cols[bi] {
            ColumnData::Int(bkeys) => {
                let mut index: IntHashTable<Vec<u32>> = IntHashTable::with_capacity(bkeys.len());
                for (row, &k) in bkeys.iter().enumerate() {
                    index.get_or_insert_with(k, Vec::new).push(row as u32);
                }
                probe_pairs(
                    KeyCol::Int(probe.cols[pi].as_int()),
                    probe.threads,
                    |k, emit| {
                        let v = match k {
                            ProbeKey::Int(v) => v,
                            ProbeKey::Str(_) => unreachable!(),
                        };
                        if let Some(rows) = index.get(v) {
                            for &b in rows {
                                emit(b);
                            }
                        }
                    },
                )
            }
            ColumnData::Str(bsyms) => {
                let mut index: HashMap<&str, Vec<u32>> = HashMap::with_capacity(bsyms.len());
                for (row, &sym) in bsyms.iter().enumerate() {
                    index
                        .entry(build.pool.get(sym))
                        .or_default()
                        .push(row as u32);
                }
                probe_pairs(
                    KeyCol::Str(probe, probe.cols[pi].as_str_syms()),
                    probe.threads,
                    |k, emit| {
                        let s = match k {
                            ProbeKey::Str(s) => s,
                            ProbeKey::Int(_) => unreachable!(),
                        };
                        if let Some(rows) = index.get(s) {
                            for &b in rows {
                                emit(b);
                            }
                        }
                    },
                )
            }
            ColumnData::Float(_) => {
                return Err(TableError::InvalidArgument(
                    "join keys must be int or str columns (use sim_join for floats)".into(),
                ))
            }
        };

        // Orient pairs as (left_row, right_row).
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = if left_is_build {
            pairs.iter().map(|&(p, b)| (b as usize, p as usize)).unzip()
        } else {
            pairs.iter().map(|&(p, b)| (p as usize, b as usize)).unzip()
        };

        let out = materialize_join(self, other, &left_rows, &right_rows)?;
        sp.rows_out(out.n_rows());
        Ok(out)
    }
}

enum ProbeKey<'a> {
    Int(i64),
    Str(&'a str),
}

/// Probes each row of the probe side, collecting `(probe_row, build_row)`
/// pairs. Workers emit into private vectors, concatenated afterwards.
fn probe_pairs<F>(probe: KeyCol<'_>, threads: usize, lookup: F) -> Vec<(u32, u32)>
where
    F: Fn(ProbeKey<'_>, &mut dyn FnMut(u32)) + Sync,
{
    let n = match &probe {
        KeyCol::Int(v) => v.len(),
        KeyCol::Str(_, v) => v.len(),
    };
    let probe = &probe;
    let lookup = &lookup;
    let parts = parallel_map(n, threads, |range| {
        let mut out: Vec<(u32, u32)> = Vec::new();
        for row in range {
            let mut emit = |b: u32| out.push((row as u32, b));
            match probe {
                KeyCol::Int(v) => lookup(ProbeKey::Int(v[row]), &mut emit),
                KeyCol::Str(t, v) => lookup(ProbeKey::Str(t.pool.get(v[row])), &mut emit),
            }
        }
        out
    });
    let total = parts.iter().map(Vec::len).sum();
    let mut pairs = Vec::with_capacity(total);
    for p in parts {
        pairs.extend(p);
    }
    pairs
}

/// Builds the output table of a join given matched row positions.
pub(crate) fn materialize_join(
    left: &Table,
    right: &Table,
    left_rows: &[usize],
    right_rows: &[usize],
) -> Result<Table> {
    debug_assert_eq!(left_rows.len(), right_rows.len());
    let mut schema = crate::Schema::default();
    let mut cols: Vec<ColumnData> = Vec::with_capacity(left.n_cols() + right.n_cols());
    let mut pool = left.pool.clone();

    for (i, (name, ty)) in left.schema.iter().enumerate() {
        schema.push_unique(name, ty);
        cols.push(left.cols[i].gather(left_rows));
    }
    for (i, (name, ty)) in right.schema.iter().enumerate() {
        schema.push_unique(name, ty);
        let gathered = right.cols[i].gather(right_rows);
        // Right-side string symbols must be re-interned into the output
        // pool, which was seeded from the left table.
        let remapped = match gathered {
            ColumnData::Str(syms) => ColumnData::Str(
                syms.iter()
                    .map(|&s| pool.intern(right.pool.get(s)))
                    .collect(),
            ),
            other => other,
        };
        cols.push(remapped);
    }

    let mut out = Table::from_parts(schema, cols, pool)?;
    out.threads = left.threads;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, ColumnType, Predicate, Schema, Value};

    fn questions() -> Table {
        let schema = Schema::new([
            ("PostId", ColumnType::Int),
            ("UserId", ColumnType::Int),
            ("AcceptedAnswer", ColumnType::Int),
        ]);
        let mut t = Table::new(schema);
        for (p, u, a) in [(1i64, 100i64, 11i64), (2, 101, 12), (3, 102, -1)] {
            t.push_row(&[p.into(), u.into(), a.into()]).unwrap();
        }
        t
    }

    fn answers() -> Table {
        let schema = Schema::new([("PostId", ColumnType::Int), ("UserId", ColumnType::Int)]);
        let mut t = Table::new(schema);
        for (p, u) in [(11i64, 200i64), (12, 201), (13, 202)] {
            t.push_row(&[p.into(), u.into()]).unwrap();
        }
        t
    }

    #[test]
    fn int_join_matches_and_suffixes_columns() {
        let q = questions();
        let a = answers();
        let j = q.join(&a, "AcceptedAnswer", "PostId").unwrap();
        assert_eq!(j.n_rows(), 2);
        // Clashing names from the right side get suffixes.
        assert!(j.schema().contains("PostId"));
        assert!(j.schema().contains("PostId-1"));
        assert!(j.schema().contains("UserId"));
        assert!(j.schema().contains("UserId-1"));
        let askers = j.int_col("UserId").unwrap();
        let answerers = j.int_col("UserId-1").unwrap();
        let mut pairs: Vec<(i64, i64)> = askers
            .iter()
            .zip(answerers)
            .map(|(a, b)| (*a, *b))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(100, 200), (101, 201)]);
    }

    #[test]
    fn join_handles_duplicate_keys_cross_product() {
        let mut l = Table::from_int_column("k", vec![1, 1, 2]);
        let r = Table::from_int_column("k", vec![1, 1, 3]);
        l.set_threads(2);
        let j = l.join(&r, "k", "k").unwrap();
        assert_eq!(j.n_rows(), 4, "2 left ones x 2 right ones");
        assert!(j.schema().contains("k") && j.schema().contains("k-1"));
    }

    #[test]
    fn join_is_symmetric_in_row_count() {
        let big = Table::from_int_column("k", (0..1000).collect());
        let small = Table::from_int_column("k", vec![5, 500, 999, 1000]);
        let a = big.join(&small, "k", "k").unwrap();
        let b = small.join(&big, "k", "k").unwrap();
        assert_eq!(a.n_rows(), 3);
        assert_eq!(b.n_rows(), 3);
    }

    #[test]
    fn string_join_across_pools() {
        let schema = Schema::new([("tag", ColumnType::Str)]);
        let mut l = Table::new(schema.clone());
        let mut r = Table::new(schema);
        for s in ["java", "rust", "go"] {
            l.push_row(&[s.into()]).unwrap();
        }
        // Different interning order in the right pool.
        for s in ["go", "java", "python"] {
            r.push_row(&[s.into()]).unwrap();
        }
        let j = l.join(&r, "tag", "tag").unwrap();
        assert_eq!(j.n_rows(), 2);
        let syms = j.str_sym_col("tag").unwrap();
        let mut tags: Vec<&str> = syms.iter().map(|&s| j.str_value(s)).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec!["go", "java"]);
        // Right-side string column re-interned correctly.
        let syms1 = j.str_sym_col("tag-1").unwrap();
        let mut tags1: Vec<&str> = syms1.iter().map(|&s| j.str_value(s)).collect();
        tags1.sort_unstable();
        assert_eq!(tags1, vec!["go", "java"]);
    }

    #[test]
    fn join_type_mismatch_rejected() {
        let l = Table::from_int_column("k", vec![1]);
        let schema = Schema::new([("k", ColumnType::Str)]);
        let mut r = Table::new(schema);
        r.push_row(&["1".into()]).unwrap();
        assert!(l.join(&r, "k", "k").is_err());
    }

    #[test]
    fn float_join_key_rejected() {
        let schema = Schema::new([("f", ColumnType::Float)]);
        let mut l = Table::new(schema.clone());
        l.push_row(&[Value::Float(1.0)]).unwrap();
        let mut r = Table::new(schema);
        r.push_row(&[Value::Float(1.0)]).unwrap();
        assert!(l.join(&r, "f", "f").is_err());
    }

    #[test]
    fn empty_join_result() {
        let l = Table::from_int_column("k", vec![1, 2]);
        let r = Table::from_int_column("k", vec![3, 4]);
        let j = l.join(&r, "k", "k").unwrap();
        assert_eq!(j.n_rows(), 0);
        assert_eq!(j.n_cols(), 2);
    }

    #[test]
    fn join_then_select_pipeline() {
        // The paper's demo pattern: join, then filter the joined table.
        let q = questions();
        let a = answers();
        let j = q.join(&a, "AcceptedAnswer", "PostId").unwrap();
        let experts = j.select(&Predicate::int("UserId-1", Cmp::Gt, 200)).unwrap();
        assert_eq!(experts.n_rows(), 1);
        assert_eq!(experts.get(0, "UserId-1").unwrap(), Value::Int(201));
    }
}
