//! Group & aggregate, and distinct rows.
//!
//! Grouping hashes row keys over the grouping columns; Ringo's persistent
//! row ids make "in-place grouping" (paper §2.3) possible by tagging each
//! row with its group id instead of materializing per-group tables.

use crate::ops::rowkey::RowKey;
use crate::{ColumnData, ColumnType, Result, Schema, Table, TableError};
use std::collections::HashMap;

/// Aggregation functions for [`Table::group_by`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Number of rows in the group (no aggregate column required).
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Minimum of a numeric column.
    Min,
    /// Maximum of a numeric column.
    Max,
    /// Arithmetic mean of a numeric column (always a float result).
    Mean,
    /// Population variance of a numeric column (float result).
    Var,
    /// Population standard deviation of a numeric column (float result).
    Std,
}

impl Table {
    /// Assigns each row a dense group id (`0..n_groups`) over the given
    /// grouping columns, in first-appearance order. This is the "in-place
    /// grouping" primitive: callers may attach the ids as a column via
    /// [`Table::add_int_column`] without copying the table.
    pub fn group_ids(&self, cols: &[&str]) -> Result<(Vec<i64>, usize)> {
        let idx = self.col_indices(cols)?;
        let mut groups: HashMap<RowKey, i64> = HashMap::new();
        let mut ids = Vec::with_capacity(self.n_rows());
        for row in 0..self.n_rows() {
            let key = self.row_key(row, &idx);
            let next = groups.len() as i64;
            let id = *groups.entry(key).or_insert(next);
            ids.push(id);
        }
        Ok((ids, groups.len()))
    }

    /// Groups by `group_cols` and aggregates `agg_col` with `op`, producing
    /// one row per group: the grouping columns followed by a result column
    /// named `out_name`. For [`AggOp::Count`], `agg_col` may be `None`.
    pub fn group_by(
        &self,
        group_cols: &[&str],
        agg_col: Option<&str>,
        op: AggOp,
        out_name: &str,
    ) -> Result<Table> {
        let mut sp = ringo_trace::span!("table.group");
        sp.rows_in(self.n_rows());
        let out = self.group_by_sel(group_cols, agg_col, op, out_name, None)?;
        sp.rows_out(out.n_rows());
        Ok(out)
    }

    /// Group-and-aggregate kernel shared by the eager verb and the lazy
    /// executor: like [`Table::group_by`] but restricted to the rows of the
    /// optional selection vector, hashing keys in `sel` order (so group ids
    /// keep first-appearance order, exactly as if the selection had been
    /// materialized first).
    pub(crate) fn group_by_sel(
        &self,
        group_cols: &[&str],
        agg_col: Option<&str>,
        op: AggOp,
        out_name: &str,
        sel: Option<&[u32]>,
    ) -> Result<Table> {
        let gidx = self.col_indices(group_cols)?;
        let n = sel.map_or(self.n_rows(), <[u32]>::len);
        let row_at = |i: usize| -> usize {
            match sel {
                Some(s) => s[i] as usize,
                None => i,
            }
        };
        // Dense group ids aligned to selection positions.
        let mut groups: HashMap<RowKey, i64> = HashMap::new();
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            let key = self.row_key(row_at(i), &gidx);
            let next = groups.len() as i64;
            ids.push(*groups.entry(key).or_insert(next));
        }
        let n_groups = groups.len();

        // First-row representative per group (underlying positions), for
        // the key columns.
        let mut rep = vec![u32::MAX; n_groups];
        for (i, &g) in ids.iter().enumerate() {
            if rep[g as usize] == u32::MAX {
                rep[g as usize] = row_at(i) as u32;
            }
        }

        enum Src<'a> {
            None,
            Int(&'a [i64]),
            Float(&'a [f64]),
        }
        let src = match (agg_col, op) {
            (None, AggOp::Count) => Src::None,
            (None, _) => {
                return Err(TableError::InvalidArgument(
                    "aggregate column required for non-count aggregates".into(),
                ))
            }
            (Some(name), _) => {
                let i = self.schema.index_of(name)?;
                match &self.cols[i] {
                    ColumnData::Int(v) => Src::Int(v),
                    ColumnData::Float(v) => Src::Float(v),
                    ColumnData::Str(_) => {
                        return Err(TableError::TypeMismatch {
                            column: name.to_string(),
                            expected: "int or float",
                            actual: "str",
                        })
                    }
                }
            }
        };

        let mut counts = vec![0i64; n_groups];
        for &g in &ids {
            counts[g as usize] += 1;
        }

        // Aggregate as f64 throughout; emit Int only for count and for
        // int-column sum/min/max (exact for |values| < 2^53 per group).
        let mut acc = vec![0f64; n_groups];
        let mut acc_sq = vec![0f64; n_groups]; // for Var/Std
        let mut have = vec![false; n_groups];
        let fold = |acc: &mut f64, acc_sq: &mut f64, have: &mut bool, x: f64| match op {
            AggOp::Count => {}
            AggOp::Sum | AggOp::Mean => *acc += x,
            AggOp::Var | AggOp::Std => {
                *acc += x;
                *acc_sq += x * x;
            }
            AggOp::Min => {
                if !*have || x < *acc {
                    *acc = x;
                }
                *have = true;
            }
            AggOp::Max => {
                if !*have || x > *acc {
                    *acc = x;
                }
                *have = true;
            }
        };
        match &src {
            Src::None => {}
            Src::Int(v) => {
                for (i, &g) in ids.iter().enumerate() {
                    let g = g as usize;
                    fold(
                        &mut acc[g],
                        &mut acc_sq[g],
                        &mut have[g],
                        v[row_at(i)] as f64,
                    );
                }
            }
            Src::Float(v) => {
                for (i, &g) in ids.iter().enumerate() {
                    let g = g as usize;
                    fold(&mut acc[g], &mut acc_sq[g], &mut have[g], v[row_at(i)]);
                }
            }
        }

        let mut schema = Schema::default();
        let mut cols: Vec<ColumnData> = Vec::new();
        for &i in &gidx {
            schema.push_unique(self.schema.name(i), self.schema.column_type(i));
            cols.push(self.cols[i].gather_sel(&rep));
        }
        let float_result = !matches!(op, AggOp::Count)
            && (matches!(op, AggOp::Mean | AggOp::Var | AggOp::Std)
                || matches!(src, Src::Float(_)));
        if !float_result {
            let data: Vec<i64> = (0..n_groups)
                .map(|g| match op {
                    AggOp::Count => counts[g],
                    _ => acc[g] as i64,
                })
                .collect();
            schema.push_unique(out_name, ColumnType::Int);
            cols.push(ColumnData::Int(data));
        } else {
            let data: Vec<f64> = (0..n_groups)
                .map(|g| {
                    let n = counts[g] as f64;
                    match op {
                        AggOp::Mean => acc[g] / n,
                        AggOp::Var | AggOp::Std => {
                            let mean = acc[g] / n;
                            let var = (acc_sq[g] / n - mean * mean).max(0.0);
                            if op == AggOp::Std {
                                var.sqrt()
                            } else {
                                var
                            }
                        }
                        _ => acc[g],
                    }
                })
                .collect();
            schema.push_unique(out_name, ColumnType::Float);
            cols.push(ColumnData::Float(data));
        }

        let mut out = Table::from_parts(schema, cols, self.pool.clone())?;
        out.threads = self.threads;
        Ok(out)
    }

    /// Returns a table keeping the first row of each distinct combination
    /// of the given columns (row ids preserved).
    pub fn unique(&self, cols: &[&str]) -> Result<Table> {
        let idx = self.col_indices(cols)?;
        let mut seen: HashMap<RowKey, ()> = HashMap::new();
        let mut keep = Vec::new();
        for row in 0..self.n_rows() {
            let key = self.row_key(row, &idx);
            if seen.insert(key, ()).is_none() {
                keep.push(row);
            }
        }
        Ok(self.gather_rows(&keep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn sales() -> Table {
        let schema = Schema::new([
            ("region", ColumnType::Str),
            ("amount", ColumnType::Int),
            ("rate", ColumnType::Float),
        ]);
        let mut t = Table::new(schema);
        for (r, a, f) in [
            ("east", 10i64, 1.0),
            ("west", 20, 2.0),
            ("east", 30, 3.0),
            ("west", 5, 0.5),
            ("east", 2, 4.0),
        ] {
            t.push_row(&[r.into(), Value::Int(a), Value::Float(f)])
                .unwrap();
        }
        t
    }

    #[test]
    fn group_ids_dense_first_appearance() {
        let t = sales();
        let (ids, n) = t.group_ids(&["region"]).unwrap();
        assert_eq!(n, 2);
        assert_eq!(ids, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn count_per_group() {
        let t = sales();
        let g = t.group_by(&["region"], None, AggOp::Count, "n").unwrap();
        assert_eq!(g.n_rows(), 2);
        assert_eq!(g.get(0, "region").unwrap(), Value::Str("east".into()));
        assert_eq!(g.int_col("n").unwrap(), &[3, 2]);
    }

    #[test]
    fn sum_min_max_int_stay_int() {
        let t = sales();
        let s = t
            .group_by(&["region"], Some("amount"), AggOp::Sum, "s")
            .unwrap();
        assert_eq!(s.int_col("s").unwrap(), &[42, 25]);
        let m = t
            .group_by(&["region"], Some("amount"), AggOp::Min, "m")
            .unwrap();
        assert_eq!(m.int_col("m").unwrap(), &[2, 5]);
        let x = t
            .group_by(&["region"], Some("amount"), AggOp::Max, "x")
            .unwrap();
        assert_eq!(x.int_col("x").unwrap(), &[30, 20]);
    }

    #[test]
    fn mean_is_float() {
        let t = sales();
        let g = t
            .group_by(&["region"], Some("amount"), AggOp::Mean, "avg")
            .unwrap();
        assert_eq!(g.float_col("avg").unwrap(), &[14.0, 12.5]);
    }

    #[test]
    fn float_aggregates() {
        let t = sales();
        let g = t
            .group_by(&["region"], Some("rate"), AggOp::Max, "mx")
            .unwrap();
        assert_eq!(g.float_col("mx").unwrap(), &[4.0, 2.0]);
    }

    #[test]
    fn variance_and_std() {
        let t = sales();
        // east amounts: 10, 30, 2 — mean 14, var ((16+256+144)/3)... compute:
        // deviations -4, 16, -12 → squares 16, 256, 144 → var 416/3.
        let v = t
            .group_by(&["region"], Some("amount"), AggOp::Var, "v")
            .unwrap();
        let vals = v.float_col("v").unwrap();
        assert!((vals[0] - 416.0 / 3.0).abs() < 1e-9);
        // west amounts: 20, 5 — mean 12.5, var 56.25.
        assert!((vals[1] - 56.25).abs() < 1e-9);
        let s = t
            .group_by(&["region"], Some("amount"), AggOp::Std, "s")
            .unwrap();
        assert!((s.float_col("s").unwrap()[1] - 7.5).abs() < 1e-9);
    }

    #[test]
    fn multi_column_grouping() {
        let t = sales();
        let (_, n) = t.group_ids(&["region", "amount"]).unwrap();
        assert_eq!(n, 5, "all rows distinct over both columns");
    }

    #[test]
    fn errors_on_bad_arguments() {
        let t = sales();
        assert!(t.group_by(&["region"], None, AggOp::Sum, "s").is_err());
        assert!(t
            .group_by(&["region"], Some("region"), AggOp::Sum, "s")
            .is_err());
        assert!(t.group_by(&["nope"], None, AggOp::Count, "n").is_err());
    }

    #[test]
    fn unique_keeps_first_occurrence() {
        let t = sales();
        let u = t.unique(&["region"]).unwrap();
        assert_eq!(u.n_rows(), 2);
        assert_eq!(u.row_ids(), &[0, 1]);
        let all = t.unique(&["region", "amount", "rate"]).unwrap();
        assert_eq!(all.n_rows(), 5);
    }
}
