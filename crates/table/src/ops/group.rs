//! Group & aggregate, and distinct rows.
//!
//! Grouping hashes row keys over the grouping columns; Ringo's persistent
//! row ids make "in-place grouping" (paper §2.3) possible by tagging each
//! row with its group id instead of materializing per-group tables.

use crate::ops::rowkey::RowKey;
use crate::{ColumnData, ColumnType, Result, Schema, Table, TableError};
use ringo_concurrent::{parallel_map_morsels_traced, MorselStats};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Aggregation functions for [`Table::group_by`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Number of rows in the group (no aggregate column required).
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Minimum of a numeric column.
    Min,
    /// Maximum of a numeric column.
    Max,
    /// Arithmetic mean of a numeric column (always a float result).
    Mean,
    /// Population variance of a numeric column (float result).
    Var,
    /// Population standard deviation of a numeric column (float result).
    Std,
}

impl Table {
    /// Assigns each row a dense group id (`0..n_groups`) over the given
    /// grouping columns, in first-appearance order. This is the "in-place
    /// grouping" primitive: callers may attach the ids as a column via
    /// [`Table::add_int_column`] without copying the table.
    pub fn group_ids(&self, cols: &[&str]) -> Result<(Vec<i64>, usize)> {
        let idx = self.col_indices(cols)?;
        let mut groups: HashMap<RowKey, i64> = HashMap::new();
        let mut ids = Vec::with_capacity(self.n_rows());
        for row in 0..self.n_rows() {
            let key = self.row_key(row, &idx);
            let next = groups.len() as i64;
            let id = *groups.entry(key).or_insert(next);
            ids.push(id);
        }
        Ok((ids, groups.len()))
    }

    /// Groups by `group_cols` and aggregates `agg_col` with `op`, producing
    /// one row per group: the grouping columns followed by a result column
    /// named `out_name`. For [`AggOp::Count`], `agg_col` may be `None`.
    pub fn group_by(
        &self,
        group_cols: &[&str],
        agg_col: Option<&str>,
        op: AggOp,
        out_name: &str,
    ) -> Result<Table> {
        let mut sp = ringo_trace::span!("table.group");
        sp.rows_in(self.n_rows());
        let (out, _) = self.group_by_sel(group_cols, agg_col, op, out_name, None)?;
        sp.rows_out(out.n_rows());
        Ok(out)
    }

    /// Group-and-aggregate kernel shared by the eager verb and the lazy
    /// executor: like [`Table::group_by`] but restricted to the rows of the
    /// optional selection vector, hashing keys in `sel` order (so group ids
    /// keep first-appearance order, exactly as if the selection had been
    /// materialized first).
    ///
    /// Morsel-driven: each fixed-size row-range morsel builds a private
    /// `key → accumulator` map, and the per-morsel partials are merged
    /// sequentially in morsel order at the barrier. Because the morsel
    /// partition depends only on the row count (never the thread count) and
    /// every accumulator merge is associative in morsel order, the output
    /// is bit-identical at every thread count.
    ///
    /// Accumulator representation (the correctness contract):
    /// - Int `Sum`/`Min`/`Max`/`Mean` accumulate in `i64` — exact beyond
    ///   2^53 where an `f64` accumulator silently rounds. Overflow policy:
    ///   sums saturate at `i64::MIN`/`i64::MAX` rather than wrapping or
    ///   panicking (documented, deterministic, and order-independent).
    /// - `Var`/`Std` use Welford's online algorithm per morsel and Chan's
    ///   parallel merge across morsels — no catastrophic cancellation for
    ///   large-mean/small-spread data, unlike the naive `E[x²] − E[x]²`.
    pub(crate) fn group_by_sel(
        &self,
        group_cols: &[&str],
        agg_col: Option<&str>,
        op: AggOp,
        out_name: &str,
        sel: Option<&[u32]>,
    ) -> Result<(Table, MorselStats)> {
        let gidx = self.col_indices(group_cols)?;
        let n = sel.map_or(self.n_rows(), <[u32]>::len);
        let row_at = |i: usize| -> usize {
            match sel {
                Some(s) => s[i] as usize,
                None => i,
            }
        };

        #[derive(Clone, Copy)]
        enum Src<'a> {
            None,
            Int(&'a [i64]),
            Float(&'a [f64]),
        }
        let src = match (agg_col, op) {
            (None, AggOp::Count) => Src::None,
            (None, _) => {
                return Err(TableError::InvalidArgument(
                    "aggregate column required for non-count aggregates".into(),
                ))
            }
            (Some(name), _) => {
                let i = self.schema.index_of(name)?;
                match &self.cols[i] {
                    ColumnData::Int(v) => Src::Int(v),
                    ColumnData::Float(v) => Src::Float(v),
                    ColumnData::Str(_) => {
                        return Err(TableError::TypeMismatch {
                            column: name.to_string(),
                            expected: "int or float",
                            actual: "str",
                        })
                    }
                }
            }
        };

        /// Per-group accumulator: which fields are live depends on
        /// `(op, src)` — `i` for Int sum/min/max/mean, `f` for Float
        /// sum/min/max/mean, `mean`/`m2` for Welford Var/Std.
        #[derive(Clone, Copy, Default)]
        struct Acc {
            i: i64,
            f: f64,
            mean: f64,
            m2: f64,
        }

        // Initialize a group's accumulator from its first value.
        let init = |row: usize| -> Acc {
            let mut a = Acc::default();
            match (src, op) {
                (Src::None, _) | (_, AggOp::Count) => {}
                (Src::Int(v), AggOp::Sum | AggOp::Mean | AggOp::Min | AggOp::Max) => {
                    a.i = v[row];
                }
                (Src::Float(v), AggOp::Sum | AggOp::Mean | AggOp::Min | AggOp::Max) => {
                    a.f = v[row];
                }
                (Src::Int(v), AggOp::Var | AggOp::Std) => a.mean = v[row] as f64,
                (Src::Float(v), AggOp::Var | AggOp::Std) => a.mean = v[row],
            }
            a
        };
        // Fold one more value into an existing group; `count` is the
        // group's row count *including* this row.
        let fold = |a: &mut Acc, count: i64, row: usize| {
            match (src, op) {
                (Src::None, _) | (_, AggOp::Count) => {}
                (Src::Int(v), AggOp::Sum | AggOp::Mean) => a.i = a.i.saturating_add(v[row]),
                (Src::Float(v), AggOp::Sum | AggOp::Mean) => a.f += v[row],
                (Src::Int(v), AggOp::Min) => a.i = a.i.min(v[row]),
                (Src::Int(v), AggOp::Max) => a.i = a.i.max(v[row]),
                // Keep-first NaN semantics: only replace on a strict
                // comparison win, like the sequential kernel always did.
                (Src::Float(v), AggOp::Min) => {
                    if v[row] < a.f {
                        a.f = v[row];
                    }
                }
                (Src::Float(v), AggOp::Max) => {
                    if v[row] > a.f {
                        a.f = v[row];
                    }
                }
                (Src::Int(v), AggOp::Var | AggOp::Std) => {
                    let x = v[row] as f64;
                    let delta = x - a.mean;
                    a.mean += delta / count as f64;
                    a.m2 += delta * (x - a.mean);
                }
                (Src::Float(v), AggOp::Var | AggOp::Std) => {
                    let x = v[row];
                    let delta = x - a.mean;
                    a.mean += delta / count as f64;
                    a.m2 += delta * (x - a.mean);
                }
            }
        };
        // Merge morsel-local group `b` (count `nb`) into global group `a`
        // (count `na`, *before* the merge). Associative in morsel order.
        let merge = |a: &mut Acc, na: i64, b: Acc, nb: i64| match op {
            AggOp::Count => {}
            AggOp::Sum | AggOp::Mean => match src {
                Src::Int(_) => a.i = a.i.saturating_add(b.i),
                _ => a.f += b.f,
            },
            AggOp::Min => match src {
                Src::Int(_) => a.i = a.i.min(b.i),
                _ => {
                    if b.f < a.f {
                        a.f = b.f;
                    }
                }
            },
            AggOp::Max => match src {
                Src::Int(_) => a.i = a.i.max(b.i),
                _ => {
                    if b.f > a.f {
                        a.f = b.f;
                    }
                }
            },
            // Chan's parallel variance combine.
            AggOp::Var | AggOp::Std => {
                let (na, nb) = (na as f64, nb as f64);
                let tot = na + nb;
                let delta = b.mean - a.mean;
                a.mean += delta * (nb / tot);
                a.m2 += b.m2 + delta * delta * (na * nb / tot);
            }
        };

        /// One morsel's aggregation state, keys in first-appearance order.
        struct Partial {
            keys: Vec<RowKey>,
            first_row: Vec<u32>,
            count: Vec<i64>,
            acc: Vec<Acc>,
        }
        let (partials, stats) =
            parallel_map_morsels_traced("plan.morsel.group", n, self.threads, |_, range| {
                let mut map: HashMap<RowKey, u32> = HashMap::new();
                let mut first_row: Vec<u32> = Vec::new();
                let mut count: Vec<i64> = Vec::new();
                let mut acc: Vec<Acc> = Vec::new();
                for i in range {
                    let row = row_at(i);
                    match map.entry(self.row_key(row, &gidx)) {
                        Entry::Occupied(e) => {
                            let g = *e.get() as usize;
                            count[g] += 1;
                            fold(&mut acc[g], count[g], row);
                        }
                        Entry::Vacant(e) => {
                            e.insert(first_row.len() as u32);
                            first_row.push(row as u32);
                            count.push(1);
                            acc.push(init(row));
                        }
                    }
                }
                // Recover first-appearance key order from the map (the key
                // itself lives in the map; local ids index the vectors, and
                // every id in `0..first_row.len()` has exactly one key).
                let mut keys: Vec<RowKey> = (0..first_row.len()).map(|_| RowKey::new()).collect();
                for (k, id) in map {
                    keys[id as usize] = k;
                }
                Partial {
                    keys,
                    first_row,
                    count,
                    acc,
                }
            });

        // Merge partials sequentially in morsel order: global group ids
        // come out in first-appearance order over `sel`, exactly as a
        // sequential scan would assign them.
        let mut gmap: HashMap<RowKey, u32> = HashMap::new();
        let mut rep: Vec<u32> = Vec::new();
        let mut counts: Vec<i64> = Vec::new();
        let mut accs: Vec<Acc> = Vec::new();
        for p in partials {
            for (local, key) in p.keys.into_iter().enumerate() {
                match gmap.entry(key) {
                    Entry::Vacant(e) => {
                        e.insert(rep.len() as u32);
                        rep.push(p.first_row[local]);
                        counts.push(p.count[local]);
                        accs.push(p.acc[local]);
                    }
                    Entry::Occupied(e) => {
                        let g = *e.get() as usize;
                        merge(&mut accs[g], counts[g], p.acc[local], p.count[local]);
                        counts[g] += p.count[local];
                    }
                }
            }
        }
        let n_groups = rep.len();

        let mut schema = Schema::default();
        let mut cols: Vec<ColumnData> = Vec::new();
        for &i in &gidx {
            schema.push_unique(self.schema.name(i), self.schema.column_type(i));
            cols.push(self.cols[i].gather_sel(&rep));
        }
        let float_result = !matches!(op, AggOp::Count)
            && (matches!(op, AggOp::Mean | AggOp::Var | AggOp::Std)
                || matches!(src, Src::Float(_)));
        if !float_result {
            let data: Vec<i64> = (0..n_groups)
                .map(|g| match op {
                    AggOp::Count => counts[g],
                    _ => accs[g].i,
                })
                .collect();
            schema.push_unique(out_name, ColumnType::Int);
            cols.push(ColumnData::Int(data));
        } else {
            let data: Vec<f64> = (0..n_groups)
                .map(|g| {
                    let nf = counts[g] as f64;
                    match op {
                        AggOp::Mean => match src {
                            // Exact i64 sum, one rounding at the divide.
                            Src::Int(_) => accs[g].i as f64 / nf,
                            _ => accs[g].f / nf,
                        },
                        AggOp::Var | AggOp::Std => {
                            // m2 is a sum of products of same-signed terms;
                            // clamp only defends against float round-off.
                            let var = (accs[g].m2 / nf).max(0.0);
                            if op == AggOp::Std {
                                var.sqrt()
                            } else {
                                var
                            }
                        }
                        _ => accs[g].f,
                    }
                })
                .collect();
            schema.push_unique(out_name, ColumnType::Float);
            cols.push(ColumnData::Float(data));
        }

        let mut out = Table::from_parts(schema, cols, self.pool.clone())?;
        out.threads = self.threads;
        Ok((out, stats))
    }

    /// Returns a table keeping the first row of each distinct combination
    /// of the given columns (row ids preserved).
    pub fn unique(&self, cols: &[&str]) -> Result<Table> {
        let idx = self.col_indices(cols)?;
        let mut seen: HashMap<RowKey, ()> = HashMap::new();
        let mut keep = Vec::new();
        for row in 0..self.n_rows() {
            let key = self.row_key(row, &idx);
            if seen.insert(key, ()).is_none() {
                keep.push(row);
            }
        }
        Ok(self.gather_rows(&keep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn sales() -> Table {
        let schema = Schema::new([
            ("region", ColumnType::Str),
            ("amount", ColumnType::Int),
            ("rate", ColumnType::Float),
        ]);
        let mut t = Table::new(schema);
        for (r, a, f) in [
            ("east", 10i64, 1.0),
            ("west", 20, 2.0),
            ("east", 30, 3.0),
            ("west", 5, 0.5),
            ("east", 2, 4.0),
        ] {
            t.push_row(&[r.into(), Value::Int(a), Value::Float(f)])
                .unwrap();
        }
        t
    }

    #[test]
    fn group_ids_dense_first_appearance() {
        let t = sales();
        let (ids, n) = t.group_ids(&["region"]).unwrap();
        assert_eq!(n, 2);
        assert_eq!(ids, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn count_per_group() {
        let t = sales();
        let g = t.group_by(&["region"], None, AggOp::Count, "n").unwrap();
        assert_eq!(g.n_rows(), 2);
        assert_eq!(g.get(0, "region").unwrap(), Value::Str("east".into()));
        assert_eq!(g.int_col("n").unwrap(), &[3, 2]);
    }

    #[test]
    fn sum_min_max_int_stay_int() {
        let t = sales();
        let s = t
            .group_by(&["region"], Some("amount"), AggOp::Sum, "s")
            .unwrap();
        assert_eq!(s.int_col("s").unwrap(), &[42, 25]);
        let m = t
            .group_by(&["region"], Some("amount"), AggOp::Min, "m")
            .unwrap();
        assert_eq!(m.int_col("m").unwrap(), &[2, 5]);
        let x = t
            .group_by(&["region"], Some("amount"), AggOp::Max, "x")
            .unwrap();
        assert_eq!(x.int_col("x").unwrap(), &[30, 20]);
    }

    #[test]
    fn mean_is_float() {
        let t = sales();
        let g = t
            .group_by(&["region"], Some("amount"), AggOp::Mean, "avg")
            .unwrap();
        assert_eq!(g.float_col("avg").unwrap(), &[14.0, 12.5]);
    }

    #[test]
    fn float_aggregates() {
        let t = sales();
        let g = t
            .group_by(&["region"], Some("rate"), AggOp::Max, "mx")
            .unwrap();
        assert_eq!(g.float_col("mx").unwrap(), &[4.0, 2.0]);
    }

    #[test]
    fn variance_and_std() {
        let t = sales();
        // east amounts: 10, 30, 2 — mean 14, var ((16+256+144)/3)... compute:
        // deviations -4, 16, -12 → squares 16, 256, 144 → var 416/3.
        let v = t
            .group_by(&["region"], Some("amount"), AggOp::Var, "v")
            .unwrap();
        let vals = v.float_col("v").unwrap();
        assert!((vals[0] - 416.0 / 3.0).abs() < 1e-9);
        // west amounts: 20, 5 — mean 12.5, var 56.25.
        assert!((vals[1] - 56.25).abs() < 1e-9);
        let s = t
            .group_by(&["region"], Some("amount"), AggOp::Std, "s")
            .unwrap();
        assert!((s.float_col("s").unwrap()[1] - 7.5).abs() < 1e-9);
    }

    #[test]
    fn variance_exact_for_large_mean_small_spread() {
        // mean ≈ 1e9, spread ≈ 1: the retired naive `E[x²] − E[x]²`
        // formula cancels catastrophically here (f64 ulp at 1e18 is 128,
        // five orders of magnitude above the true variance) — Welford
        // keeps every significant bit.
        let mut t = Table::from_int_column("g", vec![0, 0, 0]);
        t.add_float_column("x", vec![1e9, 1e9 + 1.0, 1e9 + 2.0])
            .unwrap();
        let v = t.group_by(&["g"], Some("x"), AggOp::Var, "v").unwrap();
        let got = v.float_col("v").unwrap()[0];
        assert!((got - 2.0 / 3.0).abs() < 1e-12, "var = {got}");
        let s = t.group_by(&["g"], Some("x"), AggOp::Std, "s").unwrap();
        let got = s.float_col("s").unwrap()[0];
        assert!((got - (2.0f64 / 3.0).sqrt()).abs() < 1e-12, "std = {got}");
    }

    #[test]
    fn int_aggregates_exact_beyond_2_pow_53() {
        // 2^53 + 1 is not representable in f64; the retired f64
        // accumulator rounded it to 2^53 on the way in, so sum, min and
        // max all came back wrong.
        let big = (1i64 << 53) + 1;
        let mut t = Table::from_int_column("g", vec![0, 0]);
        t.add_int_column("x", vec![big, big]).unwrap();
        let s = t.group_by(&["g"], Some("x"), AggOp::Sum, "s").unwrap();
        assert_eq!(s.int_col("s").unwrap(), &[2 * big]);
        let m = t.group_by(&["g"], Some("x"), AggOp::Min, "m").unwrap();
        assert_eq!(m.int_col("m").unwrap(), &[big]);
        let x = t.group_by(&["g"], Some("x"), AggOp::Max, "x2").unwrap();
        assert_eq!(x.int_col("x2").unwrap(), &[big]);
    }

    #[test]
    fn int_sum_saturates_on_overflow() {
        // Documented overflow policy: integer sums saturate rather than
        // wrap or panic.
        let mut t = Table::from_int_column("g", vec![0, 0, 0]);
        t.add_int_column("x", vec![i64::MAX, i64::MAX, 1]).unwrap();
        let s = t.group_by(&["g"], Some("x"), AggOp::Sum, "s").unwrap();
        assert_eq!(s.int_col("s").unwrap(), &[i64::MAX]);
    }

    #[test]
    fn empty_table_groups_to_zero_rows_with_schema() {
        let t = Table::from_int_column("g", Vec::new());
        let g = t.group_by(&["g"], None, AggOp::Count, "n").unwrap();
        assert_eq!(g.n_rows(), 0);
        assert_eq!(g.n_cols(), 2, "key column and aggregate column");
        assert_eq!(g.schema().name(0), "g");
        assert_eq!(g.schema().name(1), "n");
        let (ids, n) = t.group_ids(&["g"]).unwrap();
        assert!(ids.is_empty());
        assert_eq!(n, 0, "no phantom group on empty input");
    }

    #[test]
    fn multi_column_grouping() {
        let t = sales();
        let (_, n) = t.group_ids(&["region", "amount"]).unwrap();
        assert_eq!(n, 5, "all rows distinct over both columns");
    }

    #[test]
    fn errors_on_bad_arguments() {
        let t = sales();
        assert!(t.group_by(&["region"], None, AggOp::Sum, "s").is_err());
        assert!(t
            .group_by(&["region"], Some("region"), AggOp::Sum, "s")
            .is_err());
        assert!(t.group_by(&["nope"], None, AggOp::Count, "n").is_err());
    }

    #[test]
    fn unique_keeps_first_occurrence() {
        let t = sales();
        let u = t.unique(&["region"]).unwrap();
        assert_eq!(u.n_rows(), 2);
        assert_eq!(u.row_ids(), &[0, 1]);
        let all = t.unique(&["region", "amount", "rate"]).unwrap();
        assert_eq!(all.n_rows(), 5);
    }
}
