//! Ringo's native relational table engine.
//!
//! The paper (§2.3) implements tables inside the system — rather than
//! delegating to an external store — "to allow for efficient and flexible
//! parallel implementations of operations important for graph construction,
//! to support fast conversions into graph objects, and to avoid any
//! performance overheads related to frequent transitions to and from
//! external systems". The design choices reproduced here:
//!
//! * **Column-based store** ([`Table`]): graph-related workloads iterate
//!   over whole columns, so each column is one contiguous vector. Supported
//!   types ([`ColumnType`]): 64-bit integers, 64-bit floats, and interned
//!   strings ([`StringPool`]).
//! * **Persistent row identifiers**: every row carries an identifier that
//!   survives filtering, grouping and sorting, enabling "fine-grained data
//!   tracking, so the user can identify data records even after they
//!   undergo a complex set of operations".
//! * **Relational operators**: select (in-place and copying), hash join,
//!   project, group & aggregate, order, set operations, unique — plus the
//!   graph-construction operators unique to Ringo, [`Table::sim_join`]
//!   (distance-threshold join) and [`Table::next_k`] (predecessor–successor
//!   join over temporal order).
//!
//! Operators parallelize over the table's worker count
//! ([`Table::set_threads`]), defaulting to the machine's parallelism.

#![warn(missing_docs)]

mod column;
mod error;
pub mod exec;
mod io;
pub mod ops;
pub mod plan;
mod schema;
mod strings;
mod table;

pub use column::ColumnData;
pub use error::TableError;
pub use io::{load_dsv, load_tsv, save_tsv};
pub use ops::group::AggOp;
pub use ops::select::{Cmp, Predicate};
pub use schema::{ColumnType, Schema};
pub use strings::StringPool;
pub use table::{Table, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TableError>;
