//! Deterministic pseudo-random numbers for generators, benchmarks, and
//! randomized tests.
//!
//! Ringo's workload generators (R-MAT, Forest Fire, the StackOverflow-like
//! posts table) and its randomized test suites only need a seedable,
//! reproducible source of uniform numbers — none of the cryptographic or
//! distribution machinery of the external `rand` ecosystem. Keeping the
//! generator in-tree makes the workspace build hermetically (no registry
//! access) and pins the exact sequences our fixed-seed tests rely on,
//! which an external crate upgrade could silently change.
//!
//! [`Rng64`] is SplitMix64 (Steele, Lea & Flood; the seeding generator of
//! `java.util.SplittableRandom`): one 64-bit state word advanced by a
//! Weyl increment and finalized with two xor-shift multiplies. It passes
//! BigCrush in this usage regime and every seed — including 0 — starts a
//! full-period sequence.

#![warn(missing_docs)]

/// A seedable SplitMix64 generator.
///
/// ```
/// use ringo_rng::Rng64;
/// let mut rng = Rng64::new(42);
/// let a = rng.range_i64(-1000..1000);
/// assert!((-1000..1000).contains(&a));
/// assert!(rng.f64() < 1.0);
/// // Same seed, same sequence.
/// assert_eq!(Rng64::new(7).u64(), Rng64::new(7).u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator whose sequence is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next uniform 64-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform 64-bit value reinterpreted as a signed integer,
    /// covering the full `i64` range.
    pub fn i64(&mut self) -> i64 {
        self.u64() as i64
    }

    /// Uniform `f64` in `[0, 1)`, built from the top 53 bits.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Lemire's multiply-shift bounded generation; the modulo bias of
        // the plain `% n` approach is avoided without a division.
        ((self.u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `usize` in `range` (half-open).
    pub fn range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below(range.end - range.start)
    }

    /// Uniform `i64` in `range` (half-open).
    pub fn range_i64(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.bounded_u64(span) as i64)
    }

    /// Uniform `u64` in `0..n` (`n > 0`).
    pub fn bounded_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((self.u64() as u128 * n as u128) >> 64) as u64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Fisher–Yates shuffle of `data` in place.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            data.swap(i, self.below(i + 1));
        }
    }
}

/// Samples indices with probability proportional to a fixed weight slice —
/// the cumulative-sum replacement for `rand::distributions::WeightedIndex`.
///
/// Construction is `O(n)`; each [`WeightedIndex::sample`] is a binary
/// search, `O(log n)`.
#[derive(Clone, Debug)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the sampler from non-negative weights with a positive sum.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "weights must have a positive sum");
        Self { cumulative }
    }

    /// Draws one index with probability `weight[i] / total`.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.f64() * total;
        // partition_point returns the first prefix-sum strictly above x,
        // i.e. the bucket whose cumulative span contains x.
        let i = self.cumulative.partition_point(|&c| c <= x);
        i.min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng64::new(99);
            (0..32).map(|_| r.u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(99);
            (0..32).map(|_| r.u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = Rng64::new(100);
        assert_ne!(a[0], r.u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng64::new(1);
        for _ in 0..10_000 {
            assert!((0..17).contains(&r.below(17)));
            assert!((-50..50).contains(&r.range_i64(-50..50)));
            assert!((3..9).contains(&r.range_usize(3..9)));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_covers_all_buckets() {
        let mut r = Rng64::new(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Rng64::new(12);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let w = WeightedIndex::new(&[8.0, 1.0, 1.0]);
        let mut r = Rng64::new(3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert!(counts[0] > 7_000, "heavy bucket {counts:?}");
        assert!(
            counts[1] > 500 && counts[2] > 500,
            "light buckets {counts:?}"
        );
    }

    #[test]
    fn weighted_index_handles_zero_weight_heads_and_tails() {
        let w = WeightedIndex::new(&[0.0, 1.0, 0.0]);
        let mut r = Rng64::new(4);
        for _ in 0..1_000 {
            assert_eq!(w.sample(&mut r), 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn all_zero_weights_rejected() {
        WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut data: Vec<usize> = (0..100).collect();
        let mut r = Rng64::new(6);
        r.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(data, sorted, "astronomically unlikely to be identity");
    }
}
