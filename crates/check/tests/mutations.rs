//! Mutation coverage: deliberately weakened variants of the protocols the
//! real primitives use MUST be caught by the checker within a bounded
//! schedule budget, and every kill must replay deterministically from its
//! printed seed. This is the evidence that `model_primitives.rs` passing
//! means something — the checker can see the bugs it claims to rule out.
//!
//! Each mutation reproduces a real protocol with facade atomics and breaks
//! it the way a plausible bad patch would:
//!
//! * `ConcurrentVec::push` without the capacity rollback (`fetch_sub`) —
//!   the pre-rollback claim leaks and `len` ends past capacity. This is
//!   exactly the historical contended-overflow bug fixed in PR 1.
//! * A `Relaxed` publish where `Release` is required — the flag arrives
//!   without the data; only the weak-memory model (stale reads under the
//!   randomized strategies) can catch it, since SC interleaving alone
//!   always delivers the data.
//! * The registry's slot claim with the CAS replaced by load-then-store —
//!   two racing claimers can both "win" one slot and one name lands in
//!   two places (or two names in one slot).

use ringo_check::sync::{VAtomicI64, VAtomicU64, VAtomicUsize};
use ringo_check::{explore, replay, vthread, Failure, Options, Strategy};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Budget matching the acceptance bar: each mutation must die within 1000
/// schedules of a single strategy.
const BUDGET: usize = 1000;

fn opts(name: &str, strategies: Vec<Strategy>) -> Options {
    let mut o = Options::new(name);
    o.strategies = strategies;
    o.schedules_per_strategy = BUDGET;
    o
}

/// Asserts the failure replays deterministically: same outcome message and
/// identical scheduling trace on two replays of the printed seed.
fn assert_deterministic_replay<F: Fn()>(failure: &Failure, body: F) {
    let r1 = replay(failure.seed, &body);
    let r2 = replay(failure.seed, &body);
    let m1 = r1.outcome.expect_err("replayed seed must still fail");
    let m2 = r2.outcome.expect_err("replayed seed must still fail");
    assert_eq!(m1, failure.message, "replay reproduces the same failure");
    assert_eq!(m1, m2);
    assert_eq!(r1.trace, r2.trace, "replay must follow the same schedule");
}

/// Mutation 1: claim-by-fetch_add without the overflow rollback.
#[test]
fn missing_capacity_rollback_is_caught() {
    let body = || {
        let capacity = 1usize;
        let len = Arc::new(VAtomicUsize::new(0));
        let pushers: Vec<_> = (0..2)
            .map(|_| {
                let len = len.clone();
                vthread::spawn(move || {
                    let idx = len.fetch_add(1, Ordering::AcqRel);
                    if idx >= capacity {
                        // MUTATION: rollback dropped. Correct code does
                        // len.fetch_sub(1, AcqRel) here.
                    }
                })
            })
            .collect();
        for p in pushers {
            p.join().unwrap();
        }
        let final_len = len.load(Ordering::Acquire).min(capacity);
        assert_eq!(
            len.load(Ordering::Acquire),
            final_len,
            "over-claim leaked past capacity"
        );
    };
    // Any strategy sees this: it is a plain interleaving bug (both claims
    // happen before either check), visible even to round-robin.
    let failure = explore(
        &opts("mut_missing_rollback", vec![Strategy::RoundRobin]),
        body,
    )
    .expect_err("mutation must be killed within the budget");
    assert_deterministic_replay(&failure, body);
}

/// Mutation 2: message-passing publish with `Relaxed` instead of
/// `Release` on the flag store. Needs the weak-memory model: under any
/// interleaving the data write is program-order-before the flag write, so
/// only a stale read can expose the missing edge.
#[test]
fn relaxed_where_release_required_is_caught() {
    let body = || {
        let data = Arc::new(VAtomicU64::new(0));
        let flag = Arc::new(VAtomicU64::new(0));
        let (d, f) = (data.clone(), flag.clone());
        let writer = vthread::spawn(move || {
            d.store(42, Ordering::Relaxed);
            // MUTATION: Relaxed publish. Correct code releases here.
            f.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "flag observed without the data it was supposed to publish"
            );
        }
        writer.join().unwrap();
    };
    let failure = explore(&opts("mut_relaxed_publish", vec![Strategy::Random]), body)
        .expect_err("stale read must be found within the budget");
    assert_deterministic_replay(&failure, body);

    // Control: the correct protocol (Release publish) passes the same
    // budget — the checker kills the mutation, not the pattern.
    let correct = || {
        let data = Arc::new(VAtomicU64::new(0));
        let flag = Arc::new(VAtomicU64::new(0));
        let (d, f) = (data.clone(), flag.clone());
        let writer = vthread::spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        writer.join().unwrap();
    };
    explore(
        &opts("mut_relaxed_publish_control", vec![Strategy::Random]),
        correct,
    )
    .expect("correctly synchronized control must pass");
}

/// Mutation 3: the registry's slot claim with its CAS torn into a load
/// plus a store. Two claimers can both observe EMPTY and both claim.
#[test]
fn torn_cas_slot_claim_is_caught() {
    const EMPTY: i64 = i64::MIN;
    let body = || {
        let slot = Arc::new(VAtomicI64::new(EMPTY));
        let claims: Vec<_> = (0..2)
            .map(|w| {
                let slot = slot.clone();
                vthread::spawn(move || {
                    let key = 100 + w as i64;
                    // MUTATION: load-then-store instead of
                    // compare_exchange(EMPTY, key, AcqRel, Acquire).
                    if slot.load(Ordering::Acquire) == EMPTY {
                        slot.store(key, Ordering::Release);
                        true // believes it claimed the slot
                    } else {
                        false
                    }
                })
            })
            .collect();
        let winners = claims
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&won| won)
            .count();
        assert!(winners <= 1, "two claimers won the same slot");
    };
    // PCT excels here: the bug needs one preemption inside the tiny
    // load/store window.
    let failure = explore(
        &opts("mut_torn_cas", vec![Strategy::Pct { depth: 3 }]),
        body,
    )
    .expect_err("torn claim must be killed within the budget");
    assert_deterministic_replay(&failure, body);
}

/// Mutation 4: the ConcurrentVec length publish downgraded so the claim
/// increment no longer releases the cell write. Models replacing
/// `fetch_add(1, AcqRel)` with a relaxed RMW: a reader that acquires
/// `len` may then see the count without the cell contents.
#[test]
fn relaxed_claim_increment_is_caught() {
    let body = || {
        let cell = Arc::new(VAtomicU64::new(0));
        let len = Arc::new(VAtomicUsize::new(0));
        let (c, l) = (cell.clone(), len.clone());
        let pusher = vthread::spawn(move || {
            c.store(7, Ordering::Relaxed); // the "cell write"
                                           // MUTATION: Relaxed claim publish. The real ConcurrentVec...
                                           // publishes len with AcqRel ops precisely so observers of the
                                           // count also observe the cells of *previous* pushes.
            l.fetch_add(1, Ordering::Relaxed);
        });
        if len.load(Ordering::Acquire) == 1 {
            assert_eq!(cell.load(Ordering::Relaxed), 7, "len visible before cell");
        }
        pusher.join().unwrap();
    };
    let failure = explore(&opts("mut_relaxed_claim", vec![Strategy::Random]), body)
        .expect_err("unsynchronized claim must be killed within the budget");
    assert_deterministic_replay(&failure, body);
}
