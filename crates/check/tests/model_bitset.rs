//! Schedule exploration of [`ringo_concurrent::ConcurrentBitset`]'s claim
//! protocol — the primitive the frontier engine's bottom-up BFS phase
//! leans on. Compiled with `--features model`, every `fetch_or` inside
//! the bitset routes through the deterministic scheduler.

use ringo_concurrent::ConcurrentBitset;
use std::sync::Arc;

use ringo_check::vthread;

/// Two threads race to claim the same bit: exactly one must win, under
/// every interleaving, and the bit must read as set afterwards.
#[test]
fn same_bit_claim_has_exactly_one_winner() {
    ringo_check::check("bitset_same_bit_claim", || {
        let b = Arc::new(ConcurrentBitset::new(64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = b.clone();
                vthread::spawn(move || b.set(7))
            })
            .collect();
        let wins = handles
            .into_iter()
            .map(|h| h.join().expect("claimer panicked"))
            .filter(|&w| w)
            .count();
        assert_eq!(wins, 1, "claim must have a unique winner");
        assert!(b.get(7), "claimed bit must be visible");
        assert_eq!(b.count_ones(), 1, "no stray bits");
    });
}

/// Three threads claim distinct bits that share one 64-bit word: no
/// claim may be lost to a torn read-modify-write, and every claimer must
/// see its own win.
#[test]
fn distinct_bits_in_one_word_lose_nothing() {
    ringo_check::check("bitset_distinct_bits_one_word", || {
        let b = Arc::new(ConcurrentBitset::new(64));
        let handles: Vec<_> = [3usize, 17, 44]
            .into_iter()
            .map(|bit| {
                let b = b.clone();
                vthread::spawn(move || b.set(bit))
            })
            .collect();
        for h in handles {
            assert!(h.join().expect("setter panicked"), "uncontended bit wins");
        }
        for bit in [3usize, 17, 44] {
            assert!(b.get(bit), "bit {bit} lost to a concurrent fetch_or");
        }
        assert_eq!(b.count_ones(), 3);
    });
}

/// The BFS claim pattern end-to-end: two "workers" discover the same two
/// "nodes"; each node is processed by exactly one worker regardless of
/// schedule, and both nodes get processed.
#[test]
fn frontier_claim_partitions_work() {
    ringo_check::check("bitset_frontier_claim", || {
        let b = Arc::new(ConcurrentBitset::new(64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = b.clone();
                vthread::spawn(move || {
                    let mut mine = Vec::new();
                    for node in [5usize, 9] {
                        if b.set(node) {
                            mine.push(node);
                        }
                    }
                    mine
                })
            })
            .collect();
        let mut processed: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        processed.sort_unstable();
        assert_eq!(processed, vec![5, 9], "each node claimed exactly once");
    });
}
