//! Schedule exploration over the epoch-reclamation layer: real
//! `EpochDomain` / `Versioned` pins and publishes under the virtualized
//! scheduler, graph compaction published as a version while slab readers
//! race it, and deliberately weakened variants of the pin protocol that
//! the checker must kill.
//!
//! The protocol under test is `ringo_concurrent::epoch`: readers pin by
//! storing the observed epoch into a slot and **re-validating** the
//! global epoch (both `SeqCst` — Dekker's pattern against the writer's
//! advance-then-scan), the single writer swings the current pointer and
//! advances the epoch, and reclamation frees a retired version only once
//! `min_pinned` reaches its retire epoch. The mutation tests below break
//! exactly the two load-bearing rungs (the re-validation loop, the
//! `SeqCst` scan) and assert the checker finds a failing schedule within
//! the 1000-schedule budget — plus a pinned-seed replay so the found
//! interleaving stays reproducible forever.

use ringo_check::sync::VAtomicU64;
use ringo_check::{explore, replay, vthread, Failure, Options, Strategy};
use ringo_concurrent::epoch::{EpochDomain, Versioned};
use ringo_graph::DirectedGraph;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Budget matching the acceptance bar: each mutation must die within
/// 1000 schedules of a single strategy.
const BUDGET: usize = 1000;

/// Slot value meaning "no epoch pinned" (mirrors `epoch::UNPINNED`).
const UNPINNED: u64 = u64::MAX;

fn opts(name: &str, strategies: Vec<Strategy>) -> Options {
    let mut o = Options::new(name);
    o.strategies = strategies;
    o.schedules_per_strategy = BUDGET;
    o
}

/// Asserts the failure replays deterministically: same outcome message
/// and identical scheduling trace on two replays of the printed seed.
fn assert_deterministic_replay<F: Fn()>(failure: &Failure, body: F) {
    let r1 = replay(failure.seed, &body);
    let r2 = replay(failure.seed, &body);
    let m1 = r1.outcome.expect_err("replayed seed must still fail");
    let m2 = r2.outcome.expect_err("replayed seed must still fail");
    assert_eq!(m1, failure.message, "replay reproduces the same failure");
    assert_eq!(m1, m2);
    assert_eq!(r1.trace, r2.trace, "replay must follow the same schedule");
}

// ---- the real protocol under the scheduler ----------------------------

/// Two pinned readers racing one publish+gc writer on the real epoch
/// primitive. Every schedule must deliver untorn versions that never go
/// backwards, and gc must reclaim everything once the pins are gone.
#[test]
fn epoch_pin_publish_gc_never_tears_or_leaks() {
    ringo_check::check("epoch_pin_publish_gc", || {
        let domain = Arc::new(EpochDomain::with_slots(4));
        let cell = Arc::new(Versioned::new(Arc::clone(&domain), vec![1u64; 3]));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (d, c) = (Arc::clone(&domain), Arc::clone(&cell));
                vthread::spawn(move || {
                    let g = d.pin();
                    let v = c.load(&g);
                    let first = v[0];
                    assert!(v.iter().all(|&x| x == first), "torn version");
                    first
                })
            })
            .collect();
        // The writer: publish a replacement and immediately try to
        // reclaim — racing the readers' pin windows.
        cell.publish(vec![2u64; 3]);
        cell.gc();
        for r in readers {
            let seen = r.join().expect("reader panicked");
            assert!(seen == 1 || seen == 2, "reader saw a freed version");
        }
        // All pins dropped at join: everything retired must now free.
        cell.gc();
        assert_eq!(cell.retired_count(), 0, "unpinned retiree leaked");
    });
}

/// A slab-backed graph, compacted and published while pinned readers
/// traverse the old version's slab views: the compact-as-publish path
/// the core catalog runs. Readers must observe internally consistent
/// adjacency no matter where the publish lands, and the displaced
/// version must reclaim only after the pins drop.
#[test]
fn compact_as_publish_racing_slab_readers() {
    ringo_check::check("epoch_compact_publish", || {
        // 0 -> {1, 2}, 1 -> {2}, bulk-loaded so the lists are views into
        // one shared slab; deleting 1->2 strands a dead range that
        // compaction reclaims.
        let mut g = DirectedGraph::from_sorted_parts(
            vec![0, 1, 2],
            &[0, 0, 1, 3],
            &[0, 0, 1],
            &[0, 2, 3, 3],
            &[1, 2, 2],
        );
        g.del_edge(1, 2);
        let domain = Arc::new(EpochDomain::with_slots(4));
        let cell = Arc::new(Versioned::new(Arc::clone(&domain), Arc::new(g)));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (d, c) = (Arc::clone(&domain), Arc::clone(&cell));
                vthread::spawn(move || {
                    let guard = d.pin();
                    let graph = c.load(&guard);
                    // Whatever version the pin caught, its adjacency is
                    // the same logical graph — compaction must be a pure
                    // storage rewrite.
                    assert_eq!(graph.out_nbrs(0), &[1, 2]);
                    assert_eq!(graph.out_nbrs(1), &[] as &[i64]);
                    assert_eq!(graph.in_nbrs(2), &[0]);
                    graph.edge_count()
                })
            })
            .collect();
        // Compact-as-publish: rewrite the surviving lists into a fresh
        // exact slab and install the rewrite as the new version.
        let mut rewritten = DirectedGraph::clone(cell.load(&domain.pin()));
        let stats = rewritten.compact();
        assert_eq!(stats.after.dead_slab_bytes(), 0);
        cell.publish(Arc::new(rewritten));
        cell.gc();
        for r in readers {
            assert_eq!(r.join().expect("reader panicked"), 2);
        }
        cell.gc();
        assert_eq!(cell.retired_count(), 0, "old slab version leaked");
    });
}

// ---- weakened variants the checker must kill --------------------------
//
// Miniature of the pin/reclaim Dekker pair, small enough for dense
// schedule coverage: one slot, the global epoch at 1, version v1 retired
// at epoch 2 by the writer's publish, and a `freed` cell standing in for
// the reclamation the real `gc` performs. The reader asserts the
// invariant the epoch layer exists to provide: a validated pin at epoch
// 1 means v1 is still alive.

/// The correct protocol: pin with SeqCst store + SeqCst re-validation,
/// scan with SeqCst loads. Passes every strategy — establishing that the
/// kills below blame the mutations, not the harness.
fn pin_scan_body(revalidate: bool, scan_order: Ordering) {
    let global = Arc::new(VAtomicU64::new(1));
    let slot = Arc::new(VAtomicU64::new(UNPINNED));
    let freed = Arc::new(VAtomicU64::new(0));
    let (g, s, f) = (Arc::clone(&global), Arc::clone(&slot), Arc::clone(&freed));
    let reader = vthread::spawn(move || {
        let mut e = g.load(Ordering::Acquire);
        if revalidate {
            loop {
                s.store(e, Ordering::SeqCst);
                let seen = g.load(Ordering::SeqCst);
                if seen == e {
                    break;
                }
                e = seen;
            }
        } else {
            // MUTATION: the re-validation loop dropped — the pin may be
            // invisible to a scan that raced the publish.
            s.store(e, Ordering::SeqCst);
        }
        if e == 1 {
            assert_eq!(
                f.load(Ordering::SeqCst),
                0,
                "reader holds a validated pin at epoch 1 but v1 was freed"
            );
        }
        s.store(UNPINNED, Ordering::Release);
    });
    // Writer: publish (v1 retired at the post-advance epoch 2), then the
    // reclamation scan — free v1 iff min_pinned >= 2.
    global.store(2, Ordering::SeqCst);
    let min = slot.load(scan_order);
    if min >= 2 {
        freed.store(1, Ordering::SeqCst);
    }
    reader.join().expect("reader panicked");
}

/// Mutation: pin without the re-validation loop. A pure interleaving
/// bug — the reader reads epoch 1, the writer advances and scans before
/// the slot store lands, frees v1, and the late pin guards nothing.
#[test]
fn missing_pin_revalidation_is_caught() {
    let body = || pin_scan_body(false, Ordering::SeqCst);
    let failure = explore(
        &opts(
            "epoch_missing_revalidation",
            vec![Strategy::Pct { depth: 3 }],
        ),
        body,
    )
    .expect_err("unvalidated pin must be killed within the budget");
    assert_deterministic_replay(&failure, body);

    // Control: the full protocol survives the same budget under every
    // strategy the mutations run with.
    explore(
        &opts(
            "epoch_revalidation_control",
            vec![
                Strategy::RoundRobin,
                Strategy::Random,
                Strategy::Pct { depth: 3 },
            ],
        ),
        || pin_scan_body(true, Ordering::SeqCst),
    )
    .expect("correct pin protocol must pass");
}

/// Mutation: the reclamation scan demoted to `Relaxed`. Under the weak
/// memory model the scan may legally read the slot's stale UNPINNED
/// value even though the reader's SeqCst pin is complete — freeing v1
/// under a validated pin. Only the randomized strategies' stale-read
/// exploration can expose it.
#[test]
fn relaxed_reclamation_scan_is_caught() {
    let body = || pin_scan_body(true, Ordering::Relaxed);
    let failure = explore(&opts("epoch_relaxed_scan", vec![Strategy::Random]), body)
        .expect_err("relaxed scan must be killed within the budget");
    assert_deterministic_replay(&failure, body);
}

// ---- pinned replay regression -----------------------------------------

/// A `RINGO_CHECK_SEED` discovered by `epoch_missing_revalidation`
/// exploration, pinned forever: replaying it against the weakened body
/// must keep producing the same violation with the same trace. Guards
/// both the bug's visibility and the replay contract (see
/// `tests/replay.rs` for the policy on regenerating seeds after a
/// deliberate scheduler change).
const MISSING_REVALIDATION_SEED: u64 = 0x82a9c50ceec1521a;

#[test]
fn pinned_seed_replays_missing_revalidation_kill() {
    let body = || pin_scan_body(false, Ordering::SeqCst);
    let r1 = replay(MISSING_REVALIDATION_SEED, body);
    let r2 = replay(MISSING_REVALIDATION_SEED, body);
    let m1 = r1.outcome.expect_err("pinned seed must fail");
    let m2 = r2.outcome.expect_err("pinned seed must fail");
    assert!(m1.contains("v1 was freed"), "wrong violation class: {m1}");
    assert_eq!(m1, m2, "replay must be deterministic");
    assert_eq!(r1.trace, r2.trace, "replay must follow the same schedule");
}
