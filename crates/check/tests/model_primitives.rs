//! Schedule exploration over Ringo's real lock-free primitives.
//!
//! These tests compile `ringo-concurrent` and `ringo-trace` with their
//! `model` feature, so every atomic inside `ConcurrentVec`,
//! `ConcurrentIntTable`, the pool-stats counter protocol, and the metrics
//! registry goes through the deterministic scheduler. Each body is run
//! under `RINGO_CHECK_SCHEDULES` schedules (default 1000) per strategy;
//! any lost update, duplicated slot, or stale publish panics with a
//! replayable `RINGO_CHECK_SEED`.
//!
//! Bodies are kept to 2–3 virtual threads with a handful of operations
//! each: schedule exploration cost is exponential in operation count, and
//! small bodies are exactly where exhaustive-ish interleaving coverage
//! beats the big stress tests in `ringo-concurrent` itself.

use ringo_concurrent::hash_table::hash_i64;
use ringo_concurrent::{ConcurrentIntTable, ConcurrentVec};
use ringo_trace::Registry;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use ringo_check::vthread;

/// ConcurrentVec under contended rollback: more pushers than capacity, so
/// failing pushes (fetch_add then rollback fetch_sub) interleave with
/// succeeding ones. Exactly `capacity` values must land, each exactly
/// once, and they must be precisely the values whose push reported
/// success.
#[test]
fn concurrent_vec_contended_rollback_loses_nothing() {
    ringo_check::check("concurrent_vec_contended_rollback", || {
        let capacity = 2usize;
        let v: Arc<ConcurrentVec<usize>> = Arc::new(ConcurrentVec::with_capacity(capacity));
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let v = v.clone();
                vthread::spawn(move || {
                    // Two attempts per thread, values globally unique.
                    let mut wins = Vec::new();
                    for a in 0..2usize {
                        let value = t * 2 + a;
                        if v.push(value).is_ok() {
                            wins.push(value);
                        }
                    }
                    wins
                })
            })
            .collect();
        let mut succeeded: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("pusher panicked"))
            .collect();
        assert_eq!(v.len(), capacity, "rollback must restore len exactly");
        let v = Arc::into_inner(v).expect("all pushers joined");
        let mut stored = v.into_vec();
        stored.sort_unstable();
        succeeded.sort_unstable();
        assert_eq!(stored, succeeded, "lost or duplicated push");
    });
}

/// ConcurrentIntTable with keys that all hash to the table's last slot, so
/// every probe sequence wraps around the end of the array. Concurrent
/// inserters of overlapping key sets must agree on slots, dedupe `len`
/// exactly, and `find` must return the claimed slot for every key.
#[test]
fn concurrent_table_insert_find_agree_across_wrap_around() {
    // with_capacity(4) allocates 8 slots; pick keys homed at slot 7 so
    // probing wraps to 0, 1, ... under collision.
    let colliders: Vec<i64> = (0..)
        .filter(|&k| (hash_i64(k) as usize) & 7 == 7)
        .take(3)
        .collect();
    let colliders = Arc::new(colliders);
    ringo_check::check("concurrent_table_wrap_around", move || {
        let t: Arc<ConcurrentIntTable> = Arc::new(ConcurrentIntTable::with_capacity(4));
        assert_eq!(t.slots(), 8, "test assumes an 8-slot table");
        let keys = colliders.clone();
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let t = t.clone();
                let keys = keys.clone();
                vthread::spawn(move || {
                    // Overlapping sets: worker 0 inserts keys[0..2],
                    // worker 1 inserts keys[1..3]; keys[1] races.
                    let mine = [keys[w], keys[w + 1]];
                    mine.map(|k| (k, t.insert(k).0))
                })
            })
            .collect();
        let claims: Vec<(i64, usize)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("inserter panicked"))
            .collect();
        assert_eq!(t.len(), 3, "three distinct keys inserted");
        for (k, slot) in claims {
            assert_eq!(t.find(k), Some(slot), "find disagrees with insert");
            assert_eq!(t.key_at(slot), Some(k));
            let (again, fresh) = t.insert(k);
            assert_eq!(again, slot, "slots must be stable");
            assert!(!fresh);
        }
    });
}

/// Registry slot claiming: concurrent `counter(name)` calls racing on the
/// same fresh registry must never claim two slots for one name (the CAS
/// publish), and adds through either handle must all land in that slot.
#[test]
fn registry_never_claims_one_name_twice() {
    ringo_check::check("registry_slot_claim", || {
        let reg = Arc::new(Registry::with_capacity(4, 1));
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let reg = reg.clone();
                vthread::spawn(move || {
                    // Both threads race on "shared"; each also claims a
                    // private name, all on a 4-slot array.
                    let shared = reg.counter("model.shared");
                    shared.add(1);
                    let own = reg.counter(if w == 0 { "model.a" } else { "model.b" });
                    own.add(10);
                    shared as *const _ as usize
                })
            })
            .collect();
        let ptrs: Vec<usize> = handles
            .into_iter()
            .map(|h| h.join().expect("claimer panicked"))
            .collect();
        assert_eq!(ptrs[0], ptrs[1], "one name must resolve to one slot");
        assert_eq!(reg.counter("model.shared").get(), 2, "lost increment");
        assert_eq!(reg.counter("model.a").get(), 10);
        assert_eq!(reg.counter("model.b").get(), 10);
        let snapshot = reg.counters_snapshot();
        assert_eq!(snapshot.len(), 3, "exactly three names registered");
    });
}

/// Histogram recording (fetch_add / fetch_min / fetch_max) from two
/// threads: aggregates must account for every observation.
#[test]
fn histogram_aggregates_are_exact() {
    ringo_check::check("histogram_aggregates", || {
        let reg = Arc::new(Registry::with_capacity(1, 2));
        let handles: Vec<_> = [(1u64, 100u64), (7u64, 3u64)]
            .into_iter()
            .map(|(a, b)| {
                let reg = reg.clone();
                vthread::spawn(move || {
                    let h = reg.histogram("model.hist");
                    h.record(a);
                    h.record(b);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder panicked");
        }
        let snap = reg
            .histograms_snapshot()
            .into_iter()
            .find(|s| s.name == "model.hist")
            .expect("histogram registered");
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum_ns, 111);
        assert_eq!(snap.min_ns, 1);
        assert_eq!(snap.max_ns, 100);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4);
    });
}

/// The pool-stats counter protocol (monotonic relaxed `fetch_add` deltas,
/// snapshot via relaxed loads), exercised on facade atomics directly: the
/// real pool's resident workers are foreign OS threads that must not join
/// a live schedule, so the protocol is reproduced 1:1 with virtual
/// threads. Totals must sum exactly — relaxed RMWs may not lose updates.
#[test]
fn pool_stats_counters_sum_exactly() {
    use ringo_check::sync::VAtomicU64;
    ringo_check::check("pool_stats_sum", || {
        struct Stats {
            jobs: VAtomicU64,
            chunks: VAtomicU64,
            busy: VAtomicU64,
        }
        let stats = Arc::new(Stats {
            jobs: VAtomicU64::new(0),
            chunks: VAtomicU64::new(0),
            busy: VAtomicU64::new(0),
        });
        let handles: Vec<_> = (1..=2u64)
            .map(|w| {
                let s = stats.clone();
                vthread::spawn(move || {
                    s.jobs.fetch_add(1, Ordering::Relaxed);
                    for c in 0..2 {
                        s.chunks.fetch_add(1, Ordering::Relaxed);
                        s.busy.fetch_add(w * 10 + c, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        assert_eq!(stats.jobs.load(Ordering::Relaxed), 2);
        assert_eq!(stats.chunks.load(Ordering::Relaxed), 4);
        assert_eq!(stats.busy.load(Ordering::Relaxed), 10 + 11 + 20 + 21);
    });
}

/// The ConcurrentVec publish contract that makes `into_vec`/`get_mut`
/// sound: after joining all pushers (a happens-before edge), the claimed
/// cells must be visible — i.e. `len`'s release increments synchronize
/// with the joiner.
#[test]
fn concurrent_vec_len_publishes_after_join() {
    ringo_check::check("concurrent_vec_publish", || {
        let v: Arc<ConcurrentVec<u64>> = Arc::new(ConcurrentVec::with_capacity(2));
        let handles: Vec<_> = (0..2u64)
            .map(|t| {
                let v = v.clone();
                vthread::spawn(move || v.push(t + 40).expect("capacity 2, 2 pushes"))
            })
            .collect();
        for h in handles {
            h.join().expect("pusher panicked");
        }
        assert_eq!(v.len(), 2);
        let mut v = Arc::into_inner(v).expect("all pushers joined");
        let mut seen = [*v.get_mut(0).unwrap(), *v.get_mut(1).unwrap()];
        seen.sort_unstable();
        assert_eq!(seen, [40, 41], "cell writes must be visible after join");
    });
}
