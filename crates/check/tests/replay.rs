//! Replay-regression corpus: known-bad interleavings pinned by their
//! encoded seeds, re-checked forever.
//!
//! Each constant below is a `RINGO_CHECK_SEED` value discovered by
//! exploration during development (the seeds are deterministic: the base
//! seed is derived from the exploration name, so re-discovery yields the
//! same values). The tests replay each seed against the buggy body and
//! assert it still fails with the same class of violation — which guards
//! two things at once:
//!
//! 1. the bug classes stay visible to the checker (no silent loss of
//!    detection power in the scheduler or memory model), and
//! 2. seed replay stays an exact reproducer (encoding, RNG streams, and
//!    scheduling decisions are part of the replay contract; changing any
//!    of them must fail here, loudly, so the seed format is versioned
//!    deliberately rather than drifting).
//!
//! If a deliberate scheduler change breaks these, re-discover the seeds
//! with the exploration names in each test and update the constants in the
//! same commit, noting the replay-format break in CHANGES.md.

use ringo_check::sync::{VAtomicI64, VAtomicU64, VAtomicUsize};
use ringo_check::{explore, replay, vthread, Options, Strategy};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The historical-shape bug: `ConcurrentVec::push`'s contended capacity
/// rollback with the `fetch_sub` dropped (the over-claim leaks past
/// capacity under concurrent overflow — the exact failure mode PR 1's
/// contended-overflow stress test was added against, reproduced here as a
/// mutation on facade atomics).
const ROLLBACK_RACE_SEED: u64 = 0x93a5d5bb1f1e9800;

/// Relaxed-where-Release message-passing publish; only the weak-memory
/// model's stale reads expose it.
const RELAXED_PUBLISH_SEED: u64 = 0xcbe36a01fcfc0601;

/// Registry-style slot claim with the CAS torn into load-then-store; both
/// claimers win under one preemption (found by PCT, depth 3).
const TORN_CAS_SEED: u64 = 0x4306159c8be1981a;

fn rollback_race_body() {
    let capacity = 1usize;
    let len = Arc::new(VAtomicUsize::new(0));
    let pushers: Vec<_> = (0..2)
        .map(|_| {
            let len = len.clone();
            vthread::spawn(move || {
                let idx = len.fetch_add(1, Ordering::AcqRel);
                if idx >= capacity {
                    // Historical mutation: rollback dropped; correct push
                    // does len.fetch_sub(1, AcqRel) here.
                }
            })
        })
        .collect();
    for p in pushers {
        p.join().unwrap();
    }
    assert!(len.load(Ordering::Acquire) <= capacity, "over-claim leaked");
}

fn relaxed_publish_body() {
    let data = Arc::new(VAtomicU64::new(0));
    let flag = Arc::new(VAtomicU64::new(0));
    let (d, fl) = (data.clone(), flag.clone());
    let writer = vthread::spawn(move || {
        d.store(42, Ordering::Relaxed);
        fl.store(1, Ordering::Relaxed);
    });
    if flag.load(Ordering::Acquire) == 1 {
        assert_eq!(data.load(Ordering::Relaxed), 42, "stale data");
    }
    writer.join().unwrap();
}

fn torn_cas_body() {
    const EMPTY: i64 = i64::MIN;
    let slot = Arc::new(VAtomicI64::new(EMPTY));
    let claims: Vec<_> = (0..2)
        .map(|w| {
            let slot = slot.clone();
            vthread::spawn(move || {
                if slot.load(Ordering::Acquire) == EMPTY {
                    slot.store(100 + w as i64, Ordering::Release);
                    true
                } else {
                    false
                }
            })
        })
        .collect();
    let winners = claims
        .into_iter()
        .map(|h| h.join().unwrap())
        .filter(|&won| won)
        .count();
    assert!(winners <= 1, "double claim");
}

/// Replays `seed` against `body` twice, asserting it fails with `expect`
/// in the message and that both replays follow the identical schedule.
fn assert_pinned_failure(seed: u64, body: fn(), expect: &str) {
    let r1 = replay(seed, body);
    let r2 = replay(seed, body);
    let m1 = r1.outcome.expect_err("pinned seed must still fail");
    let m2 = r2.outcome.expect_err("pinned seed must still fail");
    assert!(m1.contains(expect), "unexpected failure: {m1}");
    assert_eq!(m1, m2, "replay must be deterministic");
    assert_eq!(r1.trace, r2.trace, "replay must follow the same schedule");
}

#[test]
fn pinned_rollback_race_still_fails() {
    assert_pinned_failure(ROLLBACK_RACE_SEED, rollback_race_body, "over-claim leaked");
}

#[test]
fn pinned_relaxed_publish_still_fails() {
    assert_pinned_failure(RELAXED_PUBLISH_SEED, relaxed_publish_body, "stale data");
}

#[test]
fn pinned_torn_cas_still_fails() {
    assert_pinned_failure(TORN_CAS_SEED, torn_cas_body, "double claim");
}

/// The pinned seeds must also stay *re-discoverable*: exploration from the
/// stable per-name base seed finds the identical seed again. This couples
/// the corpus to the exploration RNG streams, so a change to either is
/// caught in the same place the constants are maintained.
#[test]
fn exploration_rediscovers_the_pinned_seeds() {
    let mut o = Options::new("replay_rollback_race");
    o.strategies = vec![Strategy::RoundRobin];
    let f = explore(&o, rollback_race_body).expect_err("must fail");
    assert_eq!(f.seed, ROLLBACK_RACE_SEED, "re-discovery drifted");

    let mut o = Options::new("replay_relaxed_publish");
    o.strategies = vec![Strategy::Random];
    let f = explore(&o, relaxed_publish_body).expect_err("must fail");
    assert_eq!(f.seed, RELAXED_PUBLISH_SEED, "re-discovery drifted");

    let mut o = Options::new("replay_torn_cas");
    o.strategies = vec![Strategy::Pct { depth: 3 }];
    let f = explore(&o, torn_cas_body).expect_err("must fail");
    assert_eq!(f.seed, TORN_CAS_SEED, "re-discovery drifted");
}

/// A clean body must replay clean under any pinned-format seed: replay is
/// not allowed to manufacture failures.
#[test]
fn clean_body_replays_clean() {
    for seed in [ROLLBACK_RACE_SEED, RELAXED_PUBLISH_SEED, TORN_CAS_SEED] {
        let r = replay(seed, || {
            let a = Arc::new(VAtomicU64::new(0));
            let a2 = a.clone();
            let h = vthread::spawn(move || {
                a2.fetch_add(1, Ordering::AcqRel);
            });
            h.join().unwrap();
            assert_eq!(a.load(Ordering::Acquire), 1);
        });
        assert!(r.outcome.is_ok(), "{:?}", r.outcome);
    }
}
