//! Vector clocks tracking the happens-before partial order between virtual
//! threads.
//!
//! Every virtual thread carries a [`VClock`]; component `t` is the number of
//! synchronization events thread `t` had performed the last time its effects
//! became visible to the clock's owner. Spawn, join, mutex hand-off, and
//! release/acquire pairs on the virtual atomics all `join` clocks, which is
//! what lets the memory model in [`crate::memory`] decide whether a store is
//! ordered before a load or merely happened earlier in this particular
//! schedule.

/// A grow-on-demand vector clock. Missing components read as zero, so
/// clocks stay tiny until a schedule actually spawns many threads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    /// The all-zero clock (ordered before every event).
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Component for thread `tid`.
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Sets component `tid` to `v`, growing the vector as needed.
    pub fn set(&mut self, tid: usize, v: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = v;
    }

    /// Increments component `tid` and returns the new value. Called once
    /// per synchronization event of the owning thread.
    pub fn tick(&mut self, tid: usize) -> u64 {
        let v = self.get(tid) + 1;
        self.set(tid, v);
        v
    }

    /// Component-wise maximum: afterwards `self` dominates both inputs.
    /// This is the happens-before edge primitive (join, acquire, lock).
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_default_to_zero_and_grow() {
        let mut c = VClock::new();
        assert_eq!(c.get(5), 0);
        c.set(3, 7);
        assert_eq!(c.get(3), 7);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(100), 0);
    }

    #[test]
    fn tick_counts_events() {
        let mut c = VClock::new();
        assert_eq!(c.tick(2), 1);
        assert_eq!(c.tick(2), 2);
        assert_eq!(c.tick(0), 1);
        assert_eq!(c.get(2), 2);
    }

    #[test]
    fn join_takes_componentwise_max() {
        let mut a = VClock::new();
        a.set(0, 5);
        a.set(1, 1);
        let mut b = VClock::new();
        b.set(1, 9);
        b.set(2, 2);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 9);
        assert_eq!(a.get(2), 2);
    }
}
