//! Virtual synchronization primitives.
//!
//! Drop-in lookalikes for `std::sync::atomic::Atomic*` and
//! `std::sync::Mutex` that route every operation through the cooperative
//! scheduler **when the calling OS thread is a virtual thread of an active
//! schedule**, and degrade to the plain `std` operation otherwise (the
//! *passthrough*). Passthrough is what makes the `model` feature of the
//! crates under test safe to unify into ordinary builds: code compiled
//! against these types but running outside `ringo_check::check(...)`
//! behaves exactly like the real atomics, just with one thread-local lookup
//! of overhead per operation.
//!
//! Each virtual atomic embeds the real `std` atomic as ground truth: the
//! model mirrors every modification-order append into it, so `Drop` impls,
//! teardown after a failed schedule, and foreign (non-virtual) threads all
//! observe sane values.

use crate::sched::{self, Execution};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Routes one model operation, falling back to `$pass` when the calling
/// thread has no schedule context or the schedule is tearing down.
macro_rules! model_or {
    ($self:ident, $ctx:ident, $model:expr, $pass:expr) => {
        match sched::current() {
            Some($ctx) => match $model {
                Some(v) => v,
                None => $pass, // schedule failed; unwinding teardown
            },
            None => $pass,
        }
    };
}

macro_rules! int_atomic {
    ($name:ident, $ty:ty, $std:ident) => {
        /// Virtual counterpart of [`std::sync::atomic::
        #[doc = stringify!($std)]
        /// `]; see the module docs for the model/passthrough split.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates the atomic; `const` so it can seed statics exactly
            /// like the `std` type.
            pub const fn new(v: $ty) -> Self {
                Self {
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            /// Stable identity of this atomic within a schedule.
            fn addr(&self) -> usize {
                &self.inner as *const _ as usize
            }

            /// Initial modification-order value on first model touch: the
            /// mirror holds it because every model op writes the mirror.
            fn init(&self) -> u64 {
                // ORDERING: Relaxed — mirror read by the token holder; the
                // model layer provides all synchronization.
                self.inner.load(Ordering::Relaxed) as u64
            }

            pub fn load(&self, ord: Ordering) -> $ty {
                model_or!(
                    self,
                    ctx,
                    ctx.exec
                        .atomic_load(ctx.tid, self.addr(), self.init(), ord)
                        .map(|v| v as $ty),
                    self.inner.load(ord)
                )
            }

            pub fn store(&self, val: $ty, ord: Ordering) {
                model_or!(
                    self,
                    ctx,
                    ctx.exec
                        .atomic_store(ctx.tid, self.addr(), self.init(), val as u64, ord)
                        // ORDERING: Relaxed — mirror write; only the
                        // token-holding thread runs.
                        .map(|()| self.inner.store(val, Ordering::Relaxed)),
                    self.inner.store(val, ord)
                )
            }

            pub fn swap(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |_| val, || self.inner.swap(val, ord))
            }

            pub fn fetch_add(&self, d: $ty, ord: Ordering) -> $ty {
                self.rmw(
                    ord,
                    |old| old.wrapping_add(d),
                    || self.inner.fetch_add(d, ord),
                )
            }

            pub fn fetch_sub(&self, d: $ty, ord: Ordering) -> $ty {
                self.rmw(
                    ord,
                    |old| old.wrapping_sub(d),
                    || self.inner.fetch_sub(d, ord),
                )
            }

            pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |old| old | v, || self.inner.fetch_or(v, ord))
            }

            pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |old| old & v, || self.inner.fetch_and(v, ord))
            }

            pub fn fetch_min(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |old| old.min(v), || self.inner.fetch_min(v, ord))
            }

            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |old| old.max(v), || self.inner.fetch_max(v, ord))
            }

            /// Shared model RMW path: asks the scheduler for the
            /// modification-order append, mirrors the new value, returns
            /// the old.
            fn rmw(
                &self,
                ord: Ordering,
                f: impl Fn($ty) -> $ty,
                pass: impl FnOnce() -> $ty,
            ) -> $ty {
                match sched::current() {
                    Some(ctx) => {
                        let mut g = |old: u64| f(old as $ty) as u64;
                        match ctx
                            .exec
                            .atomic_rmw(ctx.tid, self.addr(), self.init(), ord, &mut g)
                        {
                            Some(old) => {
                                let old = old as $ty;
                                // ORDERING: Relaxed — mirror write; only
                                // the token-holding thread runs.
                                self.inner.store(f(old), Ordering::Relaxed);
                                old
                            }
                            None => pass(),
                        }
                    }
                    None => pass(),
                }
            }

            pub fn compare_exchange(
                &self,
                expected: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match sched::current() {
                    Some(ctx) => match ctx.exec.atomic_cas(
                        ctx.tid,
                        self.addr(),
                        self.init(),
                        expected as u64,
                        new as u64,
                        success,
                        failure,
                    ) {
                        Some(Ok(old)) => {
                            // ORDERING: Relaxed — mirror write; only the
                            // token-holding thread runs.
                            self.inner.store(new, Ordering::Relaxed);
                            Ok(old as $ty)
                        }
                        Some(Err(got)) => Err(got as $ty),
                        None => self.inner.compare_exchange(expected, new, success, failure),
                    },
                    None => self.inner.compare_exchange(expected, new, success, failure),
                }
            }

            /// In the model a weak CAS is the strong one: spurious failure
            /// is an extra interleaving, and the strategies already explore
            /// retry loops via preemption.
            pub fn compare_exchange_weak(
                &self,
                expected: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(expected, new, success, failure)
            }

            /// Exclusive access bypasses the model, like `std`'s: `&mut`
            /// proves no concurrent observer exists.
            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }

            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }
        }
    };
}

int_atomic!(VAtomicU64, u64, AtomicU64);
int_atomic!(VAtomicUsize, usize, AtomicUsize);
int_atomic!(VAtomicI64, i64, AtomicI64);

/// Virtual counterpart of [`std::sync::atomic::AtomicPtr`]. Pointer values
/// travel through the model bit-cast to `u64`.
#[derive(Debug)]
pub struct VAtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> VAtomicPtr<T> {
    pub const fn new(p: *mut T) -> Self {
        Self {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    fn addr(&self) -> usize {
        &self.inner as *const _ as usize
    }

    fn init(&self) -> u64 {
        // ORDERING: Relaxed — mirror read by the token holder; the model
        // layer provides all synchronization.
        self.inner.load(Ordering::Relaxed) as usize as u64
    }

    pub fn load(&self, ord: Ordering) -> *mut T {
        model_or!(
            self,
            ctx,
            ctx.exec
                .atomic_load(ctx.tid, self.addr(), self.init(), ord)
                .map(|v| v as usize as *mut T),
            self.inner.load(ord)
        )
    }

    pub fn store(&self, p: *mut T, ord: Ordering) {
        model_or!(
            self,
            ctx,
            ctx.exec
                .atomic_store(ctx.tid, self.addr(), self.init(), p as usize as u64, ord)
                // ORDERING: Relaxed — mirror write; only the token-holding
                // thread runs.
                .map(|()| self.inner.store(p, Ordering::Relaxed)),
            self.inner.store(p, ord)
        )
    }

    pub fn compare_exchange(
        &self,
        expected: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        match sched::current() {
            Some(ctx) => match ctx.exec.atomic_cas(
                ctx.tid,
                self.addr(),
                self.init(),
                expected as usize as u64,
                new as usize as u64,
                success,
                failure,
            ) {
                Some(Ok(old)) => {
                    // ORDERING: Relaxed — mirror write; only the
                    // token-holding thread runs.
                    self.inner.store(new, Ordering::Relaxed);
                    Ok(old as usize as *mut T)
                }
                Some(Err(got)) => Err(got as usize as *mut T),
                None => self.inner.compare_exchange(expected, new, success, failure),
            },
            None => self.inner.compare_exchange(expected, new, success, failure),
        }
    }

    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }
}

impl<T> Default for VAtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

/// Virtual mutex: under the model, lock acquisition is a preemption point
/// and lock/unlock carry the mutex's happens-before edge through the
/// scheduler; outside it, a plain `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct VMutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`VMutex::lock`]; releases the model mutex (when one
/// is held) after the data guard.
pub struct VMutexGuard<'a, T> {
    guard: std::mem::ManuallyDrop<std::sync::MutexGuard<'a, T>>,
    model: Option<(Arc<Execution>, usize, usize)>,
}

impl<T> VMutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    /// Locks the mutex. Poisoning is swallowed (the checker's own failure
    /// path already records the first panic; consumers under test treat
    /// the data as still consistent).
    pub fn lock(&self) -> VMutexGuard<'_, T> {
        let model = match sched::current() {
            Some(ctx) if ctx.exec.mutex_lock(ctx.tid, self.addr()) => {
                Some((ctx.exec.clone(), ctx.tid, self.addr()))
            }
            _ => None,
        };
        // Under the model this never blocks: the scheduler admits one
        // owner at a time, and parked owners keep the inner guard but are
        // not running.
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        VMutexGuard {
            guard: std::mem::ManuallyDrop::new(guard),
            model,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for VMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for VMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for VMutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: `guard` is dropped exactly once, here; `self.guard` is
        // never touched again after this line.
        unsafe { std::mem::ManuallyDrop::drop(&mut self.guard) };
        if let Some((exec, tid, addr)) = self.model.take() {
            exec.mutex_unlock(tid, addr);
        }
    }
}

/// A pure preemption point: lets the scheduler switch virtual threads with
/// no memory effect. Outside the model, hints the OS scheduler like
/// [`std::thread::yield_now`].
pub fn yield_now() {
    match sched::current() {
        Some(ctx) => ctx.exec.yield_point(ctx.tid),
        None => std::thread::yield_now(),
    }
}
