//! Virtual thread spawn/join.
//!
//! [`spawn`] inside an active schedule creates a *virtual* thread: a real
//! OS thread that participates in the token discipline (it runs only when
//! the scheduler grants it the token, starting from a park before its body
//! executes). Outside a schedule it is plain [`std::thread::spawn`]. Spawn
//! and join are preemption points and happens-before edges, mirroring the
//! real primitives.

use crate::sched::{self, Aborted, Ctx};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

type Slot<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

enum Inner<T> {
    /// Virtual thread: schedule context of the child plus its result slot.
    Model { ctx: Ctx, result: Slot<T> },
    /// Plain OS thread (no schedule active at spawn time).
    Os(std::thread::JoinHandle<T>),
}

/// Handle to a spawned (virtual or OS) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

/// Best-effort extraction of a panic payload for the failure report.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Spawns a thread running `f`. See the module docs for the
/// model/passthrough split.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some(parent) = sched::current() else {
        return JoinHandle {
            inner: Inner::Os(std::thread::spawn(f)),
        };
    };

    let tid = parent.exec.register_thread(parent.tid);
    let child_ctx = Ctx {
        exec: parent.exec.clone(),
        tid,
    };
    let result: Slot<T> = Arc::new(Mutex::new(None));

    let thread_ctx = child_ctx.clone();
    let thread_result = result.clone();
    let os = std::thread::Builder::new()
        .name(format!("ringo-check-v{tid}"))
        .spawn(move || {
            let exec = thread_ctx.exec.clone();
            sched::with_ctx(thread_ctx, || {
                // Park until the scheduler grants the first turn; this may
                // unwind with `Aborted` if the schedule fails first.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    exec.wait_first_turn(tid);
                    f()
                }));
                match outcome {
                    Ok(v) => {
                        *thread_result.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                        exec.finish_thread(tid, None);
                    }
                    Err(payload) => {
                        let msg = (!payload.is::<Aborted>())
                            .then(|| format!("virtual thread {tid}: {}", panic_message(&*payload)));
                        *thread_result.lock().unwrap_or_else(|e| e.into_inner()) =
                            Some(Err(payload));
                        exec.finish_thread(tid, msg);
                    }
                }
            });
        })
        .expect("ringo-check: OS thread spawn failed");
    parent
        .exec
        .os_handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(os);

    // Spawning is itself a preemption point: the child may run before the
    // parent's next operation.
    parent.exec.yield_point(parent.tid);

    JoinHandle {
        inner: Inner::Model {
            ctx: child_ctx,
            result,
        },
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result, like
    /// [`std::thread::JoinHandle::join`].
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Os(h) => h.join(),
            Inner::Model { ctx, result } => {
                let joiner = sched::current()
                    .expect("ringo-check: joining a virtual thread from outside its schedule");
                joiner.exec.join_thread(joiner.tid, ctx.tid);
                match result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(r) => r,
                    None => {
                        // The schedule failed before the child produced a
                        // result; propagate the teardown.
                        if std::thread::panicking() {
                            Err(Box::new(Aborted))
                        } else {
                            std::panic::panic_any(Aborted)
                        }
                    }
                }
            }
        }
    }
}
