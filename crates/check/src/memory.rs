//! A small release/acquire memory model for the virtual atomics.
//!
//! Real hardware (and the C11 model `std::sync::atomic` exposes) lets a
//! `Relaxed` load return *stale* values: any store that is neither
//! happens-before-overwritten nor already observed by the loading thread is
//! a legal result. A checker that only interleaves operations while keeping
//! memory sequentially consistent would therefore miss exactly the class of
//! bug the ISSUE cares about — a `Relaxed` store where a `Release` is
//! required publishes nothing, yet under SC interleaving the value always
//! "arrives". This module models enough of C11 to catch those:
//!
//! * every location keeps its **modification order** — the list of store
//!   events, each tagged with the writer, the writer's event count, and (for
//!   `Release`-or-stronger stores) the writer's vector clock at the store;
//! * a **load** may read any store in the suffix of the modification order
//!   that coherence allows: nothing older than what the thread last read
//!   from this location, and nothing overwritten by a store that
//!   happens-before the load. The scheduler picks among the candidates with
//!   its seeded RNG, so stale reads are explored deterministically;
//! * an **acquire** load of a release store joins the reader's clock with
//!   the store's attached clock (the synchronizes-with edge). A `Relaxed`
//!   load reads the value but learns nothing;
//! * **read-modify-writes** (`fetch_add`, `compare_exchange`, ...) always
//!   operate on the latest store in modification order, as C11 requires,
//!   and continue the release sequence of the store they replace;
//! * `SeqCst` is approximated as the strongest release/acquire pair reading
//!   the latest store. The single total order S is not modeled — Ringo's
//!   primitives never rely on it, and the simplification is documented in
//!   DESIGN.md.

use crate::clock::VClock;

/// Writer id used for the implicit initial value of a location.
const INIT_WRITER: usize = usize::MAX;

/// One store event in a location's modification order.
#[derive(Clone, Debug)]
pub(crate) struct StoreEvent {
    /// Stored value, bit-cast to `u64` whatever the source type.
    pub value: u64,
    /// Virtual thread that performed the store (`INIT_WRITER` for the
    /// initial value).
    pub writer: usize,
    /// The writer's own event count at the store, used to decide whether
    /// this store happens-before a given thread's current clock.
    pub writer_time: u64,
    /// Clock attached by `Release`-or-stronger stores (and carried forward
    /// through the release sequence by RMWs); joined into acquiring
    /// readers.
    pub release: Option<VClock>,
}

impl StoreEvent {
    /// True when this store happens-before an observer with clock `clock`.
    fn happens_before(&self, clock: &VClock) -> bool {
        self.writer == INIT_WRITER || clock.get(self.writer) >= self.writer_time
    }
}

/// Per-location model state: the modification order plus per-thread
/// coherence cursors.
#[derive(Debug)]
pub(crate) struct Location {
    stores: Vec<StoreEvent>,
    /// `last_read[t]` is the index of the newest store thread `t` has
    /// observed (read or written); coherence forbids going back.
    last_read: Vec<usize>,
}

/// Whether an ordering has acquire semantics on the load side.
fn acquires(ord: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(ord, Acquire | AcqRel | SeqCst)
}

/// Whether an ordering has release semantics on the store side.
fn releases(ord: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(ord, Release | AcqRel | SeqCst)
}

impl Location {
    /// A location whose modification order starts with `initial`, readable
    /// by every thread (the initializing write is ordered before the
    /// location's first shared use).
    pub fn new(initial: u64) -> Self {
        Self {
            stores: vec![StoreEvent {
                value: initial,
                writer: INIT_WRITER,
                writer_time: 0,
                release: None,
            }],
            last_read: Vec::new(),
        }
    }

    fn cursor(&mut self, tid: usize) -> usize {
        if self.last_read.len() <= tid {
            self.last_read.resize(tid + 1, 0);
        }
        self.last_read[tid]
    }

    fn advance_cursor(&mut self, tid: usize, idx: usize) {
        if self.last_read.len() <= tid {
            self.last_read.resize(tid + 1, 0);
        }
        self.last_read[tid] = self.last_read[tid].max(idx);
    }

    /// Index of the newest store that happens-before `clock`; stores older
    /// than this are happens-before-overwritten and illegal to read.
    fn hb_floor(&self, clock: &VClock) -> usize {
        self.stores
            .iter()
            .rposition(|s| s.happens_before(clock))
            .unwrap_or(0)
    }

    /// Lowest index a load by `tid` with clock `clock` may legally read.
    pub fn read_floor(&mut self, tid: usize, clock: &VClock) -> usize {
        let c = self.cursor(tid);
        c.max(self.hb_floor(clock))
    }

    /// Number of stores in the modification order (the latest readable
    /// index is `len() - 1`).
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// Completes a load of store `idx` chosen by the scheduler: applies the
    /// synchronizes-with edge for acquiring loads of release stores,
    /// advances the coherence cursor, and returns the value.
    pub fn read_at(
        &mut self,
        idx: usize,
        tid: usize,
        clock: &mut VClock,
        ord: std::sync::atomic::Ordering,
    ) -> u64 {
        let store = &self.stores[idx];
        let value = store.value;
        if acquires(ord) {
            if let Some(rel) = &store.release {
                clock.join(rel);
            }
        }
        self.advance_cursor(tid, idx);
        value
    }

    /// The latest value in modification order (what an RMW operates on).
    pub fn latest(&self) -> u64 {
        self.stores
            .last()
            .expect("modification order never empty")
            .value
    }

    /// Appends a plain store. A plain store *breaks* any release sequence:
    /// its release clock is only its own (when `ord` releases) or nothing.
    pub fn store(
        &mut self,
        tid: usize,
        clock: &VClock,
        value: u64,
        ord: std::sync::atomic::Ordering,
    ) {
        let release = releases(ord).then(|| clock.clone());
        self.push_store(tid, clock, value, release);
    }

    /// Performs a read-modify-write on the latest store: reads it (with
    /// acquire semantics when `ord` acquires), appends `new`, and carries
    /// the replaced store's release clock forward so the release sequence
    /// headed by an earlier release store survives intervening relaxed
    /// RMWs — the C11 rule Ringo's CAS-claim loops rely on.
    pub fn rmw(
        &mut self,
        tid: usize,
        clock: &mut VClock,
        new: u64,
        ord: std::sync::atomic::Ordering,
    ) -> u64 {
        let last = self.stores.len() - 1;
        let old = self.read_at(last, tid, clock, ord);
        let carried = self.stores[last].release.clone();
        let release = match (releases(ord).then(|| clock.clone()), carried) {
            (Some(mut own), Some(prev)) => {
                own.join(&prev);
                Some(own)
            }
            (Some(own), None) => Some(own),
            (None, carried) => carried,
        };
        self.push_store(tid, clock, new, release);
        old
    }

    fn push_store(&mut self, tid: usize, clock: &VClock, value: u64, release: Option<VClock>) {
        self.stores.push(StoreEvent {
            value,
            writer: tid,
            writer_time: clock.get(tid),
            release,
        });
        let idx = self.stores.len() - 1;
        self.advance_cursor(tid, idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::*;

    fn clock_of(pairs: &[(usize, u64)]) -> VClock {
        let mut c = VClock::new();
        for &(t, v) in pairs {
            c.set(t, v);
        }
        c
    }

    #[test]
    fn fresh_location_reads_initial_value() {
        let mut loc = Location::new(7);
        let mut clock = VClock::new();
        let lo = loc.read_floor(1, &clock);
        assert_eq!(lo, 0);
        assert_eq!(loc.read_at(lo, 1, &mut clock, Relaxed), 7);
    }

    #[test]
    fn relaxed_store_is_readable_but_synchronizes_nothing() {
        let mut loc = Location::new(0);
        let writer_clock = clock_of(&[(0, 3)]);
        loc.store(0, &writer_clock, 42, Relaxed);

        // A reader with no happens-before edge may read either store.
        let mut reader = VClock::new();
        assert_eq!(loc.read_floor(1, &reader), 0, "stale read is legal");
        // Acquiring the relaxed store learns nothing.
        assert_eq!(loc.read_at(1, 1, &mut reader, Acquire), 42);
        assert_eq!(reader.get(0), 0, "no synchronizes-with edge");
    }

    #[test]
    fn release_store_synchronizes_with_acquire_load() {
        let mut loc = Location::new(0);
        let writer_clock = clock_of(&[(0, 5)]);
        loc.store(0, &writer_clock, 1, Release);

        let mut reader = VClock::new();
        assert_eq!(loc.read_at(1, 1, &mut reader, Acquire), 1);
        assert_eq!(reader.get(0), 5, "acquire joins the writer's clock");
    }

    #[test]
    fn hb_overwritten_stores_become_unreadable() {
        let mut loc = Location::new(0);
        let writer_clock = clock_of(&[(0, 2)]);
        loc.store(0, &writer_clock, 9, Release);

        // A reader that already synchronized with the writer (clock
        // dominates the store) must not read the initial value again.
        let reader = clock_of(&[(0, 2)]);
        let mut r = reader.clone();
        assert_eq!(loc.read_floor(1, &reader), 1);
        assert_eq!(loc.read_at(1, 1, &mut r, Relaxed), 9);
    }

    #[test]
    fn coherence_cursor_is_monotone_per_thread() {
        let mut loc = Location::new(0);
        let w = clock_of(&[(0, 1)]);
        loc.store(0, &w, 1, Relaxed);
        let w = clock_of(&[(0, 2)]);
        loc.store(0, &w, 2, Relaxed);

        let mut reader = VClock::new();
        // Thread 1 reads the newest store...
        assert_eq!(loc.read_at(2, 1, &mut reader, Relaxed), 2);
        // ...and may never go back to an older one.
        assert_eq!(loc.read_floor(1, &reader), 2);
        // An unrelated thread is unconstrained.
        assert_eq!(loc.read_floor(2, &reader), 0);
    }

    #[test]
    fn rmw_operates_on_latest_and_carries_release_sequence() {
        let mut loc = Location::new(0);
        let head = clock_of(&[(0, 4)]);
        loc.store(0, &head, 10, Release);

        // A relaxed RMW by another thread continues the release sequence.
        let mut rmw_clock = clock_of(&[(1, 1)]);
        let old = loc.rmw(1, &mut rmw_clock, 11, Relaxed);
        assert_eq!(old, 10);
        assert_eq!(rmw_clock.get(0), 0, "relaxed RMW acquires nothing");

        // An acquiring reader of the RMW's store still synchronizes with
        // the release-sequence head.
        let mut reader = VClock::new();
        assert_eq!(loc.read_at(2, 2, &mut reader, Acquire), 11);
        assert_eq!(reader.get(0), 4, "release sequence head visible");
    }

    #[test]
    fn plain_store_breaks_the_release_sequence() {
        let mut loc = Location::new(0);
        let head = clock_of(&[(0, 4)]);
        loc.store(0, &head, 10, Release);
        // A plain relaxed store by another thread breaks the sequence.
        let w1 = clock_of(&[(1, 1)]);
        loc.store(1, &w1, 11, Relaxed);

        let mut reader = VClock::new();
        assert_eq!(loc.read_at(2, 2, &mut reader, Acquire), 11);
        assert_eq!(reader.get(0), 0, "sequence broken by plain store");
    }
}
