//! `ringo-check`: deterministic cooperative-scheduling concurrency checker
//! for Ringo's lock-free core.
//!
//! The crates under test (`ringo-concurrent`, `ringo-trace`) access their
//! atomics through a `crate::sync` facade. In a normal build the facade is
//! a set of type aliases onto `std::sync::atomic` — byte-for-byte the same
//! code. Under `--features model` the facade re-exports this crate's
//! virtual primitives ([`sync`], [`vthread`]), and a test wraps the code
//! under test in [`check`]:
//!
//! ```ignore
//! ringo_check::check("concurrent_vec_push", || {
//!     let v = Arc::new(ConcurrentVec::new(4));
//!     let hs: Vec<_> = (0..2)
//!         .map(|_| { let v = v.clone(); ringo_check::vthread::spawn(move || { v.push(1); }) })
//!         .collect();
//!     for h in hs { h.join().unwrap(); }
//!     assert_eq!(v.len(), 2);
//! });
//! ```
//!
//! [`check`] runs the closure under thousands of *schedules*: each one
//! executes the virtual threads one at a time, switching only at
//! synchronization operations, with every scheduling decision (and every
//! choice of which store a relaxed load observes — see [`memory`]) drawn
//! from a seeded SplitMix64 stream. A failing schedule prints a
//! `RINGO_CHECK_SEED=0x…` value; exporting it replays exactly that
//! interleaving.
//!
//! Environment knobs (read by [`check`]):
//!
//! * `RINGO_CHECK_SEED` — hex or decimal encoded seed; replay exactly one
//!   schedule instead of exploring.
//! * `RINGO_CHECK_STRATEGY` — `round-robin` | `random` | `pct`; restrict
//!   exploration to one strategy.
//! * `RINGO_CHECK_SCHEDULES` — schedules per strategy (default 1000).

mod clock;
mod memory;
mod sched;
pub mod sync;
pub mod vthread;

use ringo_rng::Rng64;
use sched::Execution;
pub use sched::Strategy;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Fixed range PCT change points are sampled from (`1..=PCT_OP_RANGE`).
/// A fixed constant rather than an adaptive estimate so that a printed
/// seed alone — with no side-channel state — replays the exact schedule.
/// Points beyond a schedule's actual length simply never fire.
pub const PCT_OP_RANGE: u64 = 512;

/// Default schedules per strategy when `RINGO_CHECK_SCHEDULES` is unset.
pub const DEFAULT_SCHEDULES: usize = 1000;

/// Default PCT depth (number of priority change points).
pub const DEFAULT_PCT_DEPTH: usize = 3;

// ---- seed encoding ----------------------------------------------------
//
// A replay seed is one u64: [raw:55][depth:6][tag:3]. `raw` is the
// schedule's RNG seed, `depth` the PCT change-point count, `tag` the
// strategy. One value reproduces everything.

const TAG_BITS: u32 = 3;
const DEPTH_BITS: u32 = 6;
const RAW_MASK: u64 = (1 << (64 - TAG_BITS - DEPTH_BITS)) - 1;

/// Packs a schedule's raw RNG seed and strategy into one replayable value.
pub fn encode_seed(raw: u64, strategy: Strategy) -> u64 {
    debug_assert!(raw <= RAW_MASK);
    (raw << (TAG_BITS + DEPTH_BITS))
        | ((strategy.depth() & ((1 << DEPTH_BITS) - 1)) << TAG_BITS)
        | strategy.tag()
}

/// Inverse of [`encode_seed`].
pub fn decode_seed(encoded: u64) -> (u64, Strategy) {
    let raw = encoded >> (TAG_BITS + DEPTH_BITS);
    let depth = ((encoded >> TAG_BITS) & ((1 << DEPTH_BITS) - 1)) as usize;
    let strategy = match encoded & ((1 << TAG_BITS) - 1) {
        0 => Strategy::RoundRobin,
        1 => Strategy::Random,
        2 => Strategy::Pct { depth },
        t => panic!("ringo-check: invalid strategy tag {t} in seed {encoded:#x}"),
    };
    (raw, strategy)
}

// ---- running schedules -------------------------------------------------

/// Outcome of one schedule: preemption-point count on success, failure
/// message otherwise; plus the scheduling trace (sequence of tids granted
/// the token) for replay-equality assertions.
pub struct ScheduleResult {
    pub outcome: Result<u64, String>,
    pub trace: Vec<u16>,
}

/// Runs `f` once under the scheduler with the given raw seed and strategy.
pub fn run_schedule<F: FnOnce()>(raw_seed: u64, strategy: Strategy, f: F) -> ScheduleResult {
    let exec = Arc::new(Execution::new(raw_seed, strategy, PCT_OP_RANGE));
    let main_ctx = sched::Ctx {
        exec: exec.clone(),
        tid: 0,
    };
    let body = sched::with_ctx(main_ctx, || catch_unwind(AssertUnwindSafe(f)));
    match body {
        Ok(()) => exec.drain_after_main(),
        Err(payload) => {
            let msg = if payload.is::<sched::Aborted>() {
                // A child already recorded the real failure.
                "aborted".to_string()
            } else {
                format!("main thread: {}", vthread::panic_message(&*payload))
            };
            exec.fail_from_main(msg);
        }
    }
    // All virtual threads have finished (live == 0); reap their OS threads
    // so schedules never leak.
    for h in exec
        .os_handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
    {
        let _ = h.join();
    }
    let (outcome, trace) = exec.report();
    ScheduleResult { outcome, trace }
}

/// Replays the single schedule identified by an encoded seed.
pub fn replay<F: FnOnce()>(encoded_seed: u64, f: F) -> ScheduleResult {
    let (raw, strategy) = decode_seed(encoded_seed);
    run_schedule(raw, strategy, f)
}

// ---- exploration -------------------------------------------------------

/// Exploration configuration; built from the environment by [`check`].
#[derive(Clone, Debug)]
pub struct Options {
    pub strategies: Vec<Strategy>,
    pub schedules_per_strategy: usize,
    /// Master seed the per-schedule raw seeds are drawn from.
    pub base_seed: u64,
}

impl Options {
    /// Deterministic defaults keyed on the test name: all three
    /// strategies, [`DEFAULT_SCHEDULES`] each.
    pub fn new(name: &str) -> Self {
        Self {
            strategies: vec![
                Strategy::RoundRobin,
                Strategy::Random,
                Strategy::Pct {
                    depth: DEFAULT_PCT_DEPTH,
                },
            ],
            schedules_per_strategy: DEFAULT_SCHEDULES,
            base_seed: seed_from_name(name),
        }
    }
}

/// Stable 64-bit seed from a test name (FNV-1a), so exploration is
/// deterministic run to run without any environment setup.
fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A failed schedule found during exploration.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Encoded replay seed; `RINGO_CHECK_SEED={seed:#x}` reproduces it.
    pub seed: u64,
    pub strategy: Strategy,
    pub schedule_index: usize,
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule {} under {} failed: {}\n  replay with: RINGO_CHECK_SEED={:#x}",
            self.schedule_index,
            self.strategy.name(),
            self.message,
            self.seed
        )
    }
}

/// Aggregate statistics of a fully passing exploration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    pub schedules: usize,
    /// Largest preemption-point count observed in any schedule.
    pub max_ops: u64,
}

/// Explores schedules per `opts`, stopping at the first failure. `f` must
/// be self-contained: it is invoked once per schedule and should build its
/// data structures fresh each time.
pub fn explore<F: Fn()>(opts: &Options, f: F) -> Result<Stats, Failure> {
    let mut stats = Stats::default();
    for strategy in &opts.strategies {
        // Distinct raw-seed stream per strategy, derived from the base.
        let mut seeder = Rng64::new(
            opts.base_seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(strategy.tag() + 1)),
        );
        for i in 0..opts.schedules_per_strategy {
            let raw = seeder.u64() & RAW_MASK;
            let result = run_schedule(raw, *strategy, &f);
            match result.outcome {
                Ok(ops) => {
                    stats.schedules += 1;
                    stats.max_ops = stats.max_ops.max(ops);
                }
                Err(message) => {
                    return Err(Failure {
                        seed: encode_seed(raw, *strategy),
                        strategy: *strategy,
                        schedule_index: i,
                        message,
                    });
                }
            }
        }
    }
    Ok(stats)
}

// ---- the test-facing entry point ---------------------------------------

fn env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    let v = v.trim();
    let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    match parsed {
        Ok(n) => Some(n),
        Err(_) => panic!("ringo-check: could not parse {name}={v:?} as a u64"),
    }
}

fn env_strategy() -> Option<Strategy> {
    let v = std::env::var("RINGO_CHECK_STRATEGY").ok()?;
    Some(match v.trim().to_ascii_lowercase().as_str() {
        "round-robin" | "roundrobin" | "rr" => Strategy::RoundRobin,
        "random" => Strategy::Random,
        "pct" => Strategy::Pct {
            depth: env_u64("RINGO_CHECK_PCT_DEPTH").map_or(DEFAULT_PCT_DEPTH, |d| d as usize),
        },
        other => panic!(
            "ringo-check: unknown RINGO_CHECK_STRATEGY={other:?} \
             (expected round-robin | random | pct)"
        ),
    })
}

/// Checks `f` under many schedules, panicking with a replayable seed on
/// the first failing one. This is the function model tests call; it obeys
/// the `RINGO_CHECK_*` environment (see crate docs). Returns exploration
/// stats so tests can assert coverage.
pub fn check<F: Fn()>(name: &str, f: F) -> Stats {
    if let Some(encoded) = env_u64("RINGO_CHECK_SEED") {
        let result = replay(encoded, &f);
        match result.outcome {
            Ok(ops) => {
                eprintln!("ringo-check[{name}]: seed {encoded:#x} replayed clean ({ops} ops)");
                return Stats {
                    schedules: 1,
                    max_ops: ops,
                };
            }
            Err(message) => {
                let (_, strategy) = decode_seed(encoded);
                panic!(
                    "ringo-check[{name}]: replay of RINGO_CHECK_SEED={encoded:#x} \
                     ({}) failed: {message}",
                    strategy.name()
                );
            }
        }
    }

    let mut opts = Options::new(name);
    if let Some(s) = env_strategy() {
        opts.strategies = vec![s];
    }
    if let Some(n) = env_u64("RINGO_CHECK_SCHEDULES") {
        opts.schedules_per_strategy = n as usize;
    }
    match explore(&opts, f) {
        Ok(stats) => stats,
        Err(failure) => panic!("ringo-check[{name}]: {failure}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_roundtrip() {
        for (raw, strategy) in [
            (0u64, Strategy::RoundRobin),
            (42, Strategy::Random),
            (RAW_MASK, Strategy::Pct { depth: 63 }),
            (0xdead_beef, Strategy::Pct { depth: 3 }),
        ] {
            let enc = encode_seed(raw, strategy);
            let (r, s) = decode_seed(enc);
            assert_eq!(r, raw);
            assert_eq!(s, strategy);
        }
    }

    #[test]
    fn single_threaded_schedule_runs_clean() {
        let r = run_schedule(1, Strategy::RoundRobin, || {
            let a = sync::VAtomicU64::new(0);
            a.store(5, std::sync::atomic::Ordering::Release);
            assert_eq!(a.load(std::sync::atomic::Ordering::Acquire), 5);
        });
        assert!(r.outcome.is_ok(), "{:?}", r.outcome);
    }

    #[test]
    fn spawned_vthreads_interleave_and_join() {
        for strategy in [
            Strategy::RoundRobin,
            Strategy::Random,
            Strategy::Pct { depth: 2 },
        ] {
            let r = run_schedule(7, strategy, || {
                let a = Arc::new(sync::VAtomicU64::new(0));
                let hs: Vec<_> = (0..3)
                    .map(|_| {
                        let a = a.clone();
                        vthread::spawn(move || {
                            a.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                        })
                    })
                    .collect();
                for h in hs {
                    h.join().unwrap();
                }
                assert_eq!(a.load(std::sync::atomic::Ordering::Acquire), 3);
            });
            assert!(r.outcome.is_ok(), "{:?} under {:?}", r.outcome, strategy);
        }
    }

    #[test]
    fn assertion_failures_are_reported_with_replayable_seed() {
        let opts = Options {
            strategies: vec![Strategy::Random],
            schedules_per_strategy: 50,
            base_seed: 99,
        };
        let body = || {
            let a = Arc::new(sync::VAtomicU64::new(0));
            let b = Arc::new(sync::VAtomicU64::new(0));
            let (a2, b2) = (a.clone(), b.clone());
            let h = vthread::spawn(move || {
                a2.store(1, std::sync::atomic::Ordering::Relaxed);
                b2.store(1, std::sync::atomic::Ordering::Relaxed);
            });
            // With Relaxed stores nothing orders a before b for the
            // reader: the weak-memory model lets `a` read stale 0 after
            // `b` read 1, so the assertion must trip under Random.
            let saw_b = b.load(std::sync::atomic::Ordering::Relaxed);
            let saw_a = a.load(std::sync::atomic::Ordering::Relaxed);
            h.join().unwrap();
            assert!(!(saw_b == 1 && saw_a == 0), "b before a");
        };
        let failure = explore(&opts, body).expect_err("race must be found within 50 schedules");
        // The printed seed replays the same failing interleaving.
        let r1 = replay(failure.seed, body);
        let r2 = replay(failure.seed, body);
        assert_eq!(r1.outcome.clone().unwrap_err(), failure.message);
        assert_eq!(r1.trace, r2.trace, "replay must be deterministic");
    }

    #[test]
    fn deadlock_is_detected() {
        let r = run_schedule(3, Strategy::RoundRobin, || {
            let m = Arc::new(sync::VMutex::new(0u32));
            let m2 = m.clone();
            let g = m.lock();
            let h = vthread::spawn(move || {
                let _g = m2.lock();
            });
            // Never unlock before joining: the child can never acquire.
            h.join().unwrap();
            drop(g);
        });
        let err = r.outcome.unwrap_err();
        assert!(err.contains("deadlock"), "unexpected failure: {err}");
    }
}
