//! The cooperative deterministic scheduler.
//!
//! A *schedule* executes the test closure with every virtual thread mapped
//! onto a real OS thread, but with a strict token discipline: exactly one
//! virtual thread owns the run token at any moment, everyone else is parked
//! on a condvar. The token changes hands only at **preemption points** —
//! every virtual atomic operation, mutex operation, spawn, join, and
//! explicit yield — and the choice of who runs next comes exclusively from
//! the seeded [`Strategy`]. OS timing therefore cannot influence the
//! execution: the same seed replays the same interleaving, operation for
//! operation, which is what makes a printed `RINGO_CHECK_SEED` an exact
//! reproducer.
//!
//! Failure handling: the first panic in any virtual thread (an assertion in
//! the test body, a deadlock, an index error inside a primitive) records the
//! schedule as failed and wakes everyone. Parked threads unwind with a
//! private [`Aborted`] payload; virtual atomics touched *during* that
//! unwinding (e.g. from `Drop` impls) fall back to the real atomic so
//! teardown never double-panics.

use crate::clock::VClock;
use crate::memory::Location;
use ringo_rng::Rng64;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard cap on virtual threads per schedule; exploration cost grows
/// factorially, so tests should stay far below this anyway.
pub const MAX_VTHREADS: usize = 32;

/// How the scheduler picks the next virtual thread at each preemption
/// point. All three draw any randomness from the schedule's seeded
/// SplitMix64 stream, so every strategy is deterministic per seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Rotate through runnable threads, switching at every preemption
    /// point, and always read the newest value of every atomic. The
    /// cheapest strategy; explores systematic alternation but no stale
    /// memory.
    RoundRobin,
    /// Uniformly random runnable thread at every point, and uniformly
    /// random *legal* value for every atomic load (this is what explores
    /// stale reads allowed by the memory model).
    Random,
    /// PCT (Burckhardt et al., ASPLOS 2010): random per-thread priorities,
    /// run the highest-priority runnable thread, and at `depth` random
    /// change points drop the running thread's priority below everyone.
    /// Finds bugs of preemption depth `d` with provable probability.
    Pct {
        /// Number of priority change points (the `d` in the paper).
        depth: usize,
    },
}

impl Strategy {
    /// Stable tag used in the replay-seed encoding.
    pub(crate) fn tag(self) -> u64 {
        match self {
            Strategy::RoundRobin => 0,
            Strategy::Random => 1,
            Strategy::Pct { .. } => 2,
        }
    }

    /// PCT depth, 0 for the other strategies.
    pub(crate) fn depth(self) -> u64 {
        match self {
            Strategy::Pct { depth } => depth as u64,
            _ => 0,
        }
    }

    /// Human name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::RoundRobin => "round-robin",
            Strategy::Random => "random",
            Strategy::Pct { .. } => "pct",
        }
    }
}

/// Panic payload used to tear down parked virtual threads once a schedule
/// has already failed; never reported as a failure itself.
pub(crate) struct Aborted;

/// Why a virtual thread cannot currently be scheduled.
#[derive(Clone, Copy, Debug)]
enum BlockedOn {
    /// Waiting for the thread with this id to finish.
    Join(usize),
    /// Waiting for the mutex identified by this address.
    Mutex(usize),
}

#[derive(Clone, Copy, Debug)]
enum Status {
    Runnable,
    Blocked(BlockedOn),
    Finished,
}

struct ThreadState {
    status: Status,
    clock: VClock,
    /// PCT priority; higher runs first. Unused by other strategies.
    priority: u64,
}

/// Model state of one virtual mutex.
#[derive(Default)]
struct MutexState {
    owner: Option<usize>,
    /// Clock of the last unlock; joined by the next lock (the
    /// synchronizes-with edge of the mutex).
    release_clock: VClock,
}

/// Everything the scheduler knows about one schedule, behind one mutex.
pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    current: usize,
    /// Virtual threads not yet finished.
    live: usize,
    rng: Rng64,
    strategy: Strategy,
    /// Count of preemption points so far (PCT change points key off this).
    ops: u64,
    change_points: Vec<u64>,
    /// Decreasing priority counter handed out at PCT change points.
    next_low_priority: u64,
    locations: HashMap<usize, Location>,
    mutexes: HashMap<usize, MutexState>,
    failed: Option<String>,
    /// Scheduling decisions (tid granted the token), for replay assertions.
    trace: Vec<u16>,
}

/// One schedule's shared state plus the condvar the token discipline runs
/// on.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    /// OS handles of spawned virtual threads, reaped at end of schedule.
    pub(crate) os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Identity of the current virtual thread, stored thread-locally. `None`
/// means the thread is not participating in any schedule, and every
/// virtual primitive degrades to its real `std::sync` counterpart
/// (the *passthrough* that keeps the `model` feature inert outside
/// checker runs).
#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<Execution>,
    pub tid: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The calling OS thread's virtual identity, if it has one.
///
/// Uses `try_with`: virtual primitives run from other TLS destructors
/// (e.g. the epoch layer's claim cache releasing its slots at thread
/// exit), and destructor order is unspecified, so this TLS may already
/// be gone by then. A thread whose scheduler TLS is destroyed cannot be
/// participating in a schedule, so `None` (passthrough to the real
/// primitive) is the correct answer — `with` would panic inside a TLS
/// destructor, which aborts the process.
pub(crate) fn current() -> Option<Ctx> {
    CURRENT.try_with(|c| c.borrow().clone()).ok().flatten()
}

pub(crate) fn set_current(ctx: Option<Ctx>) {
    // Same teardown tolerance as `current`: nothing to record on a
    // thread whose scheduler TLS is already destroyed.
    let _ = CURRENT.try_with(|c| *c.borrow_mut() = ctx);
}

type Guard<'a> = MutexGuard<'a, ExecState>;

impl ExecState {
    fn runnable(&self) -> impl Iterator<Item = usize> + '_ {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.status, Status::Runnable))
            .map(|(i, _)| i)
    }

    /// Picks who owns the token next, per strategy. `None` when nobody is
    /// runnable.
    fn pick_next(&mut self) -> Option<usize> {
        let runnable: Vec<usize> = self.runnable().collect();
        if runnable.is_empty() {
            return None;
        }
        Some(match self.strategy {
            Strategy::RoundRobin => *runnable
                .iter()
                .find(|&&t| t > self.current)
                .unwrap_or(&runnable[0]),
            Strategy::Random => runnable[self.rng.below(runnable.len())],
            Strategy::Pct { .. } => *runnable
                .iter()
                .max_by_key(|&&t| self.threads[t].priority)
                .expect("nonempty"),
        })
    }

    fn fail(&mut self, msg: String) {
        if self.failed.is_none() {
            self.failed = Some(msg);
        }
    }
}

impl Execution {
    /// Fresh execution for one schedule. `seed` drives every scheduling
    /// and value decision; `max_ops_hint` bounds where PCT change points
    /// may land (adapted across schedules by the caller).
    pub fn new(seed: u64, strategy: Strategy, max_ops_hint: u64) -> Self {
        let mut rng = Rng64::new(seed);
        let mut change_points = Vec::new();
        if let Strategy::Pct { depth } = strategy {
            for _ in 0..depth {
                change_points.push(1 + rng.bounded_u64(max_ops_hint.max(1)));
            }
        }
        // Initial priorities live in [2^62, 2^64); change-point priorities
        // count down from 2^62, so a change point always demotes below
        // every initial priority.
        let main_priority = rng.u64() | (1 << 62);
        let mut clock = VClock::new();
        clock.set(0, 0);
        Self {
            state: Mutex::new(ExecState {
                threads: vec![ThreadState {
                    status: Status::Runnable,
                    clock,
                    priority: main_priority,
                }],
                current: 0,
                live: 1,
                rng,
                strategy,
                ops: 0,
                change_points,
                next_low_priority: 1 << 62,
                locations: HashMap::new(),
                mutexes: HashMap::new(),
                failed: None,
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        }
    }

    fn lock_state(&self) -> Guard<'_> {
        // A panicking virtual thread may poison the state mutex while
        // unwinding; the schedule is already failed then, so the state is
        // still consistent for teardown purposes.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Entry check for every preemption point. `Ok(false)` means "schedule
    /// failed and we are unwinding — skip the model, use passthrough".
    fn abort_check(st: &Guard<'_>) -> bool {
        if st.failed.is_some() {
            if std::thread::panicking() {
                return false;
            }
            std::panic::panic_any(Aborted);
        }
        true
    }

    /// The preemption point: counts the op, applies PCT change points,
    /// picks the next token owner, and parks the caller until the token
    /// comes back. Returns holding the lock with `current == tid`, or
    /// `None` if the schedule failed while we were unwinding.
    fn preempt(&self, tid: usize) -> Option<Guard<'_>> {
        let mut st = self.lock_state();
        if !Self::abort_check(&st) {
            return None;
        }
        st.ops += 1;
        if let Strategy::Pct { .. } = st.strategy {
            let ops = st.ops;
            if st.change_points.contains(&ops) {
                st.next_low_priority -= 1;
                let p = st.next_low_priority;
                st.threads[tid].priority = p;
            }
        }
        let next = st.pick_next().expect("caller itself is runnable");
        st.current = next;
        st.trace.push(next as u16);
        if next != tid {
            self.cv.notify_all();
            while st.current != tid && st.failed.is_none() {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if !Self::abort_check(&st) {
                return None;
            }
        }
        Some(st)
    }

    /// Gives the token away without expecting it back immediately (the
    /// caller just blocked or finished). Fails the schedule on deadlock.
    fn handoff(&self, st: &mut Guard<'_>) {
        match st.pick_next() {
            Some(next) => {
                st.current = next;
                st.trace.push(next as u16);
                self.cv.notify_all();
            }
            None => {
                if st.live > 0 {
                    let blocked: Vec<usize> = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| matches!(t.status, Status::Blocked(_)))
                        .map(|(i, _)| i)
                        .collect();
                    st.fail(format!(
                        "deadlock: no runnable virtual thread (blocked: {blocked:?})"
                    ));
                }
                self.cv.notify_all();
            }
        }
    }

    /// Parks the caller until the scheduler grants it the token again
    /// (used after `handoff` from a blocking operation). Returns `None`
    /// when the schedule failed.
    fn wait_for_token<'a>(&self, mut st: Guard<'a>, tid: usize) -> Option<Guard<'a>> {
        while st.current != tid && st.failed.is_none() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if !Self::abort_check(&st) {
            return None;
        }
        Some(st)
    }

    /// First wait of a freshly spawned virtual thread, before its body
    /// runs.
    pub(crate) fn wait_first_turn(&self, tid: usize) {
        let st = self.lock_state();
        // Aborted here unwinds into the spawn wrapper, which knows the
        // marker; passthrough is meaningless before the body started.
        let _ = self.wait_for_token(st, tid);
    }

    // ---- virtual thread lifecycle ------------------------------------

    /// Registers a new virtual thread (spawned by `parent`) and returns
    /// its id. The child's clock starts at the parent's (spawn is a
    /// happens-before edge).
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        assert!(
            tid < MAX_VTHREADS,
            "ringo-check: schedule spawned more than {MAX_VTHREADS} virtual threads"
        );
        st.threads[parent].clock.tick(parent);
        let mut clock = st.threads[parent].clock.clone();
        clock.set(tid, 0);
        let priority = st.rng.u64() | (1 << 62);
        st.threads.push(ThreadState {
            status: Status::Runnable,
            clock,
            priority,
        });
        st.live += 1;
        tid
    }

    /// Marks `tid` finished, waking joiners. When the thread panicked the
    /// schedule is failed with its message (unless it was the teardown
    /// marker).
    pub(crate) fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.lock_state();
        st.threads[tid].status = Status::Finished;
        st.threads[tid].clock.tick(tid);
        st.live -= 1;
        for t in st.threads.iter_mut() {
            if let Status::Blocked(BlockedOn::Join(target)) = t.status {
                if target == tid {
                    t.status = Status::Runnable;
                }
            }
        }
        if let Some(msg) = panic_msg {
            st.fail(msg);
            self.cv.notify_all();
            return;
        }
        if st.failed.is_some() || st.live == 0 {
            self.cv.notify_all();
            return;
        }
        self.handoff(&mut st);
    }

    /// Blocks `tid` until `target` finishes, then joins clocks (the
    /// join-synchronizes-with edge). Panics with `Aborted` if the schedule
    /// fails meanwhile.
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        assert_ne!(tid, target, "virtual thread joining itself");
        let Some(mut st) = self.preempt(tid) else {
            return;
        };
        if !matches!(st.threads[target].status, Status::Finished) {
            st.threads[tid].status = Status::Blocked(BlockedOn::Join(target));
            self.handoff(&mut st);
            let Some(got) = self.wait_for_token(st, tid) else {
                return;
            };
            st = got;
        }
        let target_clock = st.threads[target].clock.clone();
        st.threads[tid].clock.join(&target_clock);
    }

    /// Main-thread epilogue: the closure returned, so finish tid 0 and keep
    /// scheduling the remaining virtual threads until everyone is done (or
    /// the schedule fails).
    pub(crate) fn drain_after_main(&self) {
        let mut st = self.lock_state();
        st.threads[0].status = Status::Finished;
        st.threads[0].clock.tick(0);
        st.live -= 1;
        for t in st.threads.iter_mut() {
            if let Status::Blocked(BlockedOn::Join(0)) = t.status {
                t.status = Status::Runnable;
            }
        }
        if st.live > 0 && st.failed.is_none() {
            self.handoff(&mut st);
        }
        while st.live > 0 && st.failed.is_none() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        self.cv.notify_all();
    }

    /// Records a failure observed on the main thread (the test closure
    /// panicked) and wakes every parked virtual thread for teardown.
    pub(crate) fn fail_from_main(&self, msg: String) {
        let mut st = self.lock_state();
        st.threads[0].status = Status::Finished;
        st.live -= 1;
        st.fail(msg);
        self.cv.notify_all();
        // Wait for the surviving virtual threads to unwind so their OS
        // handles can be reaped deterministically.
        let mut st = st;
        while st.live > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Outcome of the schedule: `Err(message)` when failed, else the
    /// number of preemption points, plus the scheduling trace.
    pub(crate) fn report(&self) -> (Result<u64, String>, Vec<u16>) {
        let st = self.lock_state();
        let trace = st.trace.clone();
        match &st.failed {
            Some(msg) => (Err(msg.clone()), trace),
            None => (Ok(st.ops), trace),
        }
    }

    // ---- virtual atomic operations -----------------------------------

    /// Atomic load at `addr`. `init` seeds the location's modification
    /// order on first touch. `None` = passthrough (schedule tearing down).
    pub(crate) fn atomic_load(
        &self,
        tid: usize,
        addr: usize,
        init: u64,
        ord: std::sync::atomic::Ordering,
    ) -> Option<u64> {
        let mut st = self.preempt(tid)?;
        let state = &mut *st;
        let loc = state
            .locations
            .entry(addr)
            .or_insert_with(|| Location::new(init));
        state.threads[tid].clock.tick(tid);
        let clock = &mut state.threads[tid].clock;
        let lo = loc.read_floor(tid, clock);
        let idx = {
            // Split borrow: the index choice needs rng+strategy, not the
            // location.
            let len = loc.len();
            match state.strategy {
                Strategy::RoundRobin => len - 1,
                _ => {
                    if matches!(ord, std::sync::atomic::Ordering::SeqCst) {
                        len - 1
                    } else if lo + 1 == len {
                        lo
                    } else {
                        lo + state.rng.below(len - lo)
                    }
                }
            }
        };
        Some(loc.read_at(idx, tid, clock, ord))
    }

    /// Atomic store at `addr`.
    pub(crate) fn atomic_store(
        &self,
        tid: usize,
        addr: usize,
        init: u64,
        value: u64,
        ord: std::sync::atomic::Ordering,
    ) -> Option<()> {
        let mut st = self.preempt(tid)?;
        let state = &mut *st;
        let loc = state
            .locations
            .entry(addr)
            .or_insert_with(|| Location::new(init));
        state.threads[tid].clock.tick(tid);
        loc.store(tid, &state.threads[tid].clock, value, ord);
        Some(())
    }

    /// Atomic read-modify-write at `addr`; returns the old value.
    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        addr: usize,
        init: u64,
        ord: std::sync::atomic::Ordering,
        f: &mut dyn FnMut(u64) -> u64,
    ) -> Option<u64> {
        let mut st = self.preempt(tid)?;
        let state = &mut *st;
        let loc = state
            .locations
            .entry(addr)
            .or_insert_with(|| Location::new(init));
        state.threads[tid].clock.tick(tid);
        let new = f(loc.latest());
        Some(loc.rmw(tid, &mut state.threads[tid].clock, new, ord))
    }

    /// Atomic compare-exchange at `addr`. RMW semantics on success; a
    /// latest-value load with `failure` ordering on mismatch.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_cas(
        &self,
        tid: usize,
        addr: usize,
        init: u64,
        expected: u64,
        new: u64,
        success: std::sync::atomic::Ordering,
        failure: std::sync::atomic::Ordering,
    ) -> Option<Result<u64, u64>> {
        let mut st = self.preempt(tid)?;
        let state = &mut *st;
        let loc = state
            .locations
            .entry(addr)
            .or_insert_with(|| Location::new(init));
        state.threads[tid].clock.tick(tid);
        let latest = loc.latest();
        if latest == expected {
            let old = loc.rmw(tid, &mut state.threads[tid].clock, new, success);
            Some(Ok(old))
        } else {
            let idx = loc.len() - 1;
            let got = loc.read_at(idx, tid, &mut state.threads[tid].clock, failure);
            Some(Err(got))
        }
    }

    /// Pure preemption point with no memory effect (spawn, `yield_now`).
    pub(crate) fn yield_point(&self, tid: usize) {
        let _ = self.preempt(tid);
    }

    // ---- virtual mutex -------------------------------------------------

    /// Model lock: blocks while held, joins the previous unlocker's clock
    /// on acquisition. Returns `false` during teardown (caller should fall
    /// back to the real mutex).
    pub(crate) fn mutex_lock(&self, tid: usize, addr: usize) -> bool {
        loop {
            let Some(mut st) = self.preempt(tid) else {
                return false;
            };
            let state = &mut *st;
            let m = state.mutexes.entry(addr).or_default();
            if m.owner.is_none() {
                m.owner = Some(tid);
                let rc = m.release_clock.clone();
                state.threads[tid].clock.tick(tid);
                state.threads[tid].clock.join(&rc);
                return true;
            }
            st.threads[tid].status = Status::Blocked(BlockedOn::Mutex(addr));
            self.handoff(&mut st);
            let Some(_guard) = self.wait_for_token(st, tid) else {
                return false;
            };
            // Re-contend: the unlocker made us runnable, but another
            // thread may have grabbed the mutex first.
        }
    }

    /// Model unlock: publishes the owner's clock and wakes waiters.
    pub(crate) fn mutex_unlock(&self, tid: usize, addr: usize) {
        let mut st = self.lock_state();
        if st.failed.is_some() {
            return;
        }
        let state = &mut *st;
        state.threads[tid].clock.tick(tid);
        let clock = state.threads[tid].clock.clone();
        let m = state.mutexes.entry(addr).or_default();
        debug_assert_eq!(m.owner, Some(tid), "unlock by non-owner");
        m.owner = None;
        m.release_clock = clock;
        for t in state.threads.iter_mut() {
            if let Status::Blocked(BlockedOn::Mutex(a)) = t.status {
                if a == addr {
                    t.status = Status::Runnable;
                }
            }
        }
        // The unlocker keeps the token; waiters contend at its next
        // preemption point.
    }
}

/// Installs `ctx` as the calling OS thread's virtual identity for the
/// duration of `f`, restoring the previous identity afterwards (even on
/// unwind).
pub(crate) fn with_ctx<R>(ctx: Ctx, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Ctx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_current(self.0.take());
        }
    }
    let prev = current();
    set_current(Some(ctx));
    let _restore = Restore(prev);
    f()
}
