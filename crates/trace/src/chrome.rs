//! Hand-rolled Chrome trace-event JSON exporter (no dependencies).
//!
//! [`to_chrome_json`] serializes the flight recorder
//! ([`crate::timelines_snapshot`]) and the sampler series
//! ([`crate::sampler::samples_snapshot`]) in the Chrome trace-event
//! format, so a profile written via `RINGO_TRACE_CHROME=<path>` opens
//! directly in `chrome://tracing` or <https://ui.perfetto.dev>:
//!
//! * every registered thread becomes a named track (`M` thread-name
//!   metadata events; pool workers show up as `ringo-worker-N`),
//! * completed spans whose begin event is still retained become balanced
//!   `B`/`E` pairs — per-morsel `plan.morsel.*` slices nest under their
//!   `plan.*` operator span on the dispatching thread and stand alone on
//!   worker tracks,
//! * completed spans whose begin event was overwritten (ring overflow)
//!   become self-contained `X` complete events reconstructed from the end
//!   event's carried start timestamp,
//! * spans still open at export time (crash dumps) remain unmatched `B`
//!   events, which Perfetto renders as running-to-the-end slices,
//! * sampler ticks become `C` counter tracks (pool busy/idle workers,
//!   live and peak heap bytes).
//!
//! Timestamps are microseconds since the trace epoch with nanosecond
//! precision (three decimals), the unit the format specifies.

use crate::events::{EventKind, ThreadTimeline, TimelineEvent};
use crate::json::write_escaped;
use std::collections::HashSet;
use std::fmt::Write;

/// Writes `ns` as fractional microseconds (`123.456`).
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn write_event_prefix(out: &mut String, first: &mut bool, ph: char, name: &str, tid: u32) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n    {\"ph\": \"");
    out.push(ph);
    out.push_str("\", \"pid\": 1, \"tid\": ");
    let _ = write!(out, "{tid}, \"name\": ");
    write_escaped(out, name);
}

fn write_slice_args(out: &mut String, ev: &TimelineEvent) {
    let _ = write!(
        out,
        ", \"args\": {{\"rows_in\": {}, \"rows_out\": {}, \"mem_delta\": {}, \"span_id\": {}, \"parent_id\": {}}}",
        ev.rows_in, ev.rows_out, ev.mem_delta, ev.span_id, ev.parent_id
    );
}

fn write_thread(out: &mut String, first: &mut bool, tl: &ThreadTimeline) {
    // Thread-name metadata so Perfetto labels the track.
    write_event_prefix(out, first, 'M', "thread_name", tl.tid);
    out.push_str(", \"args\": {\"name\": ");
    write_escaped(out, &tl.thread_name);
    out.push_str("}}");

    // Span ids whose begin event survived in this thread's window: their
    // ends close a `B` with an `E`; orphaned ends fall back to `X`.
    let begun: HashSet<u64> = tl
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Begin)
        .map(|e| e.span_id)
        .collect();
    for ev in &tl.events {
        match ev.kind {
            EventKind::Begin => {
                write_event_prefix(out, first, 'B', ev.name, tl.tid);
                out.push_str(", \"ts\": ");
                write_us(out, ev.t_ns);
                out.push('}');
            }
            EventKind::End if begun.contains(&ev.span_id) => {
                write_event_prefix(out, first, 'E', ev.name, tl.tid);
                out.push_str(", \"ts\": ");
                write_us(out, ev.t_ns);
                write_slice_args(out, ev);
                out.push('}');
            }
            EventKind::End => {
                // The begin was overwritten; the end event carries its
                // start timestamp, so emit a self-contained complete event.
                write_event_prefix(out, first, 'X', ev.name, tl.tid);
                out.push_str(", \"ts\": ");
                write_us(out, ev.start_ns);
                out.push_str(", \"dur\": ");
                write_us(out, ev.t_ns.saturating_sub(ev.start_ns));
                write_slice_args(out, ev);
                out.push('}');
            }
        }
    }
}

fn write_counters(out: &mut String, first: &mut bool) {
    for s in crate::sampler::samples_snapshot() {
        write_event_prefix(out, first, 'C', "pool.workers", 0);
        out.push_str(", \"ts\": ");
        write_us(out, s.t_ns);
        let _ = write!(
            out,
            ", \"args\": {{\"busy\": {}, \"idle\": {}}}}}",
            s.busy_workers, s.idle_workers
        );
        write_event_prefix(out, first, 'C', "mem.bytes", 0);
        out.push_str(", \"ts\": ");
        write_us(out, s.t_ns);
        let _ = write!(
            out,
            ", \"args\": {{\"current\": {}, \"peak\": {}}}}}",
            s.mem_current, s.mem_peak
        );
    }
}

/// Serializes the flight recorder and sampler series as a Chrome
/// trace-event JSON document (`{"traceEvents": [...]}`).
pub fn to_chrome_json() -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("{\n  \"traceEvents\": [");
    let mut first = true;
    write_event_prefix(&mut out, &mut first, 'M', "process_name", 0);
    out.push_str(", \"args\": {\"name\": \"ringo\"}}");
    for tl in crate::timelines_snapshot() {
        write_thread(&mut out, &mut first, &tl);
    }
    write_counters(&mut out, &mut first);
    out.push_str("\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
    out
}

/// Writes [`to_chrome_json`] to `path`.
pub fn dump_chrome(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_chrome_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_contains_balanced_named_slices() {
        let _l = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        {
            let mut sp = crate::span!("test.chrome_outer");
            sp.rows_in(3);
            {
                let _inner = crate::span!("test.chrome_inner");
            }
        }
        crate::set_enabled(false);
        let j = to_chrome_json();
        assert!(j.contains("\"traceEvents\""), "{j}");
        assert!(j.contains("\"thread_name\""), "{j}");
        assert!(j.contains("test.chrome_outer"), "{j}");
        assert!(j.contains("test.chrome_inner"), "{j}");
        // Completed spans with retained begins export as B/E pairs.
        let b = j.matches("\"ph\": \"B\"").count();
        let e = j.matches("\"ph\": \"E\"").count();
        assert_eq!(b, e, "balanced B/E: {j}");
        assert!(b >= 2, "both spans exported: {j}");
        crate::reset();
    }

    #[test]
    fn microsecond_formatting_keeps_ns_precision() {
        let mut s = String::new();
        write_us(&mut s, 1_234_567);
        assert_eq!(s, "1234.567");
        s.clear();
        write_us(&mut s, 999);
        assert_eq!(s, "0.999");
    }
}
