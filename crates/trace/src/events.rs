//! Per-thread flight-recorder event buffers.
//!
//! Every thread that records an enabled span owns one fixed-capacity
//! **SPSC ring** of timeline events: the owning thread is the only
//! writer, and drains happen under a snapshot of the thread registry.
//! Spans record a [`EventKind::Begin`] event at entry and an
//! [`EventKind::End`] event at drop, both carrying the span id, the
//! parent span id and the thread's registration id — enough to
//! reconstruct a per-worker timeline (and to export it to the Chrome
//! trace-event format, see [`crate::chrome`]).
//!
//! # Overflow policy
//!
//! The ring keeps the **most recent** [`EVENTS_PER_THREAD`] events per
//! thread: a writer never blocks and never drops fresh data — it
//! overwrites the oldest slot, like an aircraft flight recorder. Each
//! overwritten event counts toward the thread's `dropped` tally, surfaced
//! as the `trace.events.dropped` counter in [`crate::report`] and the
//! JSON dump.
//!
//! # Concurrency
//!
//! Slots are seqlock-protected: the single writer marks a slot odd,
//! stores the payload into plain atomics, then publishes the slot with an
//! even generation tag derived from the ring position. A concurrent
//! drain validates the tag before and after copying the payload and
//! discards the slot on any mismatch, so a reader never observes a torn
//! event. All payload fields are themselves atomics; the only `unsafe`
//! is reassembling the `&'static str` span name from its (pointer,
//! length) pair after validation proves the pair consistent.

use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events retained per thread; older events are overwritten (and counted
/// as dropped).
pub const EVENTS_PER_THREAD: usize = 4096;

/// How many trailing events per thread a panic dump prints.
const PANIC_DUMP_EVENTS: usize = 16;

/// What a timeline event marks: span entry or span exit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span entry; `t_ns` is the entry timestamp.
    Begin,
    /// Span exit; `t_ns` is the exit timestamp and `start_ns` the entry.
    End,
}

/// One event drained from a thread buffer.
#[derive(Clone, Debug)]
pub struct TimelineEvent {
    /// Entry or exit.
    pub kind: EventKind,
    /// Span name (e.g. `"plan.morsel.select"`).
    pub name: &'static str,
    /// Process-unique span id (nonzero).
    pub span_id: u64,
    /// Span id of the enclosing span on the same thread; 0 for roots.
    pub parent_id: u64,
    /// Nesting depth at entry: 0 for top-level spans.
    pub depth: u32,
    /// Event timestamp in nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// For [`EventKind::End`]: the matching entry timestamp.
    pub start_ns: u64,
    /// For [`EventKind::End`]: process-wide completion order.
    pub seq: u64,
    /// Input cardinality (end events; 0 unless annotated).
    pub rows_in: u64,
    /// Output cardinality (end events; 0 unless annotated).
    pub rows_out: u64,
    /// Net allocator delta over the span (end events).
    pub mem_delta: i64,
    /// Peak-heap raise over the span (end events).
    pub mem_peak_delta: u64,
}

/// One thread's drained timeline, oldest event first.
#[derive(Clone, Debug)]
pub struct ThreadTimeline {
    /// Small registration id (1-based, in registration order); the `tid`
    /// the Chrome exporter emits.
    pub tid: u32,
    /// OS thread name at registration (`main`, `ringo-worker-3`, ...).
    pub thread_name: String,
    /// Events lost to ring overwrite (plus any slots skipped because the
    /// writer was mid-store during the drain).
    pub dropped: u64,
    /// Retained events in write order.
    pub events: Vec<TimelineEvent>,
}

/// One completed span, in the legacy aggregate-view shape kept for
/// [`crate::events_snapshot`] (the `events` array of the JSON dump).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Monotonic sequence number (process-wide order of completion).
    pub seq: u64,
    /// Span name (e.g. `"table.join"`).
    pub name: &'static str,
    /// Nesting depth at entry: 0 for top-level operations.
    pub depth: u32,
    /// Wall time of the span in nanoseconds.
    pub wall_ns: u64,
    /// Input cardinality (rows or edges), when the caller set it.
    pub rows_in: u64,
    /// Output cardinality (rows or edges), when the caller set it.
    pub rows_out: u64,
    /// Net allocator delta over the span (current bytes at exit minus
    /// entry); 0 unless [`crate::mem::TrackingAllocator`] is installed.
    pub mem_delta: i64,
    /// How much the span raised the process-wide peak-heap high-water
    /// mark (0 when an earlier peak still dominates).
    pub mem_peak_delta: u64,
    /// Registration id of the recording thread.
    pub tid: u32,
    /// Process-unique span id.
    pub span_id: u64,
    /// Enclosing span id on the same thread; 0 for roots.
    pub parent_id: u64,
}

/// Payload handed to [`ThreadBuffer::push`] before slot encoding.
#[derive(Clone, Copy)]
pub(crate) struct RawEvent {
    pub kind: EventKind,
    pub name: &'static str,
    pub span_id: u64,
    pub parent_id: u64,
    pub depth: u32,
    pub t_ns: u64,
    pub start_ns: u64,
    pub seq: u64,
    pub rows_in: u64,
    pub rows_out: u64,
    pub mem_delta: i64,
    pub mem_peak_delta: u64,
}

/// One seqlock-protected slot. `guard` is `2*pos + 2` when position `pos`
/// is published here, `2*pos + 1` while the writer is mid-store, and 0
/// for a never-written slot. All payload fields are plain atomics so a
/// racing drain reads stale-or-new words, never torn ones; the guard
/// protocol rejects mixed reads.
struct Slot {
    guard: AtomicU64,
    /// `kind` in bit 0, `depth` in the bits above.
    meta: AtomicU64,
    name_ptr: AtomicPtr<u8>,
    name_len: AtomicUsize,
    span_id: AtomicU64,
    parent_id: AtomicU64,
    t_ns: AtomicU64,
    start_ns: AtomicU64,
    seq: AtomicU64,
    rows_in: AtomicU64,
    rows_out: AtomicU64,
    mem_delta: AtomicU64,
    mem_peak_delta: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            guard: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            name_ptr: AtomicPtr::new(std::ptr::null_mut()),
            name_len: AtomicUsize::new(0),
            span_id: AtomicU64::new(0),
            parent_id: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            rows_in: AtomicU64::new(0),
            rows_out: AtomicU64::new(0),
            mem_delta: AtomicU64::new(0),
            mem_peak_delta: AtomicU64::new(0),
        }
    }
}

/// One thread's event ring. Single-writer: only the owning thread calls
/// [`ThreadBuffer::push`]; everyone else drains via [`ThreadBuffer::drain`].
pub(crate) struct ThreadBuffer {
    tid: u32,
    thread_name: String,
    /// Next position to write. Only the owner stores (Release, after the
    /// slot is published); drains load Acquire.
    head: AtomicU64,
    /// Reset watermark: positions below it are invisible to drains.
    floor: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadBuffer {
    fn with_capacity(tid: u32, thread_name: String, capacity: usize) -> Self {
        ThreadBuffer {
            tid,
            thread_name,
            head: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
        }
    }

    /// Appends one event, overwriting the oldest on overflow. Must only
    /// be called by the owning thread (the SPSC writer).
    pub(crate) fn push(&self, ev: RawEvent) {
        // ORDERING: Relaxed — this thread is the only writer of `head`,
        // so it reads its own last store; publication happens below.
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(pos % self.slots.len() as u64) as usize];
        // Seqlock write protocol: mark the slot odd, fence, store the
        // payload, publish even. The Release fence orders the odd tag
        // before the payload stores as observed through the drain's
        // Acquire fence, so a drain that saw any fresh payload word must
        // also see the odd (or newer) tag and reject the slot.
        // ORDERING: Relaxed on the odd tag — the Release fence right
        // after it provides the needed edge.
        slot.guard.store(2 * pos + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        // ORDERING: Relaxed payload stores — ordered against readers by
        // the fence above and the Release publication below.
        let o = Ordering::Relaxed;
        slot.meta.store(
            u64::from(ev.depth) << 1 | u64::from(ev.kind == EventKind::End),
            o,
        );
        slot.name_ptr.store(ev.name.as_ptr().cast_mut(), o);
        slot.name_len.store(ev.name.len(), o);
        slot.span_id.store(ev.span_id, o);
        slot.parent_id.store(ev.parent_id, o);
        slot.t_ns.store(ev.t_ns, o);
        slot.start_ns.store(ev.start_ns, o);
        slot.seq.store(ev.seq, o);
        slot.rows_in.store(ev.rows_in, o);
        slot.rows_out.store(ev.rows_out, o);
        slot.mem_delta.store(ev.mem_delta as u64, o);
        slot.mem_peak_delta.store(ev.mem_peak_delta, o);
        slot.guard.store(2 * pos + 2, Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
    }

    /// Validated copy of position `pos`, or `None` if the slot was
    /// overwritten or mid-write during the copy.
    fn read_slot(&self, pos: u64) -> Option<TimelineEvent> {
        let slot = &self.slots[(pos % self.slots.len() as u64) as usize];
        let want = 2 * pos + 2;
        let g1 = slot.guard.load(Ordering::Acquire);
        if g1 != want {
            return None;
        }
        // ORDERING: Relaxed payload loads — bracketed by the Acquire
        // above (sees at least `pos`'s payload) and the Acquire fence +
        // re-check below (rejects any newer overlap).
        let o = Ordering::Relaxed;
        let meta = slot.meta.load(o);
        let name_ptr = slot.name_ptr.load(o);
        let name_len = slot.name_len.load(o);
        let span_id = slot.span_id.load(o);
        let parent_id = slot.parent_id.load(o);
        let t_ns = slot.t_ns.load(o);
        let start_ns = slot.start_ns.load(o);
        let seq = slot.seq.load(o);
        let rows_in = slot.rows_in.load(o);
        let rows_out = slot.rows_out.load(o);
        let mem_delta = slot.mem_delta.load(o) as i64;
        let mem_peak_delta = slot.mem_peak_delta.load(o);
        fence(Ordering::Acquire);
        // ORDERING: Relaxed re-check — the Acquire fence above orders it
        // after the payload loads; equality with the pre-check proves no
        // writer touched the slot in between.
        if slot.guard.load(Ordering::Relaxed) != g1 {
            return None;
        }
        // SAFETY: the name pointer/length pair was stored from one
        // `&'static str` between the two guard transitions of position
        // `pos`, and the seqlock validation above proves this copy did
        // not interleave with any writer — the pair is consistent and
        // points at 'static UTF-8 bytes.
        let name: &'static str = unsafe {
            std::str::from_utf8_unchecked(std::slice::from_raw_parts(name_ptr, name_len))
        };
        Some(TimelineEvent {
            kind: if meta & 1 == 1 {
                EventKind::End
            } else {
                EventKind::Begin
            },
            name,
            span_id,
            parent_id,
            depth: (meta >> 1) as u32,
            t_ns,
            start_ns,
            seq,
            rows_in,
            rows_out,
            mem_delta,
            mem_peak_delta,
        })
    }

    /// Drains the visible window: retained events in write order plus the
    /// count of events lost to overwrite (or skipped mid-write).
    pub(crate) fn drain(&self) -> ThreadTimeline {
        let head = self.head.load(Ordering::Acquire);
        let floor = self.floor.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let window = head.saturating_sub(floor);
        let lo = floor.max(head.saturating_sub(cap));
        let mut dropped = window.saturating_sub(cap);
        let mut events = Vec::with_capacity((head - lo) as usize);
        for pos in lo..head {
            match self.read_slot(pos) {
                Some(ev) => events.push(ev),
                None => dropped += 1,
            }
        }
        ThreadTimeline {
            tid: self.tid,
            thread_name: self.thread_name.clone(),
            dropped,
            events,
        }
    }

    /// Events recorded in the current window (including overwritten ones).
    fn recorded(&self) -> u64 {
        self.head
            .load(Ordering::Acquire)
            .saturating_sub(self.floor.load(Ordering::Acquire))
    }

    /// Opens a fresh window: everything recorded so far becomes invisible.
    fn reset_window(&self) {
        self.floor
            .store(self.head.load(Ordering::Acquire), Ordering::Release);
    }
}

/// Registry of every thread buffer ever created (pruned of dead threads
/// on [`reset`]).
struct ThreadRegistry {
    threads: Mutex<Vec<Arc<ThreadBuffer>>>,
}

fn registry() -> &'static ThreadRegistry {
    static REGISTRY: OnceLock<ThreadRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| ThreadRegistry {
        threads: Mutex::new(Vec::new()),
    })
}

fn registry_threads() -> std::sync::MutexGuard<'static, Vec<Arc<ThreadBuffer>>> {
    registry().threads.lock().unwrap_or_else(|e| e.into_inner())
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static END_SEQ: AtomicU64 = AtomicU64::new(0);

/// Process-wide monotonic clock all timeline events share, anchored at
/// first use.
pub fn epoch_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Per-thread recording context: the thread's buffer (created and
/// registered on first use) plus the stack of open span ids.
struct ThreadCtx {
    buf: Option<Arc<ThreadBuffer>>,
    stack: Vec<u64>,
}

impl ThreadCtx {
    fn buffer(&mut self) -> &Arc<ThreadBuffer> {
        if self.buf.is_none() {
            // ORDERING: Relaxed — the counter only hands out unique ids.
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let buf = Arc::new(ThreadBuffer::with_capacity(tid, name, EVENTS_PER_THREAD));
            registry_threads().push(Arc::clone(&buf));
            self.buf = Some(buf);
        }
        self.buf.as_ref().unwrap_or_else(|| unreachable!())
    }
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = const {
        RefCell::new(ThreadCtx { buf: None, stack: Vec::new() })
    };
}

/// What [`begin_span`] hands the span to carry until its drop.
#[derive(Clone, Copy)]
pub(crate) struct SpanToken {
    pub span_id: u64,
    pub parent_id: u64,
    pub depth: u32,
    pub start_ns: u64,
}

/// Records a [`EventKind::Begin`] event on the calling thread and pushes
/// the span onto the thread's open-span stack. Only called for enabled
/// spans.
pub(crate) fn begin_span(name: &'static str) -> SpanToken {
    let t_ns = epoch_ns();
    // ORDERING: Relaxed — the counter only hands out unique span ids.
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    CTX.with(|c| {
        let mut c = c.borrow_mut();
        let parent_id = c.stack.last().copied().unwrap_or(0);
        let depth = c.stack.len() as u32;
        c.stack.push(span_id);
        c.buffer().push(RawEvent {
            kind: EventKind::Begin,
            name,
            span_id,
            parent_id,
            depth,
            t_ns,
            start_ns: t_ns,
            seq: 0,
            rows_in: 0,
            rows_out: 0,
            mem_delta: 0,
            mem_peak_delta: 0,
        });
        SpanToken {
            span_id,
            parent_id,
            depth,
            start_ns: t_ns,
        }
    })
}

/// Records the matching [`EventKind::End`] event, pops the open-span
/// stack, and returns the span's wall time in nanoseconds.
pub(crate) fn end_span(
    name: &'static str,
    token: SpanToken,
    rows_in: u64,
    rows_out: u64,
    mem_delta: i64,
    mem_peak_delta: u64,
) -> u64 {
    let t_ns = epoch_ns();
    let wall_ns = t_ns.saturating_sub(token.start_ns);
    // ORDERING: Relaxed — completion order only needs unique, per-thread
    // monotonic values; cross-thread order is reconstructed from
    // timestamps, not from this counter.
    let seq = END_SEQ.fetch_add(1, Ordering::Relaxed);
    CTX.with(|c| {
        let mut c = c.borrow_mut();
        // RAII spans unwind LIFO; tolerate out-of-order drops anyway.
        if c.stack.last() == Some(&token.span_id) {
            c.stack.pop();
        } else if let Some(i) = c.stack.iter().rposition(|&s| s == token.span_id) {
            c.stack.remove(i);
        }
        c.buffer().push(RawEvent {
            kind: EventKind::End,
            name,
            span_id: token.span_id,
            parent_id: token.parent_id,
            depth: token.depth,
            t_ns,
            start_ns: token.start_ns,
            seq,
            rows_in,
            rows_out,
            mem_delta,
            mem_peak_delta,
        });
    });
    wall_ns
}

/// Drains every registered thread buffer under one registry snapshot.
/// Timelines are ordered by registration id; events within a timeline
/// are in write order.
pub fn timelines_snapshot() -> Vec<ThreadTimeline> {
    let threads = registry_threads();
    let mut out: Vec<ThreadTimeline> = threads.iter().map(|b| b.drain()).collect();
    out.sort_by_key(|t| t.tid);
    out
}

/// The completed spans across all threads, oldest first (by completion
/// sequence) — the aggregate view the JSON dump's `events` array keeps.
pub fn events_snapshot() -> Vec<Event> {
    let mut out: Vec<Event> = Vec::new();
    for tl in timelines_snapshot() {
        for ev in &tl.events {
            if ev.kind == EventKind::End {
                out.push(Event {
                    seq: ev.seq,
                    name: ev.name,
                    depth: ev.depth,
                    wall_ns: ev.t_ns.saturating_sub(ev.start_ns),
                    rows_in: ev.rows_in,
                    rows_out: ev.rows_out,
                    mem_delta: ev.mem_delta,
                    mem_peak_delta: ev.mem_peak_delta,
                    tid: tl.tid,
                    span_id: ev.span_id,
                    parent_id: ev.parent_id,
                });
            }
        }
    }
    out.sort_by_key(|e| e.seq);
    out
}

/// Total events recorded in the current window across all threads
/// (including those since overwritten).
pub fn total_recorded() -> u64 {
    registry_threads().iter().map(|b| b.recorded()).sum()
}

/// Total events lost to ring overwrite in the current window.
pub fn total_dropped() -> u64 {
    registry_threads()
        .iter()
        .map(|b| b.recorded().saturating_sub(b.slots.len() as u64))
        .sum()
}

/// Opens a fresh window on every buffer and prunes buffers whose owning
/// thread has exited (their TLS handle is gone, so only the registry's
/// `Arc` remains).
pub(crate) fn reset() {
    let mut threads = registry_threads();
    threads.retain(|b| Arc::strong_count(b) > 1);
    for b in threads.iter() {
        b.reset_window();
    }
}

/// Renders the flight recorder (recent per-thread events plus the sampler
/// tail) as human-readable text — what the panic hook dumps to stderr.
pub fn flight_dump() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("=== ringo flight recorder ===\n");
    let timelines = timelines_snapshot();
    if timelines.is_empty() {
        out.push_str("  (no events recorded; was tracing enabled?)\n");
    }
    for tl in &timelines {
        let _ = writeln!(
            out,
            "thread {} \"{}\" ({} events retained, {} dropped):",
            tl.tid,
            tl.thread_name,
            tl.events.len(),
            tl.dropped
        );
        let tail_from = tl.events.len().saturating_sub(PANIC_DUMP_EVENTS);
        for ev in &tl.events[tail_from..] {
            let mark = match ev.kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
            };
            let _ = write!(
                out,
                "  [{:>12}ns] {mark} {:indent$}{}",
                ev.t_ns,
                "",
                ev.name,
                indent = (ev.depth as usize) * 2
            );
            if ev.kind == EventKind::End {
                let _ = write!(
                    out,
                    " wall={} rows={}->{}",
                    crate::fmt_ns(ev.t_ns.saturating_sub(ev.start_ns)),
                    ev.rows_in,
                    ev.rows_out
                );
            }
            out.push('\n');
        }
    }
    let samples = crate::sampler::samples_snapshot();
    if !samples.is_empty() {
        let _ = writeln!(out, "sampler tail ({} samples total):", samples.len());
        let tail_from = samples.len().saturating_sub(8);
        for s in &samples[tail_from..] {
            let _ = writeln!(
                out,
                "  [{:>12}ns] busy={} idle={} chunks+={} mem={}",
                s.t_ns,
                s.busy_workers,
                s.idle_workers,
                s.chunks_delta,
                crate::mem::format_bytes(s.mem_current as usize)
            );
        }
    }
    out.push_str("=== end flight recorder ===\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(name: &'static str, n: u64) -> RawEvent {
        RawEvent {
            kind: EventKind::End,
            name,
            span_id: n,
            parent_id: 0,
            depth: 0,
            t_ns: n,
            start_ns: 0,
            seq: n,
            rows_in: 0,
            rows_out: 0,
            mem_delta: 0,
            mem_peak_delta: 0,
        }
    }

    #[test]
    fn buffer_retains_newest_and_counts_dropped() {
        let buf = ThreadBuffer::with_capacity(7, "test".into(), 64);
        for i in 0..64 + 10 {
            buf.push(raw("test.sat", i));
        }
        let tl = buf.drain();
        assert_eq!(tl.tid, 7);
        assert_eq!(tl.events.len(), 64, "bounded at capacity");
        assert_eq!(tl.dropped, 10, "overwritten events are counted");
        // Oldest-first write order, newest retained.
        assert_eq!(tl.events.first().map(|e| e.span_id), Some(10));
        assert_eq!(tl.events.last().map(|e| e.span_id), Some(73));
        buf.reset_window();
        let tl = buf.drain();
        assert!(tl.events.is_empty());
        assert_eq!(tl.dropped, 0, "fresh window");
    }

    #[test]
    fn drain_skips_unwritten_slots() {
        let buf = ThreadBuffer::with_capacity(1, "test".into(), 8);
        buf.push(raw("test.one", 1));
        let tl = buf.drain();
        assert_eq!(tl.events.len(), 1);
        assert_eq!(tl.events[0].name, "test.one");
        assert_eq!(tl.dropped, 0);
    }
}
