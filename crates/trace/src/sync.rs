//! Synchronization facade: the one place this crate names its atomics.
//!
//! Library code uses `crate::sync::VAtomic*` instead of
//! `std::sync::atomic::Atomic*`. In a normal build (no `model` feature)
//! these are *type aliases* onto the `std` types — identical codegen, and
//! the crate stays zero-dependency as advertised. Under `--features model`
//! (or `--cfg ringo_model`) they point at `ringo_check`'s virtual atomics
//! so the deterministic scheduler can explore interleavings of the
//! registry's slot-claim protocol. See `crates/check` and DESIGN.md
//! § "Concurrency checking".

#[cfg(not(any(feature = "model", ringo_model)))]
pub use std::sync::atomic::{AtomicPtr as VAtomicPtr, AtomicU64 as VAtomicU64};

#[cfg(any(feature = "model", ringo_model))]
pub use ringo_check::sync::{VAtomicPtr, VAtomicU64};
