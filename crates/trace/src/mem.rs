//! Heap-footprint tracking for the paper's §3 memory claims.
//!
//! The paper reports that 10 PageRank iterations on Twitter2010 ran within
//! 18.3GB and triangle counting within 22.6GB — "less than twice the size
//! of the graph object itself". [`TrackingAllocator`] wraps the system
//! allocator with current/peak byte counters so the `footprint` benchmark
//! binary can reproduce that measurement, and so spans can attribute
//! allocator deltas to individual operations:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ringo_trace::mem::TrackingAllocator = ringo_trace::mem::TrackingAllocator;
//! ```
//!
//! (Formerly `ringo_core::mem`, which now re-exports this module; it lives
//! here so every engine crate below the facade can read the watermarks.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static COUNT: AtomicUsize = AtomicUsize::new(0);

/// A `GlobalAlloc` wrapper around the system allocator that maintains
/// current and peak heap usage counters.
pub struct TrackingAllocator;

// SAFETY: delegates allocation to `System` verbatim; only counters are
// updated around the calls.
unsafe impl GlobalAlloc for TrackingAllocator {
    // SAFETY: trait-mandated unsafe fn; the caller's `GlobalAlloc`
    // contract is forwarded to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            // ORDERING: Relaxed — advisory watermark counters; nothing is
            // published through them.
            COUNT.fetch_add(1, Ordering::Relaxed);
            add(layout.size());
        }
        ptr
    }

    // SAFETY: trait-mandated unsafe fn; contract forwarded to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        // ORDERING: Relaxed — advisory watermark counter.
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // SAFETY: trait-mandated unsafe fn; contract forwarded to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // ORDERING: Relaxed — advisory watermark counters.
            COUNT.fetch_add(1, Ordering::Relaxed);
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
            add(new_size);
        }
        new_ptr
    }
}

fn add(bytes: usize) {
    // ORDERING: Relaxed — advisory watermark counters; the racy max update
    // below is good enough for footprint reporting.
    let now = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    let mut peak = PEAK.load(Ordering::Relaxed);
    while now > peak {
        match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// Bytes currently allocated (0 unless [`TrackingAllocator`] is installed
/// as the global allocator).
pub fn current_bytes() -> usize {
    // ORDERING: Relaxed — advisory watermark read.
    CURRENT.load(Ordering::Relaxed)
}

/// Peak bytes allocated since start or the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    // ORDERING: Relaxed — advisory watermark read.
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current allocation level, so a code section's
/// own peak can be isolated.
pub fn reset_peak() {
    // ORDERING: Relaxed — advisory watermark reset.
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Number of heap allocations (including reallocations) performed since
/// process start. Deltas of this counter around a code section bound how
/// many times that section hit the allocator — the measurement behind the
/// "allocation-free per node" fill-phase guarantee.
pub fn alloc_count() -> usize {
    // ORDERING: Relaxed — advisory allocation-count read.
    COUNT.load(Ordering::Relaxed)
}

/// Formats a byte count as a human-readable string (GB/MB/KB).
pub fn format_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.2}GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.1}MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

/// Formats a signed byte delta (`+1.2MB` / `-340.0KB` / `0B`).
pub fn format_bytes_delta(delta: i64) -> String {
    match delta {
        0 => "0B".to_string(),
        d if d > 0 => format!("+{}", format_bytes(d as usize)),
        d => format!("-{}", format_bytes(d.unsigned_abs() as usize)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(format_bytes(512), "512B");
        assert_eq!(format_bytes(2048), "2.0KB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.0MB");
        assert_eq!(format_bytes(5 * 1024 * 1024 * 1024), "5.00GB");
        assert_eq!(format_bytes_delta(0), "0B");
        assert_eq!(format_bytes_delta(2048), "+2.0KB");
        assert_eq!(format_bytes_delta(-512), "-512B");
    }

    #[test]
    fn counters_without_installation_are_consistent() {
        // Without installing the allocator the counters just stay put.
        let p = peak_bytes();
        reset_peak();
        assert!(peak_bytes() <= p.max(current_bytes()));
    }
}
